"""Regressions found by the differential fuzzer (``python -m repro.fuzz``).

Each test pins one discrepancy the fuzzer surfaced, in its delta-debugged
minimal form (3 statements each, shrunk from 2-5-query cases over
multi-table schemas by :mod:`repro.fuzz.reduce`):

1. **seed 2001273 (engine-vs-engine)** — ``avg()`` seeded its running
   total with float ``0.0``, so integer input accumulated in floating
   point and the result depended on row delivery order: over
   ``{7, -2^63, 2^63}`` a seq scan produced ``0.0`` (the 7 vanished in
   catastrophic cancellation) while an index range scan — same rows,
   different order — produced ``7/3``.  Fixed by accumulating exactly
   (Python bigints) like PostgreSQL's numeric ``avg(int)``.

2. **seed 2001579 (engine-vs-SQLite)** — SQLite does not raise on int64
   overflow in ``+ - *``; it silently degrades to floating point, so
   ``(-2^63) - ((-2^63) + (-3))`` is ``0.0`` there and exact ``3`` here.
   The engine's bigint arithmetic is the intended (PostgreSQL-faithful)
   behaviour; the fix bounds the SQLite oracle's *input* ints to 32 bits
   (``value_sqlite_arithmetic_safe``) so the cross-check stays sound.

A final sweep test re-runs slices of the seeds that were fuzzed clean at
development time (seeds 0/1/2/7/11 x hundreds of cases each, plus the two
fixes above), so the "zero unexplained discrepancies" property is
continuously re-proven on a bounded budget.
"""

from __future__ import annotations

import pytest

from repro.fuzz import Case, DifferentialChecker, Query, rows_equal
from repro.fuzz.datagen import (data_sqlite_safe,
                                value_sqlite_arithmetic_safe)
from repro.fuzz.schema import ColumnSpec, SchemaSpec, TableSpec
from repro.sql import Database

INT64_MIN = -(2**63)


# ---------------------------------------------------------------------------
# 1. avg() float accumulation (engine-vs-engine, fuzz seed 2001273)
# ---------------------------------------------------------------------------

AVG_CASE = Case(
    seed=2001273,
    schema=SchemaSpec(tables=(
        TableSpec("t0", (ColumnSpec("c0_0", "int", "num", "int"),
                         ColumnSpec("c3_0", "int", "num", "int"))),)),
    data={"t0": [(7, 2**63 - 1), (INT64_MIN, 2), (2**63, 2)]},
    functions=(),
    queries=(Query(
        sql="SELECT avg(a.c0_0) FROM t0 a "
            "WHERE ((a.c3_0 >= (-2)) AND (a.c3_0 >= (-5)))",
        sqlite_sql=None),))


class TestAvgExactAccumulation:
    def test_minimized_fuzz_case_is_clean(self):
        assert DifferentialChecker(use_sqlite=False).check_case(
            AVG_CASE) == []

    def test_avg_of_large_ints_is_exact_and_order_independent(self, db):
        db.execute("CREATE TABLE t(x int)")
        db.execute("INSERT INTO t VALUES (7), ($1), ($2)",
                   [INT64_MIN, 2**63])
        forward = db.query_value("SELECT avg(x) FROM t")
        db.execute("DELETE FROM t")
        db.execute("INSERT INTO t VALUES ($1), ($2), (7)",
                   [2**63, INT64_MIN])
        backward = db.query_value("SELECT avg(x) FROM t")
        assert forward == backward == 7 / 3

    def test_avg_small_ints_unchanged(self, db):
        db.execute("CREATE TABLE t(x int)")
        db.execute("INSERT INTO t VALUES (1), (2), (4)")
        assert db.query_value("SELECT avg(x) FROM t") == 7 / 3

    def test_avg_floats_still_float(self, db):
        db.execute("CREATE TABLE t(x double precision)")
        db.execute("INSERT INTO t VALUES (0.5), (1.5)")
        assert db.query_value("SELECT avg(x) FROM t") == 1.0

    def test_avg_rejects_non_numbers_like_sum(self, db):
        from repro.sql.errors import TypeError_
        db.execute("CREATE TABLE t(s text)")
        db.execute("INSERT INTO t VALUES ('a')")
        with pytest.raises(TypeError_):
            db.query_value("SELECT avg(s) FROM t")
        with pytest.raises(TypeError_):
            db.query_value("SELECT sum(s) FROM t")

    def test_avg_empty_and_null_only(self, db):
        db.execute("CREATE TABLE t(x int)")
        assert db.query_value("SELECT avg(x) FROM t") is None
        db.execute("INSERT INTO t VALUES (NULL)")
        assert db.query_value("SELECT avg(x) FROM t") is None


# ---------------------------------------------------------------------------
# 2. SQLite int64 overflow degradation (engine-vs-SQLite, fuzz seed 2001579)
# ---------------------------------------------------------------------------

SQLITE_CASE = Case(
    seed=2001579,
    schema=SchemaSpec(tables=(
        TableSpec("t0", (ColumnSpec("c0_0", "int", "num", "int"),
                         ColumnSpec("c1_0", "text", "text", "text"),
                         ColumnSpec("c2_0", "text", "text", "text"))),)),
    data={"t0": [(INT64_MIN, "%_x", None)]},
    functions=(),
    queries=(Query(
        sql="SELECT a.c1_0, (a.c0_0 - (a.c0_0 + (-3))), "
            "(a.c2_0 || replace('b', 'a', 'zz')) FROM t0 a "
            "ORDER BY 3, 1, 2",
        sqlite_sql="SELECT a.c1_0, (a.c0_0 - (a.c0_0 + (-3))), "
                   "(a.c2_0 || replace('b', 'a', 'zz')) FROM t0 a "
                   "ORDER BY 3 NULLS LAST, 1 NULLS LAST, 2 NULLS LAST",
        order="total",
        order_keys=((2, False), (0, False), (1, False))),))


class TestSqliteOverflowGate:
    def test_minimized_fuzz_case_is_clean(self):
        """Boundary-int data no longer reaches the SQLite oracle (whose
        int64 arithmetic would silently go floating point), and the
        engine side of the case still checks clean across the matrix."""
        assert DifferentialChecker(use_sqlite=True).check_case(
            SQLITE_CASE) == []

    def test_engine_keeps_exact_bigint_arithmetic(self, db):
        """The engine half of the discrepancy is the *intended*
        behaviour: exact, PostgreSQL-faithful bigint arithmetic."""
        db.execute("CREATE TABLE t(x int)")
        db.execute("INSERT INTO t VALUES ($1)", [INT64_MIN])
        assert db.query_all("SELECT x - (x + (-3)) FROM t") == [(3,)]

    def test_arithmetic_gate_bounds_input_ints(self):
        assert value_sqlite_arithmetic_safe(2**31)
        assert not value_sqlite_arithmetic_safe(2**31 + 1)
        assert not value_sqlite_arithmetic_safe(INT64_MIN)
        assert value_sqlite_arithmetic_safe(0.5)
        assert value_sqlite_arithmetic_safe("x")
        assert not data_sqlite_safe({"t": [(INT64_MIN,)]})
        assert data_sqlite_safe({"t": [(-(2**31), "a")]})


# ---------------------------------------------------------------------------
# 3. Row/batch numeric parity (the PR 10 vectorized executor, same
#    order-dependent-avg bug class as #1)
# ---------------------------------------------------------------------------


class TestVectorizedNumericParity:
    """The vectorized executor folds whole argument columns per batch
    (executor/vector.py:_accumulate); if it seeded or ordered the
    accumulation differently from the scalar state machines, the same
    ``{7, -2^63, 2^63}`` adversarial bigints that exposed bug #1 would
    diverge between the engines again."""

    ADVERSARIAL = [7, INT64_MIN, 2**63]

    def _load(self, db):
        db.execute("CREATE TABLE t(x int)")
        for v in self.ADVERSARIAL:
            db.execute("INSERT INTO t VALUES ($1)", [v])

    def test_sum_avg_parity_on_adversarial_bigints(self, db):
        self._load(db)
        q = "SELECT sum(x), avg(x), count(x) FROM t"
        db.execute("SET enable_vectorize = on")
        assert "Vector" in db.execute("EXPLAIN " + q).rows[0][0]
        vectorized = db.execute(q).rows
        db.execute("SET enable_vectorize = off")
        assert vectorized == db.execute(q).rows == [(7, 7 / 3, 3)]

    def test_grouped_parity_on_adversarial_bigints(self, db):
        db.execute("CREATE TABLE t(g int, x int)")
        for g, v in enumerate(self.ADVERSARIAL * 2):
            db.execute("INSERT INTO t VALUES ($1, $2)", [g % 2, v])
        q = "SELECT g, sum(x), avg(x) FROM t GROUP BY g"
        db.execute("SET enable_vectorize = on")
        assert "Vector" in db.execute("EXPLAIN " + q).rows[0][0]
        vectorized = db.execute(q).rows
        db.execute("SET enable_vectorize = off")
        assert vectorized == db.execute(q).rows

    def test_accumulation_follows_scan_order(self, db):
        # avg is exact over ints, so both engines must produce 7/3 in
        # either insertion order — the float-seeded accumulator of bug #1
        # would instead give an order-dependent 0.0 here.
        for ordering in (self.ADVERSARIAL, self.ADVERSARIAL[::-1]):
            db.execute("DROP TABLE IF EXISTS t")
            db.execute("CREATE TABLE t(x int)")
            for v in ordering:
                db.execute("INSERT INTO t VALUES ($1)", [v])
            for setting in ("on", "off"):
                db.execute(f"SET enable_vectorize = {setting}")
                assert db.query_value("SELECT avg(x) FROM t") == 7 / 3


# ---------------------------------------------------------------------------
# The standing seed sweep: zero unexplained discrepancies
# ---------------------------------------------------------------------------


class TestSeedSweep:
    """Representative windows of the development-time sweep (seeds 0, 1,
    2, 7, 11, 30 and 31 — over ten thousand cases checked clean after the
    fixes above) re-run here on a tier-1 budget.  The minimized
    reproducers above pin the two historical finds exactly; these windows
    keep proving the standing "zero unexplained discrepancies" property
    on fresh generator output."""

    @pytest.mark.parametrize("seed,start,count", [
        (1, 180, 8),
        (2, 1265, 6),
        (30, 0, 8),
        (31, 100, 8),
    ])
    def test_windows_stay_clean(self, seed, start, count):
        from repro.fuzz.__main__ import run_fuzz
        failures = run_fuzz(seed=seed, cases=count, start_index=start,
                            reduce_failures=False, emit_dir=None,
                            verbose=False)
        assert failures == 0
