"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.sql import Database


@pytest.fixture()
def db() -> Database:
    """A fresh, empty database per test."""
    return Database(seed=0)


@pytest.fixture()
def tdb() -> Database:
    """A database with a small standard table ``t(x int, y text)``."""
    database = Database(seed=0)
    database.execute("CREATE TABLE t(x int, y text)")
    database.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'c'), "
                     "(4, NULL)")
    return database


@pytest.fixture(scope="session")
def demo():
    """The full workload database (session-scoped: expensive to build)."""
    from repro.workloads import build_demo_database
    return build_demo_database(seed=7)


def compile_and_run(db: Database, source: str, calls: list[tuple[str, list]],
                    seed: int = 11) -> None:
    """Register *source* interpreted and compiled; assert both agree on
    every call in *calls* (sql uses {f} as the function-name placeholder).

    Result comparison goes through the fuzzer's shared
    :func:`repro.fuzz.oracle.rows_equal` (one equality definition for
    hand-written and generated differential tests alike).
    """
    from repro.compiler import compile_plsql
    from repro.fuzz.oracle import rows_equal
    from repro.sql import ast as A
    from repro.sql.parser import parse_statement

    statement = parse_statement(source)
    assert isinstance(statement, A.CreateFunction)
    name = statement.name
    if db.catalog.get_function(name) is None:
        db.execute_ast(statement)
    compiled = compile_plsql(source, db)
    compiled.register(db, name=f"{name}_c")
    for sql, params in calls:
        db.reseed(seed)
        expected = db.execute(sql.format(f=name), params).rows
        db.reseed(seed)
        actual = db.execute(sql.format(f=f"{name}_c"), params).rows
        assert rows_equal(expected, actual, ordered=True), \
            (sql, params, expected, actual)
