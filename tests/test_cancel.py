"""Query cancellation, statement timeouts, and WAL checkpointing.

The robustness surface this suite pins down:

* ``statement_timeout`` (milliseconds, 0 = off) cancels a runaway
  statement cooperatively — the Volcano hot loops and the PL/pgSQL
  interpreter poll the session's :class:`~repro.sql.cancel.CancelToken`
  and raise :class:`~repro.sql.errors.QueryCanceledError` (SQLSTATE
  57014),
* a cancel inside an explicit transaction block undoes *only* the
  canceled statement; the block's earlier work survives to COMMIT,
* ``SET LOCAL statement_timeout`` scopes the deadline to the block,
* the wire server's out-of-band CancelRequest (BackendKeyData pid +
  secret on a fresh connection, PostgreSQL-style) trips the token from
  another thread, frees the worker slot, and ignores a wrong secret
  silently,
* ``CHECKPOINT`` compacts the WAL to a snapshot the recovery path
  replays byte-for-byte equivalently, refuses to run inside a block,
  and auto-triggers via ``wal_checkpoint_interval``.

Crash-at-every-fault-point coverage for checkpointing lives in
``test_recovery.py``; latency gates live in ``benchmarks/bench_cancel.py``.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.server import ServerError, ServerThread, connect
from repro.sql import Database
from repro.sql.errors import ExecutionError, QueryCanceledError
from repro.sql.profiler import QUERIES_CANCELED, WAL_CHECKPOINTS

#: ~2e9 iterations of the recursive-CTE loop: minutes of work if nothing
#: cancels it, so any test that completes at all proves the cancel path.
RUNAWAY = ("WITH RECURSIVE r(n) AS (SELECT 1 UNION ALL "
           "SELECT n + 1 FROM r WHERE n < 2000000000) "
           "SELECT count(*) FROM r")


def wal_lines(path) -> int:
    with open(path, encoding="utf-8") as fh:
        return sum(1 for _ in fh)


# ---------------------------------------------------------------------------
# statement_timeout
# ---------------------------------------------------------------------------

class TestStatementTimeout:
    def test_timeout_cancels_runaway_recursive_cte(self, db):
        db.execute("SET statement_timeout = 50")
        before = db.profiler.counts[QUERIES_CANCELED]
        started = time.monotonic()
        with pytest.raises(QueryCanceledError, match="statement timeout"):
            db.execute(RUNAWAY)
        # 50ms deadline, generous CI margin — minutes without the token.
        assert time.monotonic() - started < 2.0
        assert db.profiler.counts[QUERIES_CANCELED] == before + 1

    def test_zero_disables_the_timeout(self, db):
        db.execute("SET statement_timeout = 50")
        db.execute("SET statement_timeout = 0")
        assert db.query_value(
            "WITH RECURSIVE r(n) AS (SELECT 1 UNION ALL "
            "SELECT n + 1 FROM r WHERE n < 20000) "
            "SELECT count(*) FROM r") == 20000

    def test_timeout_cancels_plsql_interpreter(self, db):
        db.execute("""CREATE FUNCTION spin() RETURNS int AS $$
            BEGIN
              WHILE true LOOP
              END LOOP;
              RETURN 0;
            END; $$ LANGUAGE plpgsql""")
        db.execute("SET statement_timeout = 50")
        with pytest.raises(QueryCanceledError, match="statement timeout"):
            db.query_value("SELECT spin()")

    def test_timeout_survives_show_roundtrip(self, db):
        db.execute("SET statement_timeout = 75")
        assert db.execute("SHOW statement_timeout").scalar() == "75"
        db.execute("RESET statement_timeout")
        assert db.execute("SHOW statement_timeout").scalar() == "0"

    def test_set_local_scopes_timeout_to_the_block(self, db):
        db.execute("CREATE TABLE t(x int)")
        conn = db.connect()
        cur = conn.cursor()
        cur.execute("BEGIN")
        cur.execute("SET LOCAL statement_timeout = 50")
        with pytest.raises(QueryCanceledError, match="statement timeout"):
            cur.execute(RUNAWAY)
        cur.execute("COMMIT")
        # Back outside the block the deadline is gone...
        assert conn.query_value("SHOW statement_timeout") == "0"
        # ...so a slow-ish statement runs to completion again.
        assert conn.query_value(
            "WITH RECURSIVE r(n) AS (SELECT 1 UNION ALL "
            "SELECT n + 1 FROM r WHERE n < 20000) "
            "SELECT count(*) FROM r") == 20000


# ---------------------------------------------------------------------------
# Cancellation inside explicit transaction blocks
# ---------------------------------------------------------------------------

class TestCancelInTransactionBlock:
    def test_canceled_statement_keeps_blocks_earlier_work(self, db):
        db.execute("CREATE TABLE t(x int)")
        conn = db.connect()
        cur = conn.cursor()
        cur.execute("BEGIN")
        cur.execute("INSERT INTO t VALUES (1)")
        cur.execute("SET LOCAL statement_timeout = 50")
        with pytest.raises(QueryCanceledError):
            cur.execute(RUNAWAY)
        # The block is not aborted: the cancel rolled back only the
        # canceled statement, and the session keeps working in-block.
        cur.execute("INSERT INTO t VALUES (2)")
        cur.execute("COMMIT")
        assert db.query_all("SELECT x FROM t ORDER BY x") == [(1,), (2,)]

    def test_canceled_dml_is_undone_statement_level(self, db):
        db.execute("CREATE TABLE t(x int)")
        db.execute("INSERT INTO t VALUES (1), (2), (3)")
        db.execute("""CREATE FUNCTION slow(v int) RETURNS int AS $$
            DECLARE i int := 0;
            BEGIN
              WHILE true LOOP
                i := i + 1;
              END LOOP;
              RETURN v;
            END; $$ LANGUAGE plpgsql""")
        conn = db.connect()
        cur = conn.cursor()
        cur.execute("BEGIN")
        cur.execute("UPDATE t SET x = 10 WHERE x = 1")
        cur.execute("SET LOCAL statement_timeout = 50")
        with pytest.raises(QueryCanceledError):
            # Canceled mid-UPDATE: whatever rows it touched must unwind.
            cur.execute("UPDATE t SET x = slow(x)")
        cur.execute("COMMIT")
        assert db.query_all("SELECT x FROM t ORDER BY x") == \
            [(2,), (3,), (10,)]

    def test_cross_thread_trip_cancels_promptly(self, db):
        conn = db.connect()

        def tripper():
            time.sleep(0.05)
            conn.cancel.trip()  # what the wire server does on CancelRequest

        thread = threading.Thread(target=tripper)
        thread.start()
        started = time.monotonic()
        try:
            with pytest.raises(QueryCanceledError, match="user request"):
                conn.execute(RUNAWAY)
            assert time.monotonic() - started < 2.0
        finally:
            thread.join()
        # The next statement arms the token afresh — no sticky cancel.
        assert conn.query_value("SELECT 1") == 1

    def test_trip_between_statements_is_lost_at_next_arm(self, db):
        conn = db.connect()
        conn.cancel.trip()
        # PostgreSQL-compatible: a cancel racing the statement boundary
        # may be lost; arming at statement start clears the stale trip.
        assert conn.query_value("SELECT 1") == 1


# ---------------------------------------------------------------------------
# Wire-level cancellation (CancelRequest + BackendKeyData)
# ---------------------------------------------------------------------------

class TestWireCancellation:
    def test_backend_key_data_is_sent(self):
        db = Database(seed=0)
        with ServerThread(db) as address:
            with connect(*address) as c1, connect(*address) as c2:
                assert c1.backend_pid > 0
                assert c2.backend_pid > 0
                assert c1.backend_pid != c2.backend_pid

    def test_cancel_request_kills_query_and_frees_the_slot(self):
        db = Database(seed=0)
        with ServerThread(db, workers=2) as address:
            with connect(*address) as client:
                canceler = threading.Timer(0.1, client.cancel)
                canceler.start()
                try:
                    with pytest.raises(ServerError) as info:
                        client.query(RUNAWAY)
                finally:
                    canceler.join()
                assert info.value.sqlstate == "57014"
                assert info.value.severity == "ERROR"  # not fatal
                # The worker slot is reusable by this same session...
                assert client.query_rows("SELECT 1") == [("1",)]
            # ...and by a fresh one.
            with connect(*address) as fresh:
                assert fresh.query_rows("SELECT 2") == [("2",)]

    def test_wrong_secret_is_silently_ignored(self):
        db = Database(seed=0)
        with ServerThread(db) as address:
            with connect(*address) as client:
                # Backstop timeout so the test cannot hang: if the forged
                # cancel had any effect the error would say "user request".
                client.query("SET statement_timeout = 300")
                client.backend_secret ^= 0xDEADBEEF  # forge the key
                forger = threading.Timer(0.05, client.cancel)
                forger.start()
                try:
                    with pytest.raises(ServerError) as info:
                        client.query(RUNAWAY)
                finally:
                    forger.join()
                assert info.value.sqlstate == "57014"
                assert "statement timeout" in info.value.message
                assert client.query_rows("SELECT 1") == [("1",)]

    def test_unknown_pid_is_silently_ignored(self):
        db = Database(seed=0)
        with ServerThread(db) as address:
            with connect(*address) as client:
                client.backend_pid += 12345
                client.cancel()  # no such backend: dropped, no crash
                assert client.query_rows("SELECT 1") == [("1",)]

    def test_statement_timeout_travels_as_57014(self):
        db = Database(seed=0)
        with ServerThread(db) as address:
            with connect(*address) as client:
                client.query("SET statement_timeout = 50")
                with pytest.raises(ServerError) as info:
                    client.query(RUNAWAY)
                assert info.value.sqlstate == "57014"
                assert client.transaction_status == b"I"

    def test_interpreter_budget_travels_as_57014(self):
        db = Database(seed=0)
        db.execute("""CREATE FUNCTION spin() RETURNS int AS $$
            BEGIN
              WHILE true LOOP
              END LOOP;
              RETURN 0;
            END; $$ LANGUAGE plpgsql""")
        with ServerThread(db) as address:
            with connect(*address) as client:
                client.query("SET max_interp_statements = 5000")
                with pytest.raises(ServerError) as info:
                    client.query("SELECT spin()")
                assert info.value.sqlstate == "57014"
                assert "max_interp_statements" in info.value.message

    def test_cancel_mid_block_keeps_earlier_work_over_the_wire(self):
        db = Database(seed=0)
        db.execute("CREATE TABLE t(x int)")
        with ServerThread(db) as address:
            with connect(*address) as client:
                client.query("BEGIN")
                client.query("INSERT INTO t VALUES (1)")
                canceler = threading.Timer(0.1, client.cancel)
                canceler.start()
                try:
                    with pytest.raises(ServerError) as info:
                        client.query(RUNAWAY)
                finally:
                    canceler.join()
                assert info.value.sqlstate == "57014"
                # Friendlier than PostgreSQL: the block stays usable.
                assert client.transaction_status == b"T"
                client.query("INSERT INTO t VALUES (2)")
                client.query("COMMIT")
        assert db.query_all("SELECT x FROM t ORDER BY x") == [(1,), (2,)]


# ---------------------------------------------------------------------------
# WAL checkpointing
# ---------------------------------------------------------------------------

@pytest.fixture()
def durable(tmp_path):
    path = str(tmp_path / "db.wal")
    return Database(seed=0, path=path), path


class TestCheckpoint:
    def _populate(self, db):
        db.execute("CREATE TABLE t(a int, b text)")
        db.execute("CREATE INDEX t_b ON t(b)")
        for i in range(20):
            db.execute(f"INSERT INTO t VALUES ({i}, 'v{i}')")
        db.execute("UPDATE t SET b = 'updated' WHERE a < 5")
        db.execute("DELETE FROM t WHERE a >= 15")

    def test_checkpoint_compacts_and_recovery_agrees(self, durable):
        db, path = durable
        self._populate(db)
        expected = db.query_all("SELECT a, b FROM t ORDER BY a")
        before = wal_lines(path)
        db.execute("CHECKPOINT")
        assert wal_lines(path) < before  # history collapsed to a snapshot
        assert db.profiler.counts[WAL_CHECKPOINTS] == 1
        reopened = Database(seed=0, path=path)
        assert reopened.query_all("SELECT a, b FROM t ORDER BY a") == expected
        # The index came through the snapshot too.
        assert reopened.query_all(
            "SELECT a FROM t WHERE b = 'updated' ORDER BY a") == \
            [(i,) for i in range(5)]

    def test_appends_after_checkpoint_survive_reopen(self, durable):
        db, path = durable
        self._populate(db)
        db.execute("CHECKPOINT")
        db.execute("INSERT INTO t VALUES (100, 'post')")
        db.execute("DELETE FROM t WHERE a = 0")
        reopened = Database(seed=0, path=path)
        assert reopened.query_value(
            "SELECT count(*) FROM t WHERE b = 'post'") == 1
        assert reopened.query_value(
            "SELECT count(*) FROM t WHERE a = 0") == 0

    def test_functions_and_types_survive_checkpoint(self, durable):
        db, path = durable
        db.execute("CREATE TYPE pair AS (lo int, hi int)")
        db.execute("""CREATE FUNCTION twice(v int) RETURNS int AS $$
            BEGIN RETURN v * 2; END; $$ LANGUAGE plpgsql""")
        db.execute("CHECKPOINT")
        reopened = Database(seed=0, path=path)
        assert reopened.query_value("SELECT twice(21)") == 42
        assert "pair" in reopened.catalog.composite_types

    def test_double_checkpoint_is_stable(self, durable):
        db, path = durable
        self._populate(db)
        db.execute("CHECKPOINT")
        lines = wal_lines(path)
        db.execute("CHECKPOINT")
        assert wal_lines(path) == lines  # idempotent on a quiet log

    def test_checkpoint_rejected_inside_transaction_block(self, durable):
        db, _ = durable
        conn = db.connect()
        cur = conn.cursor()
        cur.execute("BEGIN")
        with pytest.raises(ExecutionError,
                           match="inside a transaction block"):
            cur.execute("CHECKPOINT")
        cur.execute("ROLLBACK")
        cur.execute("CHECKPOINT")  # fine once the block is closed

    def test_checkpoint_on_non_durable_database_is_a_noop(self, db):
        conn = db.connect()
        conn.execute("CHECKPOINT")
        assert any("not durable" in n for n in conn.notices)

    def test_checkpoint_tag_over_the_wire(self, durable):
        db, _ = durable
        with ServerThread(db) as address:
            with connect(*address) as client:
                [result] = client.query("CHECKPOINT")
                assert result.command_tag == "CHECKPOINT"

    def test_auto_checkpoint_after_interval(self, durable):
        db, path = durable
        db.execute("SET wal_checkpoint_interval = 25")
        db.execute("CREATE TABLE t(x int)")
        for i in range(60):
            db.execute(f"INSERT INTO t VALUES ({i})")
        assert db.profiler.counts[WAL_CHECKPOINTS] >= 1
        # Compaction dropped the per-statement commit markers for
        # history before the snapshot (uncompacted: 2 lines per insert),
        # and a reopen still sees every committed row.
        assert wal_lines(path) < 100
        reopened = Database(seed=0, path=path)
        assert reopened.query_value("SELECT count(*) FROM t") == 60

    def test_auto_checkpoint_defers_while_block_open(self, durable):
        db, path = durable
        db.execute("SET wal_checkpoint_interval = 10")
        db.execute("CREATE TABLE t(x int)")
        conn = db.connect()
        cur = conn.cursor()
        cur.execute("BEGIN")
        for i in range(40):
            cur.execute(f"INSERT INTO t VALUES ({i})")
        checkpoints_in_block = db.profiler.counts[WAL_CHECKPOINTS]
        cur.execute("COMMIT")
        # Never compacts under an open writer (the snapshot would have
        # to decide about uncommitted versions); the commit or a later
        # statement picks it up.
        assert checkpoints_in_block == 0
        db.execute("SELECT count(*) FROM t")  # post-commit statement
        assert db.profiler.counts[WAL_CHECKPOINTS] >= 1
        reopened = Database(seed=0, path=path)
        assert reopened.query_value("SELECT count(*) FROM t") == 40
