"""Unit tests for individual compiler stages: CFG, dominators, SSA,
optimizations, ANF, UDF, template."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.anf import AnfCall, AnfIf, AnfLet, AnfRet, inline_anf, ssa_to_anf
from repro.compiler.cfg import CondGoto, Goto, Return, build_cfg
from repro.compiler.dominators import DominatorInfo, reverse_postorder
from repro.compiler.optimize import optimize_ssa
from repro.compiler.ssa import build_ssa, evaluate_ssa
from repro.compiler.udf import build_udf, udf_is_recursive
from repro.plsql.parser import parse_plpgsql_function
from repro.sql.errors import CompileError


def func_of(body: str, params=("n", "int"), return_type="int"):
    names = [params[i] for i in range(0, len(params), 2)]
    types = [params[i + 1] for i in range(0, len(params), 2)]
    return parse_plpgsql_function("f", names, types, return_type, body)


class TestCfg:
    def test_straight_line(self):
        cfg = build_cfg(func_of("BEGIN RETURN n + 1; END"))
        entry = cfg.blocks[cfg.entry]
        assert isinstance(entry.terminator, Return)

    def test_if_creates_diamond(self):
        cfg = build_cfg(func_of(
            "DECLARE v int; BEGIN IF n > 0 THEN v = 1; ELSE v = 2; END IF; "
            "RETURN v; END"))
        entry = cfg.blocks[cfg.entry]
        assert isinstance(entry.terminator, CondGoto)
        preds = cfg.predecessors()
        joins = [b for b, ps in preds.items() if len(ps) == 2]
        assert joins, "expected a join block"

    def test_while_creates_back_edge(self):
        cfg = build_cfg(func_of(
            "BEGIN WHILE n > 0 LOOP n = n - 1; END LOOP; RETURN n; END"))
        # some block jumps backwards to the loop header
        has_back_edge = any(
            target <= bid
            for bid, block in cfg.blocks.items()
            for target in block.successors())
        assert has_back_edge

    def test_for_bounds_become_temporaries(self):
        cfg = build_cfg(func_of(
            "DECLARE s int = 0; BEGIN FOR i IN 1..n LOOP s = s + i; "
            "END LOOP; RETURN s; END"))
        assert any(v.startswith("__stop") for v in cfg.var_types)

    def test_declared_vars_initialised_at_entry(self):
        cfg = build_cfg(func_of(
            "DECLARE a int; b int = 9; BEGIN RETURN b; END"))
        targets = [s.target for s in cfg.blocks[cfg.entry].stmts]
        assert "a" in targets and "b" in targets

    def test_exit_without_loop_rejected(self):
        with pytest.raises(CompileError):
            build_cfg(func_of("BEGIN EXIT; RETURN 1; END"))

    def test_continue_label_to_block_rejected(self):
        with pytest.raises(CompileError):
            build_cfg(func_of(
                "BEGIN <<b>> BEGIN CONTINUE b; END; RETURN 1; END"))

    def test_raise_exception_not_compilable(self):
        with pytest.raises(CompileError, match="RAISE EXCEPTION"):
            build_cfg(func_of("BEGIN RAISE EXCEPTION 'no'; END"))

    def test_raise_notice_dropped(self):
        cfg = build_cfg(func_of("BEGIN RAISE NOTICE 'hi'; RETURN 1; END"))
        assert not cfg.blocks[cfg.entry].stmts

    def test_for_query_not_compilable(self):
        with pytest.raises(CompileError, match="FOR"):
            build_cfg(func_of(
                "DECLARE r int; BEGIN FOR r IN SELECT 1 LOOP NULL; "
                "END LOOP; RETURN 0; END"))

    def test_duplicate_declaration_rejected(self):
        with pytest.raises(CompileError, match="twice"):
            build_cfg(func_of("DECLARE a int; a text; BEGIN RETURN 1; END"))

    def test_pretty_renders(self):
        cfg = build_cfg(func_of("BEGIN RETURN n; END"))
        assert "goto" in cfg.pretty() or "return" in cfg.pretty()


class TestDominators:
    def _brute_force_dominators(self, entry, successors, nodes):
        """A node d dominates n iff removing d disconnects n from entry."""
        doms = {}
        for d in nodes:
            reached = set()
            work = [entry] if entry != d else []
            while work:
                node = work.pop()
                if node in reached or node == d:
                    continue
                reached.add(node)
                work.extend(successors.get(node, ()))
            doms[d] = {n for n in nodes if n != d and n not in reached}
        return doms

    def test_diamond(self):
        successors = {0: [1, 2], 1: [3], 2: [3], 3: []}
        info = DominatorInfo(0, successors)
        assert info.idom[3] == 0
        assert info.frontiers[1] == {3} and info.frontiers[2] == {3}

    def test_loop(self):
        successors = {0: [1], 1: [2, 3], 2: [1], 3: []}
        info = DominatorInfo(0, successors)
        assert info.idom[2] == 1
        assert 1 in info.frontiers[2]  # back edge puts header in frontier

    def test_reverse_postorder_starts_at_entry(self):
        order = reverse_postorder(0, {0: [1, 2], 1: [3], 2: [3], 3: []})
        assert order[0] == 0 and set(order) == {0, 1, 2, 3}

    @settings(max_examples=60, deadline=None)
    @given(st.integers(1, 8), st.data())
    def test_idom_matches_brute_force(self, n, data):
        nodes = list(range(n))
        successors = {
            i: data.draw(st.lists(st.sampled_from(nodes), max_size=3,
                                  unique=True), label=f"succ{i}")
            for i in nodes}
        info = DominatorInfo(0, successors)
        reachable = set(info.rpo)
        brute = self._brute_force_dominators(0, successors, reachable)
        for node in reachable:
            if node == 0:
                continue
            idom = info.idom[node]
            # idom must dominate node
            assert node in brute[idom] or idom == node
            # and be dominated by every other dominator of node
            for other in reachable:
                if other != node and node in brute[other]:
                    assert info.dominates(other, idom) or other == idom


SSA_SOURCES = [
    "BEGIN RETURN n * 2; END",
    "DECLARE v int = 0; BEGIN IF n > 0 THEN v = n; ELSE v = -n; END IF; "
    "RETURN v; END",
    "DECLARE s int = 0; BEGIN FOR i IN 1..n LOOP s = s + i; END LOOP; "
    "RETURN s; END",
    "DECLARE a int = 0; b int = 1; t int; BEGIN WHILE a < n LOOP t = a; "
    "a = b; b = t + b; END LOOP; RETURN a; END",
    "DECLARE v int = 0; BEGIN FOR i IN 1..n LOOP IF i % 2 = 0 THEN "
    "v = v + i; ELSE v = v - 1; END IF; EXIT WHEN v > 50; END LOOP; "
    "RETURN v; END",
]


class TestSsa:
    @pytest.mark.parametrize("source", SSA_SOURCES)
    def test_single_assignment_invariant(self, source):
        ssa = build_ssa(build_cfg(func_of(source)))
        targets = []
        for block in ssa.blocks.values():
            targets.extend(phi.target for phi in block.phis)
            targets.extend(stmt.target for stmt in block.stmts)
        assert len(targets) == len(set(targets)), "a name assigned twice"

    @pytest.mark.parametrize("source", SSA_SOURCES)
    def test_phi_args_match_predecessors(self, source):
        ssa = build_ssa(build_cfg(func_of(source)))
        preds = ssa.predecessors()
        for bid, block in ssa.blocks.items():
            for phi in block.phis:
                assert set(phi.args) == set(preds[bid]), (bid, phi)

    @pytest.mark.parametrize("source", SSA_SOURCES)
    @pytest.mark.parametrize("n", [0, 1, 5])
    def test_ssa_evaluation_matches_interpreter(self, db, source, n):
        sql_src = (f"CREATE FUNCTION f(n int) RETURNS int AS $$ {source} "
                   "$$ LANGUAGE plpgsql")
        db.execute(sql_src)
        expected = db.query_value("SELECT f($1)", [n])
        ssa = build_ssa(build_cfg(func_of(source)), db.catalog)
        assert evaluate_ssa(ssa, db, [n]) == expected

    @pytest.mark.parametrize("source", SSA_SOURCES)
    @pytest.mark.parametrize("n", [0, 3, 7])
    def test_optimized_ssa_still_matches(self, db, source, n):
        sql_src = (f"CREATE FUNCTION f(n int) RETURNS int AS $$ {source} "
                   "$$ LANGUAGE plpgsql")
        db.execute(sql_src)
        expected = db.query_value("SELECT f($1)", [n])
        ssa = build_ssa(build_cfg(func_of(source)), db.catalog)
        optimize_ssa(ssa, db.catalog)
        assert evaluate_ssa(ssa, db, [n]) == expected

    def test_optimization_shrinks_fib(self):
        cfg = build_cfg(func_of(SSA_SOURCES[3]))
        raw = build_ssa(cfg)
        raw_size = sum(len(b.stmts) + len(b.phis) for b in raw.blocks.values())
        opt = build_ssa(build_cfg(func_of(SSA_SOURCES[3])))
        optimize_ssa(opt)
        opt_size = sum(len(b.stmts) + len(b.phis) for b in opt.blocks.values())
        assert opt_size <= raw_size
        assert len(opt.blocks) <= len(raw.blocks)

    def test_volatile_not_eliminated(self):
        source = ("DECLARE r float; BEGIN r = random(); RETURN 1; END")
        ssa = build_ssa(build_cfg(func_of(source)))
        optimize_ssa(ssa)
        exprs = [s for b in ssa.blocks.values() for s in b.stmts]
        assert any("random" in str(s.expr) for s in exprs), \
            "random() call must survive DCE"

    def test_constant_folding(self):
        source = "DECLARE v int = 2 + 3; BEGIN RETURN v * 10; END"
        ssa = build_ssa(build_cfg(func_of(source)))
        optimize_ssa(ssa)
        from repro.sql import ast as A
        ret = [b.terminator for b in ssa.blocks.values()
               if isinstance(b.terminator, Return)][0]
        assert isinstance(ret.expr, A.Literal) and ret.expr.value == 50

    def test_division_by_zero_not_folded(self, db):
        source = "BEGIN RETURN 1 / (n - n); END"
        ssa = build_ssa(build_cfg(func_of(source)))
        optimize_ssa(ssa)
        # error must stay at run time, not compile time
        from repro.sql.errors import ExecutionError
        with pytest.raises(ExecutionError):
            evaluate_ssa(ssa, db, [1])


class TestAnf:
    def _anf(self, source, optimize=True):
        ssa = build_ssa(build_cfg(func_of(source)))
        if optimize:
            optimize_ssa(ssa)
        return inline_anf(ssa_to_anf(ssa))

    def test_loop_free_collapses_to_main_only(self):
        anf = self._anf(
            "DECLARE v int; BEGIN IF n > 0 THEN v = 1; ELSE v = 2; END IF; "
            "RETURN v + n; END")
        assert set(anf.functions) == {anf.entry}

    def test_loop_keeps_one_recursive_function(self):
        anf = self._anf(SSA_SOURCES[2])
        others = [n for n in anf.functions if n != anf.entry]
        assert len(others) == 1
        body = anf.functions[others[0]].body
        assert isinstance(body, AnfIf)

    def test_calls_are_tail_position_only(self):
        anf = self._anf(SSA_SOURCES[4])

        def tails_only(expr, in_tail=True):
            if isinstance(expr, AnfLet):
                # the bound value is a SQL expression, never an AnfCall
                tails_only(expr.body, in_tail)
            elif isinstance(expr, AnfIf):
                tails_only(expr.then_branch, in_tail)
                tails_only(expr.else_branch, in_tail)
            elif isinstance(expr, AnfCall):
                assert in_tail

        for func in anf.functions.values():
            tails_only(func.body)

    def test_lambda_lifting_adds_free_parameters(self):
        anf = self._anf(SSA_SOURCES[2], optimize=False)
        loop_fns = [f for name, f in anf.functions.items()
                    if name != anf.entry]
        # the loop function must carry n (the bound) as a parameter
        assert any(any(p.startswith("n") or p.startswith("__stop")
                       for p in f.params) for f in loop_fns)

    def test_pretty_renders(self):
        anf = self._anf(SSA_SOURCES[2])
        text = anf.pretty()
        assert "letrec" in text and "if" in text


class TestUdf:
    def test_loop_free_is_not_recursive(self):
        ssa = build_ssa(build_cfg(func_of("BEGIN RETURN n; END")))
        udf = build_udf(inline_anf(ssa_to_anf(ssa)))
        assert not udf_is_recursive(udf)

    def test_recursive_udf_shape(self):
        ssa = build_ssa(build_cfg(func_of(SSA_SOURCES[3])))
        optimize_ssa(ssa)
        udf = build_udf(inline_anf(ssa_to_anf(ssa)))
        assert udf_is_recursive(udf)
        assert udf.rec_params[0] == "fn"
        assert udf.star_name == "f__rec"
        assert len(udf.rec_params) == len(udf.rec_param_types)

    def test_fn_variable_cannot_collide_with_dispatch(self, db):
        # A user variable called "fn" is safe: SSA renames it to fn_1 etc.,
        # so the dispatch parameter keeps its slot.
        source = ("CREATE FUNCTION f(n int) RETURNS int AS $$ "
                  "DECLARE fn int = 1; BEGIN WHILE fn < n LOOP "
                  "fn = fn + 1; END LOOP; RETURN fn; END; "
                  "$$ LANGUAGE plpgsql")
        from repro.compiler import compile_plsql
        compiled = compile_plsql(source, db)
        compiled.register(db)
        assert db.query_value("SELECT f(5)") == 5
        assert "fn" in compiled.udf.rec_params  # the dispatch slot itself
