"""Unit tests for AST utilities, type casts, and SQL-text round-trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.dialects import render_expression, render_select
from repro.sql import ast as A
from repro.sql.astutil import (contains_aggregate, contains_window_call,
                               expr_equal, max_param_index,
                               substitute_params, substitute_params_select,
                               transform_expr, walk_expr)
from repro.sql.errors import PlanError, TypeError_
from repro.sql.parser import parse_expression, parse_select
from repro.sql.types import CompositeType, cast_value, normalize_type_name


class TestTypeNames:
    def test_aliases_normalize(self):
        assert normalize_type_name("INTEGER") == "int"
        assert normalize_type_name("bigint") == "int"
        assert normalize_type_name("Double   Precision") == "float"
        assert normalize_type_name("VARCHAR") == "text"
        assert normalize_type_name("BOOLEAN") == "bool"
        assert normalize_type_name("coord") == "coord"


class TestCasts:
    def test_composite_cast_attaches_names(self):
        ctype = CompositeType("pt", ("x", "y"), ("int", "int"))
        from repro.sql.values import Row
        row = cast_value(Row([1, 2]), "pt", ctype)
        assert row.field("x") == 1 and row.type_name == "pt"

    def test_composite_arity_check(self):
        ctype = CompositeType("pt", ("x", "y"), ("int", "int"))
        from repro.sql.values import Row
        with pytest.raises(TypeError_):
            ctype.make_row([1])

    def test_bool_casts(self):
        assert cast_value("yes", "bool") is True
        assert cast_value(0, "bool") is False
        with pytest.raises(TypeError_):
            cast_value("maybe", "bool")

    def test_float_to_int_rounds_half_away(self):
        assert cast_value(0.5, "int") == 1
        assert cast_value(-0.5, "int") == -1
        assert cast_value(2.4, "int") == 2


class TestExprEqual:
    def test_structural_equality(self):
        a = parse_expression("x + 1 * y")
        b = parse_expression("x + 1 * y")
        c = parse_expression("x + 2 * y")
        assert expr_equal(a, b)
        assert not expr_equal(a, c)

    def test_case_insensitive_identifiers(self):
        assert expr_equal(parse_expression("Foo + 1"),
                          parse_expression("foo + 1"))


class TestWalkAndTransform:
    def test_walk_visits_all_nodes(self):
        expr = parse_expression("a + b * coalesce(c, 1)")
        names = {n.parts[0] for n in walk_expr(expr)
                 if isinstance(n, A.ColumnRef)}
        assert names == {"a", "b", "c"}

    def test_transform_replaces_leaves(self):
        expr = parse_expression("a + a * 2")

        def bump(node):
            if isinstance(node, A.ColumnRef):
                return A.Literal(5)
            return None

        out = transform_expr(expr, bump)
        assert render_expression(out) == "(5 + (5 * 2))"

    def test_contains_aggregate_and_window(self):
        assert contains_aggregate(parse_expression("1 + sum(x)"))
        assert not contains_aggregate(parse_expression("sum(x) over ()"))
        assert contains_window_call(parse_expression("sum(x) over ()"))


class TestParamSubstitution:
    def test_substitute_in_expression(self):
        expr = parse_expression("$1 + $2 * $1")
        out = substitute_params(expr, [A.Literal(10), A.Literal(3)])
        assert render_expression(out) == "(10 + (3 * 10))"

    def test_substitute_crosses_subqueries(self):
        stmt = parse_select("SELECT (SELECT $1 + t.x FROM t) FROM u "
                            "WHERE u.y = $2")
        out = substitute_params_select(stmt, [A.Literal(7), A.Literal("z")])
        text = render_select(out)
        assert "$" not in text and "7" in text and "'z'" in text

    def test_out_of_range_param(self):
        with pytest.raises(PlanError):
            substitute_params(parse_expression("$3"), [A.Literal(1)])

    def test_max_param_index(self):
        stmt = parse_select("SELECT $2 FROM t WHERE (SELECT $5) IS NULL")
        assert max_param_index(stmt) == 5
        assert max_param_index(parse_select("SELECT 1")) == 0


EXPRESSION_SAMPLES = [
    "1 + 2 * x",
    "coalesce(a, b, 0) between 1 and f(2, 3)",
    "case when x > 0 then 'pos' else 'neg' end",
    "not (a and b or c)",
    "x in (1, 2, 3) and y like 'a%'",
    "cast(x as double precision) :: int",
    "row(1, x)",
    "(select max(v) from t where t.k = outer_k)",
    "sum(x) over (partition by g order by y desc rows between 1 preceding "
    "and current row)",
    "array[1, 2][x] is not null",
]


class TestRenderRoundTrip:
    @pytest.mark.parametrize("text", EXPRESSION_SAMPLES)
    def test_expression_render_reparse_fixpoint(self, text):
        first = parse_expression(text)
        rendered = render_expression(first)
        second = parse_expression(rendered)
        assert render_expression(second) == rendered

    @pytest.mark.parametrize("text", [
        "SELECT a, b FROM t WHERE a > 1 ORDER BY b DESC LIMIT 3",
        "WITH RECURSIVE r(n) AS (SELECT 1 UNION ALL SELECT n + 1 FROM r "
        "WHERE n < 5) SELECT * FROM r",
        "SELECT g, count(*) FROM t GROUP BY g HAVING count(*) > 1",
        "SELECT * FROM a LEFT JOIN LATERAL (SELECT a.x) AS s(v) ON true",
        "VALUES (1, 'a'), (2, 'b')",
    ])
    def test_select_render_reparse_fixpoint(self, text):
        first = parse_select(text)
        rendered = render_select(first)
        second = parse_select(rendered)
        assert render_select(second) == rendered

    @settings(max_examples=40, deadline=None)
    @given(st.recursive(
        st.one_of(st.integers(-99, 99), st.booleans(), st.none(),
                  st.text(alphabet="abc'", max_size=5)),
        lambda leaf: st.tuples(leaf, leaf), max_leaves=6))
    def test_random_literal_trees_round_trip(self, value):
        from repro.sql import Database
        db = Database()

        def to_expr(v):
            if isinstance(v, tuple):
                return A.RowExpr([to_expr(a) for a in v])
            return A.Literal(v)

        expr = to_expr(value)
        rendered = render_expression(expr)
        reparsed = parse_expression(rendered)
        assert render_expression(reparsed) == rendered
        # and the engine evaluates both to the same value
        assert db.query_value("SELECT " + rendered) == \
            db.query_value("SELECT " + render_expression(reparsed))


class TestBenchHarness:
    def test_render_table_alignment(self):
        from repro.bench.harness import render_table
        text = render_table(["name", "v"], [["a", 1.5], ["bb", 22]], "T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "1.50" in text and "22" in text

    def test_time_query_collects_samples(self, tdb):
        from repro.bench.harness import time_query
        timing = time_query(tdb, "SELECT count(*) FROM t", runs=3, warmup=1)
        assert len(timing.samples) == 3
        assert timing.minimum <= timing.mean <= timing.maximum

    def test_ensure_calls_table(self, db):
        from repro.bench.harness import CALLS_TABLE, ensure_calls_table
        ensure_calls_table(db, 5)
        assert db.query_value(f"SELECT count(*) FROM {CALLS_TABLE}") == 5
        ensure_calls_table(db, 2)
        assert db.query_value(f"SELECT count(*) FROM {CALLS_TABLE}") == 2
