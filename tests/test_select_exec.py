"""Executor semantics: scans, joins, grouping, ordering, set ops, subqueries."""

import pytest

from repro.sql.errors import (ExecutionError, NameResolutionError, PlanError)


class TestBasicSelect:
    def test_scan_and_filter(self, tdb):
        assert tdb.query_all("SELECT x FROM t WHERE x > 2 ORDER BY x") == \
            [(3,), (4,)]

    def test_null_where_filters_out(self, tdb):
        # y = 'a' is NULL for the NULL row -> excluded
        assert tdb.query_all("SELECT x FROM t WHERE y <> 'a' ORDER BY x") == \
            [(2,), (3,)]

    def test_projection_expressions(self, tdb):
        rows = tdb.query_all("SELECT x * 10, upper(y) FROM t WHERE x = 2")
        assert rows == [(20, "B")]

    def test_star_and_qualified_star(self, tdb):
        assert tdb.execute("SELECT * FROM t").columns == ["x", "y"]
        assert tdb.execute("SELECT t.* FROM t").columns == ["x", "y"]

    def test_output_column_names(self, tdb):
        result = tdb.execute("SELECT x AS a, x + 1, sum(x) FROM t GROUP BY x "
                             "ORDER BY 1 LIMIT 1")
        assert result.columns == ["a", "?column?", "sum"]

    def test_table_alias_required_resolution(self, tdb):
        assert tdb.query_all("SELECT u.x FROM t AS u WHERE u.x = 1") == [(1,)]
        with pytest.raises(NameResolutionError):
            tdb.query_all("SELECT t.x FROM t AS u")

    def test_unknown_column(self, tdb):
        with pytest.raises(NameResolutionError):
            tdb.query_all("SELECT nope FROM t")

    def test_unknown_table(self, tdb):
        with pytest.raises(NameResolutionError):
            tdb.query_all("SELECT * FROM missing")

    def test_duplicate_alias_rejected(self, tdb):
        with pytest.raises(PlanError):
            tdb.query_all("SELECT 1 FROM t, t")

    def test_distinct(self, tdb):
        tdb.execute("INSERT INTO t VALUES (1, 'a')")
        assert tdb.query_all("SELECT DISTINCT x FROM t WHERE x = 1") == [(1,)]

    def test_table_less_select(self, db):
        assert db.query_all("SELECT 1, 'two'") == [(1, "two")]
        assert db.query_all("SELECT 1 WHERE false") == []


class TestOrderLimit:
    def test_order_by_column_and_position(self, tdb):
        assert tdb.query_all("SELECT x FROM t ORDER BY x DESC") == \
            [(4,), (3,), (2,), (1,)]
        assert tdb.query_all("SELECT x FROM t ORDER BY 1 DESC LIMIT 2") == \
            [(4,), (3,)]

    def test_order_by_alias(self, tdb):
        rows = tdb.query_all("SELECT -x AS neg FROM t ORDER BY neg")
        assert rows == [(-4,), (-3,), (-2,), (-1,)]

    def test_order_by_expression_not_in_select(self, tdb):
        rows = tdb.query_all("SELECT y FROM t WHERE x < 3 ORDER BY -x")
        assert rows == [("b",), ("a",)]

    def test_order_nulls(self, tdb):
        rows = tdb.query_all("SELECT y FROM t ORDER BY y")
        assert rows[-1] == (None,)  # NULLS LAST default for ASC
        rows = tdb.query_all("SELECT y FROM t ORDER BY y DESC")
        assert rows[0] == (None,)
        rows = tdb.query_all("SELECT y FROM t ORDER BY y NULLS FIRST")
        assert rows[0] == (None,)

    def test_limit_offset(self, tdb):
        assert tdb.query_all("SELECT x FROM t ORDER BY x LIMIT 2 OFFSET 1") \
            == [(2,), (3,)]
        assert tdb.query_all("SELECT x FROM t ORDER BY x LIMIT 0") == []
        assert tdb.query_all("SELECT x FROM t ORDER BY x LIMIT ALL OFFSET 3") \
            == [(4,)]

    def test_limit_param(self, tdb):
        assert len(tdb.query_all("SELECT x FROM t LIMIT $1", [2])) == 2

    def test_negative_limit_rejected(self, tdb):
        with pytest.raises(ExecutionError):
            tdb.query_all("SELECT x FROM t LIMIT -1")

    def test_distinct_order_by_must_be_in_select(self, tdb):
        with pytest.raises(PlanError):
            tdb.query_all("SELECT DISTINCT y FROM t ORDER BY x + 1")


class TestJoins:
    @pytest.fixture()
    def jdb(self, db):
        db.execute("CREATE TABLE a(id int, v text)")
        db.execute("CREATE TABLE b(id int, w text)")
        db.execute("INSERT INTO a VALUES (1, 'a1'), (2, 'a2'), (3, 'a3')")
        db.execute("INSERT INTO b VALUES (2, 'b2'), (3, 'b3'), (3, 'b3x')")
        return db

    def test_inner_join(self, jdb):
        rows = jdb.query_all("SELECT a.id, b.w FROM a JOIN b ON a.id = b.id "
                             "ORDER BY a.id, b.w")
        assert rows == [(2, "b2"), (3, "b3"), (3, "b3x")]

    def test_left_join_null_fill(self, jdb):
        rows = jdb.query_all("SELECT a.id, b.w FROM a LEFT JOIN b "
                             "ON a.id = b.id ORDER BY a.id, b.w")
        assert rows == [(1, None), (2, "b2"), (3, "b3"), (3, "b3x")]

    def test_cross_join_cardinality(self, jdb):
        assert len(jdb.query_all("SELECT 1 FROM a CROSS JOIN b")) == 9
        assert len(jdb.query_all("SELECT 1 FROM a, b")) == 9

    def test_join_condition_three_valued(self, jdb):
        jdb.execute("INSERT INTO a VALUES (NULL, 'an')")
        # NULL id never matches
        rows = jdb.query_all("SELECT count(*) FROM a JOIN b ON a.id = b.id")
        assert rows == [(3,)]

    def test_lateral_references_left(self, jdb):
        rows = jdb.query_all(
            "SELECT a.id, s.double FROM a, "
            "LATERAL (SELECT a.id * 2 AS double) AS s ORDER BY a.id")
        assert rows == [(1, 2), (2, 4), (3, 6)]

    def test_left_join_lateral_empty_right(self, jdb):
        rows = jdb.query_all(
            "SELECT a.id, s.w FROM a LEFT JOIN LATERAL "
            "(SELECT b.w FROM b WHERE b.id = a.id AND b.w LIKE '%x') AS s "
            "ON true ORDER BY a.id")
        assert rows == [(1, None), (2, None), (3, "b3x")]

    def test_nested_join_tree(self, jdb):
        rows = jdb.query_all(
            "SELECT count(*) FROM (a JOIN b ON a.id = b.id) "
            "JOIN a AS a2 ON a2.id = a.id")
        assert rows == [(3,)]

    def test_subquery_in_from(self, jdb):
        rows = jdb.query_all(
            "SELECT q.n FROM (SELECT count(*) AS n FROM a) AS q")
        assert rows == [(3,)]

    def test_row_expansion_extension(self, db):
        rows = db.query_all("SELECT s.a, s.b FROM (SELECT row(1, 'x')) "
                            "AS s(a, b)")
        assert rows == [(1, "x")]

    def test_row_expansion_null(self, db):
        rows = db.query_all(
            "SELECT s.a, s.b FROM (SELECT CAST(NULL AS int)) AS s(a, b)")
        assert rows == [(None, None)]

    def test_row_expansion_arity_mismatch(self, db):
        with pytest.raises(ExecutionError):
            db.query_all("SELECT * FROM (SELECT row(1, 2, 3)) AS s(a, b)")


class TestAggregation:
    def test_plain_aggregates(self, tdb):
        row = tdb.query_all("SELECT count(*), count(y), sum(x), avg(x), "
                            "min(x), max(x) FROM t")[0]
        assert row == (4, 3, 10, 2.5, 1, 4)

    def test_empty_input_aggregates(self, tdb):
        row = tdb.query_all("SELECT count(*), sum(x), min(x) FROM t "
                            "WHERE false")[0]
        assert row == (0, None, None)

    def test_group_by(self, db):
        db.execute("CREATE TABLE s(g text, v int)")
        db.execute("INSERT INTO s VALUES ('a',1),('a',2),('b',3),(NULL,4),"
                   "(NULL,5)")
        rows = db.query_all("SELECT g, sum(v) FROM s GROUP BY g ORDER BY g")
        assert rows == [("a", 3), ("b", 3), (None, 9)]  # NULLs group together

    def test_group_by_expression(self, tdb):
        rows = tdb.query_all("SELECT x % 2, count(*) FROM t GROUP BY x % 2 "
                             "ORDER BY 1")
        assert rows == [(0, 2), (1, 2)]

    def test_having(self, tdb):
        rows = tdb.query_all("SELECT x % 2 AS p, sum(x) FROM t GROUP BY x % 2 "
                             "HAVING sum(x) > 5 ORDER BY p")
        assert rows == [(0, 6)]

    def test_count_distinct(self, tdb):
        tdb.execute("INSERT INTO t VALUES (1, 'dup')")
        assert tdb.query_value("SELECT count(DISTINCT x) FROM t") == 4

    def test_bool_and_or(self, tdb):
        assert tdb.query_value("SELECT bool_and(x > 0) FROM t") is True
        assert tdb.query_value("SELECT bool_or(x > 3) FROM t") is True

    def test_array_and_string_agg(self, tdb):
        assert tdb.query_value(
            "SELECT array_agg(x) FROM (SELECT x FROM t ORDER BY x) AS q") \
            == [1, 2, 3, 4]
        assert tdb.query_value(
            "SELECT string_agg(y, ',') FROM (SELECT y FROM t WHERE y IS NOT "
            "NULL ORDER BY y) AS q") == "a,b,c"

    def test_ungrouped_column_rejected(self, tdb):
        with pytest.raises(NameResolutionError):
            tdb.query_all("SELECT y, sum(x) FROM t GROUP BY x")

    def test_nested_aggregate_rejected(self, tdb):
        with pytest.raises(PlanError):
            tdb.query_all("SELECT sum(count(*)) FROM t")

    def test_having_without_group_by(self, tdb):
        assert tdb.query_all("SELECT sum(x) FROM t HAVING sum(x) > 100") == []

    def test_aggregate_of_expression_over_groups(self, tdb):
        rows = tdb.query_all(
            "SELECT (x % 2) + 10, sum(x * 2) FROM t GROUP BY x % 2 ORDER BY 1")
        assert rows == [(10, 12), (11, 8)]


class TestSetOps:
    def test_union_all_and_union(self, db):
        assert db.query_all("SELECT 1 UNION ALL SELECT 1") == [(1,), (1,)]
        assert db.query_all("SELECT 1 UNION SELECT 1") == [(1,)]

    def test_intersect_except(self, db):
        assert db.query_all("SELECT 1 UNION ALL SELECT 2 INTERSECT SELECT 2") \
            == [(2,)]
        rows = db.query_all(
            "(SELECT 1 UNION ALL SELECT 2) EXCEPT SELECT 2")
        assert rows == [(1,)]

    def test_width_mismatch(self, db):
        with pytest.raises(PlanError):
            db.query_all("SELECT 1 UNION ALL SELECT 1, 2")

    def test_order_by_over_set_op(self, db):
        rows = db.query_all("SELECT 2 AS v UNION ALL SELECT 1 ORDER BY v")
        assert rows == [(1,), (2,)]
        rows = db.query_all("SELECT 2 UNION ALL SELECT 1 ORDER BY 1 DESC")
        assert rows == [(2,), (1,)]

    def test_values_in_from(self, db):
        rows = db.query_all(
            "SELECT v.a + v.b FROM (VALUES (1, 2), (3, 4)) AS v(a, b) "
            "ORDER BY 1")
        assert rows == [(3,), (7,)]


class TestSubqueries:
    def test_scalar_subquery(self, tdb):
        assert tdb.query_value("SELECT (SELECT max(x) FROM t)") == 4

    def test_scalar_subquery_empty_is_null(self, tdb):
        assert tdb.query_value(
            "SELECT (SELECT x FROM t WHERE false)") is None

    def test_scalar_subquery_multirow_errors(self, tdb):
        with pytest.raises(ExecutionError, match="more than one row"):
            tdb.query_value("SELECT (SELECT x FROM t)")

    def test_correlated_scalar_subquery(self, tdb):
        rows = tdb.query_all(
            "SELECT u.x, (SELECT count(*) FROM t WHERE t.x < u.x) "
            "FROM t AS u ORDER BY u.x")
        assert rows == [(1, 0), (2, 1), (3, 2), (4, 3)]

    def test_exists(self, tdb):
        assert tdb.query_value(
            "SELECT EXISTS (SELECT 1 FROM t WHERE x = 3)") is True
        assert tdb.query_value(
            "SELECT EXISTS (SELECT 1 FROM t WHERE x = 99)") is False

    def test_in_subquery(self, tdb):
        assert tdb.query_value("SELECT 3 IN (SELECT x FROM t)") is True
        assert tdb.query_value("SELECT 99 IN (SELECT x FROM t)") is False
        # NULL in the subquery makes a non-match unknown
        tdb.execute("CREATE TABLE n(v int)")
        tdb.execute("INSERT INTO n VALUES (1), (NULL)")
        assert tdb.query_value("SELECT 9 IN (SELECT v FROM n)") is None

    def test_deeply_nested_correlation(self, tdb):
        rows = tdb.query_all(
            "SELECT u.x FROM t AS u WHERE EXISTS ("
            "  SELECT 1 FROM t AS v WHERE v.x = u.x + 1 AND EXISTS ("
            "    SELECT 1 FROM t AS w WHERE w.x = v.x + 1)) ORDER BY u.x")
        assert rows == [(1,), (2,)]


class TestIndexPushdown:
    def test_equality_lookup_results_match_seqscan(self, tdb):
        plan = tdb.explain("SELECT y FROM t WHERE x = $1")
        assert "IndexScan" in plan
        assert tdb.query_all("SELECT y FROM t WHERE x = $1", [2]) == [("b",)]
        assert tdb.query_all("SELECT y FROM t WHERE x = $1", [99]) == []

    def test_null_key_matches_nothing(self, tdb):
        assert tdb.query_all("SELECT y FROM t WHERE x = $1", [None]) == []

    def test_residual_predicate_kept(self, tdb):
        tdb.execute("INSERT INTO t VALUES (2, 'z')")
        rows = tdb.query_all("SELECT y FROM t WHERE x = 2 AND y > 'b'")
        assert rows == [("z",)]

    def test_self_referencing_equality_not_pushed(self, tdb):
        plan = tdb.explain("SELECT y FROM t WHERE x = x")
        assert "IndexScan" not in plan

    def test_index_invalidation_on_dml(self, tdb):
        assert tdb.query_all("SELECT y FROM t WHERE x = 7", []) == []
        tdb.execute("INSERT INTO t VALUES (7, 'new')")
        assert tdb.query_all("SELECT y FROM t WHERE x = 7", []) == [("new",)]
        tdb.execute("DELETE FROM t WHERE x = 7")
        assert tdb.query_all("SELECT y FROM t WHERE x = 7", []) == []
