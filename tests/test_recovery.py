"""Crash recovery: kill a child mid-WAL-write, reopen, check the prefix.

The child (``recovery_child.py``) opens a durable database, creates a
table plus a declared index, then commits transactions of two rows each,
printing ``COMMITTED k`` as each COMMIT returns.  ``REPRO_WAL_FAULT``
makes the WAL layer hard-exit (``os._exit``) while appending its N-th
record — before, on, or after a commit marker depending on N.

The parent reopens the log and checks the recovery contract:

* every acknowledged transaction is fully there (durability),
* at most the single in-flight transaction beyond the acknowledged
  prefix may appear, and only if its commit marker made it to disk —
  and then with *both* rows (atomicity: never a torn half-transaction),
* the declared index was rebuilt by replay and agrees with a forced
  sequential scan.

Record layout, for choosing interesting fault points: CREATE TABLE is
records 1-2 (ddl + commit), CREATE INDEX records 3-4, then transaction
k occupies records ``5+3(k-1) .. 7+3(k-1)`` (ins, ins, commit).
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.sql import Database

CHILD = os.path.join(os.path.dirname(__file__), "recovery_child.py")
SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src")


def run_child(path: str, fault: str = "", faults: str = "",
              checkpoint_after: int = 0) -> list[int]:
    """Run the child under a fault; return the acknowledged ks.

    *fault* uses the legacy ``REPRO_WAL_FAULT=kind:N`` hook; *faults*
    the generalized ``REPRO_FAULTS=point:kind:N`` registry spec.
    """
    env = dict(os.environ)
    env.pop("REPRO_WAL_FAULT", None)
    env.pop("REPRO_FAULTS", None)
    if fault:
        env["REPRO_WAL_FAULT"] = fault
    if faults:
        env["REPRO_FAULTS"] = faults
    if checkpoint_after:
        env["REPRO_CHILD_CHECKPOINT"] = str(checkpoint_after)
    env["PYTHONPATH"] = os.path.abspath(SRC)
    proc = subprocess.run([sys.executable, CHILD, path],
                          capture_output=True, text=True, env=env,
                          timeout=120)
    assert proc.returncode == 1, (
        f"child should die via os._exit(1), got {proc.returncode}: "
        f"{proc.stderr}")
    return [int(line.split()[1]) for line in proc.stdout.splitlines()
            if line.startswith("COMMITTED")]


def check_recovered(path: str, acked: list[int]) -> None:
    db = Database(path=path)
    rows = sorted(db.execute("SELECT a, b FROM t").rows) \
        if db.catalog.has_table("t") else []
    present = sorted({a for a, _ in rows if a < 100})
    # Durability: every acknowledged transaction survived.
    for k in acked:
        assert k in present, f"acked txn {k} lost; recovered {rows}"
    # Prefix: anything extra is exactly the next (in-flight) transaction.
    extra = [k for k in present if k not in acked]
    assert extra in ([], [max(acked) + 1 if acked else 1]), (
        f"recovered non-prefix transactions {extra} (acked {acked})")
    # Atomicity: each recovered transaction has both of its rows.
    for k in present:
        assert (k, k * 10) in rows
        assert (k + 100, k * 10 + 1) in rows
    assert len(rows) == 2 * len(present)
    # Index consistency: if the CREATE INDEX survived, replay rebuilt it
    # and it agrees with a forced sequential scan.
    if "t_b" in db.catalog.indexes:
        query = "SELECT a, b FROM t WHERE b >= 0 ORDER BY b"
        assert "IndexRangeScan" in db.explain(query)
        fast = db.execute(query).rows
        db.planner.enable_rangescan = False
        db.planner.enable_sort_elim = False
        db.clear_plan_cache()
        assert fast == db.execute(query).rows
    db.wal.close()


@pytest.mark.parametrize("fault", [
    "crash:3",    # mid CREATE INDEX commit: DDL prefix only
    "crash:7",    # exactly on txn 1's commit marker: durable, unacked
    "crash:12",   # mid txn 3 (after its 2nd ins, before the marker)
    "torn:5",     # txn 1's first insert record torn in half
    "torn:9",     # txn 2's second insert record torn
    "crash:19",   # on txn 5's commit marker
    "torn:22",    # txn 6's second insert torn
])
def test_kill_and_recover(tmp_path, fault):
    path = str(tmp_path / "crash.wal")
    acked = run_child(path, fault)
    check_recovered(path, acked)


def test_unfaulted_child_then_recover(tmp_path):
    """No fault: all 8 transactions acknowledged and recovered."""
    env = dict(os.environ)
    env.pop("REPRO_WAL_FAULT", None)
    env["PYTHONPATH"] = os.path.abspath(SRC)
    path = str(tmp_path / "clean.wal")
    proc = subprocess.run([sys.executable, CHILD, path],
                          capture_output=True, text=True, env=env,
                          timeout=120)
    assert proc.returncode == 0, proc.stderr
    assert "DONE" in proc.stdout
    db = Database(path=path)
    assert db.execute("SELECT count(a) FROM t").scalar() == 16
    assert db.execute("SELECT sum(b) FROM t WHERE a < 100").scalar() == \
        sum(k * 10 for k in range(1, 9))
    db.wal.close()


# ---------------------------------------------------------------------------
# Crashes inside the checkpoint path (wal.checkpoint.* fault points)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("faults", [
    "wal.checkpoint.start:crash:1",    # before the snapshot scan
    "wal.checkpoint.write:crash:1",    # empty temp file left behind
    "wal.checkpoint.write:crash:5",    # partial temp file left behind
    "wal.checkpoint.fsync:crash:1",    # complete but un-fsynced temp file
    "wal.checkpoint.rename:crash:1",   # complete temp file, old log live
    "wal.checkpoint.reopen:crash:1",   # rename done: snapshot is the log
])
def test_crash_during_checkpoint_recovers(tmp_path, faults):
    """A crash at any step of CHECKPOINT leaves either the complete old
    log or the complete new snapshot — recovery sees every acknowledged
    transaction either way, and a leftover ``.ckpt`` temp file never
    shadows the live log."""
    path = str(tmp_path / "ckpt.wal")
    acked = run_child(path, faults=faults, checkpoint_after=4)
    assert acked == [1, 2, 3, 4]  # died inside the checkpoint, after 4
    check_recovered(path, acked)
    assert not os.path.exists(path + ".ckpt")  # reopen cleaned it up


def test_crash_after_checkpoint_keeps_compacting_log(tmp_path):
    """Checkpoint completes, later append crashes: replay goes through
    the snapshot prefix plus the post-checkpoint suffix."""
    path = str(tmp_path / "after.wal")
    # The fault counts appends, and the snapshot writes bypass _append:
    # DDL is records 1-4, txns 1-5 are 5-19, so 20 is txn 6's first
    # insert — appended to the compacted log the checkpoint left behind.
    acked = run_child(path, fault="crash:20", checkpoint_after=4)
    assert acked == [1, 2, 3, 4, 5]
    check_recovered(path, acked)


def test_checkpointed_child_then_recover(tmp_path):
    """No fault: CHECKPOINT mid-run compacts and all 8 transactions
    survive a reopen (the snapshot is an ordinary replayable prefix)."""
    env = dict(os.environ)
    env.pop("REPRO_WAL_FAULT", None)
    env.pop("REPRO_FAULTS", None)
    env["REPRO_CHILD_CHECKPOINT"] = "4"
    env["PYTHONPATH"] = os.path.abspath(SRC)
    path = str(tmp_path / "ckpt-clean.wal")
    proc = subprocess.run([sys.executable, CHILD, path],
                          capture_output=True, text=True, env=env,
                          timeout=120)
    assert proc.returncode == 0, proc.stderr
    assert "CHECKPOINTED" in proc.stdout
    check_recovered(path, list(range(1, 9)))


def test_double_crash_recovery(tmp_path):
    """Crash, recover, crash again later, recover again: the log keeps
    accumulating and both committed prefixes survive."""
    path = str(tmp_path / "double.wal")
    acked1 = run_child(path, "crash:12")
    # Run 2 replays first, so its own appends start at record 1 again
    # (DDL is IF NOT EXISTS and logs nothing): txn k = records 3k-2..3k.
    acked2 = run_child(path, "crash:20")
    db = Database(path=path)
    rows = db.execute("SELECT a, b FROM t").rows
    firsts = [a for a, _ in rows if a < 100]
    for k in acked1 + acked2:
        assert k in firsts
    assert len(rows) == 2 * len(firsts)
    db.wal.close()
