"""Unit tests for the SQL parser (AST shapes and error reporting)."""

import pytest

from repro.sql import ast as A
from repro.sql.errors import ParseError
from repro.sql.parser import (parse_expression, parse_script, parse_select,
                              parse_statement)


class TestExpressions:
    def test_precedence_arithmetic(self):
        e = parse_expression("1 + 2 * 3")
        assert isinstance(e, A.BinaryOp) and e.op == "+"
        assert isinstance(e.right, A.BinaryOp) and e.right.op == "*"

    def test_precedence_logic(self):
        e = parse_expression("a or b and not c")
        assert e.op == "or"
        assert e.right.op == "and"
        assert isinstance(e.right.right, A.UnaryOp)

    def test_comparison_chain(self):
        e = parse_expression("a <= b")
        assert e.op == "<="
        assert parse_expression("a != b").op == "<>"  # normalised

    def test_unary_minus_folds_literal(self):
        e = parse_expression("-5")
        assert isinstance(e, A.Literal) and e.value == -5

    def test_between(self):
        e = parse_expression("x between 1 and 10")
        assert isinstance(e, A.Between) and not e.negated
        assert parse_expression("x not between 1 and 2").negated

    def test_in_list_and_subquery(self):
        e = parse_expression("x in (1, 2, 3)")
        assert isinstance(e, A.InList) and len(e.items) == 3
        e2 = parse_expression("x not in (select y from t)")
        assert isinstance(e2, A.InSubquery) and e2.negated

    def test_is_null_true_false(self):
        assert isinstance(parse_expression("x is null"), A.IsNull)
        assert parse_expression("x is not null").negated
        e = parse_expression("x is true")
        assert isinstance(e, A.IsBool) and e.value is True

    def test_like(self):
        e = parse_expression("name like 'a%'")
        assert isinstance(e, A.Like) and not e.case_insensitive
        assert parse_expression("name ilike 'a%'").case_insensitive

    def test_case_searched_and_simple(self):
        e = parse_expression("case when a then 1 when b then 2 else 3 end")
        assert isinstance(e, A.CaseExpr) and e.operand is None
        assert len(e.whens) == 2
        e2 = parse_expression("case x when 1 then 'one' end")
        assert e2.operand is not None and e2.else_result is None

    def test_cast_both_syntaxes(self):
        assert isinstance(parse_expression("cast(x as int)"), A.Cast)
        e = parse_expression("x::double precision")
        assert isinstance(e, A.Cast) and e.type_name == "double precision"

    def test_row_and_array(self):
        assert isinstance(parse_expression("row(1, 2)"), A.RowExpr)
        assert isinstance(parse_expression("(1, 2)"), A.RowExpr)
        e = parse_expression("array[1, 2][2]")
        assert isinstance(e, A.ArrayIndex)

    def test_column_path(self):
        e = parse_expression("a.b.c")
        assert isinstance(e, A.ColumnRef) and e.parts == ("a", "b", "c")

    def test_field_access_on_expression(self):
        e = parse_expression("(row(1,2)::coord).x")
        assert isinstance(e, A.FieldAccess)

    def test_function_calls(self):
        e = parse_expression("count(*)")
        assert isinstance(e, A.FuncCall) and e.star
        e2 = parse_expression("count(distinct x)")
        assert e2.distinct
        e3 = parse_expression("coalesce(a, b, 0)")
        assert len(e3.args) == 3

    def test_window_over_inline_and_named(self):
        e = parse_expression("sum(x) over (partition by g order by y desc)")
        assert isinstance(e.window, A.WindowSpec)
        assert e.window.order_by[0].descending
        e2 = parse_expression("sum(x) over w")
        assert e2.window == "w"

    def test_frame_with_exclusion(self):
        e = parse_expression(
            "sum(x) over (order by y rows unbounded preceding "
            "exclude current row)")
        frame = e.window.frame
        assert frame.mode == "rows"
        assert frame.start.kind == "unbounded_preceding"
        assert frame.exclusion == "current row"

    def test_frame_between(self):
        e = parse_expression(
            "sum(x) over (order by y rows between 1 preceding and 2 following)")
        frame = e.window.frame
        assert frame.start.kind == "preceding"
        assert frame.end.kind == "following"

    def test_exists_and_scalar_subquery(self):
        assert isinstance(parse_expression("exists (select 1)"), A.Exists)
        assert isinstance(parse_expression("(select 1)"), A.ScalarSubquery)

    def test_params(self):
        e = parse_expression("$1 + $2")
        assert isinstance(e.left, A.Param) and e.left.index == 1

    def test_is_distinct_from_desugars(self):
        e = parse_expression("a is distinct from b")
        assert isinstance(e, A.UnaryOp) and e.op == "not"


class TestSelect:
    def test_minimal(self):
        s = parse_select("SELECT 1")
        assert isinstance(s.body, A.SelectCore)
        assert s.body.from_clause is None

    def test_full_clauses(self):
        s = parse_select("""
            SELECT DISTINCT g, sum(x) AS total
            FROM t
            WHERE x > 0
            GROUP BY g
            HAVING sum(x) > 10
            ORDER BY total DESC NULLS LAST
            LIMIT 5 OFFSET 2""")
        core = s.body
        assert core.distinct and core.where is not None
        assert len(core.group_by) == 1 and core.having is not None
        assert s.order_by[0].descending and s.order_by[0].nulls_first is False
        assert isinstance(s.limit, A.Literal)

    def test_join_varieties(self):
        s = parse_select("SELECT * FROM a JOIN b ON a.x = b.x "
                         "LEFT JOIN c ON b.y = c.y CROSS JOIN d")
        join = s.body.from_clause
        assert isinstance(join, A.Join) and join.kind == "cross"
        assert join.left.kind == "left"
        assert join.left.left.kind == "inner"

    def test_comma_join_is_cross(self):
        s = parse_select("SELECT * FROM a, b")
        assert s.body.from_clause.kind == "cross"

    def test_lateral_subquery(self):
        s = parse_select("SELECT * FROM t, LATERAL (SELECT t.x) AS s(v)")
        right = s.body.from_clause.right
        assert isinstance(right, A.SubqueryRef) and right.lateral
        assert right.column_aliases == ["v"]

    def test_lateral_on_table_rejected(self):
        with pytest.raises(ParseError):
            parse_select("SELECT * FROM LATERAL t")

    def test_named_windows(self):
        s = parse_select("SELECT sum(x) OVER w FROM t "
                         "WINDOW w AS (ORDER BY x), "
                         "v AS (w ROWS UNBOUNDED PRECEDING)")
        assert set(s.body.windows) == {"w", "v"}
        assert s.body.windows["v"].ref_name == "w"

    def test_set_operations(self):
        s = parse_select("SELECT 1 UNION ALL SELECT 2 UNION SELECT 3")
        assert isinstance(s.body, A.SetOp) and s.body.op == "union"
        assert s.body.left.op == "union_all"

    def test_values_body(self):
        s = parse_select("VALUES (1, 'a'), (2, 'b')")
        assert isinstance(s.body, A.ValuesClause)
        assert len(s.body.rows) == 2

    def test_with_recursive(self):
        s = parse_select("WITH RECURSIVE r(n) AS (SELECT 1 UNION ALL "
                         "SELECT n+1 FROM r) SELECT * FROM r")
        wc = s.with_clause
        assert wc.recursive and not wc.iterate
        assert wc.ctes[0].column_names == ["n"]

    def test_with_iterate(self):
        s = parse_select("WITH ITERATE r(n) AS (SELECT 1 UNION ALL "
                         "SELECT n+1 FROM r) SELECT * FROM r")
        assert s.with_clause.iterate and s.with_clause.recursive

    def test_qualified_star(self):
        s = parse_select("SELECT t.*, x FROM t")
        assert isinstance(s.body.items[0], A.Star)
        assert s.body.items[0].table == "t"

    def test_aliases_without_as(self):
        s = parse_select("SELECT x total FROM t u")
        assert s.body.items[0].alias == "total"
        assert s.body.from_clause.alias == "u"

    def test_parenthesised_select_in_union(self):
        s = parse_select("(SELECT 1) UNION ALL (SELECT 2)")
        assert isinstance(s.body, A.SetOp)


class TestStatements:
    def test_create_table(self):
        s = parse_statement("CREATE TABLE IF NOT EXISTS t("
                            "id int PRIMARY KEY, name varchar(10) NOT NULL)")
        assert isinstance(s, A.CreateTable) and s.if_not_exists
        assert s.columns[1].type_name == "varchar"

    def test_create_type(self):
        s = parse_statement("CREATE TYPE coord AS (x int, y int)")
        assert isinstance(s, A.CreateType) and len(s.fields) == 2

    def test_create_function(self):
        s = parse_statement(
            "CREATE OR REPLACE FUNCTION f(a int, b text) RETURNS int "
            "AS $$ BEGIN RETURN a; END; $$ LANGUAGE plpgsql")
        assert isinstance(s, A.CreateFunction) and s.replace
        assert s.language == "plpgsql" and len(s.params) == 2

    def test_create_function_language_first(self):
        s = parse_statement("CREATE FUNCTION f() RETURNS int "
                            "LANGUAGE SQL AS 'SELECT 1'")
        assert s.language == "sql"

    def test_insert_values_and_select(self):
        s = parse_statement("INSERT INTO t(x, y) VALUES (1, 'a')")
        assert isinstance(s, A.Insert) and s.columns == ["x", "y"]
        s2 = parse_statement("INSERT INTO t SELECT * FROM u")
        assert s2.columns is None

    def test_update_delete(self):
        s = parse_statement("UPDATE t SET x = x + 1, y = 'z' WHERE x > 0")
        assert isinstance(s, A.Update) and len(s.assignments) == 2
        s2 = parse_statement("DELETE FROM t WHERE x = 1")
        assert isinstance(s2, A.Delete)

    def test_drop(self):
        assert isinstance(parse_statement("DROP TABLE IF EXISTS t"), A.DropTable)
        assert isinstance(parse_statement("DROP FUNCTION f"), A.DropFunction)

    def test_script(self):
        statements = parse_script("SELECT 1; SELECT 2;; SELECT 3")
        assert len(statements) == 3

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError, match="trailing"):
            parse_statement("SELECT 1 SELECT 2")

    def test_empty_case_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("case end")

    def test_missing_from_alias_ok_for_tables(self):
        s = parse_select("SELECT * FROM (SELECT 1) AS q")
        assert s.body.from_clause.alias == "q"
