"""Expression evaluation semantics, end to end through the engine."""

import pytest

from repro.sql.errors import ExecutionError, TypeError_


def val(db, expr, params=()):
    return db.query_value(f"SELECT {expr}", params)


class TestArithmetic:
    def test_basics(self, db):
        assert val(db, "1 + 2 * 3") == 7
        assert val(db, "(1 + 2) * 3") == 9
        assert val(db, "10 - 4 - 3") == 3
        assert val(db, "2.5 * 4") == 10.0

    def test_integer_division_truncates_toward_zero(self, db):
        assert val(db, "7 / 2") == 3
        assert val(db, "-7 / 2") == -3
        assert val(db, "7 / 2.0") == 3.5

    def test_modulo_sign_follows_dividend(self, db):
        assert val(db, "7 % 3") == 1
        assert val(db, "-7 % 3") == -1

    def test_division_by_zero(self, db):
        with pytest.raises(ExecutionError, match="division by zero"):
            val(db, "1 / 0")
        with pytest.raises(ExecutionError, match="division by zero"):
            val(db, "1 % 0")

    def test_null_propagation(self, db):
        assert val(db, "1 + NULL") is None
        assert val(db, "NULL * 0") is None
        assert val(db, "-CAST(NULL AS int)") is None

    def test_type_errors(self, db):
        with pytest.raises(TypeError_):
            val(db, "1 + 'a'")
        with pytest.raises(TypeError_):
            val(db, "true + 1")


class TestComparisonAndLogic:
    def test_comparisons(self, db):
        assert val(db, "1 < 2") is True
        assert val(db, "'a' >= 'b'") is False
        assert val(db, "NULL = NULL") is None

    def test_short_circuit_and(self, db):
        # false AND <error> must not evaluate the error side
        assert val(db, "false AND 1/0 = 1") is False

    def test_short_circuit_or(self, db):
        assert val(db, "true OR 1/0 = 1") is True

    def test_null_logic(self, db):
        assert val(db, "NULL AND false") is False
        assert val(db, "NULL OR true") is True
        assert val(db, "NULL AND true") is None
        assert val(db, "NOT CAST(NULL AS bool)") is None

    def test_is_predicates(self, db):
        assert val(db, "NULL IS NULL") is True
        assert val(db, "1 IS NOT NULL") is True
        assert val(db, "CAST(NULL AS bool) IS TRUE") is False
        assert val(db, "false IS NOT TRUE") is True

    def test_is_distinct_from(self, db):
        assert val(db, "NULL IS DISTINCT FROM NULL") is False
        assert val(db, "1 IS DISTINCT FROM NULL") is True
        assert val(db, "1 IS NOT DISTINCT FROM 1") is True

    def test_between(self, db):
        assert val(db, "5 BETWEEN 1 AND 10") is True
        assert val(db, "0 NOT BETWEEN 1 AND 10") is True
        assert val(db, "NULL BETWEEN 1 AND 2") is None
        # partial knowledge: 5 >= 1 is true but high bound is NULL
        assert val(db, "5 BETWEEN 1 AND NULL") is None
        assert val(db, "0 BETWEEN 1 AND NULL") is False

    def test_in_list_three_valued(self, db):
        assert val(db, "2 IN (1, 2, 3)") is True
        assert val(db, "5 IN (1, 2, NULL)") is None
        assert val(db, "5 NOT IN (1, 2)") is True
        assert val(db, "5 NOT IN (1, NULL)") is None


class TestStringsAndPatterns:
    def test_concat(self, db):
        assert val(db, "'a' || 'b'") == "ab"
        assert val(db, "'n=' || 5") == "n=5"
        assert val(db, "'x' || NULL") is None

    def test_like(self, db):
        assert val(db, "'hello' LIKE 'h%'") is True
        assert val(db, "'hello' LIKE '_ello'") is True
        assert val(db, "'hello' LIKE 'H%'") is False
        assert val(db, "'hello' ILIKE 'H%'") is True
        assert val(db, "'a.c' LIKE 'a.c'") is True
        assert val(db, "'abc' LIKE 'a.c'") is False  # dot is literal
        assert val(db, "'a%b' LIKE 'a\\%b'") is True

    def test_string_functions(self, db):
        assert val(db, "length('abc')") == 3
        assert val(db, "substr('hello', 2, 3)") == "ell"
        assert val(db, "substr('hello', 2)") == "ello"
        assert val(db, "substr('hello', 0, 3)") == "he"  # 1-based tolerance
        assert val(db, "left('hello', 2)") == "he"
        assert val(db, "right('hello', 2)") == "lo"
        assert val(db, "upper('aB')") == "AB"
        assert val(db, "replace('aaa', 'a', 'b')") == "bbb"
        assert val(db, "repeat('ab', 3)") == "ababab"
        assert val(db, "reverse('abc')") == "cba"
        assert val(db, "strpos('hello', 'll')") == 3
        assert val(db, "trim('  x  ')") == "x"

    def test_concat_function_ignores_nulls(self, db):
        assert val(db, "concat('a', NULL, 'b', 1)") == "ab1"


class TestConditionals:
    def test_case_searched(self, db):
        assert val(db, "CASE WHEN 1 > 2 THEN 'a' WHEN 2 > 1 THEN 'b' END") == "b"
        assert val(db, "CASE WHEN false THEN 1 END") is None

    def test_case_simple_null_never_matches(self, db):
        assert val(db, "CASE CAST(NULL AS int) WHEN NULL THEN 'x' "
                       "ELSE 'no' END") == "no"

    def test_case_lazy(self, db):
        assert val(db, "CASE WHEN true THEN 1 ELSE 1/0 END") == 1

    def test_coalesce_lazy(self, db):
        assert val(db, "coalesce(1, 1/0)") == 1
        assert val(db, "coalesce(NULL, NULL, 3)") == 3
        assert val(db, "coalesce(CAST(NULL AS int))") is None

    def test_nullif_greatest_least(self, db):
        assert val(db, "nullif(1, 1)") is None
        assert val(db, "nullif(1, 2)") == 1
        assert val(db, "greatest(1, NULL, 3)") == 3
        assert val(db, "least(5, 2, NULL)") == 2


class TestMathFunctions:
    def test_numeric_builtins(self, db):
        assert val(db, "sign(-5)") == -1
        assert val(db, "sign(0)") == 0
        assert val(db, "abs(-3.5)") == 3.5
        assert val(db, "floor(1.7)") == 1
        assert val(db, "ceil(1.2)") == 2
        assert val(db, "round(2.5)") == 3  # half away from zero
        assert val(db, "round(-2.5)") == -3
        assert val(db, "round(2.345, 2)") == 2.35
        assert val(db, "trunc(1.9)") == 1
        assert val(db, "power(2, 10)") == 1024.0
        assert val(db, "mod(9, 4)") == 1
        assert val(db, "sqrt(16)") == 4.0

    def test_sqrt_negative_errors(self, db):
        with pytest.raises(ExecutionError):
            val(db, "sqrt(-1)")

    def test_random_seeded(self, db):
        db.reseed(99)
        first = val(db, "random()")
        db.reseed(99)
        assert val(db, "random()") == first
        assert 0.0 <= first < 1.0


class TestArraysAndRows:
    def test_array_literal_and_index(self, db):
        assert val(db, "(array[10, 20, 30])[2]") == 20
        assert val(db, "(array[1])[5]") is None  # out of range -> NULL
        assert val(db, "(array[1])[0]") is None

    def test_array_functions(self, db):
        assert val(db, "cardinality(array[1,2,3])") == 3
        assert val(db, "array_length(array[1,2], 1)") == 2
        assert val(db, "array_append(array[1], 2)") == [1, 2]
        assert val(db, "string_to_array('a,b', ',')") == ["a", "b"]
        assert val(db, "array_to_string(array['a','b'], '-')") == "a-b"

    def test_array_concat(self, db):
        assert val(db, "array[1] || array[2, 3]") == [1, 2, 3]
        assert val(db, "array[1] || 2") == [1, 2]

    def test_row_construction_and_field(self, db):
        db.execute("CREATE TYPE pt AS (x int, y int)")
        assert val(db, "(row(3, 4)::pt).y") == 4
        assert val(db, "row(1, 2) = row(1, 2)") is True
        assert val(db, "(1, 2) < (1, 3)") is True

    def test_cast_rules(self, db):
        assert val(db, "CAST('42' AS int)") == 42
        assert val(db, "CAST(3.7 AS int)") == 4  # rounds
        assert val(db, "CAST(-3.5 AS int)") == -4
        assert val(db, "CAST(1 AS text)") == "1"
        assert val(db, "CAST('t' AS bool)") is True
        assert val(db, "CAST('off' AS bool)") is False
        assert val(db, "CAST(NULL AS int)") is None
        with pytest.raises(TypeError_):
            val(db, "CAST('nope' AS int)")


class TestParams:
    def test_positional_params(self, db):
        assert db.query_value("SELECT $1 + $2", [3, 4]) == 7
        assert db.query_value("SELECT $2", ["a", "b"]) == "b"

    def test_missing_param_errors(self, db):
        with pytest.raises(ExecutionError, match="parameter"):
            db.query_value("SELECT $3", [1])
