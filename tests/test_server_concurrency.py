"""Concurrent wire-session stress suite.

Many clients hammer one :class:`repro.server.ServerThread` at once and
the tests assert the properties the server's threading model promises:

* point queries from N concurrent sessions all answer correctly and the
  ``SERVER_QUERIES`` profiler counter is *exactly* N x M afterwards (a
  locking regression test — a torn ``counts[k] += 1`` undercounts),
* interleaved explicit transactions keep snapshot isolation across the
  wire: a concurrent reader never observes a half-applied transfer,
* write-write conflicts surface as proper ErrorResponses with SQLSTATE
  40001 and leave the connection usable,
* pool admission control rejects over-limit startups with 53300 and
  frees the slot when a connection leaves,
* idle sessions are reaped with 57P05 while active ones are not,
* the profiler's bump lock and the seq-scan visibility cache hold up
  under thread pressure (the PR's storage thread-safety audit pins both
  to ``Database._exec_lock`` — see the module docstring of
  ``repro.sql.storage``).

The suite uses the production :class:`~repro.server.client.WireClient`
(byte-level conformance lives in ``test_server_protocol.py``; here the
client is a means, not the subject).
"""

from __future__ import annotations

import random
import sys
import threading
import time

import pytest

from repro.server import ServerError, ServerThread, connect
from repro.sql import Database
from repro.sql.profiler import (Profiler, SERVER_QUERIES, SERVER_REJECTED)
from wireclient import RawWireClient, decode_fields

N_ACCOUNTS = 8
INITIAL_BALANCE = 100


@pytest.fixture()
def bank():
    """A fresh server over an ``accounts`` table per test."""
    db = Database(seed=0)
    db.execute("CREATE TABLE accounts(id int, val int)")
    db.execute("CREATE INDEX accounts_id ON accounts(id)")
    for i in range(N_ACCOUNTS):
        db.execute(f"INSERT INTO accounts VALUES ({i}, {INITIAL_BALANCE})")
    with ServerThread(db, workers=4) as address:
        yield db, address


def run_threads(workers):
    """Start, join, and re-raise the first worker exception."""
    errors = []

    def wrap(fn):
        def runner():
            try:
                fn()
            except BaseException as exc:  # noqa: BLE001 — reported below
                errors.append(exc)
        return runner

    threads = [threading.Thread(target=wrap(fn)) for fn in workers]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
        assert not t.is_alive(), "worker thread wedged"
    if errors:
        raise errors[0]


# ---------------------------------------------------------------------------
# Point-query storm + counter exactness
# ---------------------------------------------------------------------------

class TestPointQueryStorm:
    N_THREADS = 8
    QUERIES_EACH = 25

    def test_concurrent_point_queries(self, bank):
        db, address = bank
        before = db.profiler.counts[SERVER_QUERIES]

        def worker(tid):
            def run():
                with connect(*address) as client:
                    client.query(
                        "PREPARE pt(int) AS "
                        "SELECT val FROM accounts WHERE id = $1")
                    for i in range(self.QUERIES_EACH):
                        rows = client.query_rows(
                            f"EXECUTE pt({(tid + i) % N_ACCOUNTS})")
                        assert rows == [(str(INITIAL_BALANCE),)]
            return run

        run_threads([worker(t) for t in range(self.N_THREADS)])
        # Exact accounting: one PREPARE + QUERIES_EACH executes per
        # thread.  A non-atomic counter bump loses increments here.
        expected = self.N_THREADS * (1 + self.QUERIES_EACH)
        assert db.profiler.counts[SERVER_QUERIES] - before == expected


# ---------------------------------------------------------------------------
# Interleaved transactions: isolation + conflicts over the wire
# ---------------------------------------------------------------------------

class TestInterleavedTransactions:
    N_WORKERS = 4
    TRANSFERS_EACH = 10

    def test_transfers_preserve_invariant_under_conflicts(self, bank):
        """Snapshot isolation across the wire: concurrent money transfers
        retried through 40001 conflicts never tear the total, and a
        concurrent reader session never sees a half-applied transfer."""
        db, address = bank
        total = N_ACCOUNTS * INITIAL_BALANCE
        committed = []
        stop_readers = threading.Event()

        def transfer_worker(tid):
            rng = random.Random(tid)

            def run():
                # query_retry owns the 40001-backoff-ROLLBACK loop the
                # seed hand-rolled here; anything but a serialization
                # conflict still surfaces (and fails the test).
                with connect(*address) as client:
                    for _ in range(self.TRANSFERS_EACH):
                        src, dst = rng.sample(range(N_ACCOUNTS), 2)
                        client.query_retry(
                            f"BEGIN; "
                            f"UPDATE accounts SET val = val - 1 "
                            f"WHERE id = {src}; "
                            f"UPDATE accounts SET val = val + 1 "
                            f"WHERE id = {dst}; "
                            f"COMMIT", attempts=50)
                    committed.append(self.TRANSFERS_EACH)
            return run

        def reader():
            with connect(*address) as client:
                while not stop_readers.is_set():
                    observed = int(client.query_rows(
                        "SELECT sum(val) FROM accounts")[0][0])
                    assert observed == total, \
                        f"reader saw torn total {observed}"

        reader_thread = threading.Thread(target=reader)
        reader_thread.start()
        try:
            run_threads([transfer_worker(t)
                         for t in range(self.N_WORKERS)])
        finally:
            stop_readers.set()
            reader_thread.join(timeout=30)
        assert committed == [self.TRANSFERS_EACH] * self.N_WORKERS
        final = int(db.execute("SELECT sum(val) FROM accounts").scalar())
        assert final == total

    def test_conflict_is_a_proper_error_response(self, bank):
        """Deterministic first-writer-wins over two wire sessions."""
        _, address = bank
        with connect(*address) as c1, connect(*address) as c2:
            c1.query("BEGIN")
            c1.query("UPDATE accounts SET val = 111 WHERE id = 0")
            c2.query("BEGIN")
            with pytest.raises(ServerError) as info:
                c2.query("UPDATE accounts SET val = 222 WHERE id = 0")
            assert info.value.sqlstate == "40001"
            assert info.value.severity == "ERROR"  # not connection-fatal
            # The loser's block is still open; it can roll back and retry.
            assert c2.transaction_status == b"T"
            c2.query("ROLLBACK")
            c1.query("COMMIT")
            assert c2.query_rows(
                "SELECT val FROM accounts WHERE id = 0") == [("111",)]

    def test_open_transaction_does_not_leak_across_sessions(self, bank):
        _, address = bank
        with connect(*address) as writer, connect(*address) as reader:
            writer.query("BEGIN")
            writer.query("UPDATE accounts SET val = 0 WHERE id = 3")
            assert reader.query_rows(
                "SELECT val FROM accounts WHERE id = 3") == \
                [(str(INITIAL_BALANCE),)]
            # A reader snapshot opened before the commit stays put.
            reader.query("BEGIN")
            reader.query_rows("SELECT val FROM accounts WHERE id = 3")
            writer.query("COMMIT")
            assert reader.query_rows(
                "SELECT val FROM accounts WHERE id = 3") == \
                [(str(INITIAL_BALANCE),)]
            reader.query("COMMIT")
            assert reader.query_rows(
                "SELECT val FROM accounts WHERE id = 3") == [("0",)]


# ---------------------------------------------------------------------------
# Pool admission control
# ---------------------------------------------------------------------------

class TestAdmissionControl:
    def test_over_limit_startup_rejected_with_53300(self):
        db = Database(seed=0)
        with ServerThread(db, max_connections=2) as address:
            rejected_before = db.profiler.counts[SERVER_REJECTED]
            with connect(*address) as c1, connect(*address) as c2:
                assert c1.query_rows("SELECT 1") == [("1",)]
                with pytest.raises(ServerError) as info:
                    connect(*address)
                assert info.value.sqlstate == "53300"
                assert info.value.severity == "FATAL"
                assert db.profiler.counts[SERVER_REJECTED] == \
                    rejected_before + 1
                # c2 is unaffected by the rejection next door.
                assert c2.query_rows("SELECT 2") == [("2",)]

    def test_slot_is_released_on_disconnect(self):
        db = Database(seed=0)
        with ServerThread(db, max_connections=1) as address:
            connect(*address).close()
            # The release happens on the server loop after the client
            # socket closes; admission may trail by a beat.
            deadline = time.monotonic() + 5
            while True:
                try:
                    client = connect(*address)
                    break
                except ServerError as exc:
                    assert exc.sqlstate == "53300"
                    assert time.monotonic() < deadline, \
                        "slot never released"
                    time.sleep(0.02)
            with client:
                assert client.query_rows("SELECT 1") == [("1",)]


# ---------------------------------------------------------------------------
# Idle-timeout reaping
# ---------------------------------------------------------------------------

class TestIdleTimeout:
    def test_idle_session_reaped_with_57p05(self):
        db = Database(seed=0)
        with ServerThread(db, idle_timeout=0.3) as address:
            c = RawWireClient(*address)
            c.handshake()
            type_byte, payload = c.read_message()  # blocks until reaped
            assert type_byte == b"E"
            fields = decode_fields(payload)
            assert fields["S"] == "FATAL"
            assert fields["C"] == "57P05"
            assert c.eof()

    def test_active_session_is_not_reaped(self):
        db = Database(seed=0)
        with ServerThread(db, idle_timeout=0.4) as address:
            with connect(*address) as client:
                # Stay active well past several timeout windows.
                deadline = time.monotonic() + 1.2
                while time.monotonic() < deadline:
                    assert client.query_rows("SELECT 1") == [("1",)]
                    time.sleep(0.1)

    def test_inflight_query_is_not_reaped(self):
        """A session is busy, not idle, while its query grinds on a
        worker — several timeout windows may pass with no bytes moving
        on the socket, and the reaper must count that as activity."""
        db = Database(seed=0)
        with ServerThread(db, idle_timeout=0.25) as address:
            with connect(*address) as client:
                rows = client.query_rows(
                    "WITH RECURSIVE r(n) AS (SELECT 1 UNION ALL "
                    "SELECT n + 1 FROM r WHERE n < 100000) "
                    "SELECT count(*) FROM r")  # ~1s: 4x the idle window
                assert rows == [("100000",)]
                # ...and the connection is still alive afterwards.
                assert client.query_rows("SELECT 1") == [("1",)]


# ---------------------------------------------------------------------------
# Locking regression tests (profiler counters, visibility cache)
# ---------------------------------------------------------------------------

class TestLockingRegressions:
    def test_profiler_bump_is_atomic_under_threads(self):
        """8 threads x 10k bumps must count exactly — ``counts[k] += 1``
        is a read-modify-write and loses increments without the lock."""
        profiler = Profiler()
        n_threads, n_bumps = 8, 10_000
        old_interval = sys.getswitchinterval()
        sys.setswitchinterval(1e-5)  # force frequent preemption
        try:
            run_threads([
                lambda: [profiler.bump(SERVER_QUERIES)
                         for _ in range(n_bumps)]
            ] * n_threads)
        finally:
            sys.setswitchinterval(old_interval)
        assert profiler.counts[SERVER_QUERIES] == n_threads * n_bumps

    def test_seq_scan_visibility_cache_under_concurrent_sessions(self):
        """Readers sharing the per-table visible-rows cache while a
        writer invalidates it: every observed count is a committed
        state, and the cache never crashes or goes stale."""
        db = Database(seed=0)
        db.execute("CREATE TABLE grow(x int)")
        n_rows = 60
        with ServerThread(db, workers=4) as address:
            stop = threading.Event()
            observed = []

            def reader():
                with connect(*address) as client:
                    while not stop.is_set():
                        observed.append(int(client.query_rows(
                            "SELECT count(*) FROM grow")[0][0]))

            def writer():
                try:
                    with connect(*address) as client:
                        for i in range(n_rows):
                            client.query(f"INSERT INTO grow VALUES ({i})")
                finally:
                    stop.set()

            run_threads([reader, reader, writer])
            assert observed, "readers never got a turn"
            assert all(0 <= n <= n_rows for n in observed)
            assert db.execute("SELECT count(*) FROM grow").scalar() == n_rows
