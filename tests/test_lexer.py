"""Unit tests for the shared SQL/PL-SQL lexer."""

import pytest

from repro.sql.errors import ParseError
from repro.sql.lexer import (EOF, IDENT, NUMBER, OP, PARAM, QIDENT, STRING,
                             TokenStream, tokenize)


def kinds(text):
    return [(t.type, t.value) for t in tokenize(text)[:-1]]


class TestBasicTokens:
    def test_identifiers_fold_lower(self):
        assert kinds("SELECT Foo _bar") == [(IDENT, "select"), (IDENT, "foo"),
                                            (IDENT, "_bar")]

    def test_quoted_identifier_preserves_case(self):
        assert kinds('"Call?" "a""b"') == [(QIDENT, "Call?"), (QIDENT, 'a"b')]

    def test_integers_and_floats(self):
        assert kinds("1 3.14 .5 1e3 2E-2") == [
            (NUMBER, 1), (NUMBER, 3.14), (NUMBER, 0.5),
            (NUMBER, 1000.0), (NUMBER, 0.02)]

    def test_range_does_not_eat_dots(self):
        # crucial for PL/pgSQL:  FOR i IN 1..n
        assert kinds("1..5") == [(NUMBER, 1), (OP, ".."), (NUMBER, 5)]

    def test_strings_with_escapes(self):
        assert kinds("'it''s'") == [(STRING, "it's")]
        assert kinds("''") == [(STRING, "")]

    def test_dollar_quoted_string(self):
        assert kinds("$$ BEGIN x; END $$") == [(STRING, " BEGIN x; END ")]

    def test_tagged_dollar_quote(self):
        assert kinds("$body$ SELECT '$$' $body$") == [(STRING, " SELECT '$$' ")]

    def test_positional_params(self):
        assert kinds("$1 $23") == [(PARAM, 1), (PARAM, 23)]

    def test_operators_maximal_munch(self):
        assert [v for _, v in kinds("<= >= <> != :: := .. ||")] == [
            "<=", ">=", "<>", "!=", "::", ":=", "..", "||"]

    def test_line_comment(self):
        assert kinds("1 -- comment\n2") == [(NUMBER, 1), (NUMBER, 2)]

    def test_block_comment_nested(self):
        assert kinds("1 /* a /* b */ c */ 2") == [(NUMBER, 1), (NUMBER, 2)]

    def test_eof_token(self):
        assert tokenize("")[-1].type == EOF


class TestErrors:
    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            tokenize("'abc")

    def test_unterminated_quoted_ident(self):
        with pytest.raises(ParseError):
            tokenize('"abc')

    def test_unterminated_block_comment(self):
        with pytest.raises(ParseError):
            tokenize("/* never closed")

    def test_unterminated_dollar_quote(self):
        with pytest.raises(ParseError):
            tokenize("$$ never closed")

    def test_unknown_character(self):
        with pytest.raises(ParseError):
            tokenize("a ~ b")

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as info:
            tokenize("ok\n  'oops")
        assert info.value.line == 2


class TestTokenStream:
    def test_peek_and_advance(self):
        ts = TokenStream.from_text("a b")
        assert ts.peek().value == "a"
        assert ts.peek(1).value == "b"
        assert ts.advance().value == "a"
        assert ts.advance().value == "b"
        assert ts.at_end()

    def test_accept_and_expect(self):
        ts = TokenStream.from_text("select , from")
        assert ts.accept_keyword("select")
        assert ts.accept_keyword("where") is None
        ts.expect_op(",")
        ts.expect_keyword("from")

    def test_expect_failure_message(self):
        ts = TokenStream.from_text("select")
        with pytest.raises(ParseError, match="expected FROM"):
            ts.expect_keyword("from")

    def test_save_restore(self):
        ts = TokenStream.from_text("a b c")
        mark = ts.save()
        ts.advance()
        ts.advance()
        ts.restore(mark)
        assert ts.peek().value == "a"

    def test_expect_ident_accepts_quoted(self):
        ts = TokenStream.from_text('"Weird Name"')
        assert ts.expect_ident() == "Weird Name"
