"""End-to-end differential tests: interpreted PL/pgSQL vs compiled SQL.

Every function here is registered both ways and must agree on every call —
the core correctness claim of the whole reproduction.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import compile_and_run
from repro.compiler import compile_plsql
from repro.sql.errors import CompileError


class TestControlFlowZoo:
    """'any control flow is acceptable' — exercise the whole zoo."""

    def test_if_chain(self, db):
        compile_and_run(db, """
            CREATE FUNCTION grade(score int) RETURNS text AS $$
            BEGIN
              IF score >= 90 THEN RETURN 'A';
              ELSIF score >= 80 THEN RETURN 'B';
              ELSIF score >= 70 THEN RETURN 'C';
              ELSE RETURN 'F';
              END IF;
            END; $$ LANGUAGE plpgsql""",
            [("SELECT {f}($1)", [s]) for s in (95, 85, 75, 20)])

    def test_while_accumulator(self, db):
        compile_and_run(db, """
            CREATE FUNCTION collatz(n int) RETURNS int AS $$
            DECLARE steps int = 0;
            BEGIN
              WHILE n <> 1 LOOP
                IF n % 2 = 0 THEN n = n / 2;
                ELSE n = 3 * n + 1;
                END IF;
                steps = steps + 1;
              END LOOP;
              RETURN steps;
            END; $$ LANGUAGE plpgsql""",
            [("SELECT {f}($1)", [n]) for n in (1, 6, 27)])

    def test_nested_loops_with_labels(self, db):
        compile_and_run(db, """
            CREATE FUNCTION pairs(n int) RETURNS int AS $$
            DECLARE c int = 0;
            BEGIN
              <<outer>>
              FOR i IN 1..n LOOP
                FOR j IN 1..n LOOP
                  CONTINUE outer WHEN j > i;
                  c = c + 1;
                  EXIT outer WHEN c >= 40;
                END LOOP;
              END LOOP;
              RETURN c;
            END; $$ LANGUAGE plpgsql""",
            [("SELECT {f}($1)", [n]) for n in (0, 3, 5, 20)])

    def test_infinite_loop_with_exit(self, db):
        compile_and_run(db, """
            CREATE FUNCTION double_until(n int, cap int) RETURNS int AS $$
            BEGIN
              LOOP
                n = n * 2;
                EXIT WHEN n > cap;
              END LOOP;
              RETURN n;
            END; $$ LANGUAGE plpgsql""",
            [("SELECT {f}($1, $2)", [1, 1000]),
             ("SELECT {f}($1, $2)", [3, 10])])

    def test_reverse_for_with_by(self, db):
        compile_and_run(db, """
            CREATE FUNCTION sumdown(n int) RETURNS int AS $$
            DECLARE s int = 0;
            BEGIN
              FOR i IN REVERSE n..0 BY 2 LOOP
                s = s + i;
              END LOOP;
              RETURN s;
            END; $$ LANGUAGE plpgsql""",
            [("SELECT {f}($1)", [n]) for n in (0, 1, 9, 10)])

    def test_foreach_array(self, db):
        compile_and_run(db, """
            CREATE FUNCTION total(parts text) RETURNS int AS $$
            DECLARE s int = 0; item text;
            BEGIN
              FOREACH item IN ARRAY string_to_array(parts, ',') LOOP
                s = s + CAST(item AS int);
              END LOOP;
              RETURN s;
            END; $$ LANGUAGE plpgsql""",
            [("SELECT {f}($1)", ["1,2,3"]), ("SELECT {f}($1)", ["42"])])

    def test_nested_blocks(self, db):
        compile_and_run(db, """
            CREATE FUNCTION blocks(n int) RETURNS int AS $$
            DECLARE a int = 1;
            BEGIN
              <<blk>>
              DECLARE b int = 10;
              BEGIN
                a = a + b;
                EXIT blk WHEN n > 0;
                a = a * 100;
              END;
              RETURN a + n;
            END; $$ LANGUAGE plpgsql""",
            [("SELECT {f}($1)", [n]) for n in (0, 1, -5)])

    def test_early_return_from_loop(self, db):
        compile_and_run(db, """
            CREATE FUNCTION find_div(n int, d int) RETURNS int AS $$
            BEGIN
              FOR i IN 2..n LOOP
                IF n % i = 0 AND i % d = 0 THEN
                  RETURN i;
                END IF;
              END LOOP;
              RETURN -1;
            END; $$ LANGUAGE plpgsql""",
            [("SELECT {f}($1, $2)", [30, 3]),
             ("SELECT {f}($1, $2)", [7, 2])])

    def test_case_statement(self, db):
        compile_and_run(db, """
            CREATE FUNCTION words(n int) RETURNS text AS $$
            DECLARE w text;
            BEGIN
              CASE n
                WHEN 1 THEN w = 'one';
                WHEN 2 THEN w = 'two';
                ELSE w = 'many';
              END CASE;
              RETURN w;
            END; $$ LANGUAGE plpgsql""",
            [("SELECT {f}($1)", [n]) for n in (1, 2, 9)])

    def test_null_handling_through_loop(self, db):
        compile_and_run(db, """
            CREATE FUNCTION nullable(n int) RETURNS int AS $$
            DECLARE acc int;
            BEGIN
              FOR i IN 1..n LOOP
                acc = coalesce(acc, 0) + i;
              END LOOP;
              RETURN acc;
            END; $$ LANGUAGE plpgsql""",
            [("SELECT {f}($1)", [0]), ("SELECT {f}($1)", [4])])


class TestEmbeddedQueries:
    @pytest.fixture()
    def qdb(self, db):
        db.execute("CREATE TABLE items(id int, price int, tag text)")
        db.execute("INSERT INTO items VALUES (1, 10, 'a'), (2, 25, 'b'), "
                   "(3, 40, 'a'), (4, 5, 'c')")
        return db

    def test_loop_over_lookups(self, qdb):
        compile_and_run(qdb, """
            CREATE FUNCTION spend(budget int) RETURNS int AS $$
            DECLARE bought int = 0; cheapest int;
            BEGIN
              LOOP
                cheapest = (SELECT min(price) FROM items
                            WHERE price <= budget);
                EXIT WHEN cheapest IS NULL;
                budget = budget - cheapest;
                bought = bought + 1;
                EXIT WHEN bought > 10;
              END LOOP;
              RETURN bought;
            END; $$ LANGUAGE plpgsql""",
            [("SELECT {f}($1)", [b]) for b in (0, 10, 100)])

    def test_aggregate_in_condition(self, qdb):
        compile_and_run(qdb, """
            CREATE FUNCTION rich(tagname text) RETURNS boolean AS $$
            BEGIN
              IF (SELECT sum(price) FROM items WHERE tag = tagname) > 30 THEN
                RETURN true;
              END IF;
              RETURN false;
            END; $$ LANGUAGE plpgsql""",
            [("SELECT {f}($1)", [t]) for t in ("a", "b", "zzz")])

    def test_perform_compiles(self, qdb):
        compile_and_run(qdb, """
            CREATE FUNCTION poke(n int) RETURNS int AS $$
            BEGIN
              PERFORM price FROM items WHERE id = n;
              RETURN n * 2;
            END; $$ LANGUAGE plpgsql""",
            [("SELECT {f}($1)", [2])])

    def test_variable_column_ambiguity_rejected(self, qdb):
        source = """
            CREATE FUNCTION clash(price int) RETURNS int AS $$
            BEGIN
              RETURN (SELECT count(*) FROM items WHERE price > price);
            END; $$ LANGUAGE plpgsql"""
        with pytest.raises(CompileError, match="ambiguous"):
            compile_plsql(source, qdb)

    def test_qualified_column_resolves_cleanly(self, qdb):
        compile_and_run(qdb, """
            CREATE FUNCTION above(threshold int) RETURNS int AS $$
            BEGIN
              RETURN (SELECT count(*) FROM items AS i
                      WHERE i.price > threshold);
            END; $$ LANGUAGE plpgsql""",
            [("SELECT {f}($1)", [20])])

    def test_compiled_called_from_where_clause(self, qdb):
        db = qdb
        source = """
            CREATE FUNCTION dbl(v int) RETURNS int AS $$
            BEGIN RETURN v * 2; END; $$ LANGUAGE plpgsql"""
        db.execute(source)
        compile_plsql(source, db).register(db, name="dbl_c")
        interp = db.query_all(
            "SELECT id FROM items WHERE dbl(price) > 40 ORDER BY id")
        compiled = db.query_all(
            "SELECT id FROM items WHERE dbl_c(price) > 40 ORDER BY id")
        assert interp == compiled == [(2,), (3,)]

    def test_inlining_is_planned_once(self, qdb):
        db = qdb
        source = """
            CREATE FUNCTION lookup(v int) RETURNS int AS $$
            DECLARE r int = 0;
            BEGIN
              FOR i IN 1..v LOOP
                r = r + (SELECT count(*) FROM items WHERE price >= i);
              END LOOP;
              RETURN r;
            END; $$ LANGUAGE plpgsql"""
        compile_plsql(source, db).register(db, name="lookup_c")
        db.profiler.reset()
        db.query_all("SELECT lookup_c(id) FROM items")
        # one top-level plan instantiation, no Q->f switches at all
        assert db.profiler.counts["switch Q->f"] == 0
        assert db.profiler.counts["plan instantiations"] == 1


class TestIterateVariant:
    def test_iterate_equals_recursive(self, db):
        source = """
            CREATE FUNCTION upto(n int) RETURNS int AS $$
            DECLARE s int = 0;
            BEGIN
              FOR i IN 1..n LOOP s = s + i; END LOOP;
              RETURN s;
            END; $$ LANGUAGE plpgsql"""
        compile_plsql(source, db).register(db, name="upto_rec")
        compile_plsql(source, db, iterate=True).register(db, name="upto_it")
        for n in (0, 1, 17):
            assert db.query_value(f"SELECT upto_rec({n})") == \
                db.query_value(f"SELECT upto_it({n})") == n * (n + 1) // 2

    def test_iterate_query_text_differs(self, db):
        source = """
            CREATE FUNCTION g(n int) RETURNS int AS $$
            DECLARE s int = 0;
            BEGIN
              WHILE n > 0 LOOP s = s + n; n = n - 1; END LOOP;
              RETURN s;
            END; $$ LANGUAGE plpgsql"""
        recursive = compile_plsql(source, db)
        iterate = compile_plsql(source, db, iterate=True)
        assert "WITH RECURSIVE" in recursive.sql()
        assert "WITH ITERATE" in iterate.sql()


class TestRandomizedPrograms:
    """Property: compiled result == interpreted result on random inputs."""

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 30), st.integers(1, 5), st.integers(0, 10))
    def test_parameterized_arithmetic_loop(self, n, step, bias):
        from repro.sql import Database
        db = Database()
        source = f"""
            CREATE FUNCTION h(n int) RETURNS int AS $$
            DECLARE acc int = {bias};
            BEGIN
              FOR i IN 1..n BY {step} LOOP
                acc = acc * 2 + i;
                IF acc > 10000 THEN RETURN acc; END IF;
              END LOOP;
              RETURN acc;
            END; $$ LANGUAGE plpgsql"""
        db.execute(source)
        compile_plsql(source, db).register(db, name="h_c")
        assert db.query_value("SELECT h($1)", [n]) == \
            db.query_value("SELECT h_c($1)", [n])

    @settings(max_examples=10, deadline=None)
    @given(st.integers(-20, 20), st.integers(-20, 20))
    def test_branching_program(self, a, b):
        from repro.sql import Database
        db = Database()
        source = """
            CREATE FUNCTION cmp3(a int, b int) RETURNS int AS $$
            BEGIN
              IF a < b THEN RETURN -1;
              ELSIF a > b THEN RETURN 1;
              ELSE RETURN 0;
              END IF;
            END; $$ LANGUAGE plpgsql"""
        db.execute(source)
        compile_plsql(source, db).register(db, name="cmp3_c")
        assert db.query_value("SELECT cmp3($1, $2)", [a, b]) == \
            db.query_value("SELECT cmp3_c($1, $2)", [a, b])


class TestIntermediateForms:
    def test_explain_contains_all_figures(self, db):
        source = """
            CREATE FUNCTION demo(n int) RETURNS int AS $$
            DECLARE s int = 0;
            BEGIN
              FOR i IN 1..n LOOP s = s + i; END LOOP;
              RETURN s;
            END; $$ LANGUAGE plpgsql"""
        compiled = compile_plsql(source, db)
        text = compiled.explain()
        for marker in ("goto CFG", "SSA", "ANF", "UDF", "WITH RECURSIVE"):
            assert marker in text

    def test_udf_form_executes(self, db):
        source = """
            CREATE FUNCTION tri(n int) RETURNS int AS $$
            DECLARE s int = 0;
            BEGIN
              WHILE n > 0 LOOP s = s + n; n = n - 1; END LOOP;
              RETURN s;
            END; $$ LANGUAGE plpgsql"""
        compiled = compile_plsql(source, db)
        wrapper = compiled.register_udf_form(db)
        assert db.query_value(f"SELECT {wrapper}(10)") == 55

    def test_optimize_flag_round_trip(self, db):
        source = """
            CREATE FUNCTION o(n int) RETURNS int AS $$
            DECLARE a int = 1; b int; c int;
            BEGIN
              b = a;        -- copy chain
              c = b + 0;    -- foldable
              FOR i IN 1..n LOOP c = c + 1; END LOOP;
              RETURN c;
            END; $$ LANGUAGE plpgsql"""
        fast = compile_plsql(source, db, optimize=True)
        slow = compile_plsql(source, db, optimize=False)
        fast.register(db, name="o_fast")
        slow.register(db, name="o_slow")
        for n in (0, 5):
            assert db.query_value(f"SELECT o_fast({n})") == \
                db.query_value(f"SELECT o_slow({n})") == n + 1
        assert len(fast.sql()) <= len(slow.sql())

    def test_non_plpgsql_rejected(self, db):
        with pytest.raises(CompileError):
            compile_plsql("CREATE FUNCTION s() RETURNS int AS 'SELECT 1' "
                          "LANGUAGE SQL", db)

    def test_compile_error_for_non_function(self, db):
        with pytest.raises(CompileError):
            compile_plsql("SELECT 1", db)
