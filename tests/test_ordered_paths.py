"""Ordered access paths: sorted indexes, CREATE INDEX DDL, range scans,
sort elimination, Top-N, and merge joins.

Covers the planner's access-path choices (visible in EXPLAIN), the
executor semantics of the new operators, the DDL surface, and — the PR's
regression focus — index freshness across every DML path (INSERT, UPDATE,
DELETE, TRUNCATE) for both the version-invalidated hash indexes and the
incrementally-maintained sorted indexes.
"""

from __future__ import annotations

import pytest

from repro.sql import Database
from repro.sql.errors import CatalogError, ExecutionError, TypeError_
from repro.sql.profiler import (INDEX_RANGE_SCANS, MERGEJOIN_SCANS,
                                SORTED_INDEX_BUILDS, TOPN_INPUT_ROWS,
                                TOPN_SCANS)


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE t(a int, b int)")
    for i in range(100):
        database.execute("INSERT INTO t VALUES ($1, $2)", (i % 10, i))
    return database


# ---------------------------------------------------------------------------
# CREATE INDEX / DROP INDEX DDL
# ---------------------------------------------------------------------------


class TestIndexDdl:
    def test_create_and_drop_are_catalogued(self, db):
        db.execute("CREATE INDEX t_b ON t(b)")
        assert "t_b" in db.catalog.indexes
        index_def = db.catalog.indexes["t_b"]
        assert index_def.table == "t"
        assert index_def.columns == (1,)
        assert index_def.descending == (False,)
        db.execute("DROP INDEX t_b")
        assert "t_b" not in db.catalog.indexes

    def test_duplicate_name_rejected_unless_if_not_exists(self, db):
        db.execute("CREATE INDEX t_b ON t(b)")
        with pytest.raises(CatalogError):
            db.execute("CREATE INDEX t_b ON t(b)")
        db.execute("CREATE INDEX IF NOT EXISTS t_b ON t(b)")  # no raise

    def test_drop_unknown_rejected_unless_if_exists(self, db):
        with pytest.raises(CatalogError):
            db.execute("DROP INDEX nope")
        db.execute("DROP INDEX IF EXISTS nope")  # no raise

    def test_unknown_table_or_column_rejected(self, db):
        with pytest.raises(Exception):
            db.execute("CREATE INDEX x ON missing(a)")
        with pytest.raises(CatalogError):
            db.execute("CREATE INDEX x ON t(missing)")
        with pytest.raises(CatalogError):
            db.execute("CREATE INDEX x ON t(a, a)")

    def test_drop_table_drops_its_indexes(self, db):
        db.execute("CREATE INDEX t_b ON t(b)")
        db.execute("DROP TABLE t")
        assert "t_b" not in db.catalog.indexes

    def test_desc_and_multicolumn_keys_parse(self, db):
        db.execute("CREATE INDEX t_ab ON t(a ASC, b DESC)")
        index_def = db.catalog.indexes["t_ab"]
        assert index_def.columns == (0, 1)
        assert index_def.descending == (False, True)

    def test_create_index_invalidates_plan_cache(self, db):
        sql = "SELECT b FROM t ORDER BY b LIMIT 1"
        assert "IndexRangeScan" not in db.explain(sql)
        db.execute("CREATE INDEX t_b ON t(b)")
        assert "IndexRangeScan" in db.explain(sql)
        db.execute("DROP INDEX t_b")
        assert "IndexRangeScan" not in db.explain(sql)


# ---------------------------------------------------------------------------
# Range index scans
# ---------------------------------------------------------------------------


class TestIndexRangeScan:
    def test_explain_names_the_operator_and_bounds(self, db):
        plan = db.explain("SELECT count(*) FROM t WHERE b >= 10 AND b < 20")
        assert "IndexRangeScan on t" in plan
        assert "b >=" in plan and "b <" in plan

    def test_between_becomes_a_closed_range(self, db):
        plan = db.explain("SELECT count(*) FROM t WHERE b BETWEEN 5 AND 8")
        assert "IndexRangeScan" in plan
        assert db.query_value(
            "SELECT count(*) FROM t WHERE b BETWEEN 5 AND 8") == 4

    def test_negated_between_stays_a_seqscan_filter(self, db):
        plan = db.explain("SELECT count(*) FROM t WHERE b NOT BETWEEN 5 AND 8")
        assert "IndexRangeScan" not in plan

    def test_equality_pushdown_outranks_the_range_path(self, db):
        plan = db.explain("SELECT count(*) FROM t WHERE a = 5 AND b > 3")
        assert "IndexScan on t (a)" in plan
        assert db.query_value(
            "SELECT count(*) FROM t WHERE a = 5 AND b > 3") == 10

    def test_volatile_bound_is_not_hoisted(self, db):
        plan = db.explain("SELECT count(*) FROM t WHERE b < random()")
        assert "IndexRangeScan" not in plan

    def test_flag_disables_the_path(self, db):
        db.planner.enable_rangescan = False
        db.clear_plan_cache()
        plan = db.explain("SELECT count(*) FROM t WHERE b >= 10 AND b < 20")
        assert "IndexRangeScan" not in plan

    def test_null_bound_matches_nothing(self, db):
        assert db.query_all("SELECT b FROM t WHERE b > NULL") == []

    def test_empty_range(self, db):
        assert db.query_all("SELECT b FROM t WHERE b > 90 AND b < 80") == []

    def test_incomparable_probe_raises_like_a_seqscan(self, db):
        with pytest.raises(TypeError_):
            db.query_all("SELECT b FROM t WHERE b < 'zzz'")

    def test_counters(self, db):
        db.profiler.reset()
        db.query_all("SELECT b FROM t WHERE b >= 10 AND b < 20")
        assert db.profiler.counts[SORTED_INDEX_BUILDS] == 1
        assert db.profiler.counts[INDEX_RANGE_SCANS] == 1
        db.query_all("SELECT b FROM t WHERE b >= 10 AND b < 20")
        # Second run probes the maintained index without rebuilding.
        assert db.profiler.counts[SORTED_INDEX_BUILDS] == 1
        assert db.profiler.counts[INDEX_RANGE_SCANS] == 2

    def test_correlated_range_probe_reprobes_per_outer_row(self, db):
        db.execute("CREATE TABLE lo(cut int)")
        db.execute("INSERT INTO lo VALUES (95), (97), (99)")
        rows = db.query_all(
            "SELECT lo.cut, (SELECT count(*) FROM t WHERE b > lo.cut) "
            "FROM lo ORDER BY 1")
        assert rows == [(95, 4), (97, 2), (99, 0)]


# ---------------------------------------------------------------------------
# Sort elimination and Top-N
# ---------------------------------------------------------------------------


class TestOrderedDelivery:
    def test_declared_index_eliminates_the_sort(self, db):
        db.execute("CREATE INDEX t_b ON t(b)")
        plan = db.explain("SELECT b FROM t ORDER BY b")
        assert "Sort" not in plan and "IndexRangeScan" in plan
        assert db.query_all("SELECT b FROM t ORDER BY b LIMIT 3") == \
            [(0,), (1,), (2,)]
        assert db.query_all("SELECT b FROM t ORDER BY b DESC LIMIT 3") == \
            [(99,), (98,), (97,)]

    def test_desc_index_serves_both_directions(self, db):
        db.execute("CREATE INDEX t_b ON t(b DESC)")
        assert "IndexRangeScan" in db.explain("SELECT b FROM t ORDER BY b")
        assert "IndexRangeScan" in db.explain(
            "SELECT b FROM t ORDER BY b DESC")

    def test_multicolumn_prefix_matches(self, db):
        db.execute("CREATE INDEX t_ab ON t(a, b DESC)")
        assert "Sort" not in db.explain(
            "SELECT a, b FROM t ORDER BY a, b DESC")
        assert "Sort" not in db.explain(
            "SELECT a, b FROM t ORDER BY a DESC, b")
        # Mismatched direction pattern keeps the sort.
        assert "Sort" in db.explain("SELECT a, b FROM t ORDER BY a, b")

    def test_nulls_placement_override_keeps_the_sort(self, db):
        db.execute("CREATE INDEX t_b ON t(b)")
        assert "Sort" in db.explain("SELECT b FROM t ORDER BY b NULLS FIRST")
        assert "Sort" not in db.explain("SELECT b FROM t ORDER BY b NULLS LAST")

    def test_distinct_keeps_the_sort(self, db):
        db.execute("CREATE INDEX t_a ON t(a)")
        assert "Sort" in db.explain("SELECT DISTINCT a FROM t ORDER BY a")

    def test_no_index_means_sort_stays(self, db):
        assert "Sort" in db.explain("SELECT b FROM t ORDER BY b")

    def test_range_scan_column_feeds_order_by(self, db):
        plan = db.explain(
            "SELECT b FROM t WHERE b >= 10 AND b < 20 ORDER BY b DESC")
        assert "Sort" not in plan and "IndexRangeScan" in plan
        assert db.query_all(
            "SELECT b FROM t WHERE b >= 10 AND b < 20 ORDER BY b DESC "
            "LIMIT 3") == [(19,), (18,), (17,)]

    def test_flag_disables_elimination(self, db):
        db.execute("CREATE INDEX t_b ON t(b)")
        db.planner.enable_sort_elim = False
        db.clear_plan_cache()
        assert "Sort" in db.explain("SELECT b FROM t ORDER BY b")


class TestTopN:
    def test_explain_names_topn_for_constant_limits(self, db):
        plan = db.explain("SELECT a, b FROM t ORDER BY a + b LIMIT 5")
        assert "TopN (n=5)" in plan

    def test_offset_widens_the_heap(self, db):
        plan = db.explain("SELECT b FROM t ORDER BY b LIMIT 5 OFFSET 7")
        assert "TopN (n=12)" in plan
        assert db.query_all(
            "SELECT b FROM t ORDER BY b LIMIT 5 OFFSET 7") == \
            [(7,), (8,), (9,), (10,), (11,)]

    def test_non_constant_limit_keeps_the_full_sort(self, db):
        plan = db.explain("SELECT b FROM t ORDER BY b LIMIT 1 + 1")
        assert "TopN" not in plan and "Sort" in plan

    def test_param_limit_keeps_the_full_sort(self, db):
        assert db.execute("SELECT b FROM t ORDER BY b LIMIT $1", (2,)).rows \
            == [(0,), (1,)]

    def test_limit_zero(self, db):
        assert db.query_all("SELECT b FROM t ORDER BY a + b LIMIT 0") == []

    def test_ties_match_the_stable_sort(self, db):
        # Equal keys keep arrival order, exactly like the full sort.
        rows_topn = db.query_all("SELECT a, b FROM t ORDER BY a LIMIT 12")
        db.planner.enable_topn = False
        db.clear_plan_cache()
        rows_sort = db.query_all("SELECT a, b FROM t ORDER BY a LIMIT 12")
        assert rows_topn == rows_sort

    def test_set_operation_output_goes_through_topn(self, db):
        sql = ("SELECT b FROM t UNION ALL SELECT b FROM t "
               "ORDER BY b DESC LIMIT 2")
        assert "TopN" in db.explain(sql)
        assert db.query_all(sql) == [(99,), (99,)]

    def test_counters(self, db):
        db.profiler.reset()
        db.query_all("SELECT b FROM t ORDER BY a + b LIMIT 5")
        assert db.profiler.counts[TOPN_SCANS] == 1
        assert db.profiler.counts[TOPN_INPUT_ROWS] == 100

    def test_flag_disables_topn(self, db):
        db.planner.enable_topn = False
        db.clear_plan_cache()
        assert "TopN" not in db.explain(
            "SELECT b FROM t ORDER BY a + b LIMIT 5")


# ---------------------------------------------------------------------------
# Merge joins
# ---------------------------------------------------------------------------


class TestMergeJoin:
    @pytest.fixture
    def joined(self, db):
        db.execute("CREATE TABLE s(a int, v int)")
        for i in range(30):
            db.execute("INSERT INTO s VALUES ($1, $2)", (i % 12, i))
        db.execute("CREATE INDEX t_a ON t(a)")
        db.execute("CREATE INDEX s_a ON s(a)")
        return db

    def test_chosen_when_both_sides_are_indexed(self, joined):
        plan = joined.explain("SELECT count(*) FROM t JOIN s ON t.a = s.a")
        assert "MergeJoin INNER JOIN (t.a = s.a)" in plan
        assert "IndexRangeScan on t" in plan
        assert "IndexRangeScan on s" in plan

    def test_agrees_with_hash_and_nested_loop(self, joined):
        sql = ("SELECT t.a, t.b, s.v FROM t JOIN s ON t.a = s.a "
               "ORDER BY t.b, s.v")
        merge_rows = joined.query_all(sql)
        joined.planner.enable_mergejoin = False
        joined.clear_plan_cache()
        hash_rows = joined.query_all(sql)
        joined.planner.enable_hashjoin = False
        joined.planner.enable_pushdown = False
        joined.clear_plan_cache()
        nested_rows = joined.query_all(sql)
        assert merge_rows == hash_rows == nested_rows

    def test_where_derived_key_over_cross_join(self, joined):
        plan = joined.explain("SELECT count(*) FROM t, s WHERE t.a = s.a")
        assert "MergeJoin" in plan

    def test_residual_condition_filters_pairs(self, joined):
        sql = "SELECT count(*) FROM t JOIN s ON t.a = s.a AND t.b < s.v"
        assert "MergeJoin" in joined.explain(sql)
        merge = joined.query_value(sql)
        joined.planner.enable_mergejoin = False
        joined.planner.enable_hashjoin = False
        joined.clear_plan_cache()
        assert merge == joined.query_value(sql)

    def test_unindexed_side_falls_back_to_hash(self, joined):
        joined.execute("DROP INDEX s_a")
        plan = joined.explain("SELECT count(*) FROM t JOIN s ON t.a = s.a")
        assert "MergeJoin" not in plan
        assert "HashJoin" in plan

    def test_left_join_never_merges(self, joined):
        plan = joined.explain(
            "SELECT count(*) FROM t LEFT JOIN s ON t.a = s.a")
        assert "MergeJoin" not in plan

    def test_null_keys_never_match(self, joined):
        joined.execute("INSERT INTO t VALUES (NULL, -1)")
        joined.execute("INSERT INTO s VALUES (NULL, -2)")
        sql = "SELECT count(*) FROM t JOIN s ON t.a = s.a"
        merge = joined.query_value(sql)
        joined.planner.enable_mergejoin = False
        joined.clear_plan_cache()
        assert merge == joined.query_value(sql)

    def test_null_fields_inside_composite_keys_never_match(self):
        """compare() yields NULL (not 0) for array/row keys containing a
        NULL field; the merge must skip such pairs like the other join
        strategies, not treat 'not less, not greater' as equal."""
        db = Database()
        db.execute("CREATE TABLE l(a int[])")
        db.execute("CREATE TABLE r(a int[])")
        db.catalog.get_table("l").insert_many([([1, None],), ([3, 4],)])
        db.catalog.get_table("r").insert_many([([1, 2],), ([3, 4],)])
        db.execute("CREATE INDEX l_a ON l(a)")
        db.execute("CREATE INDEX r_a ON r(a)")
        sql = "SELECT count(*) FROM l JOIN r ON l.a = r.a"
        assert "MergeJoin" in db.explain(sql)
        merge = db.query_value(sql)
        db.planner.enable_mergejoin = False
        db.clear_plan_cache()
        hashed = db.query_value(sql)
        db.planner.enable_hashjoin = False
        db.planner.enable_pushdown = False
        db.clear_plan_cache()
        nested = db.query_value(sql)
        assert merge == hashed == nested == 1

    def test_counter(self, joined):
        joined.profiler.reset()
        joined.query_value("SELECT count(*) FROM t JOIN s ON t.a = s.a")
        assert joined.profiler.counts[MERGEJOIN_SCANS] == 1

    def test_flag_disables_merge(self, joined):
        joined.planner.enable_mergejoin = False
        joined.clear_plan_cache()
        assert "MergeJoin" not in joined.explain(
            "SELECT count(*) FROM t JOIN s ON t.a = s.a")


# ---------------------------------------------------------------------------
# Index freshness across DML (the PR's regression bugfix)
# ---------------------------------------------------------------------------


class TestIndexFreshnessAfterDml:
    """Probes after UPDATE / DELETE / INSERT / TRUNCATE must see the new
    state on every access path: hash equality indexes are invalidated by
    the table version counter, sorted indexes are maintained in place.
    Plans stay cached throughout — the probe, not the plan, must refresh.
    """

    EQ = "SELECT count(*) FROM t WHERE b = $1"
    RANGE = "SELECT count(*) FROM t WHERE b >= 40 AND b < 50"
    ORDERED = "SELECT b FROM t ORDER BY b LIMIT 1"

    @pytest.fixture
    def indexed(self, db):
        db.execute("CREATE INDEX t_b ON t(b)")
        # Warm every access path (and the plan cache) before mutating.
        assert db.execute(self.EQ, (40,)).scalar() == 1
        assert db.query_value(self.RANGE) == 10
        assert db.query_all(self.ORDERED) == [(0,)]
        return db

    def test_after_update(self, indexed):
        indexed.execute("UPDATE t SET b = b + 1000 WHERE b = 40")
        assert indexed.execute(self.EQ, (40,)).scalar() == 0
        assert indexed.execute(self.EQ, (1040,)).scalar() == 1
        assert indexed.query_value(self.RANGE) == 9

    def test_after_delete(self, indexed):
        indexed.execute("DELETE FROM t WHERE b >= 45")
        assert indexed.execute(self.EQ, (50,)).scalar() == 0
        assert indexed.query_value(self.RANGE) == 5
        indexed.execute("DELETE FROM t WHERE b = 0")
        assert indexed.query_all(self.ORDERED) == [(1,)]

    def test_after_insert(self, indexed):
        indexed.execute("INSERT INTO t VALUES (0, -5)")
        assert indexed.execute(self.EQ, (-5,)).scalar() == 1
        assert indexed.query_all(self.ORDERED) == [(-5,)]

    def test_after_truncate_via_api(self, indexed):
        indexed.catalog.get_table("t").truncate()
        assert indexed.execute(self.EQ, (40,)).scalar() == 0
        assert indexed.query_value(self.RANGE) == 0
        assert indexed.query_all(self.ORDERED) == []

    def test_sorted_index_agrees_with_seqscan_after_mixed_dml(self, indexed):
        indexed.execute("UPDATE t SET b = b - 7 WHERE a = 3")
        indexed.execute("DELETE FROM t WHERE b % 4 = 1")
        indexed.execute("INSERT INTO t VALUES (1, 42)")
        with_index = indexed.query_value(self.RANGE)
        ordered = indexed.query_all("SELECT b FROM t ORDER BY b")
        indexed.planner.enable_rangescan = False
        indexed.planner.enable_sort_elim = False
        indexed.clear_plan_cache()
        assert indexed.query_value(self.RANGE) == with_index
        assert indexed.query_all("SELECT b FROM t ORDER BY b") == ordered

    def test_direct_table_api_insert_is_seen(self, indexed):
        # The workloads and benchmarks insert through HeapTable directly;
        # sorted indexes must be maintained on that path too.
        indexed.catalog.get_table("t").insert((9, 4242))
        assert indexed.execute(self.EQ, (4242,)).scalar() == 1
        assert indexed.query_all(
            "SELECT b FROM t ORDER BY b DESC LIMIT 1") == [(4242,)]


class TestReviewRegressions:
    def test_nan_keys_keep_the_index_consistent(self, db):
        """NaN floats order like compare() (greater than every number, one
        equality class), so inserting one must not break the bisect
        invariant of a maintained sorted index."""
        db.execute("CREATE TABLE f(k float)")
        for value in ("5.0", "1.0", "9.0"):
            db.execute(f"INSERT INTO f VALUES ({value})")
        db.execute("INSERT INTO f VALUES (1e308 * 10 - 1e308 * 10)")  # NaN
        db.execute("INSERT INTO f VALUES (3.0)")
        db.execute("INSERT INTO f VALUES (7.0)")
        probe = "SELECT k FROM f WHERE k >= 2 AND k <= 8"
        fast = sorted(db.query_all(probe))
        db.planner.enable_rangescan = False
        db.clear_plan_cache()
        assert fast == sorted(db.query_all(probe)) == [(3.0,), (5.0,), (7.0,)]

    def test_drop_index_keeps_structures_other_declarations_share(self, db):
        db.execute("CREATE INDEX i1 ON t(b)")
        db.execute("CREATE INDEX i2 ON t(b)")
        db.execute("DROP INDEX i1")
        # i2 still serves ordered delivery.
        assert "IndexRangeScan" in db.explain("SELECT b FROM t ORDER BY b")
        db.execute("DROP INDEX i2")
        assert "Sort" in db.explain("SELECT b FROM t ORDER BY b")

    def test_create_index_counts_builds_only_once(self, db):
        db.profiler.reset()
        db.query_all("SELECT b FROM t WHERE b > 90")  # lazy auto-build
        assert db.profiler.counts[SORTED_INDEX_BUILDS] == 1
        db.execute("CREATE INDEX t_b ON t(b)")  # adopts the existing one
        assert db.profiler.counts[SORTED_INDEX_BUILDS] == 1
        db.execute("CREATE INDEX t_a ON t(a)")  # genuinely new
        assert db.profiler.counts[SORTED_INDEX_BUILDS] == 2

    def test_bulk_insert_maintains_indexes_in_one_pass(self, db):
        db.execute("CREATE INDEX t_b ON t(b)")
        db.execute("INSERT INTO t SELECT a, b + 1000 FROM t")
        fast = db.query_all("SELECT b FROM t WHERE b >= 1090 ORDER BY b")
        db.planner.enable_rangescan = False
        db.planner.enable_sort_elim = False
        db.clear_plan_cache()
        assert fast == db.query_all(
            "SELECT b FROM t WHERE b >= 1090 ORDER BY b")

    def test_auto_index_is_dropped_on_bulk_dml_declared_one_survives(self, db):
        table = db.catalog.get_table("t")
        db.query_all("SELECT b FROM t WHERE b > 90")       # lazy auto index
        db.execute("CREATE INDEX t_a ON t(a)")             # pinned
        assert table.sorted_index_if_exists((1,)) is not None
        db.execute("UPDATE t SET b = b + 1")               # bulk delta
        # The auto index deferred its rebuild; the declared one survived.
        assert table.sorted_index_if_exists((1,)) is None
        assert table.sorted_index_if_exists((0,)) is not None
        # Correctness is unaffected: the next probe rebuilds lazily.
        assert db.query_value("SELECT count(*) FROM t WHERE b > 91") == 9

    def test_insert_many_arity_error_leaves_indexes_and_heap_aligned(self, db):
        """A mid-batch arity error must not append rows the indexes never
        saw: validation happens before any append, so the whole batch is
        rejected and every access path still agrees with the heap."""
        db.execute("CREATE INDEX t_b ON t(b)")
        db.query_value("SELECT count(*) FROM t WHERE b = 1")  # warm hash idx
        table = db.catalog.get_table("t")
        with pytest.raises(CatalogError):
            table.insert_many([(0, 1000), (0, 1001), (0, 1002, 3)])
        assert len(table) == 100
        assert db.query_value("SELECT count(*) FROM t WHERE b = 1000") == 0
        assert db.query_value("SELECT count(*) FROM t WHERE b >= 1000") == 0

    def test_bulk_update_agrees_after_rebuild_path(self, db):
        """A delta touching most rows takes the rebuild fallback; results
        must match a fresh scan."""
        db.execute("CREATE INDEX t_b ON t(b)")
        db.execute("UPDATE t SET b = b % 7")
        fast = db.query_all("SELECT b FROM t WHERE b >= 2 AND b <= 4")
        db.planner.enable_rangescan = False
        db.clear_plan_cache()
        assert sorted(fast) == sorted(
            db.query_all("SELECT b FROM t WHERE b >= 2 AND b <= 4"))


class TestLimitErrorsUnchanged:
    def test_negative_limit_still_raises_at_runtime(self, db):
        with pytest.raises(ExecutionError):
            db.query_all("SELECT b FROM t ORDER BY b LIMIT -1")
