"""Differential testing: interpreter vs compiled, hash join vs nested loop,
batched vs per-row compiled-UDF evaluation.

Inspired by coverage-driven configuration validation, this suite drives the
same workload through independent execution paths and asserts identical
results:

* PL/pgSQL functions executed by the interpreter *and* as the compiled
  ``WITH RECURSIVE`` query (argument sweeps over gcd, sign, a summing loop,
  and a bounded Collatz),
* compiled functions over whole relations through the set-oriented
  ``BatchedUdf`` operator — both its trampoline-machine and generic-SQL
  strategies, with and without argument dedup — against the per-row
  scalar-subquery path and the interpreter, including NULL arguments and
  zero-row inputs,
* join queries executed by the hash-join operator *and* the seed
  nested-loop path (inner/left/cross, NULL join keys),
* ordered access paths — IndexRangeScan, index-ordered delivery (sort
  elimination), the bounded-heap TopN and the merge join — against
  SeqScan + full Sort and the other join strategies, on randomized data
  with DESC orderings, duplicate keys, NULL keys, empty ranges, LIMIT 0
  and DML interleaved between probes.

It also pins the two engine bugs this differential setup surfaced: the
missing ``^`` power operator and the absent runaway-loop statement budget.

Result comparison uses :func:`repro.fuzz.oracle.rows_equal` — the same
bag/list equality (NULL and NaN classes, -0.0 = 0.0, float canonicalization)
that the fuzzer's oracles apply, so hand-written and generated differential
coverage share one definition of "agree".
"""

from __future__ import annotations

import pytest

from repro.compiler import compile_plsql
from repro.fuzz.oracle import rows_equal
from repro.sql import Database
from repro.sql.errors import ExecutionError, ParseError, QueryCanceledError


# ---------------------------------------------------------------------------
# Interpreted vs compiled PL/pgSQL
# ---------------------------------------------------------------------------

GCD = """
CREATE FUNCTION gcd(a int, b int) RETURNS int AS $$
DECLARE t int;
BEGIN
  WHILE b <> 0 LOOP
    t := b;
    b := a % b;
    a := t;
  END LOOP;
  RETURN a;
END;
$$ LANGUAGE plpgsql"""

SIGN_FN = """
CREATE FUNCTION sign_of(n int) RETURNS int AS $$
BEGIN
  IF n > 0 THEN RETURN 1;
  ELSIF n < 0 THEN RETURN -1;
  END IF;
  RETURN 0;
END;
$$ LANGUAGE plpgsql"""

SUM_LOOP = """
CREATE FUNCTION sum_to(n int) RETURNS int AS $$
DECLARE total int := 0; i int := 1;
BEGIN
  WHILE i <= n LOOP
    total := total + i;
    i := i + 1;
  END LOOP;
  RETURN total;
END;
$$ LANGUAGE plpgsql"""

COLLATZ = """
CREATE FUNCTION collatz(n int, budget int) RETURNS int AS $$
DECLARE steps int := 0;
BEGIN
  WHILE n <> 1 AND steps < budget LOOP
    IF n % 2 = 0 THEN n := n / 2;
    ELSE n := 3 * n + 1;
    END IF;
    steps := steps + 1;
  END LOOP;
  RETURN steps;
END;
$$ LANGUAGE plpgsql"""


def _register_both(db: Database, source: str) -> str:
    """Register *source* interpreted under its own name and compiled under
    ``<name>_c``; return the base name."""
    from repro.sql import ast as A
    from repro.sql.parser import parse_statement

    statement = parse_statement(source)
    assert isinstance(statement, A.CreateFunction)
    db.execute_ast(statement)
    compiled = compile_plsql(source, db)
    compiled.register(db, name=f"{statement.name}_c")
    return statement.name


class TestInterpreterVsCompiled:
    @pytest.mark.parametrize("source,calls", [
        (GCD, [(a, b) for a in (0, 1, 12, 270, 1071) for b in (0, 1, 462)]),
        (SIGN_FN, [(n,) for n in range(-3, 4)]),
        (SUM_LOOP, [(n,) for n in (-1, 0, 1, 2, 10, 100)]),
        (COLLATZ, [(n, 200) for n in (1, 2, 6, 7, 27, 97)]),
    ])
    def test_argument_sweep_agrees(self, db, source, calls):
        name = _register_both(db, source)
        holes = ", ".join(f"${i + 1}" for i in range(len(calls[0])))
        for args in calls:
            interpreted = db.query_value(f"SELECT {name}({holes})", list(args))
            compiled = db.query_value(f"SELECT {name}_c({holes})", list(args))
            assert compiled == interpreted, (name, args)

    def test_sweep_from_table_context(self, db):
        """Calls evaluated per row of a query, both ways."""
        name = _register_both(db, GCD)
        db.execute("CREATE TABLE pairs(a int, b int)")
        db.execute("INSERT INTO pairs VALUES (12, 18), (270, 192), (7, 13), "
                   "(100, 75), (0, 5)")
        interpreted = db.query_all(
            f"SELECT a, b, {name}(a, b) FROM pairs ORDER BY a, b")
        compiled = db.query_all(
            f"SELECT a, b, {name}_c(a, b) FROM pairs ORDER BY a, b")
        assert compiled == interpreted


# ---------------------------------------------------------------------------
# Batched (set-oriented) vs per-row compiled-UDF evaluation
# ---------------------------------------------------------------------------

NESTED_LOOPS = """
CREATE FUNCTION nested(n int) RETURNS int AS $$
DECLARE i int := 0; j int; acc int := 0;
BEGIN
  WHILE i < n LOOP
    j := 0;
    WHILE j < i LOOP
      acc := acc + j;
      j := j + 1;
    END LOOP;
    i := i + 1;
  END LOOP;
  RETURN acc;
END;
$$ LANGUAGE plpgsql"""

#: (mode label, planner settings) for every BatchedUdf configuration.
BATCH_MODES = [
    ("machine", dict(batch_compiled=True, batch_strategy="machine",
                     batch_dedup=True)),
    ("machine-nodedup", dict(batch_compiled=True, batch_strategy="machine",
                             batch_dedup=False)),
    ("sql", dict(batch_compiled=True, batch_strategy="sql",
                 batch_dedup=True)),
    ("scalar", dict(batch_compiled=False)),
]


def _query_with(db: Database, settings: dict, sql: str,
                params: list = ()) -> list[tuple]:
    for attr, value in settings.items():
        setattr(db.planner, attr, value)
    db.clear_plan_cache()
    return db.query_all(sql, params)


class TestBatchedUdfEquivalence:
    @pytest.mark.parametrize("source", [GCD, SUM_LOOP, COLLATZ, NESTED_LOOPS])
    def test_all_paths_agree_over_table(self, db, source):
        """Interpreter, per-row scalar, and every BatchedUdf mode return
        identical rows over an argument sweep that includes NULLs."""
        name = _register_both(db, source)
        arity = len(db.catalog.get_function(name).param_names)
        db.execute("CREATE TABLE args(a int, b int)")
        values = [(12, 18), (270, 192), (7, 200), (0, 5), (1, 1),
                  (None, 3), (27, None), (None, None), (97, 200)]
        for row in values:
            db.execute("INSERT INTO args VALUES ($1, $2)", list(row))
        cols = ", ".join("ab"[:arity])
        interpreted = db.query_all(f"SELECT {name}({cols}) FROM args")
        for label, settings in BATCH_MODES:
            got = _query_with(db, settings,
                              f"SELECT {name}_c({cols}) FROM args")
            assert rows_equal(interpreted, got, ordered=True), \
                (label, source)

    def test_zero_row_input(self, db):
        _register_both(db, GCD)
        db.execute("CREATE TABLE empty(a int, b int)")
        for label, settings in BATCH_MODES:
            assert _query_with(db, settings,
                               "SELECT gcd_c(a, b) FROM empty") == [], label

    def test_explain_names_batched_udf_with_scalar_fallback(self, db):
        _register_both(db, GCD)
        db.execute("CREATE TABLE pairs(a int, b int)")
        plan = db.explain("SELECT gcd_c(a, b) FROM pairs")
        assert "BatchedUdf" in plan
        db.planner.batch_compiled = False
        db.clear_plan_cache()
        assert "BatchedUdf" not in db.explain("SELECT gcd_c(a, b) FROM pairs")

    def test_volatile_args_keep_scalar_path(self, db):
        """random() in an argument must evaluate per row in call order, so
        the call may not move into the batch stage."""
        _register_both(db, GCD)
        db.execute("CREATE TABLE pairs(a int, b int)")
        plan = db.explain("SELECT gcd_c(cast(random() * 10 AS int), b) "
                          "FROM pairs")
        assert "BatchedUdf" not in plan

    def test_volatile_body_never_batches(self, db):
        from repro.compiler import compile_plsql
        source = """CREATE FUNCTION jitter(n int) RETURNS double precision AS
        $$ DECLARE i int := 0; acc double precision := 0;
        BEGIN
          WHILE i < n LOOP acc := acc + random(); i := i + 1; END LOOP;
          RETURN acc;
        END; $$ LANGUAGE plpgsql"""
        compiled = compile_plsql(source, db)
        fdef = compiled.register(db, name="jitter_c")
        assert fdef.batched_query is None
        db.execute("CREATE TABLE t(x int)")
        db.execute("INSERT INTO t VALUES (3), (4)")
        assert "BatchedUdf" not in db.explain("SELECT jitter_c(x) FROM t")

    def test_loop_free_functions_stay_inlined(self, db):
        """Froid-style functions are already one planned expression; the
        batch stage must leave them alone."""
        name = _register_both(db, SIGN_FN)
        db.execute("CREATE TABLE t(x int)")
        db.execute("INSERT INTO t VALUES (-5), (0), (7)")
        assert "BatchedUdf" not in db.explain(f"SELECT {name}_c(x) FROM t")
        assert db.query_all(f"SELECT {name}_c(x) FROM t") == \
            [(-1,), (0,), (1,)]

    def test_streaming_limit_keeps_lazy_scalar_path(self, db):
        """`LIMIT` without `ORDER BY` may never evaluate tail rows; an
        eager batch would raise for a poison row LIMIT discards, so such
        statements keep the scalar path (with ORDER BY every projected row
        is evaluated under both paths, so batching stays on)."""
        from repro.compiler import compile_plsql
        source = """CREATE FUNCTION inv_sum(n int) RETURNS int AS $$
        DECLARE i int := 1; acc int := 0;
        BEGIN
          WHILE i <= 3 LOOP acc := acc + 300 / n; i := i + 1; END LOOP;
          RETURN acc;
        END; $$ LANGUAGE plpgsql"""
        compile_plsql(source, db).register(db, name="inv_c")
        db.execute("CREATE TABLE t(x int)")
        db.execute("INSERT INTO t VALUES (1), (0)")
        limited = "SELECT inv_c(x) FROM t LIMIT 1"
        assert "BatchedUdf" not in db.explain(limited)
        assert db.query_all(limited) == [(900,)]
        ordered = "SELECT inv_c(x) FROM t ORDER BY x DESC LIMIT 1"
        assert "BatchedUdf" in db.explain(ordered)
        with pytest.raises(ExecutionError, match="division by zero"):
            db.query_all(ordered)
        db.planner.batch_compiled = False
        db.clear_plan_cache()
        with pytest.raises(ExecutionError, match="division by zero"):
            db.query_all(ordered)

    def test_short_circuiting_subqueries_keep_lazy_scalar_path(self, db):
        """EXISTS / IN / scalar subqueries stop pulling rows early, so
        batching inside them could evaluate poison rows the scalar path
        never reaches — they must decline batching."""
        from repro.compiler import compile_plsql
        source = """CREATE FUNCTION inv2(n int) RETURNS int AS $$
        DECLARE i int := 1; acc int := 0;
        BEGIN
          WHILE i <= 3 LOOP acc := acc + 300 / n; i := i + 1; END LOOP;
          RETURN acc;
        END; $$ LANGUAGE plpgsql"""
        compile_plsql(source, db).register(db, name="inv2_c")
        db.execute("CREATE TABLE t(x int)")
        db.execute("INSERT INTO t VALUES (1), (0)")
        assert db.query_all("SELECT EXISTS (SELECT inv2_c(x) FROM t)") \
            == [(True,)]
        assert db.query_value(
            "SELECT 900 IN (SELECT inv2_c(x) FROM t)") is True
        assert "BatchedUdf" not in db.explain(
            "SELECT EXISTS (SELECT inv2_c(x) FROM t)")

    def test_dedup_distinguishes_sql_equal_representations(self, db):
        """5 and 5.0 are SQL-equal but integer vs float division differ;
        argument dedup must never merge their activations."""
        from repro.compiler import compile_plsql
        source = """CREATE FUNCTION halver(n int) RETURNS int AS $$
        DECLARE i int := 0; acc int := 0;
        BEGIN
          WHILE i < 2 LOOP acc := acc + n / 2; i := i + 1; END LOOP;
          RETURN acc;
        END; $$ LANGUAGE plpgsql"""
        compile_plsql(source, db).register(db, name="halver_c")
        db.execute("CREATE TABLE t(g int)")
        db.execute("INSERT INTO t VALUES (0), (1)")
        sql = ("SELECT halver_c(CASE WHEN g = 0 THEN 5 ELSE 5.0 END) "
               "FROM t ORDER BY g")
        batched = db.query_all(sql)
        db.planner.batch_compiled = False
        db.clear_plan_cache()
        assert batched == db.query_all(sql) == [(4,), (5.0,)]

    def test_duplicate_call_sites_share_one_batch(self, db):
        _register_both(db, GCD)
        db.execute("CREATE TABLE pairs(a int, b int)")
        db.execute("INSERT INTO pairs VALUES (12, 18), (7, 13)")
        plan = db.explain("SELECT gcd_c(a, b), gcd_c(a, b), gcd_c(b, a) "
                          "FROM pairs")
        assert plan.count("BatchedUdf") == 2
        rows = db.query_all("SELECT gcd_c(a, b), gcd_c(a, b), gcd_c(b, a) "
                            "FROM pairs")
        assert rows == [(6, 6, 6), (1, 1, 1)]

    def test_argument_dedup_counts_distinct_vectors(self, db):
        from repro.sql.profiler import (BATCHED_UDF_DISTINCT,
                                        BATCHED_UDF_ROWS)
        _register_both(db, GCD)
        db.execute("CREATE TABLE pairs(a int, b int)")
        for _ in range(4):
            db.execute("INSERT INTO pairs VALUES (12, 18), (270, 192)")
        db.profiler.reset()
        rows = db.query_all("SELECT gcd_c(a, b) FROM pairs")
        assert rows == [(6,), (6,)] * 4
        assert db.profiler.counts[BATCHED_UDF_ROWS] == 8
        assert db.profiler.counts[BATCHED_UDF_DISTINCT] == 2

    def test_batched_call_with_group_by_and_params(self, db):
        _register_both(db, SUM_LOOP)
        db.execute("CREATE TABLE t(g int, x int)")
        db.execute("INSERT INTO t VALUES (0, 1), (0, 2), (1, 3), (1, 4)")
        sql = "SELECT g, sum_to_c(sum(x) + $1) FROM t GROUP BY g ORDER BY g"
        grouped = db.query_all(sql, [1])
        assert "BatchedUdf" in db.explain(
            "SELECT g, sum_to_c(sum(x) + $1) FROM t GROUP BY g ORDER BY g")
        db.planner.batch_compiled = False
        db.clear_plan_cache()
        assert db.query_all(sql, [1]) == grouped == [(0, 10), (1, 36)]

    def test_dynamic_call_plan_is_cached_on_function(self, db):
        """The bugfix: dynamically-invoked compiled functions plan Qf once,
        not per call (plan phase cached on the FunctionDef)."""
        from repro.sql.profiler import PLAN
        name = _register_both(db, GCD)
        db.planner.inline_compiled = False  # force the dynamic path
        db.clear_plan_cache()
        fdef = db.catalog.get_function(f"{name}_c")
        assert fdef.parsed_body is None
        sql = f"SELECT {name}_c($1, $2)"
        assert db.query_value(sql, [12, 18]) == 6
        assert fdef.parsed_body is not None
        # Outer statement and Qf are both planned now; later calls (same
        # text, fresh arguments) must not enter the Plan phase again.
        planned = db.profiler.times.get(PLAN, 0.0)
        for args in ([270, 192], [1071, 462], [100, 75]):
            db.query_value(sql, args)
        assert db.profiler.times.get(PLAN, 0.0) == planned
        # ... and clear_plan_cache() drops it with the statement cache.
        db.clear_plan_cache()
        assert fdef.parsed_body is None


# ---------------------------------------------------------------------------
# Recursive-CTE working-set dedup and trampoline counters
# ---------------------------------------------------------------------------


class TestRecursionDedupAndCounters:
    def test_union_dedup_drops_rederived_rows(self, db):
        """A cyclic graph terminates under UNION because the hash-based
        working-set dedup drops re-derived rows (and counts them)."""
        from repro.sql.profiler import (RECURSION_DEDUP_DROPPED,
                                        TRAMPOLINE_ITERATIONS)
        db.execute("CREATE TABLE edges(src int, dst int)")
        db.execute("INSERT INTO edges VALUES (1,2), (2,3), (3,1)")
        db.profiler.reset()
        rows = db.query_all(
            "WITH RECURSIVE r(n) AS ("
            "SELECT 1 UNION SELECT e.dst FROM r, edges e WHERE e.src = r.n"
            ") SELECT n FROM r ORDER BY n")
        assert rows == [(1,), (2,), (3,)]
        assert db.profiler.counts[RECURSION_DEDUP_DROPPED] >= 1
        assert db.profiler.counts[TRAMPOLINE_ITERATIONS] >= 3

    def test_union_all_counts_working_rows(self, db):
        from repro.sql.profiler import (TRAMPOLINE_ITERATIONS,
                                        TRAMPOLINE_WORKING_ROWS)
        db.profiler.reset()
        total = db.query_value(
            "WITH RECURSIVE r(n) AS ("
            "SELECT 1 UNION ALL SELECT n + 1 FROM r WHERE n < 5"
            ") SELECT sum(n) FROM r")
        assert total == 15
        assert db.profiler.counts[TRAMPOLINE_ITERATIONS] == 5
        assert db.profiler.counts[TRAMPOLINE_WORKING_ROWS] == 5


# ---------------------------------------------------------------------------
# Regression: the ^ power operator
# ---------------------------------------------------------------------------


class TestPowerOperator:
    def test_basic_power(self, db):
        assert db.query_value("SELECT 2 ^ 10") == 1024.0
        assert isinstance(db.query_value("SELECT 2 ^ 2"), float)

    def test_precedence_binds_tighter_than_multiplication(self, db):
        assert db.query_value("SELECT 2 ^ 2 * 3") == 12.0
        assert db.query_value("SELECT 3 * 2 ^ 2") == 12.0

    def test_unary_minus_binds_tighter_than_power(self, db):
        assert db.query_value("SELECT -2 ^ 2") == 4.0

    def test_left_associative(self, db):
        assert db.query_value("SELECT 2 ^ 3 ^ 3") == 512.0

    def test_fractional_and_negative_exponents(self, db):
        assert db.query_value("SELECT 4 ^ 0.5") == 2.0
        assert db.query_value("SELECT 2 ^ -1") == 0.5

    def test_null_propagates(self, db):
        assert db.query_value("SELECT NULL ^ 2") is None
        assert db.query_value("SELECT 2 ^ NULL") is None

    def test_error_cases(self, db):
        with pytest.raises(ExecutionError):
            db.query_value("SELECT 0 ^ -1")
        with pytest.raises(ExecutionError):
            db.query_value("SELECT (-8) ^ 0.5")

    def test_usable_from_plpgsql(self, db):
        db.execute("""CREATE FUNCTION pow2(n int) RETURNS double precision AS
            $$ BEGIN RETURN 2 ^ n; END; $$ LANGUAGE plpgsql""")
        assert db.query_value("SELECT pow2(8)") == 256.0

    def test_lexes_as_operator_not_error(self):
        from repro.sql.lexer import tokenize
        tokens = tokenize("2 ^ 10")
        assert [t.value for t in tokens[:3]] == [2, "^", 10]

    def test_trailing_garbage_still_rejected(self, db):
        with pytest.raises(ParseError):
            db.execute("SELECT 2 ^")


# ---------------------------------------------------------------------------
# Regression: runaway-loop statement budget
# ---------------------------------------------------------------------------

DIVERGING = """
CREATE FUNCTION diverge(n int) RETURNS int AS $$
BEGIN
  WHILE n <> 1 LOOP
    IF n % 2 = 0 THEN n := n / 2; ELSE n := 3 * n + 1; END IF;
  END LOOP;
  RETURN n;
END;
$$ LANGUAGE plpgsql"""


class TestStatementBudget:
    def test_nonterminating_loop_raises_instead_of_hanging(self, db):
        db.execute(DIVERGING)
        db.max_interp_statements = 10_000
        # Budget exhaustion classifies with cancellation (SQLSTATE 57014).
        with pytest.raises(QueryCanceledError, match="diverge"):
            # Collatz from 0 loops 0 -> 0 forever.
            db.query_value("SELECT diverge(0)")

    def test_error_names_the_limit(self, db):
        db.execute(DIVERGING)
        db.max_interp_statements = 5_000
        with pytest.raises(QueryCanceledError,
                           match="max_interp_statements=5000"):
            db.query_value("SELECT diverge(0)")

    def test_terminating_calls_unaffected(self, db):
        db.execute(DIVERGING)
        assert db.query_value("SELECT diverge(27)") == 1

    def test_budget_is_per_activation(self, db):
        db.execute(DIVERGING)
        db.max_interp_statements = 2_000
        # Many short activations must not accumulate into the budget.
        for _ in range(5):
            assert db.query_value("SELECT diverge(97)") == 1

    def test_condition_only_loop_is_budgeted(self, db):
        db.execute("""CREATE FUNCTION spin() RETURNS int AS $$
            BEGIN
              WHILE true LOOP
              END LOOP;
              RETURN 0;
            END; $$ LANGUAGE plpgsql""")
        db.max_interp_statements = 1_000
        with pytest.raises(QueryCanceledError, match="spin"):
            db.query_value("SELECT spin()")


# ---------------------------------------------------------------------------
# Hash join vs nested loop
# ---------------------------------------------------------------------------


def _join_db(hashjoin: bool) -> Database:
    db = Database()
    db.execute("CREATE TABLE l(id int, v text)")
    db.execute("CREATE TABLE r(id int, w text)")
    db.execute("INSERT INTO l VALUES (1,'a'), (2,'b'), (2,'b2'), (3,'c'), "
               "(NULL,'ln')")
    db.execute("INSERT INTO r VALUES (2,'R2'), (3,'R3'), (3,'R3b'), (4,'R4'), "
               "(NULL,'rn')")
    db.planner.enable_hashjoin = hashjoin
    db.planner.enable_pushdown = hashjoin
    return db


JOIN_QUERIES = [
    "SELECT l.v, r.w FROM l JOIN r ON l.id = r.id",
    "SELECT l.v, r.w FROM l LEFT JOIN r ON l.id = r.id",
    "SELECT l.v, r.w FROM l, r WHERE l.id = r.id",
    "SELECT count(*) FROM l CROSS JOIN r",
    "SELECT l.v, r.w FROM l LEFT JOIN r ON l.id = r.id AND r.w <> 'R3'",
    "SELECT l.v, r.w FROM l JOIN r ON l.id = r.id WHERE l.v <> 'b' AND r.w <> 'R4'",
    "SELECT l.v, r.w FROM l JOIN r ON l.id = r.id AND l.v < r.w",
]


class TestHashJoinEquivalence:
    @pytest.mark.parametrize("sql", JOIN_QUERIES)
    def test_hash_and_nestloop_agree(self, sql):
        hashed = _join_db(True).query_all(sql)
        nested = _join_db(False).query_all(sql)
        assert rows_equal(nested, hashed)  # join order is unspecified

    def test_null_keys_never_match(self):
        for hashjoin in (True, False):
            db = _join_db(hashjoin)
            rows = db.query_all(
                "SELECT l.v, r.w FROM l JOIN r ON l.id = r.id "
                "WHERE l.v = 'ln' OR r.w = 'rn'")
            assert rows == []
            left = db.query_all(
                "SELECT l.v, r.w FROM l LEFT JOIN r ON l.id = r.id "
                "WHERE l.v = 'ln'")
            assert left == [("ln", None)]

    def test_explain_names_strategies(self):
        db = _join_db(True)
        assert "HashJoin" in db.explain(
            "SELECT 1 FROM l JOIN r ON l.id = r.id")
        non_equi = db.explain("SELECT 1 FROM l JOIN r ON l.id < r.id")
        assert "NestLoop" in non_equi and "HashJoin" not in non_equi
        lateral = db.explain(
            "SELECT 1 FROM l LEFT JOIN LATERAL (SELECT w FROM r "
            "WHERE r.id = l.id) x ON true")
        assert "NestLoop" in lateral and "HashJoin" not in lateral

    def test_pushdown_visible_in_explain(self):
        db = _join_db(True)
        text = db.explain("SELECT 1 FROM l JOIN r ON l.id = r.id "
                          "WHERE l.v = 'a'")
        assert "pushed-down filter" in text

    def test_where_conjunct_on_nullable_side_not_pushed(self):
        # WHERE over a LEFT JOIN's right side must see NULL-filled rows.
        for hashjoin in (True, False):
            db = _join_db(hashjoin)
            rows = db.query_all(
                "SELECT l.v FROM l LEFT JOIN r ON l.id = r.id "
                "WHERE r.w IS NULL ORDER BY l.v")
            assert rows == [("a",), ("ln",)]

    def test_build_side_follows_estimates(self):
        db = Database()
        db.execute("CREATE TABLE small(id int)")
        db.execute("CREATE TABLE big(id int)")
        db.execute("INSERT INTO small VALUES (1), (2)")
        db.execute("INSERT INTO big " + " UNION ALL ".join(
            f"SELECT {i}" for i in range(50)))
        assert "[build=left]" in db.explain(
            "SELECT 1 FROM small JOIN big ON small.id = big.id")
        assert "[build=right]" in db.explain(
            "SELECT 1 FROM big JOIN small ON small.id = big.id")

    def test_profiler_counts_builds(self):
        db = _join_db(True)
        db.query_all("SELECT 1 FROM l JOIN r ON l.id = r.id")
        assert db.profiler.counts["hash join builds"] == 1
        assert db.profiler.counts["hash join build rows"] == 4

    def test_on_condition_cannot_reference_later_from_items(self):
        """Forward references in ON fail at plan time (as PostgreSQL and
        the seed planner do) instead of reading unfilled slots."""
        from repro.sql.errors import NameResolutionError
        db = _join_db(True)
        db.execute("CREATE TABLE c(id int)")
        db.execute("INSERT INTO c VALUES (2)")
        with pytest.raises(NameResolutionError):
            db.query_all("SELECT 1 FROM l JOIN r ON l.id = c.id, c")
        # Back-references from a parenthesized subtree keep working: the
        # ON condition only constrains l, so both l rows with id = 2 pair
        # with every r row.
        query = "SELECT count(*) FROM c, (l JOIN r ON l.id = c.id)"
        assert db.query_all(query) == [(10,)]
        nested = _join_db(False)
        nested.execute("CREATE TABLE c(id int)")
        nested.execute("INSERT INTO c VALUES (2)")
        assert nested.query_all(query) == [(10,)]

    def test_volatile_conjuncts_are_not_pushed(self):
        """random() in WHERE must evaluate once per joined row under both
        strategies, so pushdown may not move it."""
        results = []
        for hashjoin in (True, False):
            db = Database(seed=7)
            db.execute("CREATE TABLE a(x int)")
            db.execute("CREATE TABLE b(y int)")
            db.execute("INSERT INTO a VALUES (1), (2), (3)")
            db.execute("INSERT INTO b VALUES (1), (2), (3)")
            db.planner.enable_hashjoin = hashjoin
            db.planner.enable_pushdown = hashjoin
            db.reseed(7)
            results.append(db.query_value(
                "SELECT count(*) FROM a, b WHERE a.x > random() * 2"))
        assert results[0] == results[1]

    def test_incomparable_key_types_raise_like_nested_loop(self):
        from repro.sql.errors import TypeError_
        for hashjoin in (True, False):
            db = Database()
            db.execute("CREATE TABLE a(x int)")
            db.execute("CREATE TABLE t(s text)")
            db.execute("INSERT INTO a VALUES (1)")
            db.execute("INSERT INTO t VALUES ('1')")
            db.planner.enable_hashjoin = hashjoin
            with pytest.raises(TypeError_):
                db.query_all("SELECT * FROM a JOIN t ON a.x = t.s")


class TestPowerOperatorEdgeValues:
    def test_infinite_exponent_takes_ieee_semantics(self, db):
        assert db.query_value("SELECT (-2.0) ^ (1e308 * 10)") == float("inf")

    def test_nan_exponent_propagates(self, db):
        import math
        value = db.query_value("SELECT 2 ^ (1e308 * 10 - 1e308 * 10)")
        assert math.isnan(value)


# ---------------------------------------------------------------------------
# Ordered access paths vs. scan-and-sort
# ---------------------------------------------------------------------------


def _ordered_db(seed: int, rows: int = 400) -> Database:
    """Randomized table with duplicate keys and NULLs in every column."""
    import random as _random

    rng = _random.Random(seed)
    db = Database(seed=seed)
    db.execute("CREATE TABLE d(k int, v int, u int)")
    table = db.catalog.get_table("d")
    for i in range(rows):
        k = None if rng.random() < 0.1 else rng.randrange(40)
        v = None if rng.random() < 0.1 else rng.randrange(1000)
        table.insert((k, v, i))  # u is unique: a deterministic tiebreak
    return db


def _baseline(db: Database) -> None:
    """Force the seed access paths (SeqScan + full Sort + hash/nested)."""
    db.planner.enable_rangescan = False
    db.planner.enable_sort_elim = False
    db.planner.enable_topn = False
    db.planner.enable_mergejoin = False
    db.clear_plan_cache()


class TestOrderedPathsDifferential:
    """IndexRangeScan / TopN / MergeJoin vs. SeqScan + Sort / NestLoop on
    randomized data — DESC, duplicate keys, NULL keys, empty ranges and
    LIMIT 0 included.  ORDER BY keys always end in the unique column so
    tie order is pinned and row-for-row comparison is exact."""

    RANGE_QUERIES = [
        "SELECT k, v, u FROM d WHERE k >= 10 AND k < 20 ORDER BY u",
        "SELECT k, v, u FROM d WHERE k > 35 ORDER BY u",
        "SELECT k, v, u FROM d WHERE k <= 3 ORDER BY u",
        "SELECT k, v, u FROM d WHERE v BETWEEN 100 AND 200 ORDER BY u",
        "SELECT k, v, u FROM d WHERE k > 20 AND k < 10 ORDER BY u",  # empty
        "SELECT k, v, u FROM d WHERE k >= 39 AND k <= 39 ORDER BY u",
    ]

    @pytest.mark.parametrize("seed", [3, 11, 2024])
    def test_range_scans_agree(self, seed):
        db = _ordered_db(seed)
        fast = [db.query_all(sql) for sql in self.RANGE_QUERIES]
        _baseline(db)
        slow = [db.query_all(sql) for sql in self.RANGE_QUERIES]
        for sql, a, b in zip(self.RANGE_QUERIES, slow, fast):
            assert rows_equal(a, b, ordered=True), sql

    ORDER_QUERIES = [
        "SELECT k, u FROM d ORDER BY k, u",
        "SELECT k, u FROM d ORDER BY k DESC, u DESC",
        "SELECT k, u FROM d ORDER BY k, u LIMIT 25",
        "SELECT k, u FROM d ORDER BY k DESC, u DESC LIMIT 25",
        "SELECT k, u FROM d ORDER BY k, u LIMIT 0",
        "SELECT k, u FROM d ORDER BY k, u LIMIT 10 OFFSET 390",
        "SELECT k, u FROM d ORDER BY u LIMIT 7",
        "SELECT k, u FROM d ORDER BY u DESC LIMIT 7",
    ]

    @pytest.mark.parametrize("seed", [3, 11, 2024])
    def test_ordered_delivery_and_topn_agree(self, seed):
        db = _ordered_db(seed)
        db.execute("CREATE INDEX d_ku ON d(k, u)")
        db.execute("CREATE INDEX d_u ON d(u)")
        fast = [db.query_all(sql) for sql in self.ORDER_QUERIES]
        explains = [db.explain(sql) for sql in self.ORDER_QUERIES]
        _baseline(db)
        slow = [db.query_all(sql) for sql in self.ORDER_QUERIES]
        for sql, a, b in zip(self.ORDER_QUERIES, slow, fast):
            assert rows_equal(a, b, ordered=True), sql
        # The index really served the fully-matching orderings.
        assert "IndexRangeScan" in explains[0]
        assert "IndexRangeScan" in explains[1]

    def test_topn_without_any_index_agrees(self):
        db = _ordered_db(99)
        sql = "SELECT k, v, u FROM d ORDER BY v DESC, u LIMIT 13"
        assert "TopN" in db.explain(sql)
        fast = db.query_all(sql)
        _baseline(db)
        assert rows_equal(db.query_all(sql), fast, ordered=True)

    def test_prefix_elimination_is_order_correct(self):
        """ORDER BY a prefix of a wider index: tie order is unspecified by
        SQL, so assert the multiset and the ordering constraint instead of
        row-for-row equality."""
        db = _ordered_db(5)
        db.execute("CREATE INDEX d_ku ON d(k, u)")
        sql = "SELECT k FROM d ORDER BY k"
        assert "Sort" not in db.explain(sql)
        fast = db.query_all(sql)
        keys = [row[0] for row in fast]
        non_null = [key for key in keys if key is not None]
        assert non_null == sorted(non_null)
        assert all(key is None for key in keys[len(non_null):])
        _baseline(db)
        assert sorted(keys, key=lambda k: (k is None, k or 0)) == \
            [row[0] for row in db.query_all(sql)]

    @pytest.mark.parametrize("seed", [3, 11])
    def test_merge_join_agrees_with_hash_and_nested_loop(self, seed):
        import random as _random

        rng = _random.Random(seed)
        db = Database(seed=seed)
        db.execute("CREATE TABLE l(k int, a int)")
        db.execute("CREATE TABLE r(k int, b int)")
        for i in range(150):
            db.catalog.get_table("l").insert(
                (None if rng.random() < 0.1 else rng.randrange(25), i))
        for i in range(120):
            db.catalog.get_table("r").insert(
                (None if rng.random() < 0.1 else rng.randrange(25), i))
        db.execute("CREATE INDEX l_k ON l(k)")
        db.execute("CREATE INDEX r_k ON r(k)")
        queries = [
            "SELECT l.k, l.a, r.b FROM l JOIN r ON l.k = r.k "
            "ORDER BY l.a, r.b",
            "SELECT count(*) FROM l, r WHERE l.k = r.k AND l.a < r.b",
            "SELECT count(*) FROM l JOIN r ON l.k = r.k AND l.a % 2 = 0",
        ]
        assert "MergeJoin" in db.explain(queries[0])
        merge = [db.query_all(sql) for sql in queries]
        db.planner.enable_mergejoin = False
        db.clear_plan_cache()
        hashed = [db.query_all(sql) for sql in queries]
        db.planner.enable_hashjoin = False
        db.planner.enable_pushdown = False
        db.planner.enable_rangescan = False
        db.planner.enable_sort_elim = False
        db.planner.enable_topn = False
        db.clear_plan_cache()
        nested = [db.query_all(sql) for sql in queries]
        for sql, m, h, n in zip(queries, merge, hashed, nested):
            assert rows_equal(n, h, ordered=True), sql
            assert rows_equal(n, m, ordered=True), sql

    def test_dml_between_probes_agrees(self):
        """The incrementally-maintained index and a fresh scan must agree
        after every DML statement of a mixed sequence."""
        db = _ordered_db(17)
        db.execute("CREATE INDEX d_v ON d(v)")
        probe = "SELECT v, u FROM d WHERE v >= 250 AND v < 750 ORDER BY v, u"
        statements = [
            "DELETE FROM d WHERE v >= 300 AND v < 350",
            "UPDATE d SET v = v + 17 WHERE v BETWEEN 500 AND 600",
            "INSERT INTO d VALUES (1, 500, 9001)",
            "UPDATE d SET v = NULL WHERE v >= 740",
            "DELETE FROM d WHERE v IS NULL",
        ]
        for statement in statements:
            db.execute(statement)
            fast = db.query_all(probe)
            db.planner.enable_rangescan = False
            db.planner.enable_sort_elim = False
            db.clear_plan_cache()
            slow = db.query_all(probe)
            db.planner.enable_rangescan = True
            db.planner.enable_sort_elim = True
            db.clear_plan_cache()
            assert rows_equal(slow, fast, ordered=True), statement


# ---------------------------------------------------------------------------
# Vectorized vs. row-at-a-time execution
# ---------------------------------------------------------------------------


def _vector_db(seed: int, rows: int) -> Database:
    """Randomized single table with NULL- and NaN-heavy columns."""
    import random as _random

    rng = _random.Random(seed)
    db = Database(seed=seed)
    db.execute("CREATE TABLE v(a int, b int, f double precision, s text)")
    table = db.catalog.get_table("v")
    for i in range(rows):
        a = None if rng.random() < 0.3 else rng.randrange(-50, 50)
        b = None if rng.random() < 0.3 else rng.randrange(10)
        roll = rng.random()
        f = (None if roll < 0.25 else
             float("nan") if roll < 0.5 else rng.uniform(-5, 5))
        s = None if rng.random() < 0.3 else f"s{rng.randrange(5)}"
        table.insert((a, b, f, s))
    return db


class TestVectorizedDifferential:
    """The batch engine vs. the row engine on the same statements — the
    batch-size sweep runs each query at batch size 1 and rows±1 (and the
    default 1024) so off-by-one drain bugs at batch boundaries can't hide,
    per the empty-batch / LIMIT 0 / all-rejected-predicate edge cases."""

    QUERIES = [
        "SELECT a, b FROM v",
        "SELECT count(*), sum(a), avg(a), min(b), max(b) FROM v",
        "SELECT sum(f), count(f) FROM v",                 # NaN + NULL heavy
        "SELECT a FROM v WHERE a % 2 = 0",
        "SELECT a, f FROM v WHERE b % 3 = 1 AND a IS NOT NULL",
        "SELECT b, count(*), sum(a) FROM v GROUP BY b",
        "SELECT b, avg(f) FROM v GROUP BY b HAVING count(*) > 3",
        "SELECT DISTINCT b FROM v",
        "SELECT count(DISTINCT b), count(DISTINCT s) FROM v",
        "SELECT coalesce(a, b, 0) + 1 FROM v",
        "SELECT CASE WHEN a % 2 = 0 THEN 'even' ELSE s END FROM v",
        "SELECT a FROM v WHERE s LIKE 's%' OR b IN (1, 2, NULL)",
        "SELECT upper(s), abs(a) FROM v WHERE f IS NULL",
        "SELECT a FROM v WHERE a > 999",                  # rejects every batch
        "SELECT a, b FROM v LIMIT 0",
        "SELECT sum(a) FROM v LIMIT 0",
        "SELECT a FROM v WHERE a BETWEEN -5 AND 5 LIMIT 3",
    ]

    def _both(self, db: Database, sql: str):
        db.execute("SET enable_vectorize = on")
        fast = db.query_all(sql)
        db.execute("SET enable_vectorize = off")
        slow = db.query_all(sql)
        db.execute("SET enable_vectorize = on")
        return fast, slow

    @pytest.mark.parametrize("seed", [0, 1])
    def test_default_batch_size(self, seed):
        db = _vector_db(seed, rows=257)
        for sql in self.QUERIES:
            fast, slow = self._both(db, sql)
            assert rows_equal(slow, fast, ordered="ORDER" in sql), sql

    @pytest.mark.parametrize("delta", [None, -1, 0, 1])
    def test_batch_boundary_sweep(self, delta, monkeypatch):
        """Batch size 1 and rows-1 / rows / rows+1: the drain loop crosses
        a batch boundary on the last row, exactly at it, or never."""
        from repro.sql.executor import vector

        rows = 40
        db = _vector_db(3, rows=rows)
        size = 1 if delta is None else rows + delta
        monkeypatch.setattr(vector, "BATCH_SIZE", size)
        for sql in self.QUERIES:
            fast, slow = self._both(db, sql)
            assert rows_equal(slow, fast, ordered="ORDER" in sql), \
                f"batch={size}: {sql}"

    def test_empty_table(self, db):
        db.execute("CREATE TABLE v(a int, b int, f double precision, s text)")
        for sql in self.QUERIES:
            fast, slow = self._both(db, sql)
            assert rows_equal(slow, fast, ordered=False), sql
