"""Differential testing: interpreter vs compiled, hash join vs nested loop.

Inspired by coverage-driven configuration validation, this suite drives the
same workload through two independent execution paths and asserts identical
results:

* PL/pgSQL functions executed by the interpreter *and* as the compiled
  ``WITH RECURSIVE`` query (argument sweeps over gcd, sign, a summing loop,
  and a bounded Collatz),
* join queries executed by the hash-join operator *and* the seed
  nested-loop path (inner/left/cross, NULL join keys).

It also pins the two engine bugs this differential setup surfaced: the
missing ``^`` power operator and the absent runaway-loop statement budget.
"""

from __future__ import annotations

import pytest

from repro.compiler import compile_plsql
from repro.sql import Database
from repro.sql.errors import ExecutionError, ParseError


# ---------------------------------------------------------------------------
# Interpreted vs compiled PL/pgSQL
# ---------------------------------------------------------------------------

GCD = """
CREATE FUNCTION gcd(a int, b int) RETURNS int AS $$
DECLARE t int;
BEGIN
  WHILE b <> 0 LOOP
    t := b;
    b := a % b;
    a := t;
  END LOOP;
  RETURN a;
END;
$$ LANGUAGE plpgsql"""

SIGN_FN = """
CREATE FUNCTION sign_of(n int) RETURNS int AS $$
BEGIN
  IF n > 0 THEN RETURN 1;
  ELSIF n < 0 THEN RETURN -1;
  END IF;
  RETURN 0;
END;
$$ LANGUAGE plpgsql"""

SUM_LOOP = """
CREATE FUNCTION sum_to(n int) RETURNS int AS $$
DECLARE total int := 0; i int := 1;
BEGIN
  WHILE i <= n LOOP
    total := total + i;
    i := i + 1;
  END LOOP;
  RETURN total;
END;
$$ LANGUAGE plpgsql"""

COLLATZ = """
CREATE FUNCTION collatz(n int, budget int) RETURNS int AS $$
DECLARE steps int := 0;
BEGIN
  WHILE n <> 1 AND steps < budget LOOP
    IF n % 2 = 0 THEN n := n / 2;
    ELSE n := 3 * n + 1;
    END IF;
    steps := steps + 1;
  END LOOP;
  RETURN steps;
END;
$$ LANGUAGE plpgsql"""


def _register_both(db: Database, source: str) -> str:
    """Register *source* interpreted under its own name and compiled under
    ``<name>_c``; return the base name."""
    from repro.sql import ast as A
    from repro.sql.parser import parse_statement

    statement = parse_statement(source)
    assert isinstance(statement, A.CreateFunction)
    db.execute_ast(statement)
    compiled = compile_plsql(source, db)
    compiled.register(db, name=f"{statement.name}_c")
    return statement.name


class TestInterpreterVsCompiled:
    @pytest.mark.parametrize("source,calls", [
        (GCD, [(a, b) for a in (0, 1, 12, 270, 1071) for b in (0, 1, 462)]),
        (SIGN_FN, [(n,) for n in range(-3, 4)]),
        (SUM_LOOP, [(n,) for n in (-1, 0, 1, 2, 10, 100)]),
        (COLLATZ, [(n, 200) for n in (1, 2, 6, 7, 27, 97)]),
    ])
    def test_argument_sweep_agrees(self, db, source, calls):
        name = _register_both(db, source)
        holes = ", ".join(f"${i + 1}" for i in range(len(calls[0])))
        for args in calls:
            interpreted = db.query_value(f"SELECT {name}({holes})", list(args))
            compiled = db.query_value(f"SELECT {name}_c({holes})", list(args))
            assert compiled == interpreted, (name, args)

    def test_sweep_from_table_context(self, db):
        """Calls evaluated per row of a query, both ways."""
        name = _register_both(db, GCD)
        db.execute("CREATE TABLE pairs(a int, b int)")
        db.execute("INSERT INTO pairs VALUES (12, 18), (270, 192), (7, 13), "
                   "(100, 75), (0, 5)")
        interpreted = db.query_all(
            f"SELECT a, b, {name}(a, b) FROM pairs ORDER BY a, b")
        compiled = db.query_all(
            f"SELECT a, b, {name}_c(a, b) FROM pairs ORDER BY a, b")
        assert compiled == interpreted


# ---------------------------------------------------------------------------
# Regression: the ^ power operator
# ---------------------------------------------------------------------------


class TestPowerOperator:
    def test_basic_power(self, db):
        assert db.query_value("SELECT 2 ^ 10") == 1024.0
        assert isinstance(db.query_value("SELECT 2 ^ 2"), float)

    def test_precedence_binds_tighter_than_multiplication(self, db):
        assert db.query_value("SELECT 2 ^ 2 * 3") == 12.0
        assert db.query_value("SELECT 3 * 2 ^ 2") == 12.0

    def test_unary_minus_binds_tighter_than_power(self, db):
        assert db.query_value("SELECT -2 ^ 2") == 4.0

    def test_left_associative(self, db):
        assert db.query_value("SELECT 2 ^ 3 ^ 3") == 512.0

    def test_fractional_and_negative_exponents(self, db):
        assert db.query_value("SELECT 4 ^ 0.5") == 2.0
        assert db.query_value("SELECT 2 ^ -1") == 0.5

    def test_null_propagates(self, db):
        assert db.query_value("SELECT NULL ^ 2") is None
        assert db.query_value("SELECT 2 ^ NULL") is None

    def test_error_cases(self, db):
        with pytest.raises(ExecutionError):
            db.query_value("SELECT 0 ^ -1")
        with pytest.raises(ExecutionError):
            db.query_value("SELECT (-8) ^ 0.5")

    def test_usable_from_plpgsql(self, db):
        db.execute("""CREATE FUNCTION pow2(n int) RETURNS double precision AS
            $$ BEGIN RETURN 2 ^ n; END; $$ LANGUAGE plpgsql""")
        assert db.query_value("SELECT pow2(8)") == 256.0

    def test_lexes_as_operator_not_error(self):
        from repro.sql.lexer import tokenize
        tokens = tokenize("2 ^ 10")
        assert [t.value for t in tokens[:3]] == [2, "^", 10]

    def test_trailing_garbage_still_rejected(self, db):
        with pytest.raises(ParseError):
            db.execute("SELECT 2 ^")


# ---------------------------------------------------------------------------
# Regression: runaway-loop statement budget
# ---------------------------------------------------------------------------

DIVERGING = """
CREATE FUNCTION diverge(n int) RETURNS int AS $$
BEGIN
  WHILE n <> 1 LOOP
    IF n % 2 = 0 THEN n := n / 2; ELSE n := 3 * n + 1; END IF;
  END LOOP;
  RETURN n;
END;
$$ LANGUAGE plpgsql"""


class TestStatementBudget:
    def test_nonterminating_loop_raises_instead_of_hanging(self, db):
        db.execute(DIVERGING)
        db.max_interp_statements = 10_000
        with pytest.raises(ExecutionError, match="diverge"):
            # Collatz from 0 loops 0 -> 0 forever.
            db.query_value("SELECT diverge(0)")

    def test_error_names_the_limit(self, db):
        db.execute(DIVERGING)
        db.max_interp_statements = 5_000
        with pytest.raises(ExecutionError, match="max_interp_statements=5000"):
            db.query_value("SELECT diverge(0)")

    def test_terminating_calls_unaffected(self, db):
        db.execute(DIVERGING)
        assert db.query_value("SELECT diverge(27)") == 1

    def test_budget_is_per_activation(self, db):
        db.execute(DIVERGING)
        db.max_interp_statements = 2_000
        # Many short activations must not accumulate into the budget.
        for _ in range(5):
            assert db.query_value("SELECT diverge(97)") == 1

    def test_condition_only_loop_is_budgeted(self, db):
        db.execute("""CREATE FUNCTION spin() RETURNS int AS $$
            BEGIN
              WHILE true LOOP
              END LOOP;
              RETURN 0;
            END; $$ LANGUAGE plpgsql""")
        db.max_interp_statements = 1_000
        with pytest.raises(ExecutionError, match="spin"):
            db.query_value("SELECT spin()")


# ---------------------------------------------------------------------------
# Hash join vs nested loop
# ---------------------------------------------------------------------------


def _join_db(hashjoin: bool) -> Database:
    db = Database()
    db.execute("CREATE TABLE l(id int, v text)")
    db.execute("CREATE TABLE r(id int, w text)")
    db.execute("INSERT INTO l VALUES (1,'a'), (2,'b'), (2,'b2'), (3,'c'), "
               "(NULL,'ln')")
    db.execute("INSERT INTO r VALUES (2,'R2'), (3,'R3'), (3,'R3b'), (4,'R4'), "
               "(NULL,'rn')")
    db.planner.enable_hashjoin = hashjoin
    db.planner.enable_pushdown = hashjoin
    return db


JOIN_QUERIES = [
    "SELECT l.v, r.w FROM l JOIN r ON l.id = r.id",
    "SELECT l.v, r.w FROM l LEFT JOIN r ON l.id = r.id",
    "SELECT l.v, r.w FROM l, r WHERE l.id = r.id",
    "SELECT count(*) FROM l CROSS JOIN r",
    "SELECT l.v, r.w FROM l LEFT JOIN r ON l.id = r.id AND r.w <> 'R3'",
    "SELECT l.v, r.w FROM l JOIN r ON l.id = r.id WHERE l.v <> 'b' AND r.w <> 'R4'",
    "SELECT l.v, r.w FROM l JOIN r ON l.id = r.id AND l.v < r.w",
]


class TestHashJoinEquivalence:
    @pytest.mark.parametrize("sql", JOIN_QUERIES)
    def test_hash_and_nestloop_agree(self, sql):
        hashed = sorted(_join_db(True).query_all(sql), key=str)
        nested = sorted(_join_db(False).query_all(sql), key=str)
        assert hashed == nested

    def test_null_keys_never_match(self):
        for hashjoin in (True, False):
            db = _join_db(hashjoin)
            rows = db.query_all(
                "SELECT l.v, r.w FROM l JOIN r ON l.id = r.id "
                "WHERE l.v = 'ln' OR r.w = 'rn'")
            assert rows == []
            left = db.query_all(
                "SELECT l.v, r.w FROM l LEFT JOIN r ON l.id = r.id "
                "WHERE l.v = 'ln'")
            assert left == [("ln", None)]

    def test_explain_names_strategies(self):
        db = _join_db(True)
        assert "HashJoin" in db.explain(
            "SELECT 1 FROM l JOIN r ON l.id = r.id")
        non_equi = db.explain("SELECT 1 FROM l JOIN r ON l.id < r.id")
        assert "NestLoop" in non_equi and "HashJoin" not in non_equi
        lateral = db.explain(
            "SELECT 1 FROM l LEFT JOIN LATERAL (SELECT w FROM r "
            "WHERE r.id = l.id) x ON true")
        assert "NestLoop" in lateral and "HashJoin" not in lateral

    def test_pushdown_visible_in_explain(self):
        db = _join_db(True)
        text = db.explain("SELECT 1 FROM l JOIN r ON l.id = r.id "
                          "WHERE l.v = 'a'")
        assert "pushed-down filter" in text

    def test_where_conjunct_on_nullable_side_not_pushed(self):
        # WHERE over a LEFT JOIN's right side must see NULL-filled rows.
        for hashjoin in (True, False):
            db = _join_db(hashjoin)
            rows = db.query_all(
                "SELECT l.v FROM l LEFT JOIN r ON l.id = r.id "
                "WHERE r.w IS NULL ORDER BY l.v")
            assert rows == [("a",), ("ln",)]

    def test_build_side_follows_estimates(self):
        db = Database()
        db.execute("CREATE TABLE small(id int)")
        db.execute("CREATE TABLE big(id int)")
        db.execute("INSERT INTO small VALUES (1), (2)")
        db.execute("INSERT INTO big " + " UNION ALL ".join(
            f"SELECT {i}" for i in range(50)))
        assert "[build=left]" in db.explain(
            "SELECT 1 FROM small JOIN big ON small.id = big.id")
        assert "[build=right]" in db.explain(
            "SELECT 1 FROM big JOIN small ON small.id = big.id")

    def test_profiler_counts_builds(self):
        db = _join_db(True)
        db.query_all("SELECT 1 FROM l JOIN r ON l.id = r.id")
        assert db.profiler.counts["hash join builds"] == 1
        assert db.profiler.counts["hash join build rows"] == 4

    def test_on_condition_cannot_reference_later_from_items(self):
        """Forward references in ON fail at plan time (as PostgreSQL and
        the seed planner do) instead of reading unfilled slots."""
        from repro.sql.errors import NameResolutionError
        db = _join_db(True)
        db.execute("CREATE TABLE c(id int)")
        db.execute("INSERT INTO c VALUES (2)")
        with pytest.raises(NameResolutionError):
            db.query_all("SELECT 1 FROM l JOIN r ON l.id = c.id, c")
        # Back-references from a parenthesized subtree keep working: the
        # ON condition only constrains l, so both l rows with id = 2 pair
        # with every r row.
        query = "SELECT count(*) FROM c, (l JOIN r ON l.id = c.id)"
        assert db.query_all(query) == [(10,)]
        nested = _join_db(False)
        nested.execute("CREATE TABLE c(id int)")
        nested.execute("INSERT INTO c VALUES (2)")
        assert nested.query_all(query) == [(10,)]

    def test_volatile_conjuncts_are_not_pushed(self):
        """random() in WHERE must evaluate once per joined row under both
        strategies, so pushdown may not move it."""
        results = []
        for hashjoin in (True, False):
            db = Database(seed=7)
            db.execute("CREATE TABLE a(x int)")
            db.execute("CREATE TABLE b(y int)")
            db.execute("INSERT INTO a VALUES (1), (2), (3)")
            db.execute("INSERT INTO b VALUES (1), (2), (3)")
            db.planner.enable_hashjoin = hashjoin
            db.planner.enable_pushdown = hashjoin
            db.reseed(7)
            results.append(db.query_value(
                "SELECT count(*) FROM a, b WHERE a.x > random() * 2"))
        assert results[0] == results[1]

    def test_incomparable_key_types_raise_like_nested_loop(self):
        from repro.sql.errors import TypeError_
        for hashjoin in (True, False):
            db = Database()
            db.execute("CREATE TABLE a(x int)")
            db.execute("CREATE TABLE t(s text)")
            db.execute("INSERT INTO a VALUES (1)")
            db.execute("INSERT INTO t VALUES ('1')")
            db.planner.enable_hashjoin = hashjoin
            with pytest.raises(TypeError_):
                db.query_all("SELECT * FROM a JOIN t ON a.x = t.s")


class TestPowerOperatorEdgeValues:
    def test_infinite_exponent_takes_ieee_semantics(self, db):
        assert db.query_value("SELECT (-2.0) ^ (1e308 * 10)") == float("inf")

    def test_nan_exponent_propagates(self, db):
        import math
        value = db.query_value("SELECT 2 ^ (1e308 * 10 - 1e308 * 10)")
        assert math.isnan(value)
