"""Window-function execution: ranks, offsets, frames, exclusion, named
windows — including the exact construction the paper's Q2 depends on."""

import pytest

from repro.sql.errors import PlanError


@pytest.fixture()
def wdb(db):
    db.execute("CREATE TABLE w(g text, k int, v int)")
    db.execute("INSERT INTO w VALUES "
               "('a', 1, 10), ('a', 2, 20), ('a', 2, 30), ('a', 4, 40), "
               "('b', 1, 100), ('b', 2, 200)")
    return db


class TestRankFamily:
    def test_row_number(self, wdb):
        rows = wdb.query_all("SELECT k, row_number() OVER (ORDER BY k) "
                             "FROM w WHERE g = 'a' ORDER BY 2")
        assert [r[1] for r in rows] == [1, 2, 3, 4]

    def test_rank_with_ties(self, wdb):
        rows = wdb.query_all("SELECT k, rank() OVER (ORDER BY k) FROM w "
                             "WHERE g = 'a' ORDER BY k, 2")
        assert [r[1] for r in rows] == [1, 2, 2, 4]

    def test_dense_rank(self, wdb):
        rows = wdb.query_all("SELECT dense_rank() OVER (ORDER BY k) FROM w "
                             "WHERE g = 'a' ORDER BY 1")
        assert [r[0] for r in rows] == [1, 2, 2, 3]

    def test_partition_by(self, wdb):
        rows = wdb.query_all(
            "SELECT g, row_number() OVER (PARTITION BY g ORDER BY k) "
            "FROM w ORDER BY g, 2")
        assert rows == [("a", 1), ("a", 2), ("a", 3), ("a", 4),
                        ("b", 1), ("b", 2)]

    def test_ntile(self, wdb):
        rows = wdb.query_all("SELECT ntile(2) OVER (ORDER BY k) FROM w "
                             "WHERE g = 'a' ORDER BY 1")
        assert [r[0] for r in rows] == [1, 1, 2, 2]


class TestOffsets:
    def test_lag_lead(self, wdb):
        rows = wdb.query_all(
            "SELECT v, lag(v) OVER (ORDER BY v), lead(v) OVER (ORDER BY v) "
            "FROM w WHERE g = 'a' ORDER BY v")
        assert rows == [(10, None, 20), (20, 10, 30), (30, 20, 40),
                        (40, 30, None)]

    def test_lag_with_offset_and_default(self, wdb):
        rows = wdb.query_all(
            "SELECT lag(v, 2, -1) OVER (ORDER BY v) FROM w WHERE g = 'a' "
            "ORDER BY 1")
        assert sorted(r[0] for r in rows) == [-1, -1, 10, 20]

    def test_first_last_value_default_frame(self, wdb):
        rows = wdb.query_all(
            "SELECT v, first_value(v) OVER (ORDER BY v), "
            "last_value(v) OVER (ORDER BY v) FROM w WHERE g = 'a' ORDER BY v")
        # default frame = up to current peer group
        assert rows == [(10, 10, 10), (20, 10, 20), (30, 10, 30),
                        (40, 10, 40)]

    def test_nth_value(self, wdb):
        rows = wdb.query_all(
            "SELECT nth_value(v, 2) OVER (ORDER BY v ROWS BETWEEN UNBOUNDED "
            "PRECEDING AND UNBOUNDED FOLLOWING) FROM w WHERE g='a' LIMIT 1")
        assert rows == [(20,)]


class TestAggregatesOverFrames:
    def test_running_sum_default_frame_peers(self, wdb):
        # RANGE mode: peers (k=2 twice) share the cumulated value
        rows = wdb.query_all(
            "SELECT k, sum(v) OVER (ORDER BY k) FROM w WHERE g = 'a' "
            "ORDER BY k, v")
        assert rows == [(1, 10), (2, 60), (2, 60), (4, 100)]

    def test_rows_frame_running(self, wdb):
        rows = wdb.query_all(
            "SELECT v, sum(v) OVER (ORDER BY v ROWS UNBOUNDED PRECEDING) "
            "FROM w WHERE g = 'a' ORDER BY v")
        assert rows == [(10, 10), (20, 30), (30, 60), (40, 100)]

    def test_sliding_rows_frame(self, wdb):
        rows = wdb.query_all(
            "SELECT sum(v) OVER (ORDER BY v ROWS BETWEEN 1 PRECEDING AND "
            "1 FOLLOWING) FROM w WHERE g = 'a' ORDER BY 1")
        assert [r[0] for r in rows] == [30, 60, 70, 90]

    def test_exclude_current_row(self, wdb):
        # The paper's Q2 construction: cumulative sum excluding self.
        rows = wdb.query_all(
            "SELECT v, coalesce(sum(v) OVER lt, 0) AS lo, sum(v) OVER leq AS hi "
            "FROM w WHERE g = 'a' "
            "WINDOW leq AS (ORDER BY v), "
            "       lt AS (leq ROWS UNBOUNDED PRECEDING EXCLUDE CURRENT ROW) "
            "ORDER BY v")
        assert rows == [(10, 0, 10), (20, 10, 30), (30, 30, 60),
                        (40, 60, 100)]

    def test_exclude_group_and_ties(self, wdb):
        rows = wdb.query_all(
            "SELECT k, sum(k) OVER (ORDER BY k ROWS BETWEEN UNBOUNDED "
            "PRECEDING AND UNBOUNDED FOLLOWING EXCLUDE GROUP) FROM w "
            "WHERE g = 'a' ORDER BY k, 2")
        # total k = 9; k=2 rows exclude both 2s -> 5
        assert rows == [(1, 8), (2, 5), (2, 5), (4, 5)]
        rows = wdb.query_all(
            "SELECT k, sum(k) OVER (ORDER BY k ROWS BETWEEN UNBOUNDED "
            "PRECEDING AND UNBOUNDED FOLLOWING EXCLUDE TIES) FROM w "
            "WHERE g = 'a' ORDER BY k, 2")
        # k=2 rows keep themselves but drop their peer -> 9 - 2 = 7
        assert rows == [(1, 9), (2, 7), (2, 7), (4, 9)]

    def test_count_star_window(self, wdb):
        rows = wdb.query_all(
            "SELECT count(*) OVER (PARTITION BY g) FROM w ORDER BY 1")
        assert [r[0] for r in rows] == [2, 2, 4, 4, 4, 4]

    def test_range_offset_frame(self, wdb):
        rows = wdb.query_all(
            "SELECT k, sum(k) OVER (ORDER BY k RANGE BETWEEN 1 PRECEDING "
            "AND 1 FOLLOWING) FROM w WHERE g = 'a' ORDER BY k, 2")
        # k=1: {1,2,2}=5; k=2: {1,2,2}=5; k=4: {4}=4
        assert rows == [(1, 5), (2, 5), (2, 5), (4, 4)]

    def test_no_order_by_whole_partition(self, wdb):
        rows = wdb.query_all("SELECT sum(v) OVER () FROM w WHERE g = 'b'")
        assert rows == [(300,), (300,)]

    def test_empty_frame_yields_null(self, wdb):
        rows = wdb.query_all(
            "SELECT sum(v) OVER (ORDER BY v ROWS BETWEEN 2 FOLLOWING AND "
            "3 FOLLOWING) FROM w WHERE g = 'b'")
        assert set(rows) == {(None,)}


class TestWindowSpecRules:
    def test_named_window_frame_refinement(self, wdb):
        rows = wdb.query_all(
            "SELECT sum(v) OVER (base ROWS UNBOUNDED PRECEDING) FROM w "
            "WHERE g = 'b' WINDOW base AS (ORDER BY v) ORDER BY 1")
        assert [r[0] for r in rows] == [100, 300]

    def test_unknown_window_name(self, wdb):
        with pytest.raises(PlanError):
            wdb.query_all("SELECT sum(v) OVER missing FROM w")

    def test_cannot_override_partition(self, wdb):
        with pytest.raises(PlanError):
            wdb.query_all(
                "SELECT sum(v) OVER (base PARTITION BY g) FROM w "
                "WINDOW base AS (PARTITION BY k)")

    def test_window_function_in_where_rejected(self, wdb):
        with pytest.raises(PlanError):
            wdb.query_all("SELECT v FROM w WHERE sum(v) OVER () > 0")

    def test_window_over_grouped_rows(self, wdb):
        rows = wdb.query_all(
            "SELECT g, sum(sum(v)) OVER (ORDER BY g ROWS UNBOUNDED "
            "PRECEDING) FROM w GROUP BY g ORDER BY g")
        assert rows == [("a", 100), ("b", 400)]

    def test_multiple_windows_one_query(self, wdb):
        rows = wdb.query_all(
            "SELECT row_number() OVER (ORDER BY v), "
            "sum(v) OVER (PARTITION BY g) FROM w ORDER BY 1")
        assert len(rows) == 6
