"""Unit tests for the SQL value domain and three-valued logic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sql.errors import TypeError_
from repro.sql.values import (Row, compare, render_value, row_sort_key,
                              sort_key, sql_and, sql_eq, sql_ge, sql_gt,
                              sql_le, sql_lt, sql_ne, sql_not, sql_or,
                              value_byte_size)


class TestCompare:
    def test_numbers(self):
        assert compare(1, 2) == -1
        assert compare(2.5, 2.5) == 0
        assert compare(3, 2.5) == 1

    def test_mixed_int_float(self):
        assert compare(1, 1.0) == 0

    def test_null_propagates(self):
        assert compare(None, 1) is None
        assert compare(1, None) is None
        assert compare(None, None) is None

    def test_strings(self):
        assert compare("a", "b") == -1
        assert compare("b", "b") == 0

    def test_rows_lexicographic(self):
        assert compare(Row([1, 2]), Row([1, 3])) == -1
        assert compare(Row([2, 0]), Row([1, 9])) == 1
        assert compare(Row([1, 2]), Row([1, 2])) == 0

    def test_row_with_null_field(self):
        # earlier field decides before the NULL is reached
        assert compare(Row([1, None]), Row([2, None])) == -1
        # NULL field reached -> comparison is NULL
        assert compare(Row([1, None]), Row([1, 2])) is None

    def test_row_arity_mismatch(self):
        with pytest.raises(TypeError_):
            compare(Row([1]), Row([1, 2]))

    def test_incompatible_types(self):
        with pytest.raises(TypeError_):
            compare(1, "a")
        with pytest.raises(TypeError_):
            compare(True, 1)

    def test_lists(self):
        assert compare([1, 2], [1, 3]) == -1
        assert compare([1, 2], [1, 2]) == 0
        assert compare([1, 2], [1, 2, 3]) == -1


class TestThreeValuedLogic:
    def test_comparison_operators(self):
        assert sql_eq(1, 1) is True
        assert sql_ne(1, 1) is False
        assert sql_lt(1, 2) is True
        assert sql_le(2, 2) is True
        assert sql_gt(1, 2) is False
        assert sql_ge(2, 3) is False
        assert sql_eq(None, 1) is None

    def test_and_truth_table(self):
        assert sql_and(True, True) is True
        assert sql_and(True, False) is False
        assert sql_and(False, None) is False  # false dominates
        assert sql_and(True, None) is None
        assert sql_and(None, None) is None

    def test_or_truth_table(self):
        assert sql_or(False, False) is False
        assert sql_or(True, None) is True  # true dominates
        assert sql_or(False, None) is None
        assert sql_or(None, None) is None

    def test_not(self):
        assert sql_not(True) is False
        assert sql_not(False) is True
        assert sql_not(None) is None

    @given(st.sampled_from([True, False, None]),
           st.sampled_from([True, False, None]))
    def test_de_morgan(self, a, b):
        assert sql_not(sql_and(a, b)) == sql_or(sql_not(a), sql_not(b))
        assert sql_not(sql_or(a, b)) == sql_and(sql_not(a), sql_not(b))

    @given(st.sampled_from([True, False, None]),
           st.sampled_from([True, False, None]),
           st.sampled_from([True, False, None]))
    def test_associativity(self, a, b, c):
        assert sql_and(sql_and(a, b), c) == sql_and(a, sql_and(b, c))
        assert sql_or(sql_or(a, b), c) == sql_or(a, sql_or(b, c))


class TestRow:
    def test_field_access(self):
        row = Row([1, 2], names=["x", "y"])
        assert row.field("x") == 1
        assert row.field("Y") == 2

    def test_field_missing(self):
        from repro.sql.errors import ExecutionError
        with pytest.raises(ExecutionError):
            Row([1], names=["x"]).field("z")

    def test_unnamed_field_access(self):
        from repro.sql.errors import ExecutionError
        with pytest.raises(ExecutionError):
            Row([1]).field("x")

    def test_equality_and_hash(self):
        assert Row([1, "a"]) == Row([1, "a"])
        assert hash(Row([1, "a"])) == hash(Row([1, "a"]))
        assert Row([1]) != Row([2])

    def test_iteration_and_len(self):
        row = Row([1, 2, 3])
        assert list(row) == [1, 2, 3]
        assert len(row) == 3
        assert row[1] == 2

    def test_name_count_mismatch(self):
        with pytest.raises(TypeError_):
            Row([1, 2], names=["only"])


class TestSortKeys:
    def test_nulls_sort_last_ascending(self):
        values = [3, None, 1, None, 2]
        ordered = sorted(values, key=sort_key)
        assert ordered == [1, 2, 3, None, None]

    def test_descending_via_row_sort_key(self):
        rows = [(1,), (3,), (None,), (2,)]
        ordered = sorted(rows, key=lambda r: row_sort_key(r, [True]))
        # DESC: biggest first, NULLs first (PostgreSQL default for DESC)
        assert ordered == [(None,), (3,), (2,), (1,)]

    def test_mixed_row_keys(self):
        rows = [(1, "b"), (1, "a"), (0, "z")]
        ordered = sorted(rows, key=lambda r: row_sort_key(r, [False, False]))
        assert ordered == [(0, "z"), (1, "a"), (1, "b")]

    @given(st.lists(st.one_of(st.none(), st.integers(-10, 10)), min_size=1))
    def test_sort_key_total_order(self, values):
        ordered = sorted(values, key=sort_key)
        non_null = [v for v in ordered if v is not None]
        assert non_null == sorted(non_null)
        if None in values:
            assert ordered[-1] is None


class TestByteSizes:
    def test_scalars(self):
        assert value_byte_size(None) == 0
        assert value_byte_size(True) == 1
        assert value_byte_size(7) == 8
        assert value_byte_size(1.5) == 8
        assert value_byte_size("abcd") == 5  # 1 header + 4 chars

    def test_row_and_array(self):
        assert value_byte_size(Row([1, 2])) == 24 + 16
        assert value_byte_size([1, 2, 3]) == 24 + 24

    @given(st.text(max_size=200))
    def test_text_size_linear(self, s):
        assert value_byte_size(s) == 1 + len(s)


class TestRender:
    def test_render_values(self):
        assert render_value(None) == "NULL"
        assert render_value(True) == "true"
        assert render_value(Row([1, 2])) == "(1,2)"
        assert render_value([1, None]) == "{1,NULL}"
