"""The internal lint (tools/lint_internal.py) as a tier-1 test.

Two halves: the real tree must be clean (the same gate CI runs), and the
individual rules must actually fire — exercised on synthetic modules so a
silently broken checker can't pass by matching nothing.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

TOOLS = Path(__file__).resolve().parent.parent / "tools"
sys.path.insert(0, str(TOOLS))

import lint_internal  # noqa: E402


def lint_source(tmp_path, rel: str, source: str):
    """Run the lint rules over one synthetic file placed at *rel* under a
    fake src root, returning the findings."""
    path = tmp_path / "src" / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    old_src = lint_internal.SRC
    old_repo = lint_internal.REPO
    lint_internal.SRC = tmp_path / "src"
    lint_internal.REPO = tmp_path
    try:
        return lint_internal.run([path])
    finally:
        lint_internal.SRC = old_src
        lint_internal.REPO = old_repo


def rules(findings) -> list[str]:
    return [finding.rule for finding in findings]


# ---------------------------------------------------------------------------
# the real tree is clean
# ---------------------------------------------------------------------------

def test_repository_is_lint_clean():
    findings = lint_internal.run()
    assert findings == [], "\n".join(str(f) for f in findings)


def test_declared_counters_includes_known_names():
    declared = lint_internal.declared_counters()
    assert "PLAN_CACHE_HIT" in declared
    assert "FUZZ_ANALYZER_CHECKS" in declared


# ---------------------------------------------------------------------------
# rule 1: cancellation polling
# ---------------------------------------------------------------------------

UNPOLLED_LOOP = """
def next(self):
    while True:
        row = self.child.next()
        if row is None:
            return None
"""

POLLED_LOOP = """
def next(self):
    while True:
        cancel.check()
        row = self.child.next()
        if row is None:
            return None
"""

ANNOTATED_LOOP = """
def next(self):
    while True:  # lint: bounded
        row = self.child.next()
        if row is None:
            return None
"""

ANNOTATED_ABOVE = """
def next(self):
    # lint: bounded
    while True:
        row = self.child.next()
        if row is None:
            return None
"""


def test_unpolled_loop_in_executor_is_flagged(tmp_path):
    findings = lint_source(tmp_path, "repro/sql/executor/fake.py",
                           UNPOLLED_LOOP)
    assert rules(findings) == ["cancel-poll"]


def test_polled_loop_is_clean(tmp_path):
    assert lint_source(tmp_path, "repro/sql/executor/fake.py",
                       POLLED_LOOP) == []


def test_bounded_annotation_suppresses(tmp_path):
    assert lint_source(tmp_path, "repro/sql/executor/fake.py",
                       ANNOTATED_LOOP) == []
    assert lint_source(tmp_path, "repro/sql/executor/fake.py",
                       ANNOTATED_ABOVE) == []


def test_isinstance_condition_is_structural(tmp_path):
    source = """
def walk(node):
    while isinstance(node, Let):
        node = node.body
"""
    assert lint_source(tmp_path, "repro/sql/executor/fake.py", source) == []


def test_loops_outside_hot_modules_are_ignored(tmp_path):
    findings = lint_source(tmp_path, "repro/sql/parser_helper.py",
                           UNPOLLED_LOOP)
    assert findings == []


# ---------------------------------------------------------------------------
# rule 2: bare except
# ---------------------------------------------------------------------------

def test_bare_except_is_flagged(tmp_path):
    source = """
try:
    risky()
except:
    pass
"""
    findings = lint_source(tmp_path, "repro/sql/anywhere.py", source)
    assert rules(findings) == ["bare-except"]


def test_typed_except_is_clean(tmp_path):
    source = """
try:
    risky()
except Exception:
    pass
"""
    assert lint_source(tmp_path, "repro/sql/anywhere.py", source) == []


# ---------------------------------------------------------------------------
# rule 3: profiler counters
# ---------------------------------------------------------------------------

def test_string_literal_counter_is_flagged(tmp_path):
    source = """
profiler.bump("plan cache hit")
"""
    findings = lint_source(tmp_path, "repro/sql/anywhere.py", source)
    assert rules(findings) == ["counter-literal"]


def test_unimported_constant_is_flagged(tmp_path):
    source = """
profiler.bump(SOME_COUNTER)
"""
    findings = lint_source(tmp_path, "repro/sql/anywhere.py", source)
    assert rules(findings) == ["counter-unimported"]


def test_imported_but_undeclared_counter_is_flagged(tmp_path):
    source = """
from repro.sql.profiler import TOTALLY_MADE_UP
profiler.bump(TOTALLY_MADE_UP)
"""
    findings = lint_source(tmp_path, "repro/sql/anywhere.py", source)
    assert rules(findings) == ["counter-undeclared"]


def test_imported_declared_counter_is_clean(tmp_path):
    source = """
from repro.sql.profiler import PLAN_CACHE_HIT
profiler.bump(PLAN_CACHE_HIT)
"""
    assert lint_source(tmp_path, "repro/sql/anywhere.py", source) == []


def test_main_exit_status(tmp_path, capsys):
    assert lint_internal.main() == 0
    out = capsys.readouterr().out
    assert "files clean" in out


def test_syntax_error_is_reported_not_raised(tmp_path):
    findings = lint_source(tmp_path, "repro/sql/broken.py", "def f(:\n")
    assert rules(findings) == ["syntax"]
