"""Static analyzer (`repro.analysis`): CHECK FUNCTION diagnostics,
volatility inference, the ``check_function_bodies`` DDL gate, and the
planner's volatility-widened batching.

House style for this file: every diagnostic code gets a *positive* test
(a function that provokes it) and rides next to a *clean negative* (a
near-identical function that must not provoke it).  The sweep at the end
asserts the soundness contract on the real paper workloads: functions
that run cleanly never carry an error-severity diagnostic.
"""

from __future__ import annotations

import pytest

from repro.analysis import (CATALOG, analyze_function, effective_volatility,
                            function_facts, function_is_pure, max_severity)
from repro.sql import Database
from repro.sql.errors import CompileError, NameResolutionError


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

def create(db: Database, source: str) -> None:
    db.execute(source)


def diags(db: Database, name: str):
    """CHECK FUNCTION through the SQL surface; returns the result rows."""
    return db.execute(f"CHECK FUNCTION {name}").rows


def codes(db: Database, name: str) -> set:
    return {row[2] for row in diags(db, name)}


def by_code(db: Database, name: str, code: str):
    return [row for row in diags(db, name) if row[2] == code]


@pytest.fixture
def db():
    database = Database(seed=0)
    database.execute("CREATE TABLE t(x int, y text)")
    database.execute("INSERT INTO t VALUES (1,'a'), (2,'b'), (3,'c')")
    return database


def plpgsql(name: str, body: str, params: str = "n int",
            returns: str = "int", tail: str = "") -> str:
    return (f"CREATE FUNCTION {name}({params}) RETURNS {returns} AS $$\n"
            f"{body}\n$$ LANGUAGE PLPGSQL{tail}")


# ---------------------------------------------------------------------------
# diagnostic catalog hygiene
# ---------------------------------------------------------------------------

def test_catalog_is_stable():
    # Codes are part of the public surface (scripts match on them); this
    # test pins the full set so a rename shows up as an explicit diff.
    assert set(CATALOG) == {
        "CF000", "CF001", "CF002", "CF003", "CF004",
        "DF001", "DF002", "DF003", "DF004", "DF005",
        "SQ001", "SQ002", "SQ003", "SQ004", "SQ005",
        "VL001", "VL002",
    }
    for code, (severity, description) in CATALOG.items():
        assert severity in ("info", "warning", "error")
        assert description


def test_rows_are_sorted_and_shaped(db):
    create(db, plpgsql("shape", """
BEGIN
  IF n > 0 THEN
    RETURN n;
  END IF;
END;
"""))
    result = db.execute("CHECK FUNCTION shape")
    assert result.columns == ["function", "severity", "code", "line",
                              "message"]
    rows = result.rows
    assert all(row[0] == "shape" for row in rows)
    assert rows == sorted(rows, key=lambda r: (r[3] is None, r[3], r[2]))


# ---------------------------------------------------------------------------
# control flow: CF001..CF004 (CF000 is covered in the SQL-function section)
# ---------------------------------------------------------------------------

def test_cf001_unreachable_code(db):
    create(db, plpgsql("dead", """
BEGIN
  RETURN n;
  n = n + 1;
END;
"""))
    rows = by_code(db, "dead", "CF001")
    assert rows and all(row[1] == "warning" for row in rows)


def test_cf002_never_returns_is_error(db):
    create(db, plpgsql("noret", """
DECLARE m int = 0;
BEGIN
  m = n + 1;
END;
"""))
    rows = by_code(db, "noret", "CF002")
    assert rows and rows[0][1] == "error"


def test_cf003_may_fall_off_is_warning(db):
    create(db, plpgsql("maybe", """
BEGIN
  IF n > 0 THEN
    RETURN n;
  END IF;
END;
"""))
    rows = by_code(db, "maybe", "CF003")
    assert rows and rows[0][1] == "warning"
    assert not by_code(db, "maybe", "CF002")


def test_cf004_infinite_loop(db):
    create(db, plpgsql("spin", """
DECLARE m int = 0;
BEGIN
  LOOP
    m = m + 1;
  END LOOP;
END;
"""))
    rows = by_code(db, "spin", "CF004")
    assert rows and rows[0][1] == "warning"


def test_loop_with_exit_is_not_infinite(db):
    create(db, plpgsql("bounded", """
DECLARE m int = 0;
BEGIN
  LOOP
    m = m + 1;
    EXIT WHEN m >= n;
  END LOOP;
  RETURN m;
END;
"""))
    assert "CF004" not in codes(db, "bounded")


def test_clean_function_has_only_volatility_info(db):
    create(db, plpgsql("clean", """
DECLARE a int = 0;
BEGIN
  FOR i IN 1..n LOOP
    a = a + i;
  END LOOP;
  RETURN a;
END;
"""))
    rows = diags(db, "clean")
    assert {row[2] for row in rows} == {"VL001"}
    assert all(row[1] == "info" for row in rows)


# ---------------------------------------------------------------------------
# dataflow: DF001..DF005
# ---------------------------------------------------------------------------

def test_df001_use_before_assignment(db):
    create(db, plpgsql("ubv", """
DECLARE m int;
BEGIN
  RETURN m + n;
END;
"""))
    rows = by_code(db, "ubv", "DF001")
    assert rows and rows[0][1] == "warning"
    assert "m" in rows[0][4]


def test_df001_not_flagged_when_assigned_first(db):
    create(db, plpgsql("okv", """
DECLARE m int;
BEGIN
  m = n * 2;
  RETURN m;
END;
"""))
    assert "DF001" not in codes(db, "okv")


def test_df002_dead_store(db):
    create(db, plpgsql("deadstore", """
DECLARE m int;
BEGIN
  m = n + 1;
  m = n + 2;
  RETURN m;
END;
"""))
    rows = by_code(db, "deadstore", "DF002")
    assert rows and rows[0][1] == "warning"


def test_df002_skips_declaration_initializers(db):
    # `DECLARE m int = 0` followed by an unconditional reassignment is the
    # defensive-default idiom, not a bug.
    create(db, plpgsql("defensive", """
DECLARE m int = 0;
BEGIN
  m = n + 1;
  RETURN m;
END;
"""))
    assert "DF002" not in codes(db, "defensive")


def test_df003_unused_variable(db):
    create(db, plpgsql("unusedvar", """
DECLARE ghost int = 7;
BEGIN
  RETURN n;
END;
"""))
    rows = by_code(db, "unusedvar", "DF003")
    assert rows and "ghost" in rows[0][4]


def test_df004_unused_parameter_is_info(db):
    create(db, plpgsql("unusedparam", """
BEGIN
  RETURN 1;
END;
"""))
    rows = by_code(db, "unusedparam", "DF004")
    assert rows and rows[0][1] == "info" and "n" in rows[0][4]


def test_df005_undeclared_assignment(db):
    create(db, plpgsql("undeclared", """
BEGIN
  phantom = n + 1;
  RETURN phantom;
END;
"""))
    rows = by_code(db, "undeclared", "DF005")
    # Unconditional assignment on the spine: fires on every call -> error.
    assert rows and rows[0][1] == "error"


def test_df005_conditional_is_warning(db):
    create(db, plpgsql("undeclared_cond", """
BEGIN
  IF n > 1000000 THEN
    phantom = 1;
  END IF;
  RETURN n;
END;
"""))
    rows = by_code(db, "undeclared_cond", "DF005")
    assert rows and rows[0][1] == "warning"


# ---------------------------------------------------------------------------
# embedded SQL: SQ001..SQ005
# ---------------------------------------------------------------------------

def test_sq001_unknown_table(db):
    create(db, plpgsql("badtable", """
DECLARE m int;
BEGIN
  m = (SELECT count(*) FROM no_such_table);
  RETURN m;
END;
"""))
    rows = by_code(db, "badtable", "SQ001")
    assert rows and rows[0][1] == "error"  # must-execute spine
    assert "no_such_table" in rows[0][4]


def test_sq001_conditional_is_warning(db):
    create(db, plpgsql("badtable_cond", """
DECLARE m int = 0;
BEGIN
  IF n < 0 THEN
    m = (SELECT count(*) FROM no_such_table);
  END IF;
  RETURN m;
END;
"""))
    rows = by_code(db, "badtable_cond", "SQ001")
    assert rows and rows[0][1] == "warning"


def test_sq002_unknown_column(db):
    create(db, plpgsql("badcol", """
DECLARE m int;
BEGIN
  m = (SELECT no_such_col FROM t);
  RETURN m;
END;
"""))
    rows = by_code(db, "badcol", "SQ002")
    assert rows and "no_such_col" in rows[0][4]


def test_sq002_not_fooled_by_params_or_ctes(db):
    create(db, plpgsql("goodcol", """
DECLARE m int;
BEGIN
  m = (SELECT x FROM t WHERE x = n LIMIT 1);
  RETURN m;
END;
"""))
    assert "SQ002" not in codes(db, "goodcol")
    assert "SQ001" not in codes(db, "goodcol")


def test_sq003_unknown_function(db):
    create(db, plpgsql("badfunc", """
BEGIN
  RETURN no_such_fn(n);
END;
"""))
    rows = by_code(db, "badfunc", "SQ003")
    assert rows and "no_such_fn" in rows[0][4]


def test_sq004_wrong_arity(db):
    create(db, plpgsql("callee_one", """
BEGIN
  RETURN n + 1;
END;
"""))
    create(db, plpgsql("badarity", """
BEGIN
  RETURN callee_one(n, n);
END;
"""))
    rows = by_code(db, "badarity", "SQ004")
    assert rows and "callee_one" in rows[0][4]


def test_sq005_literal_type_mismatch(db):
    create(db, plpgsql("badlit", """
DECLARE m int;
BEGIN
  m = 'hello';
  RETURN m;
END;
"""))
    rows = by_code(db, "badlit", "SQ005")
    assert rows and rows[0][1] == "warning"


def test_sq005_numeric_string_is_fine(db):
    create(db, plpgsql("oklit", """
DECLARE m int;
BEGIN
  m = '42';
  RETURN m;
END;
"""))
    assert "SQ005" not in codes(db, "oklit")


# ---------------------------------------------------------------------------
# volatility: VL001/VL002, inference, EXPLAIN surfacing
# ---------------------------------------------------------------------------

def test_vl001_pure_arithmetic_is_immutable(db):
    create(db, plpgsql("pure_add", """
BEGIN
  RETURN n + 1;
END;
"""))
    fdef = db.catalog.get_function("pure_add")
    volatility, may_raise, has_loops = function_facts(fdef, db.catalog)
    assert volatility == "immutable"
    assert not may_raise and not has_loops
    assert function_is_pure(fdef, db.catalog)
    vl = by_code(db, "pure_add", "VL001")
    assert vl and "immutable" in vl[0][4]


def test_table_read_infers_stable(db):
    create(db, plpgsql("reads_t", """
BEGIN
  RETURN (SELECT count(*) FROM t);
END;
"""))
    fdef = db.catalog.get_function("reads_t")
    assert function_facts(fdef, db.catalog)[0] == "stable"
    assert not function_is_pure(fdef, db.catalog)


def test_random_infers_volatile(db):
    create(db, plpgsql("rolls", """
BEGIN
  RETURN random();
END;
""", params="", returns="double precision"))
    fdef = db.catalog.get_function("rolls")
    assert function_facts(fdef, db.catalog)[0] == "volatile"


def test_raising_builtin_taints_purity(db):
    create(db, plpgsql("rooty", """
BEGIN
  RETURN sqrt(n);
END;
""", returns="double precision"))
    fdef = db.catalog.get_function("rooty")
    volatility, may_raise, _ = function_facts(fdef, db.catalog)
    assert volatility == "immutable"
    assert may_raise
    assert not function_is_pure(fdef, db.catalog)


def test_transitive_volatility(db):
    create(db, plpgsql("vol_leaf", """
BEGIN
  RETURN random();
END;
""", params="", returns="double precision"))
    create(db, plpgsql("vol_caller", """
BEGIN
  RETURN vol_leaf() + n;
END;
""", returns="double precision"))
    fdef = db.catalog.get_function("vol_caller")
    assert function_facts(fdef, db.catalog)[0] == "volatile"


def test_recursive_function_is_conservatively_volatile(db):
    create(db, plpgsql("self_rec", """
BEGIN
  IF n <= 1 THEN
    RETURN 1;
  END IF;
  RETURN n * self_rec(n - 1);
END;
"""))
    fdef = db.catalog.get_function("self_rec")
    assert function_facts(fdef, db.catalog)[0] == "volatile"


def test_declared_volatility_wins(db):
    create(db, plpgsql("declared_vol", """
BEGIN
  RETURN n + 1;
END;
""", tail=" VOLATILE"))
    fdef = db.catalog.get_function("declared_vol")
    assert fdef.declared_volatility == "volatile"
    assert effective_volatility(fdef, db.catalog) == "volatile"
    assert not function_is_pure(fdef, db.catalog)


def test_vl002_declared_stricter_than_inferred(db):
    create(db, plpgsql("lying", """
BEGIN
  RETURN (SELECT count(*) FROM t);
END;
""", tail=" IMMUTABLE"))
    rows = by_code(db, "lying", "VL002")
    assert rows and rows[0][1] == "warning"


def test_declared_volatility_survives_recovery(tmp_path):
    path = str(tmp_path / "db.wal")
    database = Database(seed=0, path=path)
    database.execute(
        "CREATE FUNCTION two() RETURNS int AS $$\nBEGIN\n  RETURN 2;\n"
        "END;\n$$ LANGUAGE PLPGSQL STABLE")
    del database
    reopened = Database(seed=0, path=path)
    fdef = reopened.catalog.get_function("two")
    assert fdef.declared_volatility == "stable"


# ---------------------------------------------------------------------------
# SQL-language functions (and CF000)
# ---------------------------------------------------------------------------

def test_sql_function_catalog_checks(db):
    db.execute("SET check_function_bodies = off")
    create(db, "CREATE FUNCTION sqlbad(a int) RETURNS int AS "
               "'SELECT q FROM no_tab' LANGUAGE SQL")
    assert {"SQ001"} <= codes(db, "sqlbad")


def test_sql_function_clean(db):
    create(db, "CREATE FUNCTION sqlok(a int) RETURNS int AS "
               "'SELECT a + 1' LANGUAGE SQL")
    assert codes(db, "sqlok") == {"VL001"}


def test_cf000_unparsable_sql_body(db):
    db.execute("SET check_function_bodies = off")
    create(db, "CREATE FUNCTION sqlbroken(a int) RETURNS int AS "
               "'SELECT FROM WHERE' LANGUAGE SQL")
    rows = by_code(db, "sqlbroken", "CF000")
    assert rows and rows[0][1] == "error"


# ---------------------------------------------------------------------------
# the CHECK FUNCTION statement surface
# ---------------------------------------------------------------------------

def test_check_function_all(db):
    create(db, plpgsql("one_fn", "BEGIN\n  RETURN 1;\nEND;", params=""))
    create(db, plpgsql("two_fn", "BEGIN\n  RETURN 2;\nEND;", params=""))
    rows = db.execute("CHECK FUNCTION ALL").rows
    named = {row[0] for row in rows}
    assert {"one_fn", "two_fn"} <= named
    # Builtins are never analyzed.
    assert "abs" not in named


def test_check_function_unknown_name(db):
    with pytest.raises(NameResolutionError):
        db.execute("CHECK FUNCTION nonexistent")


def test_analyze_function_builtin_is_empty(db):
    from repro.sql.catalog import FunctionDef
    fdef = FunctionDef(name="shim", kind="builtin", impl=lambda x: x)
    assert analyze_function(db, fdef) == []


# ---------------------------------------------------------------------------
# the check_function_bodies gate at CREATE FUNCTION time
# ---------------------------------------------------------------------------

BROKEN_FN = """
CREATE FUNCTION broken(n int) RETURNS int AS $$
DECLARE m int;
BEGIN
  m = (SELECT count(*) FROM no_such_table);
END;
$$ LANGUAGE PLPGSQL
"""


def test_gate_default_is_warn(db):
    assert db.execute("SHOW check_function_bodies").rows == [("warn",)]
    db.notices.clear()
    db.execute(BROKEN_FN)
    assert db.catalog.get_function("broken") is not None
    assert any("SQ001" in notice for notice in db.notices)
    assert any("CF002" in notice for notice in db.notices)


def test_gate_error_rejects_and_undoes(db):
    db.execute("SET check_function_bodies = error")
    with pytest.raises(CompileError) as err:
        db.execute(BROKEN_FN)
    assert "SQ001" in str(err.value) or "CF002" in str(err.value)
    assert db.catalog.get_function("broken") is None
    # The session is healthy and the name is reusable afterwards.
    db.execute("SET check_function_bodies = off")
    db.execute(BROKEN_FN)
    assert db.catalog.get_function("broken") is not None


def test_gate_error_accepts_clean_functions(db):
    db.execute("SET check_function_bodies = error")
    db.execute(plpgsql("fine", "BEGIN\n  RETURN n + 1;\nEND;"))
    assert db.catalog.get_function("fine") is not None


def test_gate_off_is_silent(db):
    db.execute("SET check_function_bodies = off")
    db.notices.clear()
    db.execute(BROKEN_FN)
    assert db.catalog.get_function("broken") is not None
    assert not any("SQ001" in notice for notice in db.notices)


def test_gate_warnings_only_never_reject(db):
    db.execute("SET check_function_bodies = error")
    # Dead store + unused variable: warnings, not errors -> accepted.
    db.execute(plpgsql("warned", """
DECLARE m int;
DECLARE ghost int;
BEGIN
  m = n + 1;
  m = n + 2;
  RETURN m;
END;
"""))
    assert db.catalog.get_function("warned") is not None


# ---------------------------------------------------------------------------
# planner integration: inferred purity widens batched execution
# ---------------------------------------------------------------------------

def test_inferred_pure_udf_widens_batching(db):
    # g is interpreted PL/pgSQL with no declared volatility: only the
    # analyzer can prove it pure.  f(g(x)) then batches end to end.
    from repro.compiler import compile_plsql
    create(db, plpgsql("g_inner", """
BEGIN
  RETURN n + 1;
END;
"""))
    f_source = plpgsql("f_outer", """
DECLARE acc int = 0;
BEGIN
  FOR i IN 1..n LOOP
    acc = acc + i;
  END LOOP;
  RETURN acc;
END;
""")
    compile_plsql(f_source, db).register(db, name="f_outer")
    plan = db.explain("SELECT f_outer(g_inner(x)) FROM t")
    assert "BatchedUdf" in plan
    assert "volatility=" in plan
    rows = db.execute("SELECT f_outer(g_inner(x)) FROM t ORDER BY 1").rows
    # g(1..3) = 2..4; f(k) = k(k+1)/2 -> 3, 6, 10.
    assert rows == [(3,), (6,), (10,)]


def test_volatile_udf_argument_blocks_batching(db):
    create(db, plpgsql("vol_arg", """
BEGIN
  RETURN random() * n;
END;
""", returns="double precision"))
    create(db, plpgsql("f_outer2", """
BEGIN
  RETURN n + 1;
END;
""", params="n double precision", returns="double precision"))
    plan = db.explain("SELECT f_outer2(vol_arg(x)) FROM t")
    # The volatile inner call must not be hoisted into a batched stage
    # as an argument expression.
    assert "vol_arg" not in plan.split("BatchedUdf")[0] or \
        "BatchedUdf" not in plan


def test_explain_shows_inferred_volatility(db):
    create(db, plpgsql("show_vol", """
BEGIN
  RETURN n * 2;
END;
"""))
    plan = db.explain("SELECT show_vol(x) FROM t")
    if "BatchedUdf" in plan:
        assert "volatility=immutable" in plan


def test_ddl_invalidates_inferred_volatility(db):
    create(db, plpgsql("flips", """
BEGIN
  RETURN helper_v(n);
END;
"""))
    fdef = db.catalog.get_function("flips")
    # helper_v does not exist yet: conservatively volatile.
    assert function_facts(fdef, db.catalog)[0] == "volatile"
    create(db, plpgsql("helper_v", """
BEGIN
  RETURN n + 1;
END;
"""))
    fdef = db.catalog.get_function("flips")
    # DDL cleared the cached inference; now the callee is known pure.
    assert function_facts(fdef, db.catalog)[0] == "immutable"


# ---------------------------------------------------------------------------
# soundness sweep over the paper workloads
# ---------------------------------------------------------------------------

def test_workloads_analyze_without_errors(demo):
    rows = demo.db.execute("CHECK FUNCTION ALL").rows
    errors = [row for row in rows if row[1] == "error"]
    assert errors == []  # these functions all execute cleanly


def test_workloads_analyzer_does_not_crash(demo):
    for fdef in list(demo.db.catalog.functions.values()):
        if fdef.kind == "builtin":
            continue
        result = analyze_function(demo.db, fdef)
        assert max_severity(result) in (None, "info", "warning")
