"""PL/pgSQL front end: parser shapes and interpreter semantics."""

import pytest

from repro.plsql import ast as P
from repro.plsql.parser import parse_plpgsql_body, parse_plpgsql_function
from repro.sql.errors import ParseError, PlsqlRuntimeError


def make(db, source: str) -> str:
    db.execute(source)
    import re
    return re.search(r"FUNCTION\s+(\w+)", source, re.I).group(1).lower()


class TestParser:
    def test_declarations(self):
        decls, body = parse_plpgsql_body(
            "DECLARE a int = 1; b text := 'x'; c float DEFAULT 0.5; d int; "
            "BEGIN RETURN a; END")
        assert [d.name for d in decls] == ["a", "b", "c", "d"]
        assert decls[3].default is None

    def test_if_elsif_else(self):
        _, body = parse_plpgsql_body(
            "BEGIN IF a THEN x = 1; ELSIF b THEN x = 2; ELSE x = 3; "
            "END IF; RETURN x; END")
        stmt = body[0]
        assert isinstance(stmt, P.IfStmt)
        assert len(stmt.branches) == 2 and len(stmt.else_body) == 1

    def test_case_statement_desugars(self):
        _, body = parse_plpgsql_body(
            "BEGIN CASE x WHEN 1 THEN y = 'a'; ELSE y = 'b'; END CASE; "
            "RETURN y; END")
        assert isinstance(body[0], P.IfStmt)

    def test_loop_family(self):
        _, body = parse_plpgsql_body("""
            BEGIN
              LOOP EXIT; END LOOP;
              WHILE a < 3 LOOP a = a + 1; END LOOP;
              FOR i IN 1..10 LOOP NULL; END LOOP;
              FOR i IN REVERSE 10..1 BY 2 LOOP NULL; END LOOP;
              FOREACH v IN ARRAY arr LOOP NULL; END LOOP;
              RETURN 0;
            END""")
        assert [type(s).__name__ for s in body[:-1]] == [
            "LoopStmt", "WhileStmt", "ForRangeStmt", "ForRangeStmt",
            "ForEachStmt"]
        assert body[3].reverse and body[3].step is not None

    def test_labels_and_exit(self):
        _, body = parse_plpgsql_body("""
            BEGIN
              <<outer>>
              LOOP
                EXIT outer WHEN a > 1;
                CONTINUE WHEN a = 0;
              END LOOP outer;
              RETURN 1;
            END""")
        loop = body[0]
        assert loop.label == "outer"
        assert loop.body[0].label == "outer" and loop.body[0].when is not None

    def test_for_query(self):
        _, body = parse_plpgsql_body(
            "BEGIN FOR rec IN SELECT x FROM t LOOP s = s + rec; END LOOP; "
            "RETURN s; END")
        assert isinstance(body[0], P.ForQueryStmt)

    def test_perform_and_raise(self):
        _, body = parse_plpgsql_body(
            "BEGIN PERFORM count(*) FROM t; "
            "RAISE NOTICE 'v=%', x; RAISE EXCEPTION 'boom'; END")
        assert isinstance(body[0], P.PerformStmt)
        assert body[1].level == "notice" and len(body[1].args) == 1
        assert body[2].level == "exception"

    def test_nested_block(self):
        _, body = parse_plpgsql_body(
            "BEGIN DECLARE v int = 1; BEGIN x = v; END; RETURN x; END")
        assert isinstance(body[0], P.BlockStmt)
        assert body[0].declarations[0].name == "v"

    def test_mismatched_end_label(self):
        with pytest.raises(ParseError):
            parse_plpgsql_body(
                "BEGIN <<a>> LOOP NULL; END LOOP b; RETURN 1; END")

    def test_declaration_shadows_parameter_rejected(self):
        with pytest.raises(ParseError, match="shadows"):
            parse_plpgsql_function("f", ["n"], ["int"], "int",
                                   "DECLARE n int; BEGIN RETURN n; END")

    def test_all_variables_collects_loop_vars(self):
        func = parse_plpgsql_function(
            "f", ["p"], ["int"], "int",
            "DECLARE a int; BEGIN FOR i IN 1..p LOOP a = i; END LOOP; "
            "RETURN a; END")
        names = [n for n, _ in func.all_variables()]
        assert names == ["p", "a", "i"]


class TestInterpreter:
    def test_while_and_exit_when(self, db):
        name = make(db, """
            CREATE FUNCTION f(n int) RETURNS int AS $$
            DECLARE acc int = 0;
            BEGIN
              WHILE true LOOP
                acc = acc + n;
                EXIT WHEN acc >= 10;
              END LOOP;
              RETURN acc;
            END; $$ LANGUAGE plpgsql""")
        assert db.query_value(f"SELECT {name}(4)") == 12

    def test_continue_skips(self, db):
        make(db, """
            CREATE FUNCTION evensum(n int) RETURNS int AS $$
            DECLARE acc int = 0;
            BEGIN
              FOR i IN 1..n LOOP
                CONTINUE WHEN i % 2 = 1;
                acc = acc + i;
              END LOOP;
              RETURN acc;
            END; $$ LANGUAGE plpgsql""")
        assert db.query_value("SELECT evensum(10)") == 30

    def test_labelled_exit_from_nested_loops(self, db):
        make(db, """
            CREATE FUNCTION nested() RETURNS int AS $$
            DECLARE total int = 0;
            BEGIN
              <<outer>>
              FOR i IN 1..10 LOOP
                FOR j IN 1..10 LOOP
                  total = total + 1;
                  EXIT outer WHEN total = 7;
                END LOOP;
              END LOOP;
              RETURN total;
            END; $$ LANGUAGE plpgsql""")
        assert db.query_value("SELECT nested()") == 7

    def test_reverse_for_with_step(self, db):
        make(db, """
            CREATE FUNCTION countdown() RETURNS text AS $$
            DECLARE s text = '';
            BEGIN
              FOR i IN REVERSE 9..1 BY 3 LOOP
                s = s || i;
              END LOOP;
              RETURN s;
            END; $$ LANGUAGE plpgsql""")
        assert db.query_value("SELECT countdown()") == "963"

    def test_for_range_empty(self, db):
        make(db, """
            CREATE FUNCTION empty_range() RETURNS int AS $$
            DECLARE c int = 0;
            BEGIN
              FOR i IN 5..1 LOOP c = c + 1; END LOOP;
              RETURN c;
            END; $$ LANGUAGE plpgsql""")
        assert db.query_value("SELECT empty_range()") == 0

    def test_foreach(self, db):
        make(db, """
            CREATE FUNCTION joinup() RETURNS text AS $$
            DECLARE out text = '';
              item text;
            BEGIN
              FOREACH item IN ARRAY array['a','b','c'] LOOP
                out = out || item;
              END LOOP;
              RETURN out;
            END; $$ LANGUAGE plpgsql""")
        assert db.query_value("SELECT joinup()") == "abc"

    def test_for_query_loop(self, tdb):
        make(tdb, """
            CREATE FUNCTION total() RETURNS int AS $$
            DECLARE acc int = 0; r int;
            BEGIN
              FOR r IN SELECT x FROM t ORDER BY x LOOP
                acc = acc + r;
              END LOOP;
              RETURN acc;
            END; $$ LANGUAGE plpgsql""")
        assert tdb.query_value("SELECT total()") == 10

    def test_embedded_query_sees_variables(self, tdb):
        make(tdb, """
            CREATE FUNCTION above(threshold int) RETURNS int AS $$
            BEGIN
              RETURN (SELECT count(*) FROM t WHERE x > threshold);
            END; $$ LANGUAGE plpgsql""")
        assert tdb.query_value("SELECT above(2)") == 2

    def test_nested_block_and_exit_block(self, db):
        make(db, """
            CREATE FUNCTION blocky(n int) RETURNS int AS $$
            DECLARE v int = 1;
            BEGIN
              <<blk>>
              BEGIN
                v = v + n;
                EXIT blk WHEN v > 2;
                v = 100;
              END;
              RETURN v;
            END; $$ LANGUAGE plpgsql""")
        assert db.query_value("SELECT blocky(5)") == 6
        assert db.query_value("SELECT blocky(0)") == 100

    def test_raise_notice_and_exception(self, db):
        make(db, """
            CREATE FUNCTION shout(v int) RETURNS int AS $$
            BEGIN
              RAISE NOTICE 'value is %', v;
              IF v < 0 THEN RAISE EXCEPTION 'negative: %', v; END IF;
              RETURN v;
            END; $$ LANGUAGE plpgsql""")
        assert db.query_value("SELECT shout(3)") == 3
        assert db.notices[-1] == "NOTICE: value is 3"
        with pytest.raises(PlsqlRuntimeError, match="negative: -1"):
            db.query_value("SELECT shout(-1)")

    def test_missing_return_errors(self, db):
        make(db, """
            CREATE FUNCTION noret(v int) RETURNS int AS $$
            BEGIN
              IF v > 0 THEN RETURN v; END IF;
            END; $$ LANGUAGE plpgsql""")
        assert db.query_value("SELECT noret(1)") == 1
        with pytest.raises(PlsqlRuntimeError, match="without RETURN"):
            db.query_value("SELECT noret(-1)")

    def test_assignment_coerces_to_declared_type(self, db):
        make(db, """
            CREATE FUNCTION coerce_int() RETURNS int AS $$
            DECLARE v int;
            BEGIN
              v = 2.7;
              RETURN v;
            END; $$ LANGUAGE plpgsql""")
        assert db.query_value("SELECT coerce_int()") == 3

    def test_perform_runs_query(self, tdb):
        make(tdb, """
            CREATE FUNCTION poke() RETURNS int AS $$
            BEGIN
              PERFORM x FROM t;
              RETURN 1;
            END; $$ LANGUAGE plpgsql""")
        tdb.profiler.reset()
        assert tdb.query_value("SELECT poke()") == 1
        assert tdb.profiler.counts["switch f->Q"] >= 1

    def test_fast_path_no_executor_start(self, db):
        make(db, """
            CREATE FUNCTION arith(n int) RETURNS int AS $$
            DECLARE v int = 0;
            BEGIN
              FOR i IN 1..n LOOP v = v + i * 2; END LOOP;
              RETURN v;
            END; $$ LANGUAGE plpgsql""")
        db.query_value("SELECT arith(5)")  # warm
        db.profiler.reset()
        db.query_value("SELECT arith(50)")
        assert db.profiler.counts.get("switch f->Q", 0) == 0

    def test_plpgsql_calls_plpgsql(self, db):
        make(db, """
            CREATE FUNCTION inner_fn(n int) RETURNS int AS $$
            BEGIN RETURN n * 2; END; $$ LANGUAGE plpgsql""")
        make(db, """
            CREATE FUNCTION outer_fn(n int) RETURNS int AS $$
            BEGIN RETURN inner_fn(n) + 1; END; $$ LANGUAGE plpgsql""")
        assert db.query_value("SELECT outer_fn(5)") == 11

    def test_recursive_plpgsql(self, db):
        make(db, """
            CREATE FUNCTION fact(n int) RETURNS int AS $$
            BEGIN
              IF n <= 1 THEN RETURN 1; END IF;
              RETURN n * fact(n - 1);
            END; $$ LANGUAGE plpgsql""")
        assert db.query_value("SELECT fact(6)") == 720

    def test_null_statement(self, db):
        make(db, """
            CREATE FUNCTION idle() RETURNS int AS $$
            BEGIN NULL; RETURN 0; END; $$ LANGUAGE plpgsql""")
        assert db.query_value("SELECT idle()") == 0

    def test_variable_conflict_prefers_column(self, tdb):
        # Our interpreter resolves a bare name to the innermost scope
        # (the column), like plpgsql.variable_conflict = use_column.
        make(tdb, """
            CREATE FUNCTION conflict(x int) RETURNS int AS $$
            BEGIN
              RETURN (SELECT count(*) FROM t WHERE x = x);
            END; $$ LANGUAGE plpgsql""")
        assert tdb.query_value("SELECT conflict(1)") == 4  # x=x over columns
