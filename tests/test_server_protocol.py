"""Byte-level wire-protocol conformance suite.

Every test talks to a live :class:`repro.server.ServerThread` through
:mod:`tests.wireclient` — a raw-socket client that frames and decodes
each message independently of the production codec, so an encode bug in
``repro.server.protocol`` cannot cancel out against the shipped client.

Coverage map (the ISSUE's golden-message list):

* startup handshake and AuthenticationOk greeting sequence,
* SSLRequest / CancelRequest special startup codes,
* simple query (RowDescription field layout, DataRow NULLs,
  CommandComplete tags),
* empty query, multi-statement scripts and stop-at-first-error,
* ErrorResponse diagnostic fields with taxonomy SQLSTATEs,
* NoticeResponse ordering relative to results,
* ReadyForQuery transaction-status bytes across BEGIN/COMMIT/ROLLBACK,
* Terminate, malformed frames (bad lengths, unknown types, bad
  versions) and mid-message client disconnects,
* the loop-answered STATS query,
* pure-codec golden byte strings (no server at all).
"""

from __future__ import annotations

import socket
import struct

import pytest

from repro.server import ServerThread
from repro.sql import Database
from wireclient import (RawWireClient, decode_data_row, decode_fields,
                        decode_row_description, query_bytes, startup_bytes,
                        terminate_bytes)


@pytest.fixture(scope="module")
def server():
    """One shared server over a small fixture schema.

    Tests that mutate state create (and drop) their own tables; the
    ``items`` table is read-only shared fixture data.
    """
    db = Database(seed=0)
    db.execute("CREATE TABLE items(id int, name text)")
    db.execute("INSERT INTO items VALUES (1, 'anvil'), (2, 'rope'), "
               "(3, NULL)")
    with ServerThread(db) as address:
        yield address


@pytest.fixture()
def client(server):
    """A handshaken client, closed after the test."""
    c = RawWireClient(*server)
    c.handshake()
    yield c
    c.close()


def types_of(messages):
    return [t for t, _ in messages]


# ---------------------------------------------------------------------------
# Startup
# ---------------------------------------------------------------------------

class TestStartup:
    def test_greeting_sequence(self, server):
        with RawWireClient(*server) as c:
            messages = c.handshake()
        # AuthenticationOk, ParameterStatus x3, BackendKeyData,
        # ReadyForQuery — in exactly that order.
        assert types_of(messages) == [b"R", b"S", b"S", b"S", b"K", b"Z"]

    def test_authentication_ok_payload(self, server):
        with RawWireClient(*server) as c:
            messages = c.handshake()
        type_byte, payload = messages[0]
        assert type_byte == b"R"
        assert payload == struct.pack("!I", 0)  # trust auth, nothing else

    def test_parameter_status_pairs(self, server):
        with RawWireClient(*server) as c:
            messages = c.handshake()
        params = {}
        for type_byte, payload in messages:
            if type_byte == b"S":
                name, value, _ = payload.split(b"\x00")
                params[name.decode()] = value.decode()
        assert params["client_encoding"] == "UTF8"
        assert "server_version" in params
        assert "integer_datetimes" in params

    def test_backend_key_data_shape(self, server):
        with RawWireClient(*server) as c:
            messages = c.handshake()
        payload = dict(messages)[b"K"]
        assert len(payload) == 8  # int32 pid + int32 secret

    def test_ready_for_query_idle(self, server):
        with RawWireClient(*server) as c:
            messages = c.handshake()
        assert messages[-1] == (b"Z", b"I")

    def test_ssl_request_answered_with_n(self, server):
        with RawWireClient(*server) as c:
            c.send_raw(struct.pack("!II", 8, 80877103))
            assert c.recv_exact(1) == b"N"
            # The connection stays usable: a normal startup follows.
            messages = c.handshake()
            assert messages[-1] == (b"Z", b"I")

    def test_cancel_request_is_accepted_and_dropped(self, server):
        with RawWireClient(*server) as c:
            c.send_raw(struct.pack("!IIII", 16, 80877102, 1234, 5678))
            assert c.eof()

    def test_unsupported_protocol_version(self, server):
        with RawWireClient(*server) as c:
            c.send_raw(startup_bytes(version=0x00020000))  # protocol 2.0
            type_byte, payload = c.read_message()
            assert type_byte == b"E"
            fields = decode_fields(payload)
            assert fields["S"] == "FATAL"
            assert fields["C"] == "08P01"
            assert c.eof()

    def test_bad_startup_length(self, server):
        with RawWireClient(*server) as c:
            c.send_raw(struct.pack("!I", 3))  # below minimum frame size
            type_byte, payload = c.read_message()
            assert type_byte == b"E"
            assert decode_fields(payload)["C"] == "08P01"
            assert c.eof()


# ---------------------------------------------------------------------------
# Simple query
# ---------------------------------------------------------------------------

class TestSimpleQuery:
    def test_select_message_sequence(self, client):
        messages = client.query("SELECT id, name FROM items ORDER BY id")
        assert types_of(messages) == [b"T", b"D", b"D", b"D", b"C", b"Z"]

    def test_row_description_field_layout(self, client):
        messages = client.query("SELECT id, name FROM items ORDER BY id")
        columns = decode_row_description(dict(messages)[b"T"])
        assert [c["name"] for c in columns] == ["id", "name"]
        for column in columns:
            assert column["type_oid"] == 25   # everything is text
            assert column["typlen"] == -1     # varlena
            assert column["typmod"] == -1
            assert column["format"] == 0      # text format
            assert column["table_oid"] == 0
            assert column["attnum"] == 0

    def test_data_rows_and_null_encoding(self, client):
        messages = client.query("SELECT id, name FROM items ORDER BY id")
        rows = [decode_data_row(payload) for t, payload in messages
                if t == b"D"]
        # Values travel as text; SQL NULL is the -1 length sentinel,
        # decoded as None — distinguishable from the string 'NULL'.
        assert rows == [["1", "anvil"], ["2", "rope"], ["3", None]]

    def test_command_complete_tag(self, client):
        messages = client.query("SELECT id FROM items")
        tags = [payload.rstrip(b"\x00").decode() for t, payload in messages
                if t == b"C"]
        assert tags == ["SELECT 3"]

    def test_empty_query_response(self, client):
        messages = client.query("")
        assert messages == [(b"I", b""), (b"Z", b"I")]

    def test_whitespace_only_query_is_empty(self, client):
        messages = client.query("   \n\t  ")
        assert types_of(messages) == [b"I", b"Z"]

    def test_stats_is_answered_inline(self, client):
        client.query("SELECT 1")  # ensure at least one query is counted
        messages = client.query("STATS")
        assert types_of(messages)[0] == b"T"
        columns = decode_row_description(messages[0][1])
        assert [c["name"] for c in columns] == ["metric"]
        lines = [decode_data_row(payload)[0] for t, payload in messages
                 if t == b"D"]
        assert any(line.startswith("server_active_connections ")
                   for line in lines)
        assert any(line.startswith("server_query_seconds_count ")
                   for line in lines)
        tag = [payload.rstrip(b"\x00").decode() for t, payload in messages
               if t == b"C"]
        assert tag == [f"STATS {len(lines)}"]


# ---------------------------------------------------------------------------
# Multi-statement scripts
# ---------------------------------------------------------------------------

class TestMultiStatement:
    def test_each_statement_gets_a_result(self, client):
        client.query("CREATE TABLE ms(x int)")
        try:
            messages = client.query(
                "INSERT INTO ms VALUES (1); INSERT INTO ms VALUES (2); "
                "SELECT count(*) FROM ms")
            tags = [payload.rstrip(b"\x00").decode()
                    for t, payload in messages if t == b"C"]
            assert tags == ["INSERT 0 1", "INSERT 0 1", "SELECT 1"]
            rows = [decode_data_row(payload) for t, payload in messages
                    if t == b"D"]
            assert rows == [["2"]]
            assert messages[-1] == (b"Z", b"I")
        finally:
            client.query("DROP TABLE ms")

    def test_script_stops_at_first_error(self, client):
        client.query("CREATE TABLE se(x int)")
        try:
            messages = client.query(
                "INSERT INTO se VALUES (1); "
                "SELECT * FROM missing_table; "
                "INSERT INTO se VALUES (2)")
            assert types_of(messages) == [b"C", b"E", b"Z"]
            # The statement after the error never ran.
            count = client.query("SELECT count(*) FROM se")
            assert decode_data_row(dict(count)[b"D"]) == ["1"]
        finally:
            client.query("DROP TABLE se")


# ---------------------------------------------------------------------------
# Errors and notices
# ---------------------------------------------------------------------------

class TestErrors:
    def test_parse_error_fields(self, client):
        messages = client.query("SELEC 1")
        assert types_of(messages) == [b"E", b"Z"]
        fields = decode_fields(messages[0][1])
        assert fields["S"] == "ERROR"
        assert fields["V"] == "ERROR"
        assert fields["C"] == "42601"  # syntax_error
        assert fields["M"]

    def test_unknown_relation_sqlstate(self, client):
        messages = client.query("SELECT * FROM missing_table")
        fields = decode_fields(messages[0][1])
        assert fields["C"] == "42704"  # name-resolution taxonomy label

    def test_error_does_not_kill_the_connection(self, client):
        client.query("SELEC 1")
        messages = client.query("SELECT 1")
        assert types_of(messages) == [b"T", b"D", b"C", b"Z"]

    def test_notice_precedes_result(self, client):
        client.query("""CREATE FUNCTION noisy(n int) RETURNS int AS $$
            BEGIN RAISE NOTICE 'n is %', n; RETURN n; END;
            $$ LANGUAGE plpgsql""")
        try:
            messages = client.query("SELECT noisy(7)")
            assert types_of(messages) == [b"N", b"T", b"D", b"C", b"Z"]
            fields = decode_fields(messages[0][1])
            assert fields["S"] == "NOTICE"
            assert "n is 7" in fields["M"]
            assert decode_data_row(dict(messages)[b"D"]) == ["7"]
        finally:
            client.query("DROP FUNCTION noisy")


# ---------------------------------------------------------------------------
# Transaction status byte
# ---------------------------------------------------------------------------

class TestTransactionStatus:
    def test_begin_commit_cycle(self, server):
        with RawWireClient(*server) as c:
            c.handshake()
            assert c.query("BEGIN")[-1] == (b"Z", b"T")
            assert c.query("SELECT 1")[-1] == (b"Z", b"T")
            assert c.query("COMMIT")[-1] == (b"Z", b"I")

    def test_rollback_returns_to_idle(self, server):
        with RawWireClient(*server) as c:
            c.handshake()
            c.query("BEGIN")
            assert c.query("ROLLBACK")[-1] == (b"Z", b"I")

    def test_transaction_spans_round_trips(self, server, client):
        """An open transaction's writes are invisible to another wire
        session until COMMIT — sessions are really separate."""
        with RawWireClient(*server) as c:
            c.handshake()
            c.query("CREATE TABLE txv(x int)")
            try:
                c.query("BEGIN")
                c.query("INSERT INTO txv VALUES (1)")
                other = client.query("SELECT count(*) FROM txv")
                assert decode_data_row(dict(other)[b"D"]) == ["0"]
                c.query("COMMIT")
                other = client.query("SELECT count(*) FROM txv")
                assert decode_data_row(dict(other)[b"D"]) == ["1"]
            finally:
                c.query("DROP TABLE txv")


# ---------------------------------------------------------------------------
# Terminate, malformed frames, disconnects
# ---------------------------------------------------------------------------

class TestTermination:
    def test_terminate_closes_cleanly(self, server):
        with RawWireClient(*server) as c:
            c.handshake()
            c.send_raw(terminate_bytes())
            assert c.eof()

    def test_malformed_length_below_header(self, server):
        with RawWireClient(*server) as c:
            c.handshake()
            c.send_raw(b"Q" + struct.pack("!I", 3))  # length < 4
            type_byte, payload = c.read_message()
            assert type_byte == b"E"
            fields = decode_fields(payload)
            assert fields["S"] == "FATAL"
            assert fields["C"] == "08P01"
            assert c.eof()

    def test_oversized_frame_rejected_without_buffering(self, server):
        with RawWireClient(*server) as c:
            c.handshake()
            # Announce a 64 MiB frame; the server must refuse from the
            # header alone instead of allocating for it.
            c.send_raw(b"Q" + struct.pack("!I", 64 * 1024 * 1024))
            type_byte, payload = c.read_message()
            assert decode_fields(payload)["C"] == "08P01"
            assert c.eof()

    def test_unknown_message_type(self, server):
        with RawWireClient(*server) as c:
            c.handshake()
            # Parse ('P') belongs to the extended protocol we don't speak.
            c.send_raw(b"P" + struct.pack("!I", 4))
            type_byte, payload = c.read_message()
            assert type_byte == b"E"
            assert decode_fields(payload)["C"] == "08P01"
            assert c.eof()

    def test_disconnect_mid_startup(self, server):
        c = RawWireClient(*server)
        c.send_raw(struct.pack("!I", 100))  # promise 100 bytes, send 4
        c.close()
        self._server_still_alive(server)

    def test_disconnect_mid_query_frame(self, server):
        c = RawWireClient(*server)
        c.handshake()
        c.send_raw(b"Q" + struct.pack("!I", 100) + b"SELECT")  # truncated
        c.close()
        self._server_still_alive(server)

    def test_disconnect_with_query_in_flight(self, server):
        c = RawWireClient(*server)
        c.handshake()
        c.send_raw(query_bytes("SELECT count(*) FROM items"))
        c.close()  # walk away without reading the response
        self._server_still_alive(server)

    @staticmethod
    def _server_still_alive(server):
        """The abandoned connection must not have wedged the server."""
        with RawWireClient(*server) as probe:
            probe.handshake()
            messages = probe.query("SELECT 1")
            assert types_of(messages) == [b"T", b"D", b"C", b"Z"]
            assert decode_data_row(dict(messages)[b"D"]) == ["1"]


# ---------------------------------------------------------------------------
# Split delivery: the framing state machine must not care about packets
# ---------------------------------------------------------------------------

class TestSplitDelivery:
    def test_query_dribbled_one_byte_at_a_time(self, server):
        with RawWireClient(*server) as c:
            c.handshake()
            frame = query_bytes("SELECT 2 + 2")
            for i in range(len(frame)):
                c.send_raw(frame[i:i + 1])
            messages = c.read_until_ready()
            assert decode_data_row(dict(messages)[b"D"]) == ["4"]

    def test_two_queries_in_one_packet(self, server):
        """A pipelining client gets responses strictly in order."""
        with RawWireClient(*server) as c:
            c.handshake()
            c.send_raw(query_bytes("SELECT 1") + query_bytes("SELECT 2"))
            first = c.read_until_ready()
            second = c.read_until_ready()
            assert decode_data_row(dict(first)[b"D"]) == ["1"]
            assert decode_data_row(dict(second)[b"D"]) == ["2"]

    def test_startup_and_query_in_one_packet(self, server):
        with RawWireClient(*server) as c:
            c.send_raw(startup_bytes() + query_bytes("SELECT 3"))
            greeting = c.read_until_ready()
            assert types_of(greeting)[-1] == b"Z"
            result = c.read_until_ready()
            assert decode_data_row(dict(result)[b"D"]) == ["3"]


# ---------------------------------------------------------------------------
# Prepared statements over the wire (EXECUTE fast path included)
# ---------------------------------------------------------------------------

class TestPreparedOverWire:
    def test_prepare_execute_deallocate(self, server):
        with RawWireClient(*server) as c:
            c.handshake()
            tags = []
            for sql in ("PREPARE pick(int) AS "
                        "SELECT name FROM items WHERE id = $1",
                        "EXECUTE pick(2)",
                        "DEALLOCATE pick"):
                messages = c.query(sql)
                tags.extend(payload.rstrip(b"\x00").decode()
                            for t, payload in messages if t == b"C")
                if sql.startswith("EXECUTE"):
                    assert decode_data_row(dict(messages)[b"D"]) == ["rope"]
            assert tags == ["PREPARE", "SELECT 1", "DEALLOCATE"]

    def test_execute_unknown_statement(self, server):
        with RawWireClient(*server) as c:
            c.handshake()
            messages = c.query("EXECUTE nope(1)")
            assert types_of(messages) == [b"E", b"Z"]
            assert decode_fields(messages[0][1])["C"] == "42P01"

    def test_fast_path_and_parser_agree(self, server):
        """`EXECUTE ps(2)` (micro-parsed) and `EXECUTE ps(1 + 1)` (full
        parser fallback) must return identical rows."""
        with RawWireClient(*server) as c:
            c.handshake()
            c.query("PREPARE agree(int) AS "
                    "SELECT id, name FROM items WHERE id = $1")
            fast = c.query("EXECUTE agree(2)")
            slow = c.query("EXECUTE agree(1 + 1)")
            rows = lambda ms: [decode_data_row(pl) for t, pl in ms
                               if t == b"D"]
            assert rows(fast) == rows(slow) == [["2", "rope"]]
            c.query("DEALLOCATE agree")

    def test_prepared_statements_are_per_session(self, server):
        with RawWireClient(*server) as c1, RawWireClient(*server) as c2:
            c1.handshake()
            c2.handshake()
            c1.query("PREPARE mine(int) AS SELECT $1")
            messages = c2.query("EXECUTE mine(1)")
            assert decode_fields(messages[0][1])["C"] == "42P01"
            c1.query("DEALLOCATE mine")


# ---------------------------------------------------------------------------
# Pure codec golden bytes (no server, no sockets)
# ---------------------------------------------------------------------------

class TestCodecGoldenBytes:
    def test_command_complete(self):
        from repro.server import protocol
        assert protocol.command_complete("SELECT 1") == \
            b"C\x00\x00\x00\x0dSELECT 1\x00"

    def test_ready_for_query(self):
        from repro.server import protocol
        assert protocol.ready_for_query(b"I") == b"Z\x00\x00\x00\x05I"
        assert protocol.ready_for_query(b"T") == b"Z\x00\x00\x00\x05T"

    def test_authentication_ok(self):
        from repro.server import protocol
        assert protocol.authentication_ok() == \
            b"R\x00\x00\x00\x08\x00\x00\x00\x00"

    def test_empty_query_response(self):
        from repro.server import protocol
        assert protocol.empty_query_response() == b"I\x00\x00\x00\x04"

    def test_data_row_null_sentinel(self):
        from repro.server import protocol
        assert protocol.data_row(["x", None]) == (
            b"D\x00\x00\x00\x0f"        # len 15: 4 + 2 + (4+1) + 4
            b"\x00\x02"                 # two columns
            b"\x00\x00\x00\x01x"        # 'x'
            b"\xff\xff\xff\xff")        # NULL -> length -1, no bytes

    def test_row_description_descriptor(self):
        from repro.server import protocol
        encoded = protocol.row_description(["a"])
        assert encoded == (
            b"T\x00\x00\x00\x1a"        # len 26: 4 + 2 + (1+1) + 18
            b"\x00\x01"                 # one column
            b"a\x00"                    # name
            b"\x00\x00\x00\x00"         # table oid 0
            b"\x00\x00"                 # attnum 0
            b"\x00\x00\x00\x19"         # type oid 25 (text)
            b"\xff\xff"                 # typlen -1
            b"\xff\xff\xff\xff"         # typmod -1
            b"\x00\x00")                # format 0 (text)

    def test_error_response_fields(self):
        from repro.server import protocol
        encoded = protocol.error_response("42601", "boom")
        assert encoded[:1] == b"E"
        assert encoded.endswith(
            b"S" b"ERROR\x00" b"V" b"ERROR\x00"
            b"C" b"42601\x00" b"M" b"boom\x00" b"\x00")

    def test_startup_round_trip(self):
        from repro.server import protocol
        params = {"user": "u", "database": "d"}
        encoded = protocol.encode_startup(params)
        (length,) = struct.unpack_from("!I", encoded, 0)
        assert length == len(encoded)
        (version,) = struct.unpack_from("!I", encoded, 4)
        assert version == protocol.PROTOCOL_VERSION
        assert protocol.parse_startup_payload(encoded[8:]) == params

    def test_sqlstate_map_is_injective(self):
        from repro.server import protocol
        states = list(protocol.SQLSTATE_FOR_LABEL.values())
        assert len(states) == len(set(states))
        for label, state in protocol.SQLSTATE_FOR_LABEL.items():
            assert protocol.LABEL_FOR_SQLSTATE[state] == label
