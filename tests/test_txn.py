"""MVCC transactions: snapshot isolation, savepoints, conflicts, WAL.

Acceptance demos for the transaction PR:

* two connections — uncommitted writes invisible, visible after COMMIT,
  gone after ROLLBACK,
* one snapshot per explicit block (repeatable reads: a commit landing
  mid-block stays invisible until the block ends),
* SAVEPOINT / RELEASE / ROLLBACK TO partial rollback,
* first-writer-wins write-write conflicts raise SerializationError,
* SET LOCAL is genuinely transaction-scoped,
* WAL durable mode: committed work survives reopen, rolled-back work
  does not, and indexes are rebuilt by replay.
"""

from __future__ import annotations

import pytest

from repro.sql import Database
from repro.sql.errors import ExecutionError, SerializationError
from repro.sql.profiler import (SNAPSHOT_SCANS, TXN_BEGUN, TXN_COMMITTED,
                                TXN_ROLLED_BACK, WAL_RECORDS, WAL_REPLAYED)


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE t(a int, b int)")
    database.execute("INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)")
    return database


def count(conn):
    return conn.execute("SELECT count(a) FROM t").scalar()


# ---------------------------------------------------------------------------
# Visibility across connections
# ---------------------------------------------------------------------------


class TestVisibility:
    def test_uncommitted_insert_is_invisible_to_other_sessions(self, db):
        c1, c2 = db.connect(), db.connect()
        c1.execute("BEGIN")
        c1.execute("INSERT INTO t VALUES (4, 40)")
        assert count(c1) == 4          # own writes visible to itself
        assert count(c2) == 3          # not to anyone else
        assert count(db.connect()) == 3
        c1.execute("COMMIT")
        assert count(c2) == 4

    def test_rolled_back_insert_never_becomes_visible(self, db):
        c1, c2 = db.connect(), db.connect()
        c1.execute("BEGIN")
        c1.execute("INSERT INTO t VALUES (4, 40)")
        c1.execute("ROLLBACK")
        assert count(c1) == 3
        assert count(c2) == 3

    def test_uncommitted_delete_and_update_invisible(self, db):
        c1, c2 = db.connect(), db.connect()
        c1.execute("BEGIN")
        c1.execute("DELETE FROM t WHERE a = 1")
        c1.execute("UPDATE t SET b = 99 WHERE a = 2")
        assert count(c1) == 2
        assert c1.execute("SELECT b FROM t WHERE a = 2").scalar() == 99
        assert count(c2) == 3
        assert c2.execute("SELECT b FROM t WHERE a = 2").scalar() == 20
        c1.execute("COMMIT")
        assert count(c2) == 2
        assert c2.execute("SELECT b FROM t WHERE a = 2").scalar() == 99

    def test_snapshot_isolation_repeatable_reads(self, db):
        """The block's snapshot is taken at its first statement and held:
        a commit landing mid-block stays invisible until the block ends."""
        c1, c2 = db.connect(), db.connect()
        c1.execute("BEGIN")
        assert count(c1) == 3          # snapshot captured here
        c2.execute("INSERT INTO t VALUES (4, 40)")   # autocommit
        assert count(c2) == 4
        assert count(c1) == 3          # still the old view
        c1.execute("COMMIT")
        assert count(c1) == 4

    def test_own_writes_visible_to_later_statements(self, db):
        c1 = db.connect()
        c1.execute("BEGIN")
        c1.execute("INSERT INTO t VALUES (4, 40)")
        c1.execute("UPDATE t SET b = b + 1 WHERE a = 4")
        assert c1.execute("SELECT b FROM t WHERE a = 4").scalar() == 41
        c1.execute("ROLLBACK")
        assert db.execute("SELECT count(b) FROM t WHERE a = 4").scalar() == 0

    def test_update_preserves_scan_order(self, db):
        """The replacement version sits where the original did (the seed
        engine mutated in place; scans must not observe reordering)."""
        db.execute("UPDATE t SET b = b + 1 WHERE a = 2")
        assert db.execute("SELECT a FROM t").rows == [(1,), (2,), (3,)]

    def test_index_scans_respect_snapshots(self, db):
        c1, c2 = db.connect(), db.connect()
        c1.execute("BEGIN")
        c1.execute("INSERT INTO t VALUES (2, 999)")
        # Hash-index path (correlated equality) and range path both must
        # filter the uncommitted version out for c2 and in for c1.
        probe = "SELECT count(b) FROM t WHERE a >= 2 AND a <= 2"
        assert c1.execute(probe).scalar() == 2
        assert c2.execute(probe).scalar() == 1
        c1.execute("COMMIT")
        assert c2.execute(probe).scalar() == 2


# ---------------------------------------------------------------------------
# Block handling, statement atomicity
# ---------------------------------------------------------------------------


class TestBlocks:
    def test_begin_inside_block_warns(self, db):
        c1 = db.connect()
        c1.execute("BEGIN")
        c1.execute("BEGIN")
        assert any("already a transaction" in n for n in c1.notices)
        c1.execute("ROLLBACK")

    def test_commit_outside_block_warns(self, db):
        c1 = db.connect()
        c1.execute("COMMIT")
        assert any("no transaction" in n for n in c1.notices)

    def test_connection_api_commit_rollback(self, db):
        c1 = db.connect()
        assert not c1.in_transaction
        c1.begin()
        assert c1.in_transaction
        c1.execute("INSERT INTO t VALUES (4, 40)")
        c1.commit()
        assert not c1.in_transaction
        assert count(db.connect()) == 4
        c1.begin()
        c1.execute("DELETE FROM t")
        c1.rollback()
        assert count(db.connect()) == 4

    def test_commit_rollback_are_noops_outside_block(self, db):
        c1 = db.connect()
        c1.commit()
        c1.rollback()
        assert c1.notices == []        # PEP-249 shape, not SQL COMMIT

    def test_close_rolls_back_open_transaction(self, db):
        c1 = db.connect()
        c1.execute("BEGIN")
        c1.execute("DELETE FROM t")
        c1.close()
        assert count(db.connect()) == 3

    def test_failed_statement_rolls_back_only_itself(self, db):
        c1 = db.connect()
        c1.execute("BEGIN")
        c1.execute("INSERT INTO t VALUES (4, 40)")
        with pytest.raises(ExecutionError):
            c1.execute("INSERT INTO t SELECT a, 1/0 FROM t")
        assert count(c1) == 4          # the good insert survived
        c1.execute("COMMIT")
        assert count(db.connect()) == 4

    def test_autocommit_statement_error_rolls_back_everything(self, db):
        with pytest.raises(ExecutionError):
            db.execute("UPDATE t SET b = 1/0 WHERE a >= 0")
        assert db.execute("SELECT sum(b) FROM t").scalar() == 60

    def test_profiler_counters(self, db):
        db.profiler.reset()
        c1 = db.connect()
        c1.execute("BEGIN")
        c1.execute("INSERT INTO t VALUES (4, 40)")
        c1.execute("COMMIT")
        c1.execute("BEGIN")
        c1.execute("INSERT INTO t VALUES (5, 50)")
        c1.execute("ROLLBACK")
        counts = db.profiler.counts
        assert counts[TXN_BEGUN] == 2
        assert counts[TXN_COMMITTED] == 1
        assert counts[TXN_ROLLED_BACK] == 1

    def test_snapshot_scan_counter_moves(self, db):
        db.profiler.reset()
        c1 = db.connect()
        c1.execute("BEGIN")
        c1.execute("INSERT INTO t VALUES (4, 40)")
        assert count(c1) == 4
        c1.execute("COMMIT")
        assert db.profiler.counts[SNAPSHOT_SCANS] >= 1


# ---------------------------------------------------------------------------
# Savepoints
# ---------------------------------------------------------------------------


class TestSavepoints:
    def test_partial_rollback(self, db):
        c1 = db.connect()
        c1.execute("BEGIN")
        c1.execute("INSERT INTO t VALUES (4, 40)")
        c1.execute("SAVEPOINT sp1")
        c1.execute("INSERT INTO t VALUES (5, 50)")
        c1.execute("DELETE FROM t WHERE a = 1")
        assert count(c1) == 4
        c1.execute("ROLLBACK TO sp1")
        assert count(c1) == 4 - 0      # insert of 5 and delete of 1 undone
        assert c1.execute(
            "SELECT count(b) FROM t WHERE a = 5").scalar() == 0
        assert c1.execute(
            "SELECT count(b) FROM t WHERE a = 1").scalar() == 1
        c1.execute("COMMIT")
        c2 = db.connect()
        assert count(c2) == 4
        assert c2.execute("SELECT count(b) FROM t WHERE a = 5").scalar() == 0

    def test_rollback_to_keeps_the_savepoint(self, db):
        c1 = db.connect()
        c1.execute("BEGIN")
        c1.execute("SAVEPOINT sp1")
        c1.execute("INSERT INTO t VALUES (5, 50)")
        c1.execute("ROLLBACK TO SAVEPOINT sp1")
        c1.execute("INSERT INTO t VALUES (6, 60)")
        c1.execute("ROLLBACK TO sp1")  # still defined (PostgreSQL rule)
        assert count(c1) == 3
        c1.execute("COMMIT")

    def test_release_forgets_the_savepoint(self, db):
        c1 = db.connect()
        c1.execute("BEGIN")
        c1.execute("SAVEPOINT sp1")
        c1.execute("RELEASE SAVEPOINT sp1")
        with pytest.raises(ExecutionError, match="does not exist"):
            c1.execute("ROLLBACK TO sp1")
        c1.execute("ROLLBACK")

    def test_savepoint_outside_block_is_an_error(self, db):
        c1 = db.connect()
        with pytest.raises(ExecutionError, match="transaction blocks"):
            c1.execute("SAVEPOINT sp1")
        with pytest.raises(ExecutionError, match="transaction blocks"):
            c1.execute("ROLLBACK TO sp1")

    def test_nested_savepoints_unwind_in_order(self, db):
        c1 = db.connect()
        c1.execute("BEGIN")
        c1.execute("SAVEPOINT a")
        c1.execute("INSERT INTO t VALUES (4, 40)")
        c1.execute("SAVEPOINT b")
        c1.execute("INSERT INTO t VALUES (5, 50)")
        c1.execute("ROLLBACK TO a")    # destroys b, undoes both inserts
        with pytest.raises(ExecutionError, match="does not exist"):
            c1.execute("ROLLBACK TO b")
        assert count(c1) == 3
        c1.execute("COMMIT")


# ---------------------------------------------------------------------------
# Write-write conflicts (first-writer-wins)
# ---------------------------------------------------------------------------


class TestConflicts:
    def test_concurrent_update_conflict(self, db):
        c1, c2 = db.connect(), db.connect()
        c1.execute("BEGIN")
        c2.execute("BEGIN")
        c1.execute("UPDATE t SET b = 111 WHERE a = 1")
        with pytest.raises(SerializationError):
            c2.execute("UPDATE t SET b = 222 WHERE a = 1")
        c1.execute("COMMIT")
        c2.execute("ROLLBACK")
        assert db.execute("SELECT b FROM t WHERE a = 1").scalar() == 111

    def test_update_after_concurrent_commit_conflicts(self, db):
        """The row's deleter committed after our snapshot: still a
        serialization failure (the version we see is no longer current)."""
        c1, c2 = db.connect(), db.connect()
        c2.execute("BEGIN")
        assert count(c2) == 3          # snapshot captured
        c1.execute("UPDATE t SET b = 111 WHERE a = 1")   # autocommit wins
        with pytest.raises(SerializationError):
            c2.execute("DELETE FROM t WHERE a = 1")
        c2.execute("ROLLBACK")

    def test_disjoint_rows_do_not_conflict(self, db):
        c1, c2 = db.connect(), db.connect()
        c1.execute("BEGIN")
        c2.execute("BEGIN")
        c1.execute("UPDATE t SET b = 111 WHERE a = 1")
        c2.execute("UPDATE t SET b = 222 WHERE a = 2")
        c1.execute("COMMIT")
        c2.execute("COMMIT")
        rows = db.execute("SELECT b FROM t ORDER BY a").rows
        assert rows == [(111,), (222,), (30,)]

    def test_loser_can_retry_after_rollback(self, db):
        c1, c2 = db.connect(), db.connect()
        c1.execute("BEGIN")
        c1.execute("UPDATE t SET b = 111 WHERE a = 1")
        c2.execute("BEGIN")
        with pytest.raises(SerializationError):
            c2.execute("UPDATE t SET b = 222 WHERE a = 1")
        c1.execute("COMMIT")
        c2.execute("ROLLBACK")
        c2.execute("UPDATE t SET b = 222 WHERE a = 1")   # fresh snapshot
        assert db.execute("SELECT b FROM t WHERE a = 1").scalar() == 222


# ---------------------------------------------------------------------------
# SET LOCAL transaction scoping
# ---------------------------------------------------------------------------


class TestSetLocal:
    def test_set_local_reverts_at_commit(self, db):
        c1 = db.connect()
        c1.execute("BEGIN")
        c1.execute("SET LOCAL enable_rangescan = off")
        assert c1.execute("SHOW enable_rangescan").scalar() == "off"
        c1.execute("COMMIT")
        assert c1.execute("SHOW enable_rangescan").scalar() == "on"

    def test_set_local_reverts_at_rollback(self, db):
        c1 = db.connect()
        c1.execute("BEGIN")
        c1.execute("SET LOCAL enable_rangescan = off")
        c1.execute("ROLLBACK")
        assert c1.execute("SHOW enable_rangescan").scalar() == "on"

    def test_plain_set_survives_the_block(self, db):
        c1 = db.connect()
        c1.execute("BEGIN")
        c1.execute("SET enable_rangescan = off")
        c1.execute("COMMIT")
        assert c1.execute("SHOW enable_rangescan").scalar() == "off"

    def test_set_local_outside_block_still_warns(self, db):
        c1 = db.connect()
        c1.execute("SET LOCAL enable_rangescan = off")
        assert any("SET LOCAL has no effect" in n for n in c1.notices)
        assert c1.execute("SHOW enable_rangescan").scalar() == "on"

    def test_root_session_set_local_in_block(self, db):
        db.execute("BEGIN")
        db.execute("SET LOCAL enable_rangescan = off")
        assert db.execute("SHOW enable_rangescan").scalar() == "off"
        db.execute("ROLLBACK")
        assert db.execute("SHOW enable_rangescan").scalar() == "on"


# ---------------------------------------------------------------------------
# Transactional DDL
# ---------------------------------------------------------------------------


class TestTransactionalDdl:
    def test_create_table_rolls_back(self, db):
        c1 = db.connect()
        c1.execute("BEGIN")
        c1.execute("CREATE TABLE u(x int)")
        c1.execute("INSERT INTO u VALUES (1)")
        c1.execute("ROLLBACK")
        assert not db.catalog.has_table("u")

    def test_drop_table_rolls_back_with_rows_and_indexes(self, db):
        db.execute("CREATE INDEX t_b ON t(b)")
        c1 = db.connect()
        c1.execute("BEGIN")
        c1.execute("DROP TABLE t")
        c1.execute("ROLLBACK")
        assert count(db.connect()) == 3
        assert "t_b" in db.catalog.indexes
        assert "IndexRangeScan" in db.explain(
            "SELECT b FROM t WHERE b > 15 ORDER BY b")

    def test_create_index_rolls_back(self, db):
        c1 = db.connect()
        c1.execute("BEGIN")
        c1.execute("CREATE INDEX t_b ON t(b)")
        c1.execute("ROLLBACK")
        assert "t_b" not in db.catalog.indexes

    def test_committed_ddl_sticks(self, db):
        c1 = db.connect()
        c1.execute("BEGIN")
        c1.execute("CREATE TABLE u(x int)")
        c1.execute("INSERT INTO u VALUES (1), (2)")
        c1.execute("COMMIT")
        assert db.execute("SELECT count(x) FROM u").scalar() == 2


# ---------------------------------------------------------------------------
# WAL durability (in-process reopen; the crash suite forks subprocesses)
# ---------------------------------------------------------------------------


class TestWalDurability:
    def test_committed_work_survives_reopen(self, tmp_path, db_path=None):
        path = str(tmp_path / "t.wal")
        db1 = Database(path=path)
        db1.execute("CREATE TABLE t(a int, b int)")
        db1.execute("INSERT INTO t VALUES (1, 10), (2, 20)")
        db1.execute("UPDATE t SET b = 99 WHERE a = 2")
        db1.execute("DELETE FROM t WHERE a = 1")
        assert db1.profiler.counts[WAL_RECORDS] > 0
        db1.wal.close()
        db2 = Database(path=path)
        assert db2.profiler.counts[WAL_REPLAYED] > 0
        assert db2.execute("SELECT a, b FROM t").rows == [(2, 99)]

    def test_rolled_back_transaction_not_replayed(self, tmp_path):
        path = str(tmp_path / "t.wal")
        db1 = Database(path=path)
        db1.execute("CREATE TABLE t(a int)")
        c1 = db1.connect()
        c1.execute("BEGIN")
        c1.execute("INSERT INTO t VALUES (1)")
        c1.execute("ROLLBACK")
        db1.execute("INSERT INTO t VALUES (2)")
        db1.wal.close()
        db2 = Database(path=path)
        assert db2.execute("SELECT a FROM t").rows == [(2,)]

    def test_replay_rebuilds_declared_indexes(self, tmp_path):
        path = str(tmp_path / "t.wal")
        db1 = Database(path=path)
        db1.execute("CREATE TABLE t(a int, b int)")
        db1.execute("CREATE INDEX t_b ON t(b)")
        db1.execute("INSERT INTO t VALUES (1, 30), (2, 10), (3, 20)")
        db1.wal.close()
        db2 = Database(path=path)
        assert "t_b" in db2.catalog.indexes
        explain = db2.explain("SELECT b FROM t WHERE b > 5 ORDER BY b")
        assert "IndexRangeScan" in explain
        assert db2.execute(
            "SELECT b FROM t WHERE b > 5 ORDER BY b").rows == \
            [(10,), (20,), (30,)]

    def test_batched_transaction_is_one_fsync_group(self, tmp_path):
        path = str(tmp_path / "t.wal")
        db1 = Database(path=path)
        db1.execute("CREATE TABLE t(a int)")
        c1 = db1.connect()
        c1.execute("BEGIN")
        for i in range(10):
            c1.execute("INSERT INTO t VALUES ($1)", (i,))
        c1.execute("COMMIT")
        db1.wal.close()
        db2 = Database(path=path)
        assert db2.execute("SELECT count(a) FROM t").scalar() == 10

    def test_ddl_replays(self, tmp_path):
        path = str(tmp_path / "t.wal")
        db1 = Database(path=path)
        db1.execute("CREATE TABLE t(a int)")
        db1.execute("CREATE TABLE gone(x int)")
        db1.execute("DROP TABLE gone")
        db1.execute("CREATE TYPE pair AS (x int, y int)")
        db1.execute(
            "CREATE FUNCTION double(n int) RETURNS int LANGUAGE SQL "
            "AS 'SELECT n * 2'")
        db1.wal.close()
        db2 = Database(path=path)
        assert db2.catalog.has_table("t")
        assert not db2.catalog.has_table("gone")
        assert db2.catalog.get_type("pair") is not None
        assert db2.execute("SELECT double(21)").scalar() == 42
