"""Crash-recovery child: commits transactions until the WAL fault fires.

Run as ``python recovery_child.py <wal-path>`` with ``REPRO_WAL_FAULT``
set to ``crash:N`` or ``torn:N`` (see repro.sql.wal), or with
``REPRO_FAULTS`` naming any registry point (see repro.faults).  Prints
``COMMITTED <k>`` after each transaction's COMMIT returns, so the parent
test knows exactly which transactions were acknowledged before the
injected crash killed the process with ``os._exit(1)``.

Each transaction k inserts two rows — ``(k, k*10)`` and
``(k+100, k*10+1)`` — so the parent can also check atomicity: a
transaction must be replayed with both rows or neither.

``REPRO_CHILD_CHECKPOINT=k`` issues a ``CHECKPOINT`` statement right
after transaction k commits (printing ``CHECKPOINTED`` if it returns) —
the hook the parent uses to crash inside the compaction path via the
``wal.checkpoint.*`` fault points.
"""

import os
import sys

from repro.sql import Database


def main() -> None:
    path = sys.argv[1]
    checkpoint_after = int(os.environ.get("REPRO_CHILD_CHECKPOINT", "0"))
    db = Database(path=path)
    db.execute("CREATE TABLE IF NOT EXISTS t(a int, b int)")
    db.execute("CREATE INDEX IF NOT EXISTS t_b ON t(b)")
    conn = db.connect()
    for k in range(1, 9):
        conn.execute("BEGIN")
        conn.execute("INSERT INTO t VALUES ($1, $2)", (k, k * 10))
        conn.execute("INSERT INTO t VALUES ($1, $2)", (k + 100, k * 10 + 1))
        conn.execute("COMMIT")
        print(f"COMMITTED {k}", flush=True)
        if k == checkpoint_after:
            db.execute("CHECKPOINT")
            print("CHECKPOINTED", flush=True)
    print("DONE", flush=True)


if __name__ == "__main__":
    main()
