"""Minimal raw-byte wire client for the protocol conformance suite.

Deliberately independent of ``repro.server.client``: this client frames
and parses every byte itself, so a framing bug in the production codec
cannot cancel out between the shipped client and the server.  It also
exposes raw-message primitives (``send_raw``, ``read_message``) the
malformed-frame and mid-message-disconnect tests need.
"""

from __future__ import annotations

import socket
import struct


def startup_bytes(params: dict[str, str] | None = None,
                  version: int = 196608) -> bytes:
    """A StartupMessage, framed from scratch."""
    if params is None:
        params = {"user": "test", "database": "test"}
    body = struct.pack("!I", version)
    for key, value in params.items():
        body += key.encode() + b"\x00" + value.encode() + b"\x00"
    body += b"\x00"
    return struct.pack("!I", len(body) + 4) + body


def query_bytes(sql: str) -> bytes:
    payload = sql.encode() + b"\x00"
    return b"Q" + struct.pack("!I", len(payload) + 4) + payload


def terminate_bytes() -> bytes:
    return b"X" + struct.pack("!I", 4)


class RawWireClient:
    """Socket + hand-rolled framing; every parse is local to this file."""

    def __init__(self, host: str, port: int, timeout: float = 10.0):
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    # -- raw I/O ---------------------------------------------------------

    def send_raw(self, data: bytes) -> None:
        self.sock.sendall(data)

    def recv_exact(self, n: int) -> bytes:
        chunks = []
        while n:
            chunk = self.sock.recv(n)
            if not chunk:
                raise ConnectionError("server closed the connection")
            chunks.append(chunk)
            n -= len(chunk)
        return b"".join(chunks)

    def read_message(self) -> tuple[bytes, bytes]:
        """One typed backend message: (type byte, payload)."""
        header = self.recv_exact(5)
        (length,) = struct.unpack("!I", header[1:])
        assert length >= 4, f"length {length} below header size"
        return header[:1], self.recv_exact(length - 4)

    def read_until_ready(self) -> list[tuple[bytes, bytes]]:
        """All messages up to and including ReadyForQuery."""
        messages = []
        while True:
            type_byte, payload = self.read_message()
            messages.append((type_byte, payload))
            if type_byte == b"Z":
                return messages

    def eof(self, timeout: float = 5.0) -> bool:
        """True when the server closed the connection (no stray bytes)."""
        self.sock.settimeout(timeout)
        try:
            return self.sock.recv(1) == b""
        except socket.timeout:
            return False

    # -- convenience -----------------------------------------------------

    def handshake(self, params: dict[str, str] | None = None
                  ) -> list[tuple[bytes, bytes]]:
        self.send_raw(startup_bytes(params))
        return self.read_until_ready()

    def query(self, sql: str) -> list[tuple[bytes, bytes]]:
        self.send_raw(query_bytes(sql))
        return self.read_until_ready()

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass

    def __enter__(self) -> "RawWireClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# -- decoding helpers (local re-implementations, on purpose) -------------

def decode_fields(payload: bytes) -> dict[str, str]:
    """ErrorResponse / NoticeResponse diagnostic fields."""
    fields = {}
    pos = 0
    while pos < len(payload) and payload[pos:pos + 1] != b"\x00":
        code = chr(payload[pos])
        end = payload.index(b"\x00", pos + 1)
        fields[code] = payload[pos + 1:end].decode()
        pos = end + 1
    return fields


def decode_row_description(payload: bytes) -> list[dict]:
    """Full per-column descriptors (name, type oid, typlen, format...)."""
    (count,) = struct.unpack_from("!H", payload, 0)
    pos = 2
    columns = []
    for _ in range(count):
        end = payload.index(b"\x00", pos)
        name = payload[pos:end].decode()
        pos = end + 1
        table_oid, attnum, type_oid, typlen, typmod, fmt = \
            struct.unpack_from("!IhIhih", payload, pos)
        pos += 18
        columns.append({"name": name, "table_oid": table_oid,
                        "attnum": attnum, "type_oid": type_oid,
                        "typlen": typlen, "typmod": typmod, "format": fmt})
    return columns


def decode_data_row(payload: bytes) -> list:
    (count,) = struct.unpack_from("!H", payload, 0)
    pos = 2
    values = []
    for _ in range(count):
        (length,) = struct.unpack_from("!i", payload, pos)
        pos += 4
        if length < 0:
            values.append(None)
        else:
            values.append(payload[pos:pos + length].decode())
            pos += length
    return values
