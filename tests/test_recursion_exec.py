"""WITH [RECURSIVE | ITERATE] semantics and buffer-page accounting."""

import pytest

from repro.sql.errors import ExecutionError, PlanError


class TestPlainCtes:
    def test_basic_cte(self, tdb):
        rows = tdb.query_all(
            "WITH big(v) AS (SELECT x FROM t WHERE x > 2) "
            "SELECT v FROM big ORDER BY v")
        assert rows == [(3,), (4,)]

    def test_cte_referenced_twice_materialized_once(self, tdb):
        rows = tdb.query_all(
            "WITH r(v) AS (SELECT random()) "
            "SELECT a.v = b.v FROM r AS a, r AS b")
        assert rows == [(True,)]  # same materialization on both scans

    def test_chained_ctes(self, db):
        rows = db.query_all(
            "WITH a(x) AS (SELECT 1), b(y) AS (SELECT x + 1 FROM a) "
            "SELECT y FROM b")
        assert rows == [(2,)]

    def test_cte_shadows_table(self, tdb):
        rows = tdb.query_all("WITH t(x) AS (SELECT 99) SELECT x FROM t")
        assert rows == [(99,)]

    def test_cte_column_count_mismatch(self, db):
        with pytest.raises(PlanError):
            db.query_all("WITH c(a, b) AS (SELECT 1) SELECT * FROM c")

    def test_cte_visible_in_subquery(self, db):
        assert db.query_value(
            "WITH c(v) AS (SELECT 5) SELECT (SELECT v FROM c)") == 5


class TestRecursiveCtes:
    def test_counting(self, db):
        rows = db.query_all(
            "WITH RECURSIVE s(i) AS (SELECT 1 UNION ALL "
            "SELECT i + 1 FROM s WHERE i < 5) SELECT i FROM s ORDER BY i")
        assert rows == [(1,), (2,), (3,), (4,), (5,)]

    def test_union_distinct_terminates_cycles(self, db):
        db.execute("CREATE TABLE e(src int, dst int)")
        db.execute("INSERT INTO e VALUES (1,2),(2,3),(3,1)")  # a cycle!
        rows = db.query_all(
            "WITH RECURSIVE reach(n) AS (SELECT 1 UNION "
            "SELECT e.dst FROM reach, e WHERE e.src = reach.n) "
            "SELECT n FROM reach ORDER BY n")
        assert rows == [(1,), (2,), (3,)]

    def test_multiple_rows_per_step(self, db):
        rows = db.query_all(
            "WITH RECURSIVE tree(n, d) AS (SELECT 1, 0 UNION ALL "
            "SELECT n * 2, d + 1 FROM tree WHERE d < 2 "
            "UNION ALL SELECT n * 2 + 1, d + 1 FROM tree WHERE d < 2) "
            "SELECT count(*) FROM tree")
        # full binary tree of depth 2: 1 + 2 + 4 = 7
        assert rows == [(7,)]

    def test_all_terms_self_referencing_rejected(self, db):
        with pytest.raises(PlanError, match="base term"):
            db.query_all("WITH RECURSIVE r(n) AS (SELECT n FROM r UNION ALL "
                         "SELECT n + 1 FROM r) SELECT * FROM r")

    def test_term_order_does_not_matter(self, db):
        # Extension over PostgreSQL: terms are classified by self-reference,
        # not position, so base-after-recursive also works.
        db.max_recursion_iterations = 50
        rows = db.query_all(
            "WITH RECURSIVE r(n) AS (SELECT n + 1 FROM r WHERE n < 3 "
            "UNION ALL SELECT 1) SELECT n FROM r ORDER BY n")
        assert rows == [(1,), (2,), (3,)]

    def test_runaway_recursion_guarded(self, db):
        db.max_recursion_iterations = 100
        with pytest.raises(ExecutionError, match="iterations"):
            db.query_all("WITH RECURSIVE r(n) AS (SELECT 1 UNION ALL "
                         "SELECT n + 1 FROM r) SELECT count(*) FROM r")

    def test_non_union_recursive_body_rejected(self, db):
        with pytest.raises(PlanError):
            db.query_all("WITH RECURSIVE r(n) AS (SELECT n + 1 FROM r) "
                         "SELECT * FROM r")

    def test_correlated_recursive_cte(self, tdb):
        # Engine extension: the CTE body references the outer query -
        # exactly what inlined compiled functions need.
        rows = tdb.query_all(
            "SELECT u.x, (WITH RECURSIVE c(i) AS (SELECT 1 UNION ALL "
            "SELECT i + 1 FROM c WHERE i < u.x) SELECT max(i) FROM c) "
            "FROM t AS u ORDER BY u.x")
        assert rows == [(1, 1), (2, 2), (3, 3), (4, 4)]

    def test_recursive_keyword_required_for_self_reference(self, db):
        with pytest.raises(Exception):
            db.query_all("WITH r(n) AS (SELECT 1 UNION ALL SELECT n + 1 "
                         "FROM r WHERE n < 3) SELECT * FROM r")


class TestWithIterate:
    def test_keeps_last_step_only(self, db):
        rows = db.query_all(
            "WITH ITERATE s(i) AS (SELECT 1 UNION ALL "
            "SELECT i + 1 FROM s WHERE i < 5) SELECT i FROM s")
        assert rows == [(5,)]

    def test_multi_row_steps(self, db):
        rows = db.query_all(
            "WITH ITERATE s(i, step) AS (SELECT 1, 0 UNION ALL "
            "SELECT i + 1, step + 1 FROM s WHERE step < 3) "
            "SELECT count(*), max(i) FROM s")
        assert rows == [(1, 4)]

    def test_zero_iterations(self, db):
        rows = db.query_all(
            "WITH ITERATE s(i) AS (SELECT 10 UNION ALL "
            "SELECT i FROM s WHERE false) SELECT i FROM s")
        assert rows == [(10,)]  # base is the last non-empty step

    def test_iterate_writes_no_pages(self, db):
        db.buffers.reset()
        db.query_all("WITH ITERATE s(i, pad) AS (SELECT 1, repeat('x', 512) "
                     "UNION ALL SELECT i + 1, pad FROM s WHERE i < 200) "
                     "SELECT i FROM s")
        assert db.buffers.pages_written == 0

    def test_recursive_does_write_pages(self, db):
        db.buffers.reset()
        db.query_all("WITH RECURSIVE s(i, pad) AS (SELECT 1, repeat('x', 512) "
                     "UNION ALL SELECT i + 1, pad FROM s WHERE i < 200) "
                     "SELECT count(*) FROM s")
        # ~200 rows x ~540 bytes / 8192 per page
        assert db.buffers.pages_written >= 10

    def test_same_answer_as_recursive_for_tail_recursion(self, db):
        recursive = db.query_all(
            "WITH RECURSIVE f(a, b, i) AS (SELECT 0, 1, 0 UNION ALL "
            "SELECT b, a + b, i + 1 FROM f WHERE i < 20) "
            "SELECT a FROM f WHERE i = 20")
        iterate = db.query_all(
            "WITH ITERATE f(a, b, i) AS (SELECT 0, 1, 0 UNION ALL "
            "SELECT b, a + b, i + 1 FROM f WHERE i < 20) "
            "SELECT a FROM f WHERE i = 20")
        assert recursive == iterate == [(6765,)]


class TestPageAccounting:
    def test_quadratic_growth_for_shrinking_strings(self, db):
        def pages(n: int) -> int:
            db.buffers.reset()
            db.query_all(
                "WITH RECURSIVE p(rest) AS (SELECT repeat('a', $1) UNION ALL "
                "SELECT substr(rest, 2) FROM p WHERE length(rest) > 0) "
                "SELECT count(*) FROM p", [n])
            return db.buffers.pages_written

        p1, p2 = pages(400), pages(800)
        assert p2 > 3 * p1  # quadratic: 2x input -> ~4x pages

    def test_byte_charges_match_model(self, db):
        from repro.sql.storage import ROW_OVERHEAD
        db.buffers.reset()
        db.execute("CREATE TABLE z(a int, b text)")
        db.execute("INSERT INTO z VALUES (1, 'xyz')")
        assert db.buffers.bytes_written == ROW_OVERHEAD + 8 + 4
