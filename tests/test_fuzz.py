"""Tier-1 smoke for the differential fuzzing subsystem.

Bounded by fixed seeds: generator determinism (byte-identical cases from
one seed), a ~50-case sweep across the full oracle settings matrix that
must come back clean, the bag/list/sortedness comparison semantics of
``rows_equal`` (NULL, NaN, -0.0, bool-vs-int), the error taxonomy, the
registry-derived settings matrix, and ddmin/reducer convergence on a
deliberately planted TopN bug (a test-only monkeypatch that makes the
bounded heap drop its last row), which must shrink to a reproducer of at
most five statements.
"""

from __future__ import annotations

import math

import pytest

from repro.fuzz import (Case, DifferentialChecker, Query, Reducer, ddmin,
                        emit_pytest, generate_case, rows_equal,
                        settings_matrix)
from repro.fuzz.oracle import is_sorted_by, normalize_value, run_statement
from repro.fuzz.querygen import case_seed
from repro.fuzz.schema import ColumnSpec, SchemaSpec, TableSpec
from repro.sql import Database
from repro.sql.errors import (CRASH, CatalogError, ExecutionError,
                              ParseError, PlanError, SettingError,
                              error_class)

NAN = float("nan")


# ---------------------------------------------------------------------------
# Generator determinism
# ---------------------------------------------------------------------------


class TestGeneratorDeterminism:
    @pytest.mark.parametrize("seed,index", [(0, 0), (0, 7), (5, 3),
                                            (123, 41)])
    def test_same_seed_same_bytes(self, seed, index):
        first = generate_case(seed, index)
        second = generate_case(seed, index)
        assert first.script() == second.script()
        assert first == second

    def test_distinct_indices_distinct_cases(self):
        scripts = {generate_case(9, i).script() for i in range(10)}
        assert len(scripts) == 10

    def test_case_seed_is_pure(self):
        assert case_seed(3, 14) == case_seed(3, 14)
        assert case_seed(3, 14) != case_seed(3, 15)
        assert case_seed(3, 14) != case_seed(4, 14)

    def test_total_orderings_cover_every_output_position(self):
        for index in range(20):
            for query in generate_case(2, index).queries:
                positions = [p for p, _ in query.order_keys]
                assert len(positions) == len(set(positions)), query.sql
                if query.order == "total" and query.function is None:
                    n_outputs = max(positions) + 1
                    assert sorted(positions) == list(range(n_outputs)), \
                        query.sql


# ---------------------------------------------------------------------------
# The ~50-case settings-matrix sweep (the actual smoke)
# ---------------------------------------------------------------------------


class TestSmokeSweep:
    def test_fifty_cases_clean_across_matrix(self):
        from repro.fuzz.__main__ import run_fuzz
        failures = run_fuzz(seed=0, cases=50, reduce_failures=False,
                            emit_dir=None, verbose=False)
        assert failures == 0


# ---------------------------------------------------------------------------
# rows_equal semantics
# ---------------------------------------------------------------------------


class TestRowsEqual:
    def test_bag_vs_list(self):
        a, b = [(1,), (2,)], [(2,), (1,)]
        assert rows_equal(a, b)
        assert not rows_equal(a, b, ordered=True)
        assert rows_equal(a, list(a), ordered=True)

    def test_duplicates_count_in_bags(self):
        assert not rows_equal([(1,), (1,)], [(1,)])

    def test_null_is_one_class(self):
        assert rows_equal([(None,)], [(None,)])
        assert not rows_equal([(None,)], [(0,)])
        assert not rows_equal([(None,)], [("",)])

    def test_nan_is_one_equality_class(self):
        assert rows_equal([(NAN,)], [(float("nan"),)])
        assert not rows_equal([(NAN,)], [(None,)])
        assert not rows_equal([(NAN,)], [(0.0,)])
        assert not rows_equal([(NAN,)], [(math.inf,)])

    def test_negative_zero_equals_zero(self):
        assert rows_equal([(-0.0,)], [(0.0,)])

    def test_float_tolerance_but_not_sloppiness(self):
        assert rows_equal([(0.1 + 0.2,)], [(0.3,)])
        assert not rows_equal([(0.31,)], [(0.3,)])

    def test_numbers_compare_by_sql_value_not_python_type(self):
        """DISTINCT / UNION / min-max legally return either of two equal
        representatives (0 vs 0.0), so numeric comparison is
        type-insensitive; bools merge with ints only under lax (SQLite)."""
        assert rows_equal([(5,)], [(5.0,)])
        assert rows_equal([(0,)], [(-0.0,)])
        assert not rows_equal([(True,)], [(1,)])
        assert rows_equal([(True,)], [(1,)], lax=True)

    def test_big_ints_stay_exact(self):
        assert not rows_equal([(2**63 - 1,)], [(2**63 - 2,)])
        assert rows_equal([(2**70,)], [(float(2**70),)])

    def test_text_never_merges_with_numbers(self):
        assert not rows_equal([("5",)], [(5,)], lax=True)

    def test_normalize_value_infinity(self):
        assert normalize_value(math.inf) == normalize_value(math.inf)
        assert normalize_value(math.inf) != normalize_value(-math.inf)


class TestIsSortedBy:
    def test_asc_nulls_last(self):
        assert is_sorted_by([(1,), (2,), (None,)], ((0, False),))
        assert not is_sorted_by([(None,), (1,)], ((0, False),))

    def test_desc_nulls_first(self):
        assert is_sorted_by([(None,), (2,), (1,)], ((0, True),))
        assert not is_sorted_by([(2,), (None,)], ((0, True),))

    def test_nan_sorts_above_numbers(self):
        assert is_sorted_by([(1.0,), (NAN,), (None,)], ((0, False),))
        assert not is_sorted_by([(NAN,), (1.0,)], ((0, False),))

    def test_second_key_breaks_ties(self):
        rows = [(1, "a"), (1, "b"), (2, "a")]
        assert is_sorted_by(rows, ((0, False), (1, False)))
        assert not is_sorted_by(rows, ((0, False), (1, True)))


# ---------------------------------------------------------------------------
# Error taxonomy
# ---------------------------------------------------------------------------


class TestErrorTaxonomy:
    @pytest.mark.parametrize("error,label", [
        (ParseError("x"), "parse"),
        (PlanError("x"), "plan"),
        (ExecutionError("x"), "execution"),
        (CatalogError("x"), "catalog"),
        (SettingError("x"), "setting"),
        (KeyError("x"), CRASH),
        (RecursionError("x"), CRASH),
        (ZeroDivisionError("x"), CRASH),
    ])
    def test_classification(self, error, label):
        assert error_class(error) == label

    def test_run_statement_applies_taxonomy(self, db):
        assert run_statement(db, "SELECT 1").rows == [(1,)]
        assert run_statement(db, "SELEC 1").error == "parse"
        assert run_statement(db, "SELECT * FROM nope").error in (
            "catalog", "name-resolution")
        assert run_statement(db, "SELECT 1/0").error == "execution"

    def test_both_reject_is_agreement_but_crash_is_not(self):
        """The oracle treats uniform rejection as agreement; a planted
        crash in an executor surfaces as a 'crash' discrepancy."""
        case = _handmade_case(queries=(
            Query(sql="SELECT no_such_fn(a.k) FROM t9 a",
                  sqlite_sql=None),))
        assert DifferentialChecker(use_sqlite=False).check_case(case) == []


# ---------------------------------------------------------------------------
# Settings matrix derivation
# ---------------------------------------------------------------------------


class TestSettingsMatrix:
    def test_matrix_derives_from_registry(self, db):
        configs = settings_matrix(db)
        labels = [c.label for c in configs]
        assert labels[0] == "baseline"
        assert "defaults" in labels
        assert len(labels) == len(set(labels))
        # Every finite plan-affecting setting contributes an axis in each
        # direction; the enum sweeps its non-default choice too.
        axes = db.settings.plan_axes()
        assert {s.name for s, _ in axes} >= {
            "enable_hashjoin", "enable_rangescan", "enable_topn",
            "enable_mergejoin", "enable_vectorize", "batch_compiled",
            "batch_strategy"}
        for setting, values in axes:
            assert values is not None and len(values) >= 2
            assert any(setting.name in label for label in labels)
        assert "defaults+plan_cache_enabled=off" in labels

    def test_enumerable_values_hook(self, db):
        registry = db.settings
        assert registry.lookup("enable_topn").enumerable_values() == \
            (False, True)
        assert registry.lookup("batch_strategy").enumerable_values() == \
            ("machine", "sql")
        assert registry.lookup("plan_cache_size").enumerable_values() is None

    def test_configs_apply_through_set(self, db):
        for config in settings_matrix(db):
            config.apply(db)
        db.execute("RESET ALL")


# ---------------------------------------------------------------------------
# ddmin and the reducer
# ---------------------------------------------------------------------------


class TestDdmin:
    def test_minimizes_to_the_interesting_pair(self):
        items = list(range(20))
        result = ddmin(items, lambda xs: 3 in xs and 17 in xs)
        assert sorted(result) == [3, 17]

    def test_single_culprit(self):
        assert ddmin(list(range(64)), lambda xs: 42 in xs) == [42]

    def test_keeps_everything_when_all_needed(self):
        items = [1, 2, 3]
        assert ddmin(items, lambda xs: xs == items) == items


def _handmade_case(queries, rows=None, extra_table=True) -> Case:
    """A hand-built case: t9(k int, v int) with deterministic rows, plus
    an (optional) unused second table for the reducer to discard."""
    t9 = TableSpec("t9", (ColumnSpec("k", "int", "num", "int"),
                          ColumnSpec("v", "int", "num", "int")))
    tables = [t9]
    data = {"t9": rows if rows is not None else
            [(i % 5, 10 - i) for i in range(12)]}
    if extra_table:
        pad = TableSpec("t8", (ColumnSpec("p", "int", "num", "int"),))
        tables.append(pad)
        data["t8"] = [(1,), (2,)]
    return Case(seed=999, schema=SchemaSpec(tuple(tables)), data=data,
                functions=(), queries=tuple(queries))


PADDING_QUERIES = (
    Query(sql="SELECT a.k FROM t9 a WHERE a.k > 2", sqlite_sql=None),
    Query(sql="SELECT count(*) FROM t9 a", sqlite_sql=None),
    Query(sql="SELECT a.p FROM t8 a ORDER BY 1", sqlite_sql=None,
          order="total", order_keys=((0, False),)),
    Query(sql="SELECT a.v FROM t9 a WHERE a.v IS NOT NULL",
          sqlite_sql=None),
)

TOPN_QUERY = Query(
    sql="SELECT a.k, a.v FROM t9 a ORDER BY 1, 2 LIMIT 4",
    sqlite_sql=None, order="total",
    order_keys=((0, False), (1, False)))


@pytest.fixture()
def planted_topn_bug(monkeypatch):
    """Make the bounded-heap TopN silently drop its last row — a planner
    bug only configurations with enable_topn on can exhibit."""
    from repro.sql.executor import select_core
    original = select_core.TopNState.open

    def broken_open(self, outer):
        original(self, outer)
        if len(self.rows) > 1:
            self.rows.pop()

    monkeypatch.setattr(select_core.TopNState, "open", broken_open)


class TestReducerConvergence:
    def test_planted_bug_is_found_and_reduced(self, planted_topn_bug):
        case = _handmade_case(queries=PADDING_QUERIES + (TOPN_QUERY,))
        checker = DifferentialChecker(use_sqlite=False)
        discrepancies = checker.check_case(case)
        assert discrepancies, "planted TopN bug must be detected"
        assert any(d.kind == "result" and "enable_topn" not in d.config_a
                   for d in discrepancies)
        reducer = Reducer(checker.check_case)
        reduced = reducer.reduce(case)
        # Tentpole acceptance: the reproducer shrinks to <= 5 statements.
        assert reduced.statement_count() <= 5
        assert len(reduced.queries) == 1
        assert "LIMIT" in reduced.queries[0].sql
        assert len(reduced.schema.tables) == 1
        assert checker.check_case(reduced), "reduced case still fails"

    def test_clean_case_is_returned_untouched(self):
        case = _handmade_case(queries=PADDING_QUERIES)
        checker = DifferentialChecker(use_sqlite=False)
        reducer = Reducer(checker.check_case)
        assert reducer.reduce(case) == case

    def test_emitted_regression_module_runs(self, planted_topn_bug,
                                            tmp_path):
        case = _handmade_case(queries=(TOPN_QUERY,), extra_table=False)
        checker = DifferentialChecker(use_sqlite=False)
        discrepancies = checker.check_case(case)
        text = emit_pytest(case, discrepancies, test_name="test_emitted")
        assert "DifferentialChecker" in text
        assert "CASE = Case(" in text
        namespace: dict = {}
        exec(compile(text, "<emitted>", "exec"), namespace)
        # Under the planted bug the regression fails...
        with pytest.raises(AssertionError):
            namespace["test_emitted"]()

    def test_emitted_regression_passes_once_fixed(self, tmp_path):
        case = _handmade_case(queries=(TOPN_QUERY,), extra_table=False)
        checker = DifferentialChecker(use_sqlite=False)
        text = emit_pytest(case, [], test_name="test_emitted")
        namespace: dict = {}
        exec(compile(text, "<emitted>", "exec"), namespace)
        namespace["test_emitted"]()   # healthy engine: no discrepancies


# ---------------------------------------------------------------------------
# SQLite oracle plumbing
# ---------------------------------------------------------------------------


class TestSqliteOracle:
    def test_agreeing_case_is_clean(self):
        query = Query(sql="SELECT a.k, a.v FROM t9 a ORDER BY 1, 2",
                      sqlite_sql="SELECT a.k, a.v FROM t9 a "
                                 "ORDER BY 1 NULLS LAST, 2 NULLS LAST",
                      order="total", order_keys=((0, False), (1, False)))
        case = _handmade_case(queries=(query,), extra_table=False,
                              rows=[(1, 2), (None, 3), (1, None)])
        checker = DifferentialChecker(use_sqlite=True)
        assert checker.check_case(case) == []
        assert checker.profiler.counts["fuzz sqlite cross-checks"] == 1

    def test_nan_data_disqualifies_sqlite(self):
        from repro.fuzz.datagen import data_sqlite_safe
        assert not data_sqlite_safe({"t": [(NAN,)]})
        assert not data_sqlite_safe({"t": [(2**64,)]})
        assert not data_sqlite_safe({"t": [(math.inf,)]})
        assert data_sqlite_safe({"t": [(1, "a", None, True, 0.5)]})


# ---------------------------------------------------------------------------
# Fuzz counters
# ---------------------------------------------------------------------------


class TestFuzzCounters:
    def test_harness_profiler_counts(self):
        from repro.sql.profiler import (FUZZ_CASES, FUZZ_COMPARISONS,
                                        FUZZ_EXECUTIONS)
        checker = DifferentialChecker(use_sqlite=False)
        case = _handmade_case(queries=PADDING_QUERIES)
        checker.check_case(case)
        counts = checker.profiler.counts
        assert counts[FUZZ_CASES] == 1
        assert counts[FUZZ_EXECUTIONS] > len(PADDING_QUERIES)
        assert counts[FUZZ_COMPARISONS] > 0


# ---------------------------------------------------------------------------
# The transaction axis (multi-session interleaved scripts)
# ---------------------------------------------------------------------------


class TestTxnFuzz:
    def test_generation_is_deterministic(self):
        from repro.fuzz import generate_txn_case
        a = generate_txn_case(3, 17)
        b = generate_txn_case(3, 17)
        assert a.script() == b.script()
        assert a.steps == b.steps

    def test_cases_cover_the_transaction_surface(self):
        from repro.fuzz import generate_txn_case
        from repro.fuzz.txngen import CONFLICT
        verbs = set()
        probes = 0
        for index in range(60):
            case = generate_txn_case(0, index)
            for step in case.steps:
                verbs.add(step.sql.split(None, 1)[0].upper())
                probes += step.expect == CONFLICT
        assert {"BEGIN", "COMMIT", "ROLLBACK", "SAVEPOINT", "RELEASE",
                "INSERT", "UPDATE", "DELETE"} <= verbs
        assert probes > 5    # guaranteed-to-fail write-write probes occur

    def test_smoke_run_is_clean(self):
        """Tier-1 smoke: ~120 interleaved multi-session cases, no
        discrepancies against the committed-state and SQLite oracles
        (CI runs the 600-case version)."""
        from repro.fuzz.__main__ import run_txn_fuzz
        assert run_txn_fuzz(seed=0, cases=120, verbose=False) == 0

    def test_checker_catches_a_lost_commit(self):
        """Sanity that the oracle can fail: drop a committed statement
        from the engine side by faking a conflict-free probe."""
        from repro.fuzz import check_txn_case
        from repro.fuzz.txngen import TxnCase, TxnStep
        case = TxnCase(seed=1, sessions=1, tables=["w0"], shared=None)
        case.setup = ["CREATE TABLE w0(k int, v int)",
                      "INSERT INTO w0 VALUES (0, 1)"]
        # The step claims a conflict the engine will not raise: the
        # checker must flag the expectation miss.
        case.steps = [TxnStep(0, "UPDATE w0 SET v = 2 WHERE k = 0",
                              expect="conflict")]
        problems = check_txn_case(case, use_sqlite=False)
        assert problems and problems[0].kind == "expect"


# ---------------------------------------------------------------------------
# The wire axis (served engine vs embedded engine)
# ---------------------------------------------------------------------------


class TestWireFuzz:
    def test_smoke_run_is_clean(self):
        """Tier-1 smoke: ~25 twin-database cases through a live server,
        rows and error SQLSTATEs agreeing with the embedded engine
        (CI runs the time-budgeted rotating-seed version)."""
        from repro.fuzz.__main__ import run_wire_fuzz
        assert run_wire_fuzz(seed=0, cases=25, verbose=False) == 0

    def test_wire_outcome_recovers_taxonomy_labels(self):
        """SQLSTATE -> taxonomy label round trip against a live server:
        the injective mapping is what makes error agreement checkable."""
        from repro.fuzz.wire import wire_outcome
        from repro.server import ServerThread, connect
        from repro.sql import Database
        with ServerThread(Database(seed=0)) as address:
            with connect(*address) as client:
                ok = wire_outcome(client, "SELECT 1")
                assert ok.status == "ok" and ok.rows == [("1",)]
                missing = wire_outcome(client, "SELECT * FROM missing")
                assert (missing.status, missing.error) == \
                    ("error", "name-resolution")
                syntax = wire_outcome(client, "SELEC 1")
                assert (syntax.status, syntax.error) == ("error", "parse")

    def test_checker_catches_a_divergent_twin(self, monkeypatch):
        """Sanity that the wire oracle can fail: make the embedded twin
        lie (duplicate a row) and the checker must report 'result'."""
        from repro.fuzz import wire as wire_module
        from repro.fuzz.querygen import generate_case
        real = wire_module.run_statement

        def lying(db, sql, params=()):
            outcome = real(db, sql, params)
            if outcome.status == "ok" and outcome.rows:
                outcome.rows = list(outcome.rows) + [outcome.rows[0]]
            return outcome

        monkeypatch.setattr(wire_module, "run_statement", lying)
        for index in range(10):  # first case whose queries return rows
            problems = wire_module.check_wire_case(generate_case(0, index))
            if problems:
                assert all(p.kind == "result" for p in problems)
                return
        raise AssertionError("no case produced rows to diverge on")


# ---------------------------------------------------------------------------
# The chaos axis (fault injection under the durability oracle)
# ---------------------------------------------------------------------------


class TestChaosFuzz:
    def test_smoke_run_is_clean(self):
        """Tier-1 smoke: ~30 durable-vs-memory twin cases with injected
        checkpoint failures, reopened and compared (CI runs the
        rotating-seed 200-case version)."""
        from repro.fuzz.__main__ import run_chaos_fuzz
        assert run_chaos_fuzz(seed=0, cases=30, verbose=False) == 0

    def test_checker_catches_replay_divergence(self, monkeypatch):
        """Sanity that the chaos oracle can fail: drop a row from every
        replay and the reopen comparison must report it."""
        from repro.fuzz import chaos as chaos_module
        from repro.fuzz.querygen import generate_case
        from repro.sql.wal import WalManager
        real = WalManager.replay

        def lossy(self):
            applied = real(self)
            for table in self.db.catalog.tables.values():
                if table._versions:
                    table._versions.pop()
                    break
            return applied

        monkeypatch.setattr(WalManager, "replay", lossy)
        for index in range(10):  # first case with any table data
            problems = chaos_module.check_chaos_case(generate_case(0, index))
            if problems:
                assert problems[0].kind in ("reopen", "query")
                return
        raise AssertionError("no case had data to lose on replay")

    def test_faults_left_disarmed(self):
        """A chaos case must never leak an armed trigger into the
        process-wide registry (tier-1 tests share it)."""
        from repro.faults import FAULTS
        from repro.fuzz.chaos import check_chaos_case
        from repro.fuzz.querygen import generate_case
        for index in range(5):
            check_chaos_case(generate_case(3, index))
        assert not FAULTS.active
