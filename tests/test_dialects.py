"""Dialect emission: five targets, round-trips, and the SQLite rewrite."""

import pytest

from repro.compiler import DIALECTS, compile_plsql
from repro.compiler.dialects import render_select
from repro.sql.errors import CompileError
from repro.sql.parser import parse_select

SOURCE = """
CREATE FUNCTION steps(n int) RETURNS int AS $$
DECLARE s int = 0; t int;
BEGIN
  WHILE n > 0 LOOP
    t = n % 3;
    s = s + t;
    n = n - 1;
  END LOOP;
  RETURN s;
END; $$ LANGUAGE plpgsql
"""


@pytest.fixture(scope="module")
def compiled():
    from repro.sql import Database
    return compile_plsql(SOURCE, Database())


class TestEmission:
    def test_all_dialects_render(self, compiled):
        for name in DIALECTS:
            text = compiled.sql(name)
            assert "SELECT" in text and "run" in text

    def test_postgres_uses_lateral_and_recursive(self, compiled):
        text = compiled.sql("postgres")
        assert "WITH RECURSIVE" in text
        assert "LEFT JOIN LATERAL" in text
        assert "$1" in text
        assert '"call?"' in text

    def test_sqlite_avoids_lateral(self, compiled):
        text = compiled.sql("sqlite")
        assert "LATERAL" not in text.upper()
        assert "WITH RECURSIVE" in text
        assert "?1" in text

    def test_sqlserver_uses_apply_and_brackets(self, compiled):
        text = compiled.sql("sqlserver")
        assert "OUTER APPLY" in text
        assert "WITH RECURSIVE" not in text and "WITH " in text
        assert "[call?]" in text
        assert "@p1" in text
        assert " true" not in text.lower().replace("'true'", "")

    def test_oracle_uses_cross_apply_and_colon_params(self, compiled):
        text = compiled.sql("oracle")
        assert "CROSS APPLY" in text
        assert ":1" in text

    def test_mysql_join_lateral(self, compiled):
        text = compiled.sql("mysql")
        assert "JOIN LATERAL" in text

    def test_unknown_dialect(self, compiled):
        with pytest.raises(CompileError, match="unknown dialect"):
            compiled.sql("db2")

    def test_iterate_only_on_our_engine(self):
        from repro.sql import Database
        iterate = compile_plsql(SOURCE, Database(), iterate=True)
        assert "WITH ITERATE" in iterate.sql("postgres")
        with pytest.raises(CompileError):
            iterate.sql("oracle")

    def test_udf_sql_renders_per_dialect(self, compiled):
        pg = compiled.udf_sql("postgres")
        assert "CREATE FUNCTION" in pg and "steps__rec" in pg
        lite = compiled.udf_sql("sqlite")
        assert "LATERAL" not in lite.upper()


class TestRoundTrip:
    def test_postgres_emission_reparses_and_runs(self):
        """The emitted PostgreSQL text must be valid for our own parser and
        produce the same results as the registered compiled function."""
        from repro.sql import Database
        db = Database()
        db.execute(SOURCE)
        compiled = compile_plsql(SOURCE, db)
        compiled.register(db, name="steps_c")
        text = compiled.sql("postgres")
        for n in (0, 4, 9):
            direct = db.execute(text.replace("$1", str(n))).scalar()
            assert direct == db.query_value(f"SELECT steps({n})")
            assert direct == db.query_value(f"SELECT steps_c({n})")

    def test_sqlite_style_emission_runs_on_engine(self):
        """The LATERAL-free rewrite is executable too (our engine accepts
        both shapes), demonstrating 'scripting for engines without PL/SQL'."""
        from repro.sql import Database
        db = Database()
        compiled = compile_plsql(SOURCE, db, let_style="nested")
        compiled.register(db, name="steps_nested")
        db.execute(SOURCE)
        for n in (0, 5):
            assert db.query_value(f"SELECT steps_nested({n})") == \
                db.query_value(f"SELECT steps({n})")

    def test_emitted_text_parses(self, compiled):
        stmt = parse_select(compiled.sql("postgres"))
        rendered_again = render_select(stmt)
        assert "WITH RECURSIVE" in rendered_again


class TestRealSqlite:
    """Section 3's headline: 'a simple syntactic rewrite brought the
    functions to run on a system that formerly lacked any support for
    PL/SQL at all.'  We validate against the *actual* SQLite (stdlib)."""

    def test_emitted_sql_runs_on_real_sqlite(self):
        import sqlite3
        from repro.sql import Database
        db = Database()
        db.execute(SOURCE)
        compiled = compile_plsql(SOURCE, db)
        text = compiled.sql("sqlite")
        connection = sqlite3.connect(":memory:")
        for n in (0, 1, 7, 25):
            got = connection.execute(text, {"1": n}).fetchone()[0]
            assert got == db.query_value(f"SELECT steps({n})")

    def test_query_bearing_function_on_real_sqlite(self):
        import sqlite3
        from repro.compiler import compile_plsql as compile_fn
        from repro.sql import Database
        from repro.workloads.parser_fsm import (PARSE_SOURCE, csv_number_fsm,
                                                setup_parser)
        db = Database()
        fsm = setup_parser(db)
        compiled = compile_fn(PARSE_SOURCE, db)
        text = compiled.sql("sqlite")
        connection = sqlite3.connect(":memory:")
        connection.execute("CREATE TABLE fsm(source int, symbol text, "
                           "target int)")
        connection.execute("CREATE TABLE fsm_accept(state int, is_final bool)")
        connection.executemany("INSERT INTO fsm VALUES (?, ?, ?)",
                               db.query_all("SELECT * FROM fsm"))
        connection.executemany("INSERT INTO fsm_accept VALUES (?, ?)",
                               db.query_all("SELECT * FROM fsm_accept"))
        for sample in ("1,23.5,6", "12x3", ""):
            got = connection.execute(text, {"1": sample}).fetchone()[0]
            expected = fsm.run(sample)
            # SQLite returns ints for our booleans; values are ints anyway.
            assert got == expected, sample


class TestInlineModule:
    def test_source_level_inlining(self):
        from repro.compiler.inline import inline_into_query
        from repro.sql import Database
        db = Database()
        db.execute("CREATE TABLE nums(v int)")
        db.execute("INSERT INTO nums VALUES (1), (2), (3)")
        compiled = compile_plsql(SOURCE, db)
        compiled.register(db, name="steps")
        merged = inline_into_query("SELECT steps(nums.v) FROM nums", compiled)
        assert "steps(" not in merged      # the call is gone ...
        assert "WITH RECURSIVE" in merged  # ... replaced by Qf
        rows = db.execute(merged).rows
        expected = db.query_all("SELECT steps(nums.v) FROM nums")
        assert rows == expected

    def test_inlining_multiple_calls(self):
        from repro.compiler.inline import inline_into_query
        from repro.sql import Database
        db = Database()
        compiled = compile_plsql(SOURCE, db)
        merged = inline_into_query("SELECT steps(1) + steps(2)", compiled)
        assert merged.count("WITH RECURSIVE") == 2
