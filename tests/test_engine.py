"""Database facade: DDL/DML, plan cache, profiler, function dispatch."""

import pytest

from repro.sql import Database
from repro.sql.errors import (CatalogError, ExecutionError,
                              NameResolutionError, PlsqlError)


class TestDdlDml:
    def test_create_insert_select_roundtrip(self, db):
        db.execute("CREATE TABLE p(a int, b float, c text, d bool)")
        db.execute("INSERT INTO p VALUES (1, 2.5, 'x', true)")
        assert db.query_all("SELECT * FROM p") == [(1, 2.5, "x", True)]

    def test_create_table_if_not_exists(self, db):
        db.execute("CREATE TABLE q(a int)")
        db.execute("CREATE TABLE IF NOT EXISTS q(a int)")
        with pytest.raises(CatalogError):
            db.execute("CREATE TABLE q(a int)")

    def test_insert_column_subset(self, db):
        db.execute("CREATE TABLE r(a int, b text)")
        db.execute("INSERT INTO r(b) VALUES ('only')")
        assert db.query_all("SELECT a, b FROM r") == [(None, "only")]

    def test_insert_coerces_types(self, db):
        db.execute("CREATE TABLE s(a int, b text)")
        db.execute("INSERT INTO s VALUES (2.0, 5)")
        assert db.query_all("SELECT * FROM s") == [(2, "5")]

    def test_insert_from_select(self, tdb):
        tdb.execute("CREATE TABLE copy(x int, y text)")
        result = tdb.execute("INSERT INTO copy SELECT x, y FROM t WHERE x < 3")
        assert result.rows == [(2,)]
        assert len(tdb.query_all("SELECT * FROM copy")) == 2

    def test_update(self, tdb):
        result = tdb.execute("UPDATE t SET y = 'zz' WHERE x > 2")
        assert result.rows == [(2,)]
        assert tdb.query_all("SELECT y FROM t WHERE x = 3") == [("zz",)]

    def test_update_with_expression(self, tdb):
        tdb.execute("UPDATE t SET x = x * 10")
        assert tdb.query_value("SELECT sum(x) FROM t") == 100

    def test_delete(self, tdb):
        result = tdb.execute("DELETE FROM t WHERE y IS NULL")
        assert result.rows == [(1,)]
        assert tdb.query_value("SELECT count(*) FROM t") == 3

    def test_drop_table(self, tdb):
        tdb.execute("DROP TABLE t")
        with pytest.raises(NameResolutionError):
            tdb.query_all("SELECT * FROM t")
        tdb.execute("DROP TABLE IF EXISTS t")  # no error

    def test_composite_type_in_table(self, db):
        db.execute("CREATE TYPE pt AS (x int, y int)")
        db.execute("CREATE TABLE m(p pt, v int)")
        db.execute("INSERT INTO m VALUES (row(1,2)::pt, 10)")
        assert db.query_value("SELECT m.p.y FROM m") == 2
        assert db.query_value(
            "SELECT v FROM m WHERE p = row(1,2)::pt") == 10

    def test_execute_script(self, db):
        results = db.execute_script(
            "CREATE TABLE a(x int); INSERT INTO a VALUES (1); "
            "SELECT x FROM a;")
        assert len(results) == 3
        assert results[-1].rows == [(1,)]


class TestResult:
    def test_scalar_helpers(self, tdb):
        assert tdb.execute("SELECT 42").scalar() == 42
        with pytest.raises(ExecutionError):
            tdb.execute("SELECT x FROM t").scalar()
        assert tdb.execute("SELECT x FROM t WHERE false").first() is None
        assert len(tdb.execute("SELECT x FROM t")) == 4


class TestPlanCache:
    def test_cache_hit_on_repeat(self, tdb):
        tdb.profiler.reset()
        tdb.query_all("SELECT x FROM t WHERE x = $1", [1])
        tdb.query_all("SELECT x FROM t WHERE x = $1", [2])
        tdb.query_all("SELECT x FROM t WHERE x = $1", [3])
        assert tdb.profiler.counts["plan cache miss"] == 1
        assert tdb.profiler.counts["plan cache hit"] == 2

    def test_ddl_invalidates_cache(self, tdb):
        tdb.query_all("SELECT x FROM t")
        tdb.execute("CREATE TABLE other(z int)")
        tdb.profiler.reset()
        tdb.query_all("SELECT x FROM t")
        assert tdb.profiler.counts["plan cache miss"] == 1

    def test_cache_disabled(self, tdb):
        tdb.plan_cache_enabled = False
        tdb.profiler.reset()
        tdb.query_all("SELECT x FROM t")
        tdb.query_all("SELECT x FROM t")
        assert tdb.profiler.counts["plan cache miss"] == 2


class TestProfiler:
    def test_phases_cover_execution(self, tdb):
        tdb.profiler.reset()
        tdb.query_all("SELECT x FROM t ORDER BY x")
        times = tdb.profiler.times
        assert times["ExecutorRun"] > 0
        assert times["ExecutorStart"] > 0

    def test_exclusive_attribution(self, db):
        # nested phases must not double count
        profiler = db.profiler
        profiler.reset()
        import time
        with profiler.phase("Interp"):
            time.sleep(0.01)
            with profiler.phase("ExecutorRun"):
                time.sleep(0.01)
        total = profiler.total_time()
        assert 0.018 < total < 0.08
        assert profiler.times["Interp"] < total

    def test_report_renders(self, tdb):
        tdb.query_all("SELECT 1")
        report = tdb.profiler.report()
        assert "ExecutorRun" in report

    def test_percentages_sum(self, tdb):
        tdb.profiler.reset()
        tdb.query_all("SELECT x FROM t")
        shares = tdb.profiler.percentages()
        assert abs(sum(shares.values()) - 100.0) < 1e-6


class TestFunctions:
    def test_sql_function(self, db):
        db.execute("CREATE FUNCTION add2(a int, b int) RETURNS int AS "
                   "'SELECT a + b' LANGUAGE SQL")
        assert db.query_value("SELECT add2(3, 4)") == 7

    def test_sql_function_arity_check(self, db):
        db.execute("CREATE FUNCTION one() RETURNS int AS 'SELECT 1' "
                   "LANGUAGE SQL")
        with pytest.raises(Exception):
            db.query_value("SELECT one(5)")

    def test_function_replace(self, db):
        db.execute("CREATE FUNCTION f() RETURNS int AS 'SELECT 1' "
                   "LANGUAGE SQL")
        db.execute("CREATE OR REPLACE FUNCTION f() RETURNS int AS "
                   "'SELECT 2' LANGUAGE SQL")
        assert db.query_value("SELECT f()") == 2
        with pytest.raises(CatalogError):
            db.execute("CREATE FUNCTION f() RETURNS int AS 'SELECT 3' "
                       "LANGUAGE SQL")

    def test_drop_function(self, db):
        db.execute("CREATE FUNCTION g() RETURNS int AS 'SELECT 1' "
                   "LANGUAGE SQL")
        db.execute("DROP FUNCTION g")
        with pytest.raises(NameResolutionError):
            db.query_value("SELECT g()")

    def test_unsupported_language(self, db):
        with pytest.raises(CatalogError):
            db.execute("CREATE FUNCTION h() RETURNS int AS 'x' LANGUAGE c")

    def test_sql_function_must_be_scalar(self, db):
        db.execute("CREATE TABLE many(v int)")
        db.execute("INSERT INTO many VALUES (1), (2)")
        db.execute("CREATE FUNCTION bad() RETURNS int AS "
                   "'SELECT v FROM many' LANGUAGE SQL")
        with pytest.raises(ExecutionError):
            db.query_value("SELECT bad()")

    def test_recursive_sql_udf_depth_limit(self, db):
        db.execute("CREATE FUNCTION down(n int) RETURNS int AS "
                   "'SELECT CASE WHEN n <= 0 THEN 0 ELSE down(n - 1) END' "
                   "LANGUAGE SQL")
        assert db.query_value("SELECT down(10)") == 0
        with pytest.raises(ExecutionError, match="stack depth"):
            db.query_value("SELECT down(100000)")

    def test_q_to_f_switch_counted(self, db):
        db.execute("CREATE FUNCTION inc(n int) RETURNS int AS "
                   "'SELECT n + 1' LANGUAGE SQL")
        db.execute("CREATE TABLE nums(v int)")
        db.execute("INSERT INTO nums VALUES (1), (2), (3)")
        db.profiler.reset()
        db.query_all("SELECT inc(v) FROM nums")
        assert db.profiler.counts["switch Q->f"] == 3


class TestSeedsAndState:
    def test_reseed_reproducibility(self, db):
        db.reseed(5)
        a = db.query_value("SELECT random()")
        db.reseed(5)
        assert db.query_value("SELECT random()") == a

    def test_databases_are_isolated(self):
        db1, db2 = Database(), Database()
        db1.execute("CREATE TABLE only1(x int)")
        with pytest.raises(NameResolutionError):
            db2.query_all("SELECT * FROM only1")

    def test_explain_renders_tree(self, tdb):
        text = tdb.explain("SELECT x FROM t WHERE x = 1 ORDER BY x")
        assert "IndexScan" in text or "SeqScan" in text
