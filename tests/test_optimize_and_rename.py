"""Focused unit tests: individual SSA passes and the shadow-aware renamer."""

import pytest

from repro.compiler.cfg import Goto, Return, build_cfg
from repro.compiler.optimize import (eliminate_dead_code, expr_is_volatile,
                                     fold_constants, merge_blocks,
                                     propagate_copies_and_constants,
                                     simplify_phis, thread_jumps)
from repro.compiler.rename import collect_variable_uses, rename_variables
from repro.compiler.ssa import build_ssa
from repro.plsql.parser import parse_plpgsql_function
from repro.sql import ast as A
from repro.sql.errors import CompileError
from repro.sql.parser import parse_expression


def ssa_of(body: str, params="n int"):
    name, type_name = params.split()
    func = parse_plpgsql_function("f", [name], [type_name], "int", body)
    return build_ssa(build_cfg(func))


def all_stmts(program):
    return [s for b in program.blocks.values() for s in b.stmts]


class TestIndividualPasses:
    def test_simplify_phis_single_pred(self):
        program = ssa_of("DECLARE v int = 1; BEGIN IF n > 0 THEN v = 2; "
                         "END IF; RETURN v; END")
        # merge/thread first so a single-operand phi can appear; then check
        # simplify turns all-same phis into copies without changing counts.
        before = sum(len(b.phis) for b in program.blocks.values())
        simplify_phis(program)
        after = sum(len(b.phis) for b in program.blocks.values())
        assert after <= before

    def test_copy_propagation_chases_chains(self):
        program = ssa_of("DECLARE a int; b int; c int; BEGIN a = n; b = a; "
                         "c = b; RETURN c; END")
        propagate_copies_and_constants(program)
        returns = [b.terminator for b in program.blocks.values()
                   if isinstance(b.terminator, Return)]
        rendered = str(returns[0].expr)
        assert "n_1" in rendered  # the chain collapsed to the parameter

    def test_constant_propagation_into_condition(self):
        program = ssa_of("DECLARE k int = 5; BEGIN IF k > n THEN RETURN 1; "
                         "END IF; RETURN 0; END")
        propagate_copies_and_constants(program)
        fold_constants(program)
        conditions = [b.terminator.condition
                      for b in program.blocks.values()
                      if hasattr(b.terminator, "condition")]
        assert conditions, "condition survived"
        assert any(isinstance(c, A.BinaryOp)
                   and isinstance(c.left, A.Literal) for c in conditions)

    def test_fold_constant_condition_rewires_terminator(self):
        program = ssa_of("BEGIN IF 1 > 2 THEN RETURN 10; END IF; "
                         "RETURN 20; END")
        propagate_copies_and_constants(program)
        fold_constants(program)
        entry = program.blocks[program.entry]
        assert isinstance(entry.terminator, Goto)

    def test_dce_removes_unused_chain(self):
        program = ssa_of("DECLARE a int; b int; BEGIN a = n * 2; b = a + 1; "
                         "RETURN n; END")
        eliminate_dead_code(program)
        assert all_stmts(program) == []

    def test_dce_keeps_volatile(self):
        program = ssa_of("DECLARE a float; BEGIN a = random(); "
                         "RETURN n; END")
        eliminate_dead_code(program)
        assert len(all_stmts(program)) == 1

    def test_thread_jumps_removes_empty_forwarders(self):
        program = ssa_of("BEGIN IF n > 0 THEN RETURN 1; ELSE RETURN 2; "
                         "END IF; END")
        blocks_before = len(program.blocks)
        simplify_phis(program)
        thread_jumps(program)
        merge_blocks(program)
        assert len(program.blocks) <= blocks_before

    def test_merge_blocks_preserves_semantics(self, db):
        source = ("CREATE FUNCTION f(n int) RETURNS int AS $$ "
                  "DECLARE a int; BEGIN a = n + 1; a = a * 2; "
                  "RETURN a; END; $$ LANGUAGE plpgsql")
        from repro.compiler import compile_plsql
        compiled = compile_plsql(source, db)
        compiled.register(db)
        assert db.query_value("SELECT f(5)") == 12
        # loop-free and fully merged: no recursion machinery
        assert not compiled.is_recursive


class TestVolatility:
    def test_direct_call(self):
        assert expr_is_volatile(parse_expression("random()"))
        assert not expr_is_volatile(parse_expression("abs(-1)"))

    def test_nested_in_subquery(self):
        assert expr_is_volatile(parse_expression("(SELECT random())"))
        assert expr_is_volatile(
            parse_expression("exists (SELECT 1 WHERE random() > 0.5)"))
        assert not expr_is_volatile(parse_expression("(SELECT max(x) FROM t)"))


class TestRenamer:
    def rename_to_upper(self, text, variables, catalog=None):
        expr = parse_expression(text)
        out = rename_variables(
            expr,
            lambda n: A.ColumnRef((n.upper(),)) if n in variables else None,
            catalog)
        from repro.compiler.dialects import render_expression
        return render_expression(out)

    def test_renames_bare_variables_only(self):
        out = self.rename_to_upper("x + t.x", {"x"})
        assert '"X"' in out and "t.x" in out

    def test_subquery_column_not_renamed(self, tdb):
        # x is a column of t; inside the subquery it must stay a column.
        out = self.rename_to_upper("(SELECT max(x) FROM t) + v", {"v"},
                                   tdb.catalog)
        assert "max(x)" in out and '"V"' in out

    def test_shadowed_variable_is_ambiguous(self, tdb):
        with pytest.raises(CompileError, match="ambiguous"):
            self.rename_to_upper("(SELECT count(*) FROM t WHERE x > 0)",
                                 {"x"}, tdb.catalog)

    def test_derived_table_alias_shadows(self, tdb):
        # inner bare v is both a variable and a derived-table column:
        # the renamer must refuse rather than silently capture.
        with pytest.raises(CompileError, match="ambiguous"):
            self.rename_to_upper(
                "(SELECT q.v FROM (SELECT 1 AS v) AS q WHERE v = 1) + other",
                {"v", "other"}, tdb.catalog)

    def test_derived_alias_without_conflict_ok(self, tdb):
        out = self.rename_to_upper(
            "(SELECT q.w FROM (SELECT 1 AS w) AS q WHERE w = 1) + other",
            {"v", "other"}, tdb.catalog)
        assert '"OTHER"' in out and "w = 1" in out.replace("(", "").replace(")", "")

    def test_collect_uses_crosses_subqueries(self, tdb):
        expr = parse_expression(
            "(SELECT count(*) FROM t WHERE t.x > threshold) + bias")
        used = collect_variable_uses(expr, {"threshold", "bias", "unused"},
                                     tdb.catalog)
        assert used == {"threshold", "bias"}


class TestCompiledEndToEndAfterPasses:
    @pytest.mark.parametrize("optimize", [True, False])
    def test_big_program_same_result(self, db, optimize):
        source = """
            CREATE FUNCTION mix(n int) RETURNS int AS $$
            DECLARE a int = 0; b int = 1; dead int = 42; c int;
            BEGIN
              c = b;                  -- copy
              dead = dead * 2;        -- dead code
              FOR i IN 1..n LOOP
                a = a + c;
                IF a % 3 = 0 THEN
                  c = c + 1;
                ELSIF a % 5 = 0 THEN
                  CONTINUE;
                END IF;
                EXIT WHEN a > 100;
              END LOOP;
              RETURN a * 10 + c;
            END; $$ LANGUAGE plpgsql"""
        from repro.compiler import compile_plsql
        db.execute(source)
        suffix = "opt" if optimize else "raw"
        compile_plsql(source, db, optimize=optimize).register(
            db, name=f"mix_{suffix}")
        for n in (0, 1, 7, 50):
            assert db.query_value(f"SELECT mix_{suffix}({n})") == \
                db.query_value(f"SELECT mix({n})")
