"""The paper's four workloads: oracles, equivalence, and scenario pieces."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import make_parseable_input
from repro.workloads.fibonacci import fibonacci_reference
from repro.workloads.parser_fsm import csv_number_fsm
from repro.workloads.robot import (default_grid, random_grid, value_iteration,
                                   walk_reference)


class TestMdp:
    def test_value_iteration_covers_all_cells(self):
        grid = default_grid()
        policy = value_iteration(grid)
        assert set(policy) == set(grid.cells())
        assert set(policy.values()) <= {"up", "down", "left", "right"}

    def test_transition_probabilities_sum_to_one(self):
        grid = default_grid()
        for cell in grid.cells():
            for action in ("up", "down", "left", "right"):
                total = sum(grid.transition(cell, action).values())
                assert total == pytest.approx(1.0)

    def test_walls_bounce_back(self):
        grid = default_grid()
        # (4,1) is a wall; stepping right from (3,1) can bounce back
        outcomes = grid.transition((3, 1), "right")
        assert (4, 1) not in outcomes
        assert (3, 1) in outcomes

    def test_policy_prefers_reward(self):
        # a tiny 1x3 grid with a prize on the right must walk right
        from repro.workloads.robot import GridWorld
        grid = GridWorld(3, 1, {(0, 0): 0, (1, 0): 0, (2, 0): 5})
        policy = value_iteration(grid)
        assert policy[(0, 0)] == "right"
        assert policy[(1, 0)] == "right"


class TestWalk:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    @pytest.mark.parametrize("win,loose,steps", [(10, -10, 30), (3, -3, 50),
                                                 (10**6, -(10**6), 20)])
    def test_three_way_equivalence(self, demo, seed, win, loose, steps):
        db = demo.db
        db.reseed(seed)
        interp = db.query_value(
            "SELECT walk(row(0,0)::coord, $1, $2, $3)", [win, loose, steps])
        db.reseed(seed)
        compiled = db.query_value(
            "SELECT walk_c(row(0,0)::coord, $1, $2, $3)", [win, loose, steps])
        db.reseed(seed)
        iterate = db.query_value(
            "SELECT walk_it(row(0,0)::coord, $1, $2, $3)", [win, loose, steps])
        oracle = walk_reference(db, demo.grid, (0, 0), win, loose, steps, seed)
        assert interp == compiled == iterate == oracle

    def test_zero_steps_is_draw(self, demo):
        assert demo.db.query_value(
            "SELECT walk_c(row(0,0)::coord, 5, -5, 0)") == 0

    def test_sign_encodes_outcome(self, demo):
        db = demo.db
        # loose threshold 0: first negative reward ends the walk negatively
        db.reseed(1)
        value = db.query_value("SELECT walk_c(row(0,0)::coord, 1000, -1, 50)")
        assert value != 0

    @settings(max_examples=5, deadline=None)
    @given(st.integers(0, 10**6))
    def test_random_grids_property(self, seed):
        from repro.compiler import compile_plsql
        from repro.sql import Database
        from repro.workloads.robot import WALK_SOURCE, setup_robot
        db = Database()
        grid = setup_robot(db, random_grid(seed))
        compile_plsql(WALK_SOURCE, db).register(db, name="walk_c")
        db.reseed(seed)
        interp = db.query_value(
            "SELECT walk(row(0,0)::coord, 8, -8, 25)")
        db.reseed(seed)
        compiled = db.query_value(
            "SELECT walk_c(row(0,0)::coord, 8, -8, 25)")
        assert interp == compiled
        assert interp == walk_reference(db, grid, (0, 0), 8, -8, 25, seed)


class TestParse:
    def test_fsm_oracle_accepts_generated_input(self):
        fsm = csv_number_fsm()
        for seed in range(5):
            text = make_parseable_input(30, seed=seed)
            assert fsm.run(text) == 30

    def test_fsm_rejects_bad_char(self):
        fsm = csv_number_fsm()
        assert fsm.run("12x") == -3
        assert fsm.run("12,") == -4  # dangles in non-accepting state

    @pytest.mark.parametrize("length", [0, 1, 10, 120])
    def test_equivalence_on_valid_input(self, demo, length):
        db = demo.db
        text = make_parseable_input(length, seed=length) if length else ""
        interp = db.query_value("SELECT parse($1)", [text])
        compiled = db.query_value("SELECT parse_c($1)", [text])
        iterate = db.query_value("SELECT parse_it($1)", [text])
        assert interp == compiled == iterate == demo.fsm.run(text)

    @pytest.mark.parametrize("text", ["abc", "1..2", "-", "1,,2", "+x"])
    def test_equivalence_on_invalid_input(self, demo, text):
        db = demo.db
        interp = db.query_value("SELECT parse($1)", [text])
        compiled = db.query_value("SELECT parse_c($1)", [text])
        assert interp == compiled == demo.fsm.run(text)

    @settings(max_examples=20, deadline=None)
    @given(st.text(alphabet="0123456789.,+-x", max_size=25))
    def test_arbitrary_strings_property(self, demo, text):
        db = demo.db
        assert db.query_value("SELECT parse($1)", [text]) == \
            db.query_value("SELECT parse_c($1)", [text]) == \
            demo.fsm.run(text)


class TestTraverse:
    @pytest.mark.parametrize("start,hops", [(0, 0), (0, 10), (5, 33), (63, 7)])
    def test_equivalence(self, demo, start, hops):
        db = demo.db
        interp = db.query_value("SELECT traverse($1, $2)", [start, hops])
        compiled = db.query_value("SELECT traverse_c($1, $2)", [start, hops])
        oracle = demo.graph.traverse_reference(start, hops)
        assert interp == compiled == oracle

    def test_dead_end_returns_partial_sum(self, db):
        from repro.compiler import compile_plsql
        from repro.workloads.graph import (PARAMETRIC_TRAVERSE_SOURCE, Digraph,
                                           setup_graph)
        graph = Digraph(3, [(0, 1, 1.0), (1, 2, 1.0)])  # 2 is a dead end
        setup_graph(db, graph)
        compile_plsql(PARAMETRIC_TRAVERSE_SOURCE, db).register(
            db, name="traverse_c")
        assert db.query_value("SELECT traverse(0, 10)") == 3  # 1 + 2
        assert db.query_value("SELECT traverse_c(0, 10)") == 3


class TestFibonacci:
    @pytest.mark.parametrize("n", [0, 1, 2, 10, 40])
    def test_equivalence(self, demo, n):
        db = demo.db
        assert db.query_value(f"SELECT fibonacci({n})") == \
            db.query_value(f"SELECT fibonacci_c({n})") == \
            fibonacci_reference(n)

    def test_no_embedded_queries(self, demo):
        db = demo.db
        db.query_value("SELECT fibonacci(5)")
        db.profiler.reset()
        db.profiler.enabled = True
        try:
            db.query_value("SELECT fibonacci(20)")
        finally:
            db.profiler.enabled = False
        assert db.profiler.counts.get("switch f->Q", 0) == 0


class TestLoader:
    def test_demo_database_contains_everything(self, demo):
        db = demo.db
        for table in ("cells", "policy", "actions", "fsm", "fsm_accept",
                      "edges"):
            assert db.catalog.has_table(table), table
        for fn in ("walk", "parse", "traverse", "fibonacci"):
            assert db.catalog.get_function(fn) is not None
            assert db.catalog.get_function(fn + "_c") is not None
        assert demo.compiled["walk"].is_recursive

    def test_tables_match_figure2_shape(self, demo):
        db = demo.db
        grid = demo.grid
        cell_count = len(grid.cells())
        assert db.query_value("SELECT count(*) FROM cells") == cell_count
        assert db.query_value("SELECT count(*) FROM policy") == cell_count
        # every (here, action) pair has a probability distribution summing 1
        rows = db.query_all(
            "SELECT here, action, sum(prob) FROM actions GROUP BY here, action")
        assert len(rows) == cell_count * 4
        for _here, _action, total in rows:
            assert total == pytest.approx(1.0)


class TestInputGenerator:
    @given(st.integers(0, 300))
    @settings(max_examples=30, deadline=None)
    def test_exact_length_and_valid(self, n):
        fsm = csv_number_fsm()
        text = make_parseable_input(n, seed=n)
        assert len(text) == n
        if n:
            assert fsm.run(text) == n
