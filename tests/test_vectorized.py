"""The vectorized executor core (executor/vector.py): plan shape, the
profiler's batch counters, the statement-level row fallback, snapshot
freshness under same-transaction DML, and cancellation.

Numeric parity lives in ``test_fuzz_regressions.py`` (the adversarial
bigint sweep) and ``test_differential.py`` (randomized row/batch
differential incl. the batch-size boundary sweep); this file pins the
executor's *mechanics*.
"""

from __future__ import annotations

import pytest

from repro.sql import Database
from repro.sql.errors import ExecutionError, QueryCanceledError
from repro.sql.executor import vector


@pytest.fixture()
def vdb(db):
    db.execute("CREATE TABLE t(a int, b int)")
    for i in range(10):
        db.execute("INSERT INTO t VALUES ($1, $2)", [i, i % 3])
    return db


def _explain(db, sql: str) -> str:
    return "\n".join(r[0] for r in db.execute("EXPLAIN " + sql).rows)


# ---------------------------------------------------------------------------
# Plan shape / EXPLAIN labels
# ---------------------------------------------------------------------------


class TestPlanShape:
    def test_explain_labels_the_vector_pipeline(self, vdb):
        text = _explain(vdb, "SELECT a FROM t WHERE a % 2 = 0")
        assert "VectorizedSelect" in text
        assert "VectorFilter" in text
        assert "VectorProject" in text
        assert f"VectorScan on t (batch={vector.BATCH_SIZE})" in text

    def test_explain_labels_vector_aggregation(self, vdb):
        text = _explain(vdb, "SELECT b, sum(a) FROM t GROUP BY b")
        assert "VectorizedAggregate+Select" in text
        assert "VectorAggregate (1 keys, 1 calls)" in text

    def test_setting_toggles_the_plan(self, vdb):
        sql = "SELECT sum(a) FROM t"
        assert "VectorScan" in _explain(vdb, sql)
        vdb.execute("SET enable_vectorize = off")
        assert "VectorScan" not in _explain(vdb, sql)
        vdb.execute("RESET enable_vectorize")
        assert "VectorScan" in _explain(vdb, sql)

    def test_row_only_shapes_keep_the_row_plan(self, vdb):
        # Joins, ORDER BY, window functions and subqueries all stay on the
        # row engine; the vectorized core never appears under them.
        vdb.execute("CREATE TABLE u(x int)")
        for sql in [
            "SELECT t.a FROM t, u WHERE t.a = u.x",
            "SELECT a FROM t ORDER BY b",
            "SELECT a, row_number() OVER (ORDER BY a) FROM t",
            "SELECT a, (SELECT max(x) FROM u) FROM t",
            "SELECT random() FROM t",
        ]:
            assert "Vector" not in _explain(vdb, sql), sql

    def test_vectorized_axis_is_plan_affecting(self, vdb):
        assert any(s.name == "enable_vectorize" and values == (False, True)
                   for s, values in vdb.settings.plan_axes())


# ---------------------------------------------------------------------------
# Profiler counters
# ---------------------------------------------------------------------------


class TestProfilerCounters:
    def test_batches_and_rows_counted(self, vdb, monkeypatch):
        monkeypatch.setattr(vector, "BATCH_SIZE", 4)
        vdb.profiler.reset()
        assert vdb.query_value("SELECT sum(a) FROM t") == 45
        assert vdb.profiler.counts["vector batches"] == 3  # 4 + 4 + 2
        assert vdb.profiler.counts["vector rows"] == 10

    def test_row_engine_does_not_bump(self, vdb):
        vdb.execute("SET enable_vectorize = off")
        vdb.profiler.reset()
        vdb.execute("SELECT sum(a) FROM t")
        assert vdb.profiler.counts["vector batches"] == 0


# ---------------------------------------------------------------------------
# Row fallback on evaluation errors
# ---------------------------------------------------------------------------


class TestRowFallback:
    def test_error_parity_with_the_row_engine(self, vdb):
        vdb.execute("INSERT INTO t VALUES (NULL, 0)")
        sql = "SELECT 10 / b FROM t"  # b = 0 rows divide by zero
        with pytest.raises(ExecutionError) as vec_err:
            vdb.execute(sql)
        vdb.execute("SET enable_vectorize = off")
        with pytest.raises(ExecutionError) as row_err:
            vdb.execute(sql)
        assert str(vec_err.value) == str(row_err.value)

    def test_limit_laziness_preserved(self, db):
        # The row engine never reaches the poisoned third row under
        # LIMIT 2; the batch engine evaluates the whole batch eagerly,
        # hits the error, and must fall back to reproduce the lazy
        # row-at-a-time outcome.
        db.execute("CREATE TABLE z(a int)")
        for v in (1, 2, 0, 5):
            db.execute("INSERT INTO z VALUES ($1)", [v])
        sql = "SELECT 10 / a FROM z LIMIT 2"
        assert db.query_all(sql) == [(10,), (5,)]
        db.execute("SET enable_vectorize = off")
        assert db.query_all(sql) == [(10,), (5,)]

    def test_scan_level_error_falls_back(self, vdb, monkeypatch):
        def boom(self):
            raise ExecutionError("injected scan failure")

        monkeypatch.setattr(vector.VectorScan, "next_batch", boom)
        assert vdb.query_value("SELECT sum(a) FROM t") == 45

    def test_streaming_fallback_resumes_after_emitted_rows(self, vdb,
                                                           monkeypatch):
        # Let two batches stream out vectorized, then poison the scan:
        # the fallback must skip exactly the rows already emitted.
        monkeypatch.setattr(vector, "BATCH_SIZE", 3)
        original = vector.VectorScan.next_batch
        calls = {"n": 0}

        def flaky(self):
            calls["n"] += 1
            if calls["n"] == 3:
                raise ExecutionError("injected mid-stream failure")
            return original(self)

        monkeypatch.setattr(vector.VectorScan, "next_batch", flaky)
        assert vdb.query_all("SELECT a FROM t") == [(i,) for i in range(10)]


# ---------------------------------------------------------------------------
# Snapshot freshness: batches never outlive same-transaction DML
# ---------------------------------------------------------------------------


class TestSnapshotFreshness:
    def test_in_txn_update_then_aggregate(self, vdb):
        # The batch pipeline reads HeapTable.rows at *open* time, so an
        # aggregate inside an explicit transaction must see the
        # transaction's own prior UPDATE (and re-reading after more DML
        # must not serve a stale cached batch).
        for setting in ("on", "off"):
            vdb.execute(f"SET enable_vectorize = {setting}")
            conn = vdb.connect()
            conn.execute("BEGIN")
            conn.execute("UPDATE t SET a = a + 100")
            assert conn.execute("SELECT sum(a) FROM t").scalar() == 1045, \
                setting
            conn.execute("INSERT INTO t VALUES (1000, 9)")
            assert conn.execute("SELECT sum(a) FROM t").scalar() == 2045, \
                setting
            conn.execute("ROLLBACK")
            assert conn.execute("SELECT sum(a) FROM t").scalar() == 45, \
                setting

    def test_autocommit_dml_between_scans(self, vdb):
        assert vdb.query_value("SELECT sum(a) FROM t") == 45
        vdb.execute("DELETE FROM t WHERE a >= 5")
        assert vdb.query_value("SELECT sum(a) FROM t") == 10
        vdb.execute("UPDATE t SET a = a * 2")
        assert vdb.query_value("SELECT sum(a) FROM t") == 20


# ---------------------------------------------------------------------------
# Cancellation
# ---------------------------------------------------------------------------


class TestCancellation:
    def test_cancel_propagates_and_never_falls_back(self, vdb, monkeypatch):
        # QueryCanceledError must escape the fallback's SqlError net —
        # were it swallowed, the row engine would quietly re-run the
        # statement to completion and this would return 45.
        def canceled(self):
            raise QueryCanceledError("canceling statement")

        monkeypatch.setattr(vector.VectorScan, "next_batch", canceled)
        with pytest.raises(QueryCanceledError):
            vdb.execute("SELECT sum(a) FROM t")

    def test_scan_polls_once_per_batch(self, vdb, monkeypatch):
        monkeypatch.setattr(vector, "BATCH_SIZE", 2)
        polls = {"n": 0}
        from repro.sql import cancel as cancel_mod

        real_check = cancel_mod.CancelToken.check

        def counting_check(self):
            polls["n"] += 1
            return real_check(self)

        monkeypatch.setattr(cancel_mod.CancelToken, "check", counting_check)
        vdb.execute("SELECT sum(a) FROM t")
        assert polls["n"] >= 5  # one per 2-row batch over 10 rows
