"""Session/Connection API: parse->classify->dispatch, the LRU plan cache,
prepared statements (SQL and programmatic), the GUC-style settings
registry, and the PEP-249 cursor surface.

Regression focus of this PR:

* comment-prefixed / parenthesised SELECTs must hit the plan cache (the
  old ``_looks_like_select`` prefix sniff silently bypassed it),
* prepared statements must replan — never crash or return stale results —
  across every DDL invalidation path,
* every plan-affecting flag swept through SET/RESET must preserve result
  equality on the ordered-paths workloads (differential house style).
"""

from __future__ import annotations

import pytest

from repro.sql import Database
from repro.sql.errors import (CatalogError, ExecutionError,
                              NameResolutionError, PlanError, SettingError)
from repro.sql.profiler import (PLAN_CACHE_EVICTIONS, PLAN_CACHE_HIT,
                                PLAN_CACHE_MISS, PLAN_INSTANTIATIONS,
                                PREPARED_EXECUTIONS, PREPARED_REPLANS,
                                SETTINGS_ASSIGNMENTS)


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE t(a int, b int)")
    for i in range(100):
        database.execute("INSERT INTO t VALUES ($1, $2)", (i % 10, i))
    return database


# ---------------------------------------------------------------------------
# Parse -> classify -> dispatch (no more prefix sniffing)
# ---------------------------------------------------------------------------


class TestClassifyDispatch:
    def test_line_comment_prefixed_select_hits_plan_cache(self, db):
        sql = "-- find one row\nSELECT b FROM t WHERE a = $1"
        db.profiler.reset()
        first = db.execute(sql, [3])
        second = db.execute(sql, [3])
        assert first.rows == second.rows
        assert db.profiler.counts[PLAN_CACHE_MISS] == 1
        assert db.profiler.counts[PLAN_CACHE_HIT] == 1

    def test_block_comment_prefixed_select_hits_plan_cache(self, db):
        sql = "/* a block\n   comment */ SELECT count(*) FROM t"
        db.profiler.reset()
        assert db.execute(sql).scalar() == 100
        assert db.execute(sql).scalar() == 100
        assert db.profiler.counts[PLAN_CACHE_HIT] == 1

    def test_parenthesised_select_hits_plan_cache(self, db):
        sql = "(SELECT sum(b) FROM t)"
        db.profiler.reset()
        db.execute(sql)
        db.execute(sql)
        assert db.profiler.counts[PLAN_CACHE_HIT] == 1

    def test_comment_prefixed_dml_dispatches(self, db):
        result = db.execute("-- bump\nUPDATE t SET b = b + 1 WHERE a = 0")
        assert result.rows == [(10,)]
        db.execute("/* gone */ DELETE FROM t WHERE a = 0")
        assert db.query_value("SELECT count(*) FROM t WHERE a = 0") == 0

    def test_non_select_statements_are_not_cached(self, db):
        db.execute("INSERT INTO t VALUES (99, 99)")
        assert all(isinstance(key, tuple) and "INSERT" not in key[0].upper()
                   for key in db._plan_cache._entries)


# ---------------------------------------------------------------------------
# LRU plan cache (SET plan_cache_size)
# ---------------------------------------------------------------------------


class TestPlanCacheLru:
    def test_lru_bound_and_eviction_counter(self, db):
        db.execute("SET plan_cache_size = 4")
        db.profiler.reset()
        for i in range(10):
            db.execute(f"SELECT {i} FROM t LIMIT 1")
        assert len(db._plan_cache) == 4
        assert db.profiler.counts[PLAN_CACHE_EVICTIONS] == 6

    def test_lru_keeps_recently_used(self, db):
        db.execute("SET plan_cache_size = 2")
        hot = "SELECT a FROM t LIMIT 1"
        db.execute(hot)
        for i in range(5):
            db.execute(f"SELECT {i} + a FROM t LIMIT 1")
            db.execute(hot)  # keep it warm
        db.profiler.reset()
        db.execute(hot)
        assert db.profiler.counts[PLAN_CACHE_HIT] == 1

    def test_lowering_size_trims_immediately(self, db):
        for i in range(6):
            db.execute(f"SELECT {i} FROM t LIMIT 1")
        db.profiler.reset()
        db.execute("SET plan_cache_size = 2")
        assert len(db._plan_cache) == 2
        assert db.profiler.counts[PLAN_CACHE_EVICTIONS] == 4

    def test_size_zero_disables_caching(self, db):
        db.execute("SET plan_cache_size = 0")
        db.profiler.reset()
        db.execute("SELECT a FROM t LIMIT 1")
        db.execute("SELECT a FROM t LIMIT 1")
        assert db.profiler.counts[PLAN_CACHE_MISS] == 2
        assert db.profiler.counts[PLAN_CACHE_HIT] == 0
        db.execute("RESET plan_cache_size")
        db.execute("SELECT a FROM t LIMIT 1")
        db.execute("SELECT a FROM t LIMIT 1")
        assert db.profiler.counts[PLAN_CACHE_HIT] == 1

    def test_legacy_plan_cache_enabled_still_honoured(self, db):
        db.plan_cache_enabled = False
        db.profiler.reset()
        db.execute("SELECT a FROM t LIMIT 1")
        db.execute("SELECT a FROM t LIMIT 1")
        assert db.profiler.counts[PLAN_CACHE_MISS] == 2


# ---------------------------------------------------------------------------
# Settings registry: SET / SHOW / RESET
# ---------------------------------------------------------------------------


class TestSettings:
    def test_show_set_reset_roundtrip_bool(self, db):
        assert db.execute("SHOW enable_hashjoin").scalar() == "on"
        db.execute("SET enable_hashjoin = off")
        assert db.execute("SHOW enable_hashjoin").scalar() == "off"
        assert db.planner.enable_hashjoin is False
        db.execute("RESET enable_hashjoin")
        assert db.planner.enable_hashjoin is True

    def test_set_to_and_word_forms(self, db):
        for word, expected in (("true", True), ("false", False),
                               ("on", True), ("off", False),
                               ("1", True), ("0", False)):
            db.execute(f"SET enable_topn TO {word}")
            assert db.planner.enable_topn is expected
        db.execute("RESET enable_topn")

    def test_set_int_and_enum(self, db):
        db.execute("SET max_udf_depth = 64")
        assert db.max_udf_depth == 64
        db.execute("SET max_udf_depth = 60 + 4")  # expressions are fine
        assert db.max_udf_depth == 64
        db.execute("SET batch_strategy = sql")
        assert db.planner.batch_strategy == "sql"
        db.execute("SET batch_strategy = 'machine'")
        assert db.planner.batch_strategy == "machine"

    def test_set_default_is_reset(self, db):
        db.execute("SET max_udf_depth = 17")
        db.execute("SET max_udf_depth = DEFAULT")
        assert db.max_udf_depth == 192

    def test_validation_errors(self, db):
        with pytest.raises(SettingError, match="unrecognized"):
            db.execute("SET no_such_setting = 1")
        with pytest.raises(SettingError, match="unrecognized"):
            db.execute("SHOW no_such_setting")
        with pytest.raises(SettingError, match="unrecognized"):
            db.execute("RESET no_such_setting")
        with pytest.raises(SettingError, match="one of"):
            db.execute("SET batch_strategy = bogus")
        with pytest.raises(SettingError, match="boolean"):
            db.execute("SET enable_topn = 'maybe'")
        with pytest.raises(SettingError, match="out of range"):
            db.execute("SET max_udf_depth = 0")
        with pytest.raises(SettingError, match="integer"):
            db.execute("SET max_udf_depth = 1.5")

    def test_show_all_lists_every_setting(self, db):
        result = db.execute("SHOW ALL")
        assert result.columns == ["name", "setting", "description"]
        names = [row[0] for row in result.rows]
        assert names == sorted(names)
        for expected in ("enable_rangescan", "batch_strategy",
                         "plan_cache_size", "max_interp_statements"):
            assert expected in names

    def test_attribute_and_sql_surface_agree(self, db):
        db.planner.enable_mergejoin = False  # legacy poking
        assert db.execute("SHOW enable_mergejoin").scalar() == "off"
        db.execute("SET enable_mergejoin = on")
        assert db.planner.enable_mergejoin is True

    def test_reset_all(self, db):
        db.execute("SET enable_topn = off")
        db.execute("SET max_udf_depth = 7")
        db.execute("RESET ALL")
        assert db.planner.enable_topn is True
        assert db.max_udf_depth == 192

    def test_assignment_counter(self, db):
        db.profiler.reset()
        db.execute("SET enable_topn = off")
        db.execute("RESET enable_topn")
        assert db.profiler.counts[SETTINGS_ASSIGNMENTS] == 2

    def test_plan_affecting_set_invalidates_cached_plans(self, db):
        db.execute("CREATE INDEX t_b ON t(b)")
        sql = "SELECT b FROM t WHERE b >= 10 AND b <= 20"
        expected = db.query_all(sql)
        assert "IndexRangeScan" in db.explain(sql)
        db.execute(sql)  # cached under rangescan=on
        db.execute("SET enable_rangescan = off")
        assert "IndexRangeScan" not in db.explain(sql)
        assert db.query_all(sql) == expected
        db.execute("RESET enable_rangescan")
        assert "IndexRangeScan" in db.explain(sql)

    def test_set_local_scoped_to_script(self, db):
        db.execute_script(
            "SET LOCAL max_udf_depth = 5; SELECT 1")
        assert db.max_udf_depth == 192

    def test_set_local_outside_script_is_noop_with_notice(self, db):
        db.execute("SET LOCAL max_udf_depth = 5")
        assert db.max_udf_depth == 192
        assert any("SET LOCAL" in notice for notice in db.notices)

    def test_set_local_unknown_name_still_validates(self, db):
        with pytest.raises(SettingError):
            db.execute("SET LOCAL nope = 5")


# ---------------------------------------------------------------------------
# Settings matrix: every plan-affecting flag, SET off / RESET, differential
# result equality on the ordered-paths workloads
# ---------------------------------------------------------------------------


PLAN_FLAGS = ["enable_rangescan", "enable_sort_elim", "enable_topn",
              "enable_mergejoin", "enable_hashjoin", "enable_pushdown",
              "batch_compiled", "batch_dedup", "inline_compiled"]

WORKLOADS = [
    "SELECT b FROM t WHERE b >= 12 AND b < 47 ORDER BY b LIMIT 5",
    "SELECT a, count(*) FROM t WHERE b BETWEEN 5 AND 80 GROUP BY a ORDER BY a",
    "SELECT t1.b, t2.c FROM t t1 JOIN s t2 ON t1.b = t2.c "
    "ORDER BY t1.b LIMIT 7",
    "SELECT b FROM t ORDER BY b DESC LIMIT 3",
]


class TestSettingsMatrix:
    @pytest.fixture
    def wdb(self, db):
        db.execute("CREATE TABLE s(c int)")
        for i in range(0, 100, 3):
            db.execute("INSERT INTO s VALUES ($1)", (i,))
        db.execute("CREATE INDEX t_b ON t(b)")
        db.execute("CREATE INDEX s_c ON s(c)")
        return db

    @pytest.mark.parametrize("flag", PLAN_FLAGS)
    def test_flag_off_preserves_results(self, wdb, flag):
        baseline = [wdb.query_all(sql) for sql in WORKLOADS]
        wdb.execute(f"SET {flag} = off")
        assert wdb.execute(f"SHOW {flag}").scalar() == "off"
        for sql, expected in zip(WORKLOADS, baseline):
            assert wdb.query_all(sql) == expected, (flag, sql)
        wdb.execute(f"RESET {flag}")
        assert wdb.execute(f"SHOW {flag}").scalar() == "on"
        for sql, expected in zip(WORKLOADS, baseline):
            assert wdb.query_all(sql) == expected, (flag, sql)

    def test_overlay_reaches_function_body_plans(self, wdb):
        """Plan-affecting session overlays must apply to UDF *body* plans
        too (they are not fingerprint-stamped), in both directions: the
        session must not reuse a globally-planned body, and the global
        surface must not inherit a session-planned one."""
        from repro.sql.profiler import INDEX_RANGE_SCANS
        wdb.execute("CREATE FUNCTION span(lo int, hi int) RETURNS int AS "
                    "'SELECT count(*) FROM t WHERE b >= lo AND b <= hi' "
                    "LANGUAGE SQL")
        expected = wdb.query_value("SELECT span(10, 20)")  # body planned
        conn = wdb.connect()
        conn.execute("SET enable_rangescan = off")
        wdb.profiler.reset()
        assert conn.query_value("SELECT span(10, 20)") == expected
        assert wdb.profiler.counts[INDEX_RANGE_SCANS] == 0
        # ... and back on the global surface the range scan returns.
        wdb.profiler.reset()
        assert wdb.query_value("SELECT span(10, 20)") == expected
        assert wdb.profiler.counts[INDEX_RANGE_SCANS] > 0

    def test_session_overlay_flag_preserves_results(self, wdb):
        baseline = [wdb.query_all(sql) for sql in WORKLOADS]
        conn = wdb.connect()
        conn.execute("SET enable_rangescan = off")
        conn.execute("SET enable_mergejoin = off")
        for sql, expected in zip(WORKLOADS, baseline):
            assert conn.query_all(sql) == expected
        # ... while the global surface keeps its default plans and results.
        for sql, expected in zip(WORKLOADS, baseline):
            assert wdb.query_all(sql) == expected


# ---------------------------------------------------------------------------
# Connections: overlays, notices, lifecycle
# ---------------------------------------------------------------------------


class TestConnection:
    def test_overlay_is_per_session(self, db):
        first = db.connect()
        second = db.connect()
        first.execute("SET enable_topn = off")
        assert first.execute("SHOW enable_topn").scalar() == "off"
        assert second.execute("SHOW enable_topn").scalar() == "on"
        assert db.execute("SHOW enable_topn").scalar() == "on"
        assert db.planner.enable_topn is True  # restored after statements

    def test_overlay_reset(self, db):
        conn = db.connect()
        conn.execute("SET max_udf_depth = 12")
        assert conn.get_setting("max_udf_depth") == 12
        conn.execute("RESET max_udf_depth")
        assert conn.get_setting("max_udf_depth") == 192

    def test_overlay_applied_during_execution(self, db):
        conn = db.connect()
        conn.execute("SET max_udf_depth = 3")
        db.execute("""CREATE FUNCTION rec(n int) RETURNS int AS
            'SELECT CASE WHEN n <= 0 THEN 0 ELSE rec(n - 1) END'
            LANGUAGE SQL""")
        with pytest.raises(ExecutionError, match="stack depth"):
            conn.execute("SELECT rec(10)")
        assert db.query_value("SELECT rec(10)") == 0  # global default depth

    def test_notices_are_per_session(self, db):
        db.execute("""CREATE FUNCTION say(n int) RETURNS int AS $$
            BEGIN RAISE NOTICE 'n is %', n; RETURN n; END;
            $$ LANGUAGE plpgsql""")
        conn = db.connect()
        conn.execute("SELECT say(5)")
        assert conn.notices == ["NOTICE: n is 5"]
        assert db.notices == []
        db.execute("SELECT say(6)")
        assert db.notices == ["NOTICE: n is 6"]
        assert conn.notices == ["NOTICE: n is 5"]

    def test_closed_connection_refuses_work(self, db):
        conn = db.connect()
        conn.close()
        with pytest.raises(ExecutionError, match="closed"):
            conn.execute("SELECT 1")
        with pytest.raises(ExecutionError, match="closed"):
            conn.cursor()

    def test_context_manager_closes(self, db):
        with db.connect() as conn:
            assert conn.execute("SELECT 1").scalar() == 1
        assert conn.closed

    def test_commit_rollback_are_noops(self, db):
        conn = db.connect()
        conn.execute("INSERT INTO t VALUES (500, 500)")
        conn.commit()
        conn.rollback()
        assert db.query_value("SELECT count(*) FROM t WHERE a = 500") == 1

    def test_set_local_on_connection_script(self, db):
        conn = db.connect()
        conn.execute("SET max_udf_depth = 50")
        conn.execute_script("SET LOCAL max_udf_depth = 5; SELECT 1")
        assert conn.get_setting("max_udf_depth") == 50
        assert db.max_udf_depth == 192


# ---------------------------------------------------------------------------
# Prepared statements
# ---------------------------------------------------------------------------


class TestPreparedStatements:
    def test_sql_prepare_execute_deallocate(self, db):
        db.execute("PREPARE q AS SELECT b FROM t WHERE a = $1 ORDER BY b")
        rows = db.execute("EXECUTE q(3)").rows
        assert rows == db.query_all(
            "SELECT b FROM t WHERE a = 3 ORDER BY b")
        db.execute("DEALLOCATE q")
        with pytest.raises(CatalogError, match="does not exist"):
            db.execute("EXECUTE q(3)")

    def test_execute_argument_expressions(self, db):
        db.execute("PREPARE q AS SELECT count(*) FROM t WHERE a = $1")
        assert db.execute("EXECUTE q(1 + 2)").scalar() == 10
        assert db.execute(
            "EXECUTE q((SELECT min(a) + 1 FROM t))").scalar() == 10
        # $n in EXECUTE arguments binds the *outer* call's parameters.
        assert db.execute("EXECUTE q($1)", [3]).scalar() == 10

    def test_arity_checked(self, db):
        db.execute("PREPARE q AS SELECT $1 + $2 FROM t LIMIT 1")
        with pytest.raises(ExecutionError, match="requires 2 parameters"):
            db.execute("EXECUTE q(1)")
        with pytest.raises(ExecutionError, match="requires 2 parameters"):
            db.execute("EXECUTE q(1, 2, 3)")
        assert db.execute("EXECUTE q(1, 2)").scalar() == 3

    def test_declared_types_fix_arity(self, db):
        db.execute("PREPARE q(int, int) AS SELECT $1 FROM t LIMIT 1")
        with pytest.raises(ExecutionError, match="requires 2 parameters"):
            db.execute("EXECUTE q(1)")
        assert db.execute("EXECUTE q(7, 8)").scalar() == 7
        with pytest.raises(PlanError, match="declares only"):
            db.execute("PREPARE p(int) AS SELECT $2 FROM t")

    def test_declared_types_coerce_arguments(self, db):
        db.execute("PREPARE q(int) AS SELECT $1 + 1")
        assert db.execute("EXECUTE q('2')").scalar() == 3
        db.execute("PREPARE r(text) AS SELECT $1 || '!'")
        assert db.execute("EXECUTE r(5)").scalar() == "5!"

    def test_duplicate_name_rejected(self, db):
        db.execute("PREPARE q AS SELECT 1")
        with pytest.raises(CatalogError, match="already exists"):
            db.execute("PREPARE q AS SELECT 2")

    def test_deallocate_all_and_missing(self, db):
        db.execute("PREPARE q1 AS SELECT 1")
        db.execute("PREPARE q2 AS SELECT 2")
        db.execute("DEALLOCATE ALL")
        with pytest.raises(CatalogError):
            db.execute("EXECUTE q1")
        with pytest.raises(CatalogError):
            db.execute("DEALLOCATE q2")

    def test_only_select_and_dml_preparable(self, db):
        with pytest.raises(PlanError, match="cannot prepare"):
            db.execute("PREPARE q AS CREATE TABLE u(x int)")

    def test_prepared_dml(self, db):
        db.execute("PREPARE ins AS INSERT INTO t VALUES ($1, $2)")
        db.execute("PREPARE upd AS UPDATE t SET b = $2 WHERE a = $1")
        db.execute("PREPARE del AS DELETE FROM t WHERE a = $1")
        assert db.execute("EXECUTE ins(777, 1)").rows == [(1,)]
        assert db.execute("EXECUTE upd(777, 42)").rows == [(1,)]
        assert db.query_value("SELECT b FROM t WHERE a = 777") == 42
        assert db.execute("EXECUTE del(777)").rows == [(1,)]

    def test_prepared_registry_is_per_session(self, db):
        conn = db.connect()
        conn.execute("PREPARE q AS SELECT 1")
        assert conn.execute("EXECUTE q").scalar() == 1
        with pytest.raises(CatalogError, match="does not exist"):
            db.execute("EXECUTE q")

    def test_programmatic_prepare(self, db):
        conn = db.connect()
        ps = conn.prepare("SELECT sum(b) FROM t WHERE a = $1")
        expected = db.query_value("SELECT sum(b) FROM t WHERE a = 4")
        assert ps.execute([4]).scalar() == expected
        assert ps.name in conn.prepared_names
        assert conn.execute(f"EXECUTE {ps.name}(4)").scalar() == expected
        ps.deallocate()
        assert ps.name not in conn.prepared_names

    def test_prepared_execution_counter(self, db):
        db.execute("PREPARE q AS SELECT 1")
        db.profiler.reset()
        db.execute("EXECUTE q")
        db.execute("EXECUTE q")
        assert db.profiler.counts[PREPARED_EXECUTIONS] == 2

    def test_prepared_plan_instantiates_without_replanning(self, db):
        conn = db.connect()
        ps = conn.prepare("SELECT b FROM t WHERE a = $1")
        ps.execute([1])
        db.profiler.reset()
        for i in range(5):
            ps.execute([i % 10])
        assert db.profiler.counts[PLAN_INSTANTIATIONS] == 5
        assert db.profiler.counts[PREPARED_REPLANS] == 0
        assert db.profiler.counts[PLAN_CACHE_MISS] == 0


class TestPreparedVsDdl:
    """PREPARE then DDL: handles must replan (new access paths visible in
    EXPLAIN EXECUTE) or raise a clean error — never stale results."""

    def test_create_index_makes_new_access_path_visible(self, db):
        db.execute("PREPARE q AS SELECT b FROM t ORDER BY b LIMIT 3")
        before = db.explain("EXECUTE q")
        assert "TopN" in before          # no declared index: bounded heap
        assert "IndexRangeScan" not in before
        expected = db.execute("EXECUTE q").rows
        db.execute("CREATE INDEX t_b ON t(b)")
        after = db.explain("EXECUTE q")
        assert "TopN" not in after       # sort eliminated via the new index
        assert "IndexRangeScan" in after
        assert db.execute("EXECUTE q").rows == expected

    def test_drop_index_replans_back(self, db):
        db.execute("CREATE INDEX t_b ON t(b)")
        db.execute("PREPARE q AS SELECT b FROM t ORDER BY b LIMIT 3")
        assert "IndexRangeScan" in db.explain("EXECUTE q")
        expected = db.execute("EXECUTE q").rows
        db.profiler.reset()
        db.execute("DROP INDEX t_b")
        assert "TopN" in db.explain("EXECUTE q")
        assert db.execute("EXECUTE q").rows == expected
        assert db.profiler.counts[PREPARED_REPLANS] == 1

    def test_drop_table_raises_clean_error(self, db):
        db.execute("PREPARE q AS SELECT count(*) FROM t")
        assert db.execute("EXECUTE q").scalar() == 100
        db.execute("DROP TABLE t")
        with pytest.raises(NameResolutionError, match="unknown table"):
            db.execute("EXECUTE q")
        # A failed replan must not linger: recreate and execute cleanly.
        db.execute("CREATE TABLE t(a int, b int)")
        assert db.execute("EXECUTE q").scalar() == 0

    def test_replace_function_replans_to_new_body(self, db):
        db.execute("CREATE FUNCTION f(n int) RETURNS int AS "
                   "'SELECT n + 1' LANGUAGE SQL")
        db.execute("PREPARE q AS SELECT f(a) FROM t WHERE b = $1")
        assert db.execute("EXECUTE q(7)").rows == [(8,)]
        db.execute("CREATE OR REPLACE FUNCTION f(n int) RETURNS int AS "
                   "'SELECT n * 100' LANGUAGE SQL")
        assert db.execute("EXECUTE q(7)").rows == [(700,)]

    def test_plan_affecting_set_replans_prepared(self, db):
        db.execute("CREATE INDEX t_b ON t(b)")
        db.execute("PREPARE q AS SELECT b FROM t WHERE b >= $1 AND b <= $2")
        expected = db.execute("EXECUTE q(10, 20)").rows
        assert "IndexRangeScan" in db.explain("EXECUTE q")
        db.execute("SET enable_rangescan = off")
        assert "IndexRangeScan" not in db.explain("EXECUTE q")
        assert db.execute("EXECUTE q(10, 20)").rows == expected
        db.execute("RESET enable_rangescan")
        assert "IndexRangeScan" in db.explain("EXECUTE q")

    def test_explain_execute_of_dml_rejected(self, db):
        db.execute("PREPARE ins AS INSERT INTO t VALUES ($1, $2)")
        with pytest.raises(PlanError, match="EXPLAIN EXECUTE"):
            db.explain("EXECUTE ins")


# ---------------------------------------------------------------------------
# Cursor (PEP-249 shape)
# ---------------------------------------------------------------------------


class TestCursor:
    def test_description_and_fetch(self, db):
        cur = db.connect().cursor()
        cur.execute("SELECT a, b FROM t ORDER BY b LIMIT 3")
        assert [col[0] for col in cur.description] == ["a", "b"]
        assert all(len(col) == 7 for col in cur.description)
        assert cur.rowcount == 3
        assert cur.fetchone() == (0, 0)
        assert cur.fetchmany(2) == [(1, 1), (2, 2)]
        assert cur.fetchone() is None
        assert cur.fetchall() == []

    def test_fetchmany_uses_arraysize(self, db):
        cur = db.connect().cursor()
        cur.arraysize = 4
        cur.execute("SELECT b FROM t ORDER BY b LIMIT 10")
        assert len(cur.fetchmany()) == 4

    def test_iteration(self, db):
        cur = db.connect().cursor()
        cur.execute("SELECT b FROM t ORDER BY b LIMIT 4")
        assert [row[0] for row in cur] == [0, 1, 2, 3]

    def test_execute_chains(self, db):
        cur = db.connect().cursor()
        assert cur.execute("SELECT 1").fetchall() == [(1,)]

    def test_dml_rowcount_and_no_result_set(self, db):
        cur = db.connect().cursor()
        cur.execute("UPDATE t SET b = b WHERE a < 3")
        assert cur.rowcount == 30
        assert cur.description is None
        with pytest.raises(ExecutionError, match="no result set"):
            cur.fetchone()

    def test_utility_rowcount_is_minus_one(self, db):
        cur = db.connect().cursor()
        cur.execute("CREATE TABLE u(x int)")
        assert cur.rowcount == -1
        assert cur.description is None

    def test_closed_cursor_refuses(self, db):
        cur = db.connect().cursor()
        cur.close()
        with pytest.raises(ExecutionError, match="cursor is closed"):
            cur.execute("SELECT 1")

    def test_executemany_insert_is_one_bulk_insert(self, db):
        db.execute("CREATE TABLE u(x int, y int)")
        db.execute("CREATE INDEX u_x ON u(x)")
        cur = db.connect().cursor()
        db.profiler.reset()
        cur.executemany("INSERT INTO u VALUES ($1, $2)",
                        [(i, i * i) for i in range(50)])
        assert cur.rowcount == 50
        # The source plan was built once for the whole batch ...
        assert db.profiler.counts[PLAN_INSTANTIATIONS] == 50
        assert db.profiler.times.get("Plan", 0) >= 0
        # ... and the sorted index saw one bulk maintenance pass that kept
        # it consistent (ordered delivery still correct).
        assert db.query_all("SELECT x FROM u ORDER BY x LIMIT 3") == \
            [(0,), (1,), (2,)]
        assert db.query_value("SELECT count(*) FROM u") == 50

    def test_executemany_insert_multi_row_values(self, db):
        db.execute("CREATE TABLE u(x int)")
        cur = db.connect().cursor()
        cur.executemany("INSERT INTO u VALUES ($1), ($1 + 100)",
                        [(1,), (2,)])
        assert cur.rowcount == 4
        assert db.query_all("SELECT x FROM u ORDER BY x") == \
            [(1,), (2,), (101,), (102,)]

    def test_executemany_self_referential_insert_sees_prior_sets(self, db):
        """An INSERT source reading the target table keeps loop-of-execute
        semantics: each parameter set sees the rows earlier sets produced
        (no pre-batch snapshot divergence)."""
        db.execute("CREATE TABLE u(x int)")
        cur = db.connect().cursor()
        cur.executemany("INSERT INTO u SELECT count(*) + $1 FROM u",
                        [(0,), (0,), (0,)])
        assert db.query_all("SELECT x FROM u ORDER BY x") == \
            [(0,), (1,), (2,)]

    def test_executemany_update_sums_counts(self, db):
        cur = db.connect().cursor()
        cur.executemany("UPDATE t SET b = b + 1000 WHERE a = $1",
                        [(0,), (1,), (2,)])
        assert cur.rowcount == 30

    def test_executemany_validates_before_any_row_lands(self, db):
        db.execute("CREATE TABLE u(x int, y int)")
        cur = db.connect().cursor()
        # A short parameter set fails while materializing the batch ...
        with pytest.raises(ExecutionError, match="no value supplied"):
            cur.executemany("INSERT INTO u VALUES ($1, $2)",
                            [(1, 2), (3,)])
        # ... and a row-width mismatch fails INSERT validation; neither
        # leaves earlier sets of the batch in the heap.
        with pytest.raises(ExecutionError, match="INSERT expects"):
            cur.executemany("INSERT INTO u(x) VALUES ($1, $2)",
                            [(1, 2), (3, 4)])
        assert db.query_value("SELECT count(*) FROM u") == 0

    def test_cursor_context_manager(self, db):
        with db.connect().cursor() as cur:
            cur.execute("SELECT 1")
        with pytest.raises(ExecutionError):
            cur.fetchone()


class TestShowThroughCursor:
    def test_show_is_a_result_set(self, db):
        cur = db.connect().cursor()
        cur.execute("SHOW enable_topn")
        assert cur.description[0][0] == "enable_topn"
        assert cur.fetchone() == ("on",)

    def test_explain_is_a_result_set(self, db):
        cur = db.connect().cursor()
        cur.execute("EXPLAIN SELECT a FROM t WHERE a = 1")
        assert cur.description[0][0] == "QUERY PLAN"
        assert any("Select" in row[0] for row in cur.fetchall())


# ---------------------------------------------------------------------------
# Rolled-back DDL must not poison prepared-statement stamps (PR regression)
# ---------------------------------------------------------------------------


class TestRolledBackDdlStamps:
    def test_rolled_back_create_index_does_not_force_replan(self, db):
        """DDL inside an aborted block restores the DDL-generation stamp:
        a handle planned before BEGIN must keep serving its plan (no
        spurious replan) and keep returning correct results."""
        conn = db.connect()
        ps = conn.prepare("SELECT b FROM t WHERE a = $1 ORDER BY b")
        before = ps.execute([3]).rows
        db.profiler.reset()
        conn.execute("BEGIN")
        conn.execute("CREATE INDEX t_b ON t(b)")
        conn.execute("ROLLBACK")
        assert ps.execute([3]).rows == before
        assert db.profiler.counts[PREPARED_REPLANS] == 0
        assert "t_b" not in db.catalog.indexes

    def test_rolled_back_drop_table_restores_serving_handle(self, db):
        """DROP TABLE undone by ROLLBACK re-registers the table object and
        its dependent declared indexes; a pre-BEGIN handle neither crashes
        nor serves stale structures."""
        db.execute("CREATE INDEX t_b ON t(b)")
        conn = db.connect()
        ps = conn.prepare("SELECT b FROM t WHERE b >= 95 ORDER BY b")
        before = ps.execute([]).rows
        db.profiler.reset()
        conn.execute("BEGIN")
        conn.execute("DROP TABLE t")
        conn.execute("ROLLBACK")
        assert "t_b" in db.catalog.indexes
        assert ps.execute([]).rows == before
        assert db.profiler.counts[PREPARED_REPLANS] == 0

    def test_committed_ddl_still_invalidates(self, db):
        """The restore path must not over-reach: DDL that commits moves
        the generation and stale handles replan as before."""
        conn = db.connect()
        ps = conn.prepare("SELECT b FROM t WHERE a = $1 ORDER BY b")
        ps.execute([3])
        db.profiler.reset()
        conn.execute("BEGIN")
        conn.execute("CREATE INDEX t_a ON t(a)")
        conn.execute("COMMIT")
        ps.execute([3])
        assert db.profiler.counts[PREPARED_REPLANS] == 1

    def test_foreign_ddl_during_block_keeps_fresh_generation(self, db):
        """Another session's committed DDL interleaved with our aborted
        block must win: the stamp is NOT restored over it."""
        conn = db.connect()
        other = db.connect()
        ps = conn.prepare("SELECT count(b) FROM t")
        ps.execute([])
        conn.execute("BEGIN")
        conn.execute("CREATE INDEX t_b ON t(b)")
        other.execute("CREATE INDEX o_a ON t(a)")   # autocommits
        conn.execute("ROLLBACK")
        assert "o_a" in db.catalog.indexes
        assert "t_b" not in db.catalog.indexes
        db.profiler.reset()
        ps.execute([])
        assert db.profiler.counts[PREPARED_REPLANS] == 1
