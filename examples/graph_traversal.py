"""traverse(): pointer chasing over a random digraph, both ways.

Run:  python examples/graph_traversal.py

Also demonstrates calling the compiled function from a larger query (one
invocation per row) and the Froid baseline refusing the loop.
"""

import time

from repro.compiler import froid_compile
from repro.sql import Database
from repro.sql.errors import LoopNotSupportedError
from repro.workloads import TRAVERSE_SOURCE, compile_and_register_all, setup_graph
from repro.workloads.graph import random_digraph


def main() -> None:
    db = Database(seed=0)
    graph = setup_graph(db, random_digraph(node_count=48, out_degree=2,
                                           seed=5))
    compile_and_register_all(db)

    print("traverse(start, hops): follow the heaviest outgoing edge.")
    for start in (0, 7, 21):
        interp = db.query_value("SELECT traverse($1, 20)", [start])
        compiled = db.query_value("SELECT traverse_c($1, 20)", [start])
        oracle = graph.traverse_reference(start, 20)
        print(f"  start={start:>2}: interpreted={interp} compiled={compiled} "
              f"oracle={oracle}")
        assert interp == compiled == oracle

    db.execute("CREATE TABLE starts(node int)")
    for node in range(24):
        db.execute("INSERT INTO starts VALUES ($1)", [node])
    for name in ("traverse", "traverse_c"):
        begin = time.perf_counter()
        total = db.query_value(f"SELECT sum({name}(node, 60)) FROM starts")
        elapsed = (time.perf_counter() - begin) * 1000
        print(f"  SELECT sum({name}(node, 60)) FROM starts = {total} "
              f"({elapsed:.1f} ms)")

    try:
        froid_compile(TRAVERSE_SOURCE, db)
    except LoopNotSupportedError as error:
        print(f"\nFroid baseline: {error}")


if __name__ == "__main__":
    main()
