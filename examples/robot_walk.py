"""The paper's running example: the robot walk of Figures 1-3.

Run:  python examples/robot_walk.py

Builds the grid world, precomputes the Markov policy by value iteration,
loads the Figure-2 tables, and runs walk() interpreted, compiled to
WITH RECURSIVE, and compiled to WITH ITERATE — with identical random
strays thanks to the seedable engine RNG — then prints the Table-1-style
profile showing where the interpreted variant's time goes.
"""

import time

from repro.bench.harness import profile_function_call, statement_profile
from repro.sql import Database
from repro.workloads import compile_and_register_all, setup_robot
from repro.workloads.robot import default_grid, value_iteration

ARROWS = {"up": "^", "down": "v", "left": "<", "right": ">"}


def main() -> None:
    db = Database(seed=0)
    grid = setup_robot(db)
    compile_and_register_all(db)

    print("Cell rewards / Markov policy (Figure 1):")
    policy = value_iteration(grid)
    for y in reversed(range(grid.height)):
        rewards = " ".join(f"{grid.reward((x, y)):>3}"
                           if (x, y) not in grid.walls else "  #"
                           for x in range(grid.width))
        moves = " ".join(f"  {ARROWS[policy[(x, y)]]}"
                         if (x, y) not in grid.walls else "  #"
                         for x in range(grid.width))
        print(f"  y={y}  {rewards}    {moves}")

    print("\nwalk(origin=(0,0), win=10, loose=-10, steps=200):")
    for name in ("walk", "walk_c", "walk_it"):
        db.reseed(42)
        start = time.perf_counter()
        outcome = db.query_value(
            f"SELECT {name}(row(0,0)::coord, 10, -10, 200)")
        elapsed = (time.perf_counter() - start) * 1000
        print(f"  {name:<8} -> {outcome:>4}   ({elapsed:6.1f} ms)")

    print("\nPer-statement profile of the interpreted walk() (Figure 3):")
    rows = statement_profile(db, "SELECT walk(row(0,0)::coord, $1, $2, $3)",
                             [10**9, -(10**9), 200])
    for label, total, overhead in rows:
        bar = "#" * int(total / 2)
        print(f"  {total:6.2f}%  (f->Qi overhead {overhead:5.2f}%)  "
              f"{label[:48]:<48} {bar}")

    breakdown = profile_function_call(
        db, "SELECT walk(row(0,0)::coord, $1, $2, $3)",
        [10**9, -(10**9), 200], label="walk")
    print("\nPhase shares (Table 1 row):",
          {k: round(v, 2) for k, v in breakdown.shares.items()})


if __name__ == "__main__":
    main()
