"""Quickstart: compile a PL/pgSQL function away, end to end.

Run:  python examples/quickstart.py

Shows the full Figure-4 pipeline on a small iterative function: the goto
CFG, SSA, ANF, the flattened recursive UDF, and the final WITH RECURSIVE
query — then registers both variants and compares results and plan counts.
"""

from repro.compiler import compile_plsql
from repro.sql import Database

SOURCE = """
CREATE FUNCTION gcd(a int, b int) RETURNS int AS $$
DECLARE t int;
BEGIN
  WHILE b <> 0 LOOP
    t = b;
    b = a % b;
    a = t;
  END LOOP;
  RETURN a;
END;
$$ LANGUAGE plpgsql
"""


def main() -> None:
    db = Database()
    db.execute(SOURCE)                      # interpreted PL/pgSQL
    compiled = compile_plsql(SOURCE, db)    # ... compiled away
    compiled.register(db, name="gcd_c")

    print(compiled.explain())               # every intermediate form

    print("\nResults (interpreted vs compiled):")
    for a, b in ((12, 18), (48, 36), (17, 5), (0, 9)):
        interp = db.query_value("SELECT gcd($1, $2)", [a, b])
        comp = db.query_value("SELECT gcd_c($1, $2)", [a, b])
        print(f"  gcd({a:>2},{b:>2}) = {interp:>2}  |  compiled: {comp:>2}")
        assert interp == comp

    # The punchline: calling the compiled function from a query needs no
    # context switches at all.
    db.execute("CREATE TABLE pairs(a int, b int)")
    db.execute("INSERT INTO pairs VALUES (12, 18), (100, 75), (7, 13)")
    db.profiler.reset()
    db.query_all("SELECT gcd(a, b) FROM pairs")
    interp_switches = db.profiler.counts["switch Q->f"]
    db.profiler.reset()
    db.query_all("SELECT gcd_c(a, b) FROM pairs")
    compiled_switches = db.profiler.counts["switch Q->f"]
    print(f"\nQ->f context switches over 3 rows: "
          f"interpreted={interp_switches}, compiled={compiled_switches}")


if __name__ == "__main__":
    main()
