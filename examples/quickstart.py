"""Quickstart: compile a PL/pgSQL function away, end to end.

Run:  python examples/quickstart.py

Shows the full Figure-4 pipeline on a small iterative function: the goto
CFG, SSA, ANF, the flattened recursive UDF, and the final WITH RECURSIVE
query — then registers both variants and compares results and plan counts.
Finishes with the sessionful client surface: ``connect()``, cursors,
prepared statements, and SET/SHOW settings next to the legacy facade.
"""

from repro.compiler import compile_plsql
from repro.sql import Database

SOURCE = """
CREATE FUNCTION gcd(a int, b int) RETURNS int AS $$
DECLARE t int;
BEGIN
  WHILE b <> 0 LOOP
    t = b;
    b = a % b;
    a = t;
  END LOOP;
  RETURN a;
END;
$$ LANGUAGE plpgsql
"""


def main() -> None:
    db = Database()
    db.execute(SOURCE)                      # interpreted PL/pgSQL
    compiled = compile_plsql(SOURCE, db)    # ... compiled away
    compiled.register(db, name="gcd_c")

    print(compiled.explain())               # every intermediate form

    print("\nResults (interpreted vs compiled):")
    for a, b in ((12, 18), (48, 36), (17, 5), (0, 9)):
        interp = db.query_value("SELECT gcd($1, $2)", [a, b])
        comp = db.query_value("SELECT gcd_c($1, $2)", [a, b])
        print(f"  gcd({a:>2},{b:>2}) = {interp:>2}  |  compiled: {comp:>2}")
        assert interp == comp

    # The punchline: calling the compiled function from a query needs no
    # context switches at all.
    db.execute("CREATE TABLE pairs(a int, b int)")
    db.execute("INSERT INTO pairs VALUES (12, 18), (100, 75), (7, 13)")
    db.profiler.reset()
    db.query_all("SELECT gcd(a, b) FROM pairs")
    interp_switches = db.profiler.counts["switch Q->f"]
    db.profiler.reset()
    db.query_all("SELECT gcd_c(a, b) FROM pairs")
    compiled_switches = db.profiler.counts["switch Q->f"]
    print(f"\nQ->f context switches over 3 rows: "
          f"interpreted={interp_switches}, compiled={compiled_switches}")

    session_tour(db)


def session_tour(db) -> None:
    """The sessionful surface next to the legacy ``db.execute`` facade:
    connect() -> Connection -> Cursor, prepared statements, SET/SHOW."""
    print("\n-- session surface " + "-" * 40)
    conn = db.connect()

    # PEP-249-style cursor; executemany takes one bulk-insert path.
    cur = conn.cursor()
    cur.executemany("INSERT INTO pairs VALUES ($1, $2)",
                    [(21, 14), (9, 6), (25, 15)])
    print(f"executemany inserted {cur.rowcount} rows in one bulk insert")
    cur.execute("SELECT a, b FROM pairs ORDER BY a LIMIT 3")
    print("columns:", [col[0] for col in cur.description])
    for a, b in cur:
        print(f"  pair({a}, {b})")

    # Prepared statements: parsed and planned once, executed many times.
    ps = conn.prepare("SELECT gcd_c(a, b) FROM pairs WHERE a = $1")
    db.profiler.reset()
    results = [ps.execute([a]).scalar() for a in (21, 9, 25)]
    print(f"prepared gcd_c over 3 point queries -> {results} "
          f"({db.profiler.counts['plan cache miss']} plan-cache misses, "
          f"{db.profiler.counts['prepared executions']} prepared runs)")

    # Declarative settings: session-scoped on a connection, validated,
    # and plan-affecting changes invalidate cached plans automatically.
    conn.execute("SET batch_compiled = off")
    print("session batch_compiled:",
          conn.execute("SHOW batch_compiled").scalar(),
          "| global:", db.execute("SHOW batch_compiled").scalar())
    conn.execute("RESET batch_compiled")


if __name__ == "__main__":
    main()
