"""parse(): the FSM workload and the WITH ITERATE space story (Table 2).

Run:  python examples/fsm_parser.py

Parses generated inputs with the interpreted function, the WITH RECURSIVE
compilation, and the WITH ITERATE compilation, and prints the buffer-page
writes each strategy performs — the quadratic trace vs zero.
"""

from repro.sql import Database
from repro.workloads import (compile_and_register_all, make_parseable_input,
                             setup_parser)


def main() -> None:
    db = Database(seed=0)
    setup_parser(db)
    compiled = compile_and_register_all(db)
    print("Compiled parse() (excerpt):")
    sql = compiled["parse"].sql()
    print("\n".join(sql.splitlines()[:10]))
    print("  ...")

    sample = make_parseable_input(40, seed=2)
    print(f"\nSample input ({len(sample)} chars): {sample}")
    print("parse      ->", db.query_value("SELECT parse($1)", [sample]))
    print("parse_c    ->", db.query_value("SELECT parse_c($1)", [sample]))
    print("parse_it   ->", db.query_value("SELECT parse_it($1)", [sample]))
    bad = sample[:7] + "!" + sample[8:]
    print(f"reject pos -> {db.query_value('SELECT parse_c($1)', [bad])} "
          f"(input {bad[:12]}...)")

    print("\nBuffer page writes while parsing (Table 2, scaled):")
    print(f"  {'input length':>12}  {'WITH RECURSIVE':>15}  {'WITH ITERATE':>13}")
    for length in (500, 1000, 2000, 4000):
        text = make_parseable_input(length, seed=7)
        db.buffers.reset()
        db.execute("SELECT parse_c($1)", [text])
        recursive_pages = db.buffers.pages_written
        db.buffers.reset()
        db.execute("SELECT parse_it($1)", [text])
        iterate_pages = db.buffers.pages_written
        print(f"  {length:>12}  {recursive_pages:>15}  {iterate_pages:>13}")
    print("\nThe trace grows quadratically; WITH ITERATE writes nothing.")


if __name__ == "__main__":
    main()
