"""PL/SQL for engines that have none: run compiled functions on real SQLite.

Run:  python examples/sqlite_scripting.py

The paper (Section 3): "SQLite3 lacks support for LATERAL, but a simple
syntactic rewrite brought the functions to run on a system that formerly
lacked any support for PL/SQL at all."  This example compiles PL/pgSQL
functions with the LATERAL-free rewrite and executes the emitted SQL on
Python's built-in sqlite3 — an actual foreign engine.
"""

import sqlite3

from repro.compiler import compile_plsql
from repro.sql import Database
from repro.workloads import make_parseable_input, setup_parser
from repro.workloads.fibonacci import FIBONACCI_SOURCE
from repro.workloads.parser_fsm import PARSE_SOURCE


def main() -> None:
    db = Database()
    fsm = setup_parser(db)

    fib = compile_plsql(FIBONACCI_SOURCE, db)
    parse = compile_plsql(PARSE_SOURCE, db)

    connection = sqlite3.connect(":memory:")
    connection.execute("CREATE TABLE fsm(source int, symbol text, target int)")
    connection.execute("CREATE TABLE fsm_accept(state int, is_final bool)")
    connection.executemany("INSERT INTO fsm VALUES (?, ?, ?)",
                           db.query_all("SELECT * FROM fsm"))
    connection.executemany("INSERT INTO fsm_accept VALUES (?, ?)",
                           db.query_all("SELECT * FROM fsm_accept"))

    fib_sql = fib.sql("sqlite")
    print("fibonacci() as pure SQLite SQL (excerpt):")
    print("\n".join(fib_sql.splitlines()[:6]))
    print("  ...\n")
    print("fibonacci on SQLite:",
          [connection.execute(fib_sql, {"1": n}).fetchone()[0]
           for n in range(11)])

    parse_sql = parse.sql("sqlite")
    sample = make_parseable_input(24, seed=3)
    accepted = connection.execute(parse_sql, {"1": sample}).fetchone()[0]
    rejected = connection.execute(parse_sql, {"1": "12,x"}).fetchone()[0]
    print(f"\nparse({sample!r}) on SQLite -> {accepted} "
          f"(oracle: {fsm.run(sample)})")
    print(f"parse('12,x') on SQLite -> {rejected} "
          f"(oracle: {fsm.run('12,x')})")

    print("\nOther dialect flavours of the same function:")
    for dialect in ("postgres", "mysql", "sqlserver", "oracle"):
        first_line = fib.sql(dialect).splitlines()[0]
        print(f"  {dialect:<10} {first_line}")


if __name__ == "__main__":
    main()
