"""Static analysis of user-defined functions (``CHECK FUNCTION``).

The paper's compilation pipeline already builds a goto CFG, SSA form and
dominator trees for every PL/pgSQL function it compiles
(:mod:`repro.compiler`).  This package points those same structures at a
different target: *diagnosing* functions instead of translating them.

One driver, :func:`analyze_function`, runs four families of passes:

* control flow (:mod:`.controlflow`) — unreachable code, fall-off-the-end
  without RETURN, loops that cannot terminate,
* dataflow (:mod:`.dataflow`) — use-before-assignment, dead stores,
  unused variables and parameters,
* embedded SQL (:mod:`.sqlcheck`) — unknown tables/columns/functions,
  arity and literal-type mismatches, checked against the live catalog,
* volatility (:mod:`.volatility`) — IMMUTABLE/STABLE/VOLATILE inference
  that the planner consumes to widen batched execution.

Results surface three ways: the ``CHECK FUNCTION name | ALL`` statement
(diagnostic rows), the ``check_function_bodies`` setting (off/warn/error
gate at CREATE FUNCTION time), and inferred volatility in EXPLAIN.

Severity is sound by construction: *error* is reserved for defects that
fire on **every** terminating call — whole-function impossibilities
(CF000/CF002) and catalog violations on the must-execute spine (blocks
that dominate every reachable exit).  Anything path-dependent is at most
a warning, so a function that executes cleanly can never carry an error
diagnostic — the property the fuzzer's soundness oracle enforces.
"""

from __future__ import annotations

from typing import Optional

from ..compiler.cfg import CondGoto, Return, build_cfg
from ..compiler.dominators import DominatorInfo
from .controlflow import check_control_flow, exit_blocks, reachable_blocks
from .dataflow import check_dataflow, undeclared_targets
from .diagnostics import CATALOG, SEVERITIES, Diagnostic, DiagnosticSink
from .sqlcheck import SqlChecker, literal_type_mismatch
from .volatility import (LEVELS, effective_volatility, function_facts,
                         function_is_pure, plsql_def_for)

__all__ = [
    "CATALOG", "SEVERITIES", "Diagnostic", "analyze_function",
    "effective_volatility", "function_facts", "function_is_pure",
    "max_severity",
]


def max_severity(diagnostics) -> Optional[str]:
    """Highest severity among *diagnostics*, or None when empty."""
    worst = None
    for diagnostic in diagnostics:
        if worst is None or (SEVERITIES.index(diagnostic.severity)
                             > SEVERITIES.index(worst)):
            worst = diagnostic.severity
    return worst


def analyze_function(db, fdef) -> list[Diagnostic]:
    """Run every analysis pass over *fdef*, returning sorted diagnostics.

    *db* is the owning :class:`~repro.sql.engine.Database`; its catalog
    scopes the embedded-SQL checks and the volatility walk.  Builtins
    return no diagnostics (nothing to analyze).
    """
    catalog = db.catalog
    sink = DiagnosticSink(fdef.name.lower())
    if fdef.kind == "builtin":
        return []
    if fdef.kind == "sql":
        _analyze_sql_function(fdef, catalog, sink)
    else:
        _analyze_plpgsql_function(fdef, catalog, sink)
    _report_volatility(fdef, catalog, sink)
    return sink.sorted()


# -- SQL-language functions -------------------------------------------------

def _analyze_sql_function(fdef, catalog, sink: DiagnosticSink) -> None:
    from ..sql import ast as A
    from ..sql.parser import parse_statement
    try:
        body = parse_statement(fdef.body)
    except Exception as exc:  # parse errors become a diagnostic, not a crash
        sink.add("CF000", f"body does not parse: {exc}")
        return
    if not isinstance(body, A.SelectStmt):
        sink.add("CF000", "body of a SQL function must be a single SELECT")
        return
    variables = {name.lower() for name in fdef.param_names}
    checker = SqlChecker(catalog, variables, sink)
    # A SQL function's entire body is its only path: must-execute.
    checker.check_expr(body, line=None, must_execute=True)


# -- PL/pgSQL (interpreted or compiled) -------------------------------------

def _analyze_plpgsql_function(fdef, catalog, sink: DiagnosticSink) -> None:
    func = plsql_def_for(fdef, catalog)
    if func is None:
        sink.add("CF000", "no analyzable body")
        return
    try:
        cfg = build_cfg(func, for_analysis=True)
    except Exception as exc:
        sink.add("CF000", f"body does not lower to a CFG: {exc}")
        return

    check_control_flow(cfg, sink)
    check_dataflow(cfg, sink)

    reachable = reachable_blocks(cfg)
    exits = exit_blocks(cfg, reachable)
    dominators = DominatorInfo(
        cfg.entry, {bid: cfg.blocks[bid].successors() for bid in reachable})

    def must_execute(bid: int) -> bool:
        """Does every terminating call run this block?  True iff the block
        is reachable and dominates every reachable exit — then a defect in
        it fires on all calls, which is what licenses error severity."""
        if bid not in reachable:
            return False
        return all(dominators.dominates(bid, exit_bid)
                   for exit_bid in exits)

    # DF005: assignments to undeclared names (analysis-mode lowering
    # registers them with type 'unknown' instead of failing).
    by_line = {}
    for bid in reachable:
        for stmt in cfg.blocks[bid].stmts:
            by_line.setdefault(stmt.target, (bid, stmt.line))
    for name, line in undeclared_targets(cfg):
        bid, _ = by_line.get(name, (None, line))
        sink.add("DF005",
                 f"assignment to undeclared variable {name!r} raises at "
                 "run time",
                 line=line,
                 must_execute=bid is not None and must_execute(bid))

    # Embedded SQL + literal-type checks, block by block.
    variables = {name for name in cfg.var_types if name != "unknown"}
    checker = SqlChecker(catalog, variables, sink)
    declared_types = dict(cfg.var_types)
    for bid in sorted(reachable):
        block = cfg.blocks[bid]
        me = must_execute(bid)
        for stmt in block.stmts:
            if stmt.implicit:
                continue
            checker.check_expr(stmt.expr, line=stmt.line, must_execute=me)
            message = literal_type_mismatch(stmt.expr,
                                            declared_types.get(stmt.target))
            if message is not None:
                sink.add("SQ005", message, line=stmt.line)
        terminator = block.terminator
        if isinstance(terminator, CondGoto):
            checker.check_expr(terminator.condition,
                               line=terminator.line, must_execute=me)
        elif isinstance(terminator, Return) and not terminator.synthetic:
            checker.check_expr(terminator.expr,
                               line=terminator.line, must_execute=me)
            message = literal_type_mismatch(terminator.expr,
                                            cfg.return_type)
            if message is not None:
                sink.add("SQ005", "RETURN: " + message,
                         line=terminator.line)


# -- volatility -------------------------------------------------------------

def _report_volatility(fdef, catalog, sink: DiagnosticSink) -> None:
    volatility, may_raise, has_loops = function_facts(fdef, catalog)
    notes = []
    if may_raise:
        notes.append("may raise")
    if has_loops:
        notes.append("loops")
    suffix = f" ({', '.join(notes)})" if notes else ""
    sink.add("VL001", f"inferred volatility: {volatility}{suffix}")
    declared = fdef.declared_volatility
    if declared is not None and LEVELS[declared] < LEVELS[volatility]:
        sink.add("VL002",
                 f"declared {declared.upper()} but the body looks "
                 f"{volatility.upper()}; the declaration wins, results "
                 "may be wrong")
