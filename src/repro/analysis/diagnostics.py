"""Diagnostic records and the stable code catalog.

Every finding the analyzer can produce has a fixed code so tests, the
fuzzer's soundness oracle, and downstream tooling can match on it instead
of on message text.  Codes group by family:

======  ========  ============================================================
code    severity  meaning
======  ========  ============================================================
CF000   error     function body does not parse / lower to a CFG
CF001   warning   unreachable statement
CF002   error     control can never leave the function through RETURN —
                  every terminating path falls off the end
CF003   warning   some path may fall off the end without RETURN
CF004   warning   loop has no reachable EXIT/RETURN (likely infinite)
DF001   warning   variable may be used before assignment
DF002   warning   dead store (value reassigned/never read before exit)
DF003   warning   variable declared but never used
DF004   info      parameter never used
DF005   error*    assignment to undeclared variable
SQ001   error*    embedded query references an unknown table
SQ002   error*    embedded query references an unknown column
SQ003   error*    call to an unknown function
SQ004   error*    call with wrong number of arguments
SQ005   warning   literal of the wrong type assigned / returned
VL001   info      inferred volatility class (informational)
VL002   warning   declared volatility is stricter than the inferred class
======  ========  ============================================================

``error*`` codes demote to **warning** unless the offending statement is
*must-execute* — reachable and dominating every reachable function exit —
because only then is the defect guaranteed to fire on every call.  That
demotion rule is what makes the severity scheme sound: a function that
executes cleanly for some input can, by construction, never carry an
error-severity diagnostic (the fuzz oracle in :mod:`repro.fuzz.oracle`
checks exactly this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: Rank order for sorting and for the ``check_function_bodies=error`` gate.
SEVERITIES = ("info", "warning", "error")

#: code -> (default severity, short description).  The default is what a
#: non-must-execute occurrence reports; see the module docstring.
CATALOG: dict[str, tuple[str, str]] = {
    "CF000": ("error", "body does not parse or lower"),
    "CF001": ("warning", "unreachable statement"),
    "CF002": ("error", "control cannot reach RETURN on any path"),
    "CF003": ("warning", "control may fall off the end without RETURN"),
    "CF004": ("warning", "loop with no reachable EXIT or RETURN"),
    "DF001": ("warning", "variable may be used before assignment"),
    "DF002": ("warning", "dead store"),
    "DF003": ("warning", "unused variable"),
    "DF004": ("info", "unused parameter"),
    "DF005": ("error", "assignment to undeclared variable"),
    "SQ001": ("error", "unknown table"),
    "SQ002": ("error", "unknown column"),
    "SQ003": ("error", "unknown function"),
    "SQ004": ("error", "wrong number of arguments"),
    "SQ005": ("warning", "suspicious literal type"),
    "VL001": ("info", "inferred volatility"),
    "VL002": ("warning", "declared volatility stricter than inferred"),
}

#: Codes whose error default demotes to warning off the must-execute path.
CONDITIONAL_CODES = frozenset({"DF005", "SQ001", "SQ002", "SQ003", "SQ004"})


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding, as surfaced by ``CHECK FUNCTION``."""

    function: str
    severity: str  # 'info' | 'warning' | 'error'
    code: str
    message: str
    line: Optional[int] = None

    def row(self) -> list:
        """The CHECK FUNCTION result row."""
        return [self.function, self.severity, self.code, self.line,
                self.message]

    def sort_key(self):
        return (self.line if self.line is not None else 10 ** 9,
                -SEVERITIES.index(self.severity), self.code, self.message)


class DiagnosticSink:
    """Collects diagnostics for one function, applying the must-execute
    demotion rule centrally so no analysis pass can forget it."""

    def __init__(self, function: str):
        self.function = function
        self.items: list[Diagnostic] = []

    def add(self, code: str, message: str, line: Optional[int] = None,
            must_execute: bool = False,
            severity: Optional[str] = None) -> None:
        if severity is None:
            severity = CATALOG[code][0]
            if code in CONDITIONAL_CODES and not must_execute:
                severity = "warning"
        self.items.append(Diagnostic(self.function, severity, code,
                                     message, line))

    def sorted(self) -> list[Diagnostic]:
        return sorted(self.items, key=Diagnostic.sort_key)

    def max_severity(self) -> Optional[str]:
        if not self.items:
            return None
        return max(self.items,
                   key=lambda d: SEVERITIES.index(d.severity)).severity
