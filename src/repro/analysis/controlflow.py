"""Control-flow diagnostics over the analysis-mode CFG.

Reuses the compiler's own lowering (:func:`repro.compiler.cfg.build_cfg`
with ``for_analysis=True``) so the analyzer reasons about exactly the
control flow the execution engines see — the paper's "one IR, many
consumers" dividend.  Passes:

* **reachability** — forward DFS from the entry block; statements in
  unreachable blocks are dead code (CF001).
* **fall-off-the-end** — the builder plants a synthetic
  ``Return(__no_return(...))`` on the fall-off edge.  If that exit is
  reachable the function can terminate without RETURN: an *error* (CF002)
  when it is the **only** reachable way out (every call that terminates
  fails), a *warning* (CF003) when some paths do return.
* **likely-infinite loops** (CF004) — a strongly connected component of
  the reachable CFG with no edge leaving it and no raising exit inside
  can only run forever (or exhaust the interpreter's statement budget).
  This one is precise on the CFG but still a warning: the budget turns
  it into a runtime error, not silent non-termination.
"""

from __future__ import annotations

from ..compiler.cfg import ControlFlowGraph, Return
from .diagnostics import DiagnosticSink


def reachable_blocks(cfg: ControlFlowGraph) -> set[int]:
    seen: set[int] = set()
    stack = [cfg.entry]
    while stack:
        bid = stack.pop()
        if bid in seen:
            continue
        seen.add(bid)
        stack.extend(cfg.blocks[bid].successors())
    return seen


def exit_blocks(cfg: ControlFlowGraph, reachable: set[int]) -> set[int]:
    """Reachable blocks whose terminator leaves the function."""
    return {bid for bid in reachable
            if isinstance(cfg.blocks[bid].terminator, Return)}


def _first_line(block) -> int | None:
    for stmt in block.stmts:
        if stmt.line is not None:
            return stmt.line
    return getattr(block.terminator, "line", None)


def _sccs(nodes: set[int], successors) -> list[list[int]]:
    """Tarjan's algorithm, iterative, restricted to *nodes*."""
    index: dict[int, int] = {}
    low: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[int] = []
    out: list[list[int]] = []
    counter = [0]

    for root in sorted(nodes):
        if root in index:
            continue
        work = [(root, iter([s for s in successors(root) if s in nodes]))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index:
                    index[succ] = low[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append(
                        (succ, iter([s for s in successors(succ)
                                     if s in nodes])))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                out.append(component)
    return out


def check_control_flow(cfg: ControlFlowGraph, sink: DiagnosticSink) -> None:
    reachable = reachable_blocks(cfg)

    # CF001: unreachable statements.  One diagnostic per dead block that
    # carries programmer code (synthetic fall-off blocks with no source
    # statements are lowering artefacts, not user mistakes).
    for bid in cfg.block_ids():
        if bid in reachable:
            continue
        block = cfg.blocks[bid]
        real = [s for s in block.stmts if not s.implicit]
        terminator = block.terminator
        real_return = (isinstance(terminator, Return)
                       and not terminator.synthetic)
        if real or real_return:
            line = _first_line(block)
            sink.add("CF001", "unreachable statement", line=line)

    # CF002 / CF003: reachable synthetic fall-off exits.
    exits = exit_blocks(cfg, reachable)
    fall_off = [bid for bid in exits
                if cfg.blocks[bid].terminator.synthetic]
    returning = [bid for bid in exits
                 if not cfg.blocks[bid].terminator.synthetic]
    if fall_off:
        line = min((_first_line(cfg.blocks[bid]) or 10 ** 9
                    for bid in fall_off), default=None)
        line = None if line == 10 ** 9 else line
        if not returning:
            sink.add("CF002",
                     "control cannot reach RETURN on any path; every "
                     "terminating call raises \"control reached end of "
                     "function without RETURN\"", line=line)
        else:
            sink.add("CF003",
                     "control may fall off the end of the function "
                     "without RETURN", line=line)

    # CF004: reachable loop (non-trivial SCC) with no way out.
    def successors(bid: int) -> list[int]:
        return cfg.blocks[bid].successors()

    for component in _sccs(reachable, successors):
        members = set(component)
        if len(component) == 1 and component[0] not in successors(component[0]):
            continue  # trivial SCC, not a loop
        # A Return terminator has no successors, so a block that exits the
        # function can never sit inside a non-trivial SCC: "no edge leaves
        # the component" already implies "no RETURN/RAISE inside".
        leaves = any(succ not in members
                     for bid in members for succ in successors(bid))
        if not leaves:
            line = min((_first_line(cfg.blocks[bid]) or 10 ** 9
                        for bid in members), default=None)
            line = None if line == 10 ** 9 else line
            sink.add("CF004",
                     "loop has no reachable EXIT or RETURN and runs "
                     "forever", line=line)
