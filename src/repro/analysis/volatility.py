"""Volatility inference over function bodies.

PostgreSQL trusts the volatility class the user *declares* and defaults to
VOLATILE.  This module infers the class from the body instead, walking the
same lattice PostgreSQL documents::

    immutable  <  stable  <  volatile

* calls to volatile builtins (``random``, ``setseed``, ...) force
  **volatile**,
* any embedded query that reads a table forces at least **stable** (the
  result may change between statements, but not within one),
* calls to other user functions join in the callee's inferred class
  (declared class when the user supplied one),
* recursion and calls to unknown functions are conservatively **volatile**.

Besides the class, inference records two planner-grade facts used by the
purity test (:func:`function_is_pure`) that gates expression motion and
set-oriented batching in :mod:`repro.sql.astutil` / ``planner.py``:

* ``may_raise`` — the body contains an expression that can raise at run
  time (division with a non-constant divisor, a domain-limited builtin
  like ``sqrt``, a cast, ``RAISE EXCEPTION``, an embedded query, or a
  callee that may itself raise).  Moving such an expression could change
  *whether* an error surfaces, so it pins the expression in place.
* ``has_loops`` — the body (or a callee) iterates; evaluation count then
  affects the interpreter's statement budget, so motion could change
  which side of the budget a query lands on.

The soundness argument is monotonicity: every rule only moves *up* the
lattice, and anything the walk cannot prove pure (unknown function,
recursion, embedded query) is pushed to the conservative top.  Inference
can therefore over-classify (losing an optimization) but never
under-classify (changing semantics).

Results are cached on the :class:`~repro.sql.catalog.FunctionDef`
(``inferred_*`` fields) and reset together with the plan caches.
"""

from __future__ import annotations

from dataclasses import fields, is_dataclass
from typing import Optional

from ..plsql import ast as P
from ..sql import ast as A
from ..sql.functions import (SCALAR_BUILTINS, VOLATILE_FUNCTIONS,
                             is_aggregate_name, is_window_function_name)

#: Ordered lattice positions.
LEVELS = {"immutable": 0, "stable": 1, "volatile": 2}
_NAMES = {index: name for name, index in LEVELS.items()}

#: Builtins that raise on part of their domain (sqrt of a negative, ln of
#: zero, mod by zero, ...).  Conservative: listing too many only narrows
#: the purity test, never breaks it.
RAISING_BUILTINS = {"sqrt", "ln", "exp", "mod", "power", "pow", "chr"}


def join(a: str, b: str) -> str:
    """Least upper bound of two volatility classes."""
    return _NAMES[max(LEVELS[a], LEVELS[b])]


class Facts:
    """Mutable accumulator for one function's inference walk."""

    __slots__ = ("level", "may_raise", "has_loops")

    def __init__(self):
        self.level = 0
        self.may_raise = False
        self.has_loops = False

    def bump(self, level: int) -> None:
        if level > self.level:
            self.level = level

    @property
    def volatility(self) -> str:
        return _NAMES[self.level]


def _is_nonzero_literal(expr: A.Expr) -> bool:
    return (isinstance(expr, A.Literal)
            and isinstance(expr.value, (int, float))
            and not isinstance(expr.value, bool)
            and expr.value != 0)


def _walk_nodes(root):
    """Generic dataclass walk yielding every AST node, crossing statement
    and subquery boundaries (same idiom as astutil.references_table)."""
    stack = [root]
    while stack:
        current = stack.pop()
        yield current
        if is_dataclass(current) and not isinstance(current, type):
            stack.extend(getattr(current, f.name) for f in fields(current))
        elif isinstance(current, (list, tuple)):
            stack.extend(current)
        elif isinstance(current, dict):
            stack.extend(current.values())


def _fold_node(node, facts: Facts, catalog, stack: frozenset) -> None:
    """Fold one AST node (SQL or PL/pgSQL) into *facts*."""
    if isinstance(node, A.TableName):
        # Reading any relation makes the result depend on database
        # state: at least stable.  CTE references over-approximate
        # here, which is the safe direction.
        facts.bump(LEVELS["stable"])
    elif isinstance(node, (A.ScalarSubquery, A.Exists, A.InSubquery)):
        # The embedded query itself may raise (division inside, a
        # failed coercion); its FROM tables are seen by the walk.
        facts.may_raise = True
    elif isinstance(node, A.Cast):
        facts.may_raise = True
    elif isinstance(node, A.BinaryOp):
        if node.op in ("/", "%") and not _is_nonzero_literal(node.right):
            facts.may_raise = True
    elif isinstance(node, A.FuncCall):
        _scan_call(node, facts, catalog, stack)
    elif isinstance(node, (P.LoopStmt, P.WhileStmt, P.ForRangeStmt,
                           P.ForEachStmt, P.ForQueryStmt)):
        facts.has_loops = True
        if isinstance(node, P.ForQueryStmt):
            facts.may_raise = True  # executes an embedded query
    elif isinstance(node, P.RaiseStmt) and node.level == "exception":
        facts.may_raise = True
    elif isinstance(node, P.PerformStmt):
        facts.may_raise = True  # executes an embedded query


def _scan_expr(expr, facts: Facts, catalog, stack: frozenset) -> None:
    """Fold one expression (or whole SELECT) into *facts*."""
    for node in _walk_nodes(expr):
        _fold_node(node, facts, catalog, stack)


def _scan_call(node: A.FuncCall, facts: Facts, catalog,
               stack: frozenset) -> None:
    name = node.name.lower()
    if name == "coalesce" or name == "count":
        return
    if name in SCALAR_BUILTINS:
        if name in VOLATILE_FUNCTIONS:
            facts.bump(LEVELS["volatile"])
        if name in RAISING_BUILTINS or name == "__no_return":
            facts.may_raise = True
        return
    if is_aggregate_name(name) or is_window_function_name(name):
        return  # pure over their input rows
    fdef = catalog.get_function(name) if catalog is not None else None
    if fdef is None:
        # Unknown callee: either a later CREATE FUNCTION target or a plain
        # error — both are the conservative top.
        facts.bump(LEVELS["volatile"])
        facts.may_raise = True
        return
    volatility, may_raise, has_loops = function_facts(fdef, catalog, stack)
    facts.bump(LEVELS[volatility])
    facts.may_raise = facts.may_raise or may_raise
    facts.has_loops = facts.has_loops or has_loops


def _scan_plsql(func: P.PlsqlFunctionDef, facts: Facts, catalog,
                stack: frozenset) -> None:
    for node in _walk_nodes([list(func.declarations), list(func.body)]):
        _fold_node(node, facts, catalog, stack)


def plsql_def_for(fdef, catalog=None) -> Optional[P.PlsqlFunctionDef]:
    """The parsed PL/pgSQL body backing *fdef*, or None.

    Compiled functions carry it directly (``plsql_source``, retained by
    ``register_compiled_function``); plpgsql functions parse their body
    text on first use and cache the result on the same field.
    """
    if isinstance(fdef.plsql_source, P.PlsqlFunctionDef):
        return fdef.plsql_source
    if fdef.kind == "plpgsql" and fdef.body is not None:
        from ..plsql.parser import parse_plpgsql_function
        func = parse_plpgsql_function(fdef.name, fdef.param_names,
                                      fdef.param_types, fdef.return_type,
                                      fdef.body)
        fdef.plsql_source = func
        return func
    return None


def function_facts(fdef, catalog,
                   _stack: frozenset = frozenset()
                   ) -> tuple[str, bool, bool]:
    """``(volatility, may_raise, has_loops)`` for *fdef*, inferred from the
    body and cached on the FunctionDef.  Recursion (direct or mutual) is
    detected via *_stack* and classified volatile."""
    name = fdef.name.lower()
    if fdef.kind == "builtin":
        volatility = "volatile" if name in VOLATILE_FUNCTIONS else "immutable"
        return volatility, name in RAISING_BUILTINS, False
    if fdef.inferred_volatility is not None:
        return (fdef.inferred_volatility, bool(fdef.inferred_may_raise),
                bool(fdef.inferred_has_loops))
    if name in _stack:
        return "volatile", True, True
    facts = Facts()
    stack = _stack | {name}
    try:
        if fdef.kind == "sql":
            from ..sql.parser import parse_statement
            body = parse_statement(fdef.body)
            if isinstance(body, A.SelectStmt):
                _scan_expr(body, facts, catalog, stack)
        else:
            func = plsql_def_for(fdef, catalog)
            if func is None:
                facts.bump(LEVELS["volatile"])
                facts.may_raise = True
            else:
                _scan_plsql(func, facts, catalog, stack)
    except Exception:
        # An unparseable body cannot be classified: conservative top.
        facts.bump(LEVELS["volatile"])
        facts.may_raise = True
    fdef.inferred_volatility = facts.volatility
    fdef.inferred_may_raise = facts.may_raise
    fdef.inferred_has_loops = facts.has_loops
    return facts.volatility, facts.may_raise, facts.has_loops


def effective_volatility(fdef, catalog) -> str:
    """Declared class when the user supplied one, inferred otherwise."""
    if fdef.declared_volatility:
        return fdef.declared_volatility
    return function_facts(fdef, catalog)[0]


def function_is_pure(fdef, catalog) -> bool:
    """May calls to *fdef* move freely (pushdown, batching argument
    analysis)?  Requires the full conjunction: immutable (declared or
    inferred), provably raise-free, and loop-free — the same bar builtins
    meet implicitly in :func:`repro.sql.astutil.column_bindings`."""
    volatility, may_raise, has_loops = function_facts(fdef, catalog)
    if fdef.declared_volatility:
        volatility = fdef.declared_volatility
    return volatility == "immutable" and not may_raise and not has_loops
