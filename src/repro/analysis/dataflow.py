"""Def-use diagnostics over the analysis-mode CFG.

Two classic bit-vector analyses, both running on the same CFG the
control-flow pass uses:

* **must-defined** (forward, intersection) drives DF001 *use before
  assignment*: a variable read in a block where no path from entry is
  guaranteed to have written it first.  Parameters are defined at entry;
  the builder's implicit ``name <- NULL`` declaration initialisers are
  *not* definitions for this purpose — PostgreSQL initialises the slot,
  but reading it before the first real assignment is almost always a
  bug, hence a warning (never an error: NULL-reads are legal).
* **liveness** (backward, union) drives DF002 *dead store*: a real
  (non-implicit) write whose value cannot reach any read.  Writes to a
  variable that is never read anywhere are reported once as DF003
  *unused variable* (or DF004 *unused parameter*) instead of as a dead
  store per assignment.

Uses inside embedded queries are collected by walking the expression
dataclasses generically, so reads from a ``WHERE`` clause or a scalar
subquery count like any other read.  ``__``-prefixed names are compiler
temporaries and never reported.
"""

from __future__ import annotations

from dataclasses import fields, is_dataclass
from typing import Optional

from ..compiler.cfg import CondGoto, ControlFlowGraph, Return
from .diagnostics import DiagnosticSink
from .controlflow import reachable_blocks


def expr_reads(expr, known: set[str]) -> set[str]:
    """Names from *known* that *expr* reads, including inside subqueries.
    A ColumnRef's head part counts (qualified refs like ``t.c`` name a
    table, not a variable)."""
    from ..sql import ast as A
    out: set[str] = set()
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, A.ColumnRef):
            if len(node.parts) == 1 and node.parts[0].lower() in known:
                out.add(node.parts[0].lower())
            continue
        if is_dataclass(node) and not isinstance(node, type):
            stack.extend(getattr(node, f.name) for f in fields(node))
        elif isinstance(node, (list, tuple)):
            stack.extend(node)
        elif isinstance(node, dict):
            stack.extend(node.values())
    return out


class _BlockSummary:
    __slots__ = ("uses_before_def", "defs", "events")

    def __init__(self):
        #: vars read in this block before any local real definition
        self.uses_before_def: set[str] = set()
        #: vars definitely written by this block (real defs only)
        self.defs: set[str] = set()
        #: ordered (kind, name, line, reads) for the per-statement walk;
        #: kind is 'def' (real), 'implicit', or 'use'
        self.events: list = []


def _summarise(cfg: ControlFlowGraph, known: set[str]
               ) -> dict[int, _BlockSummary]:
    out: dict[int, _BlockSummary] = {}
    for bid, block in cfg.blocks.items():
        summary = _BlockSummary()
        defined: set[str] = set()
        for stmt in block.stmts:
            reads = expr_reads(stmt.expr, known)
            summary.uses_before_def |= reads - defined
            kind = "implicit" if stmt.implicit else "def"
            summary.events.append((kind, stmt.target, stmt.line, reads))
            if not stmt.implicit:
                defined.add(stmt.target)
                summary.defs.add(stmt.target)
        terminator = block.terminator
        term_expr = None
        if isinstance(terminator, CondGoto):
            term_expr = terminator.condition
        elif isinstance(terminator, Return):
            term_expr = terminator.expr
        if term_expr is not None:
            reads = expr_reads(term_expr, known)
            summary.uses_before_def |= reads - defined
            summary.events.append(("use", None,
                                   getattr(terminator, "line", None), reads))
        out[bid] = summary
    return out


def _must_defined(cfg: ControlFlowGraph, reachable: set[int],
                  summaries: dict[int, _BlockSummary],
                  params: set[str], all_vars: set[str]) -> dict[int, set[str]]:
    """IN[b] for the forward must-defined analysis (real defs only)."""
    preds = cfg.predecessors()
    in_sets: dict[int, set[str]] = {bid: set(all_vars) for bid in reachable}
    in_sets[cfg.entry] = set(params)
    changed = True
    while changed:
        changed = False
        for bid in sorted(reachable):
            if bid == cfg.entry:
                incoming = set(params)
            else:
                incoming_preds = [p for p in preds[bid] if p in reachable]
                if incoming_preds:
                    incoming = set.intersection(
                        *(in_sets[p] | summaries[p].defs
                          for p in incoming_preds))
                else:
                    incoming = set(all_vars)
                incoming |= set(params)
            if incoming != in_sets[bid]:
                in_sets[bid] = incoming
                changed = True
    return in_sets


def _liveness(cfg: ControlFlowGraph, reachable: set[int],
              summaries: dict[int, _BlockSummary]) -> dict[int, set[str]]:
    """LIVE-OUT[b] for the backward liveness analysis."""
    out_sets: dict[int, set[str]] = {bid: set() for bid in reachable}
    changed = True
    while changed:
        changed = False
        for bid in sorted(reachable, reverse=True):
            block = cfg.blocks[bid]
            live_out: set[str] = set()
            for succ in block.successors():
                if succ in reachable:
                    summary = summaries[succ]
                    live_out |= summary.uses_before_def
                    live_out |= out_sets[succ] - summary.defs
            if live_out != out_sets[bid]:
                out_sets[bid] = live_out
                changed = True
    return out_sets


def check_dataflow(cfg: ControlFlowGraph, sink: DiagnosticSink) -> None:
    known = {name for name in cfg.var_types}
    params = {p.lower() for p in cfg.params}
    # Skip compiler temporaries and undeclared targets (the latter are the
    # DF005 driver's problem; double-reporting them as "unused" is noise).
    user_vars = {name for name in known
                 if not name.startswith("__")
                 and cfg.var_types.get(name) != "unknown"}
    reachable = reachable_blocks(cfg)
    summaries = _summarise(cfg, known)

    # Global read/write census over reachable code for DF003/DF004.
    reads_anywhere: set[str] = set()
    writes_anywhere: set[str] = set()
    for bid in reachable:
        for kind, target, _line, reads in summaries[bid].events:
            reads_anywhere |= reads
            if kind == "def":
                writes_anywhere.add(target)

    for name in sorted(user_vars - params - reads_anywhere):
        sink.add("DF003", f"variable {name!r} is never used")
    for name in sorted(params - reads_anywhere):
        sink.add("DF004", f"parameter {name!r} is never used")

    # DF001: use before (any real) assignment, flow-sensitively.
    in_sets = _must_defined(cfg, reachable, summaries, params, known)
    flagged: set[str] = set()
    for bid in sorted(reachable):
        defined = set(in_sets[bid])
        for kind, target, line, reads in summaries[bid].events:
            for name in sorted(reads - defined):
                if name in user_vars and name not in flagged:
                    flagged.add(name)
                    sink.add("DF001",
                             f"variable {name!r} may be used before "
                             "being assigned", line=line)
            if kind == "def":
                defined.add(target)

    # DF002: dead stores (per assignment), only for vars that ARE read
    # somewhere — vars never read at all already got DF003/DF004.
    live_out = _liveness(cfg, reachable, summaries)
    for bid in sorted(reachable):
        block = cfg.blocks[bid]
        # walk statements backwards tracking liveness inside the block
        live = set(live_out[bid])
        terminator = block.terminator
        if isinstance(terminator, CondGoto):
            live |= expr_reads(terminator.condition, known)
        elif isinstance(terminator, Return):
            live |= expr_reads(terminator.expr, known)
        for stmt in reversed(block.stmts):
            reads = expr_reads(stmt.expr, known)
            if (not stmt.implicit and not stmt.decl
                    and stmt.target in user_vars
                    and stmt.target in reads_anywhere
                    and stmt.target not in live):
                sink.add("DF002",
                         f"value assigned to {stmt.target!r} is never "
                         "read", line=stmt.line)
            live.discard(stmt.target)
            live |= reads
    # DF005 (assignment to an undeclared name) is reported by the driver
    # in __init__.py: the builder records such targets with type 'unknown'.


def undeclared_targets(cfg: ControlFlowGraph) -> list[tuple[str, Optional[int]]]:
    """(name, line) per first assignment to a variable the analysis-mode
    builder auto-registered as type 'unknown' (DF005)."""
    seen: set[str] = set()
    out: list[tuple[str, Optional[int]]] = []
    for bid in cfg.block_ids():
        for stmt in cfg.blocks[bid].stmts:
            if (cfg.var_types.get(stmt.target) == "unknown"
                    and stmt.target not in seen):
                seen.add(stmt.target)
                out.append((stmt.target, stmt.line))
    return out
