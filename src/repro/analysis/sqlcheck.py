"""Semantic checks for SQL embedded in function bodies.

PostgreSQL's ``check_function_bodies`` only syntax-checks; its
``plpgsql_check`` extension is what validates embedded queries against
the live catalog.  This pass plays the latter role for the analyzer:

* **SQ001** — a FROM-clause table that is neither in the catalog nor a
  CTE bound by an enclosing WITH,
* **SQ002** — a column reference that provably resolves to nothing: a
  qualified ``t.c`` whose qualifier names a catalog table without that
  column, or an unqualified name when *every* candidate source (FROM
  tables, function variables) is fully known and none supplies it,
* **SQ003 / SQ004** — calls to unknown functions / known functions with
  the wrong argument count,
* **SQ005** — literal/declared-type mismatches in assignments and RETURN
  (a deliberately narrow check: a non-numeric string literal flowing
  into a numeric slot).

The resolver is conservative by design: whenever a scope contains
anything it cannot fully enumerate (a subquery source, a CTE, a record
variable) it stays silent rather than guess — a false "unknown column"
on valid SQL would poison the ``check_function_bodies=error`` gate.
"""

from __future__ import annotations

from dataclasses import fields, is_dataclass
from typing import Optional

from ..sql import ast as A
from ..sql.functions import (SCALAR_BUILTINS, is_aggregate_name,
                             is_window_function_name)
from .diagnostics import DiagnosticSink

#: Declared types the SQ005 literal check treats as numeric slots.
NUMERIC_TYPES = {"int", "integer", "bigint", "smallint", "numeric",
                 "decimal", "real", "float", "double precision", "float8"}

#: Relations the engine synthesises (batched-execution input); never in
#: the user catalog but always valid.
SYNTHETIC_TABLES = {"__batch_input"}


def _walk(root):
    stack = [root]
    while stack:
        node = stack.pop()
        yield node
        if is_dataclass(node) and not isinstance(node, type):
            stack.extend(getattr(node, f.name) for f in fields(node))
        elif isinstance(node, (list, tuple)):
            stack.extend(node)
        elif isinstance(node, dict):
            stack.extend(node.values())


def _from_sources(from_clause) -> list:
    """Flatten a FROM tree (joins included) into its leaf sources."""
    out = []
    stack = [from_clause]
    while stack:
        node = stack.pop()
        if node is None:
            continue
        if isinstance(node, A.Join):
            stack.append(node.left)
            stack.append(node.right)
        else:
            out.append(node)
    return out


class SqlChecker:
    def __init__(self, catalog, variables: set[str], sink: DiagnosticSink):
        self.catalog = catalog
        self.variables = variables  # function params + declared vars
        self.sink = sink
        self.line: Optional[int] = None
        self.must_execute = False

    # -- entry points ------------------------------------------------------

    def check_expr(self, expr, line: Optional[int],
                   must_execute: bool) -> None:
        """Check one expression tree; SELECTs inside are fully scoped."""
        self.line = line
        self.must_execute = must_execute
        self._check_nodes(expr, ctes=frozenset())

    # -- internals ---------------------------------------------------------

    def _check_nodes(self, root, ctes: frozenset) -> None:
        """Walk *root* checking calls; recurse into SELECTs with scope."""
        for node in _walk_shallow(root):
            if isinstance(node, A.SelectStmt):
                self._check_select(node, ctes)
            elif isinstance(node, A.FuncCall):
                self._check_call(node)
                for arg in node.args:
                    self._check_nodes(arg, ctes)

    def _check_call(self, node: A.FuncCall) -> None:
        name = node.name.lower()
        if is_aggregate_name(name) or is_window_function_name(name):
            return
        if name in SCALAR_BUILTINS or name == "coalesce":
            # Builtins are registered as variadic callables; their true
            # arity is hidden behind the (ctx, *args) wrappers, so only
            # existence is checkable.
            return
        fdef = self.catalog.get_function(name) if self.catalog else None
        if fdef is None:
            self.sink.add("SQ003", f"unknown function {name!r}",
                          line=self.line, must_execute=self.must_execute)
            return
        if len(node.args) != fdef.arity:
            self.sink.add(
                "SQ004",
                f"function {name!r} takes {fdef.arity} argument(s), "
                f"{len(node.args)} given",
                line=self.line, must_execute=self.must_execute)

    def _check_select(self, select: A.SelectStmt, ctes: frozenset) -> None:
        local_ctes = set(ctes)
        if select.with_clause is not None:
            for cte in select.with_clause.ctes:
                # A recursive CTE sees itself; order of definition also
                # binds later CTEs to earlier ones.  Over-approximating
                # visibility is fine — this scope only suppresses SQ001.
                local_ctes.add(cte.name.lower())
            for cte in select.with_clause.ctes:
                self._check_select(cte.query, frozenset(local_ctes))
        self._check_body(select.body, frozenset(local_ctes))
        for item in select.order_by or []:
            self._check_nodes(item.expr, frozenset(local_ctes))

    def _check_body(self, body, ctes: frozenset) -> None:
        if isinstance(body, A.SetOp):
            self._check_body(body.left, ctes)
            self._check_body(body.right, ctes)
            return
        if isinstance(body, A.ValuesClause):
            for row in body.rows:
                for expr in row:
                    self._check_nodes(expr, ctes)
            return
        if not isinstance(body, A.SelectCore):
            return
        sources = _from_sources(body.from_clause)
        known_columns: set[str] = set()
        alias_columns: dict[str, set[str]] = {}
        opaque = False  # scope contains a source we cannot enumerate
        for source in sources:
            if isinstance(source, A.TableName):
                name = source.name.lower()
                alias = (source.alias or source.name).lower()
                if name in ctes or name in SYNTHETIC_TABLES:
                    opaque = True
                    continue
                table = (self.catalog.tables.get(name)
                         if self.catalog else None)
                if table is None:
                    self.sink.add("SQ001", f"unknown table {name!r}",
                                  line=self.line,
                                  must_execute=self.must_execute)
                    opaque = True
                    continue
                columns = set(table.column_names)
                if source.column_aliases:
                    columns = {c.lower() for c in source.column_aliases}
                known_columns |= columns
                alias_columns[alias] = columns
            elif isinstance(source, A.SubqueryRef):
                self._check_select(source.query, ctes)
                opaque = True
            else:
                opaque = True
        # Column references in the core's expressions.
        for expr in self._core_exprs(body):
            self._check_columns(expr, known_columns, alias_columns,
                                opaque, ctes)

    def _core_exprs(self, body: A.SelectCore):
        for item in body.items:
            if isinstance(item, A.SelectItem):
                yield item.expr
        if body.where is not None:
            yield body.where
        for expr in body.group_by or []:
            yield expr
        if body.having is not None:
            yield body.having

    def _check_columns(self, expr, known_columns: set[str],
                       alias_columns: dict[str, set[str]],
                       opaque: bool, ctes: frozenset) -> None:
        for node in _walk_shallow(expr):
            if isinstance(node, A.SelectStmt):
                # Correlated subquery: its own scope, plus everything from
                # ours — resolving across levels is beyond this checker,
                # so just descend with fresh scoping for SQ001/SQ003.
                self._check_select(node, ctes)
            elif isinstance(node, A.ColumnRef):
                self._check_column_ref(node, known_columns, alias_columns,
                                       opaque)
            elif isinstance(node, A.FuncCall):
                self._check_call(node)
                for arg in node.args:
                    self._check_columns(arg, known_columns, alias_columns,
                                        opaque, ctes)

    def _check_column_ref(self, node: A.ColumnRef, known_columns: set[str],
                          alias_columns: dict[str, set[str]],
                          opaque: bool) -> None:
        parts = [p.lower() for p in node.parts]
        if len(parts) == 2:
            qualifier, column = parts
            columns = alias_columns.get(qualifier)
            if columns is not None and column not in columns:
                self.sink.add(
                    "SQ002",
                    f"column {column!r} does not exist in table "
                    f"{qualifier!r}", line=self.line,
                    must_execute=self.must_execute)
            return
        if len(parts) != 1 or opaque:
            return
        name = parts[0]
        if name in known_columns or name in self.variables:
            return
        self.sink.add("SQ002", f"column {name!r} does not exist",
                      line=self.line, must_execute=self.must_execute)


def _children(node):
    if is_dataclass(node) and not isinstance(node, type):
        return [getattr(node, f.name) for f in fields(node)]
    if isinstance(node, (list, tuple)):
        return list(node)
    if isinstance(node, dict):
        return list(node.values())
    return []


def _walk_shallow(root):
    """Yield nodes without descending past SelectStmt/FuncCall boundaries
    (the caller recurses into those explicitly with updated scope)."""
    stack = [root]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (A.SelectStmt, A.FuncCall)):
            continue
        stack.extend(_children(node))


def literal_type_mismatch(expr, declared_type: Optional[str]
                          ) -> Optional[str]:
    """SQ005's narrow test: a bare string literal flowing into a numeric
    slot.  Returns a message, or None when fine/undecidable."""
    if declared_type is None or not isinstance(expr, A.Literal):
        return None
    base = declared_type.lower().split("(")[0].strip()
    if base not in NUMERIC_TYPES:
        return None
    value = expr.value
    if not isinstance(value, str):
        return None
    try:
        float(value)
        return None  # '42' coerces fine
    except ValueError:
        return (f"string literal {value!r} cannot be coerced to "
                f"declared type {declared_type!r}")
