"""repro — a reproduction of "Compiling PL/SQL Away" (CIDR 2020).

Public API:

>>> from repro import Database, compile_plsql
>>> db = Database()
>>> src = '''CREATE FUNCTION triple(n int) RETURNS int AS $$
...   BEGIN RETURN 3 * n; END; $$ LANGUAGE plpgsql'''
>>> compiled = compile_plsql(src, db)
>>> _ = compiled.register(db)
>>> db.query_value("SELECT triple(14)")
42
"""

from .compiler import (DIALECTS, CompiledFunction, Dialect, compile_plsql,
                       froid_compile)
from .sql import Database, Result, Row

__version__ = "1.0.0"

__all__ = ["Database", "Result", "Row", "CompiledFunction", "compile_plsql",
           "froid_compile", "Dialect", "DIALECTS", "__version__"]
