"""Wire-path differential fuzzing: served engine vs embedded engine.

The wire axis answers a question the other oracles cannot: does a query
return the *same* answer through the whole service stack — protocol
framing, the EXECUTE fast path, session activation from an executor
thread, text rendering — as it does through a direct
:meth:`Database.execute` call?

Each case builds **twin databases** from the same generated schema, data
and functions (:meth:`DifferentialChecker.build_database`, so the
regular query-fuzz corpus is reused unchanged).  One twin stays
embedded; the other is served by a :class:`repro.server.ServerThread`
and queried through the blocking client.  Every query variant then runs
on both and the outcomes must agree:

* **status** — both succeed, or both fail *in the same taxonomy class*
  (the wire carries the class as a SQLSTATE; :data:`~repro.server.
  protocol.LABEL_FOR_SQLSTATE` reverses the injective mapping, so a
  plan error downgraded to an execution error by the wire path would be
  caught here),
* **rows** — the embedded rows, rendered through the same
  :func:`~repro.server.protocol.render_row` the server uses, must equal
  the text rows that crossed the wire (ordered comparison when the
  query's ORDER BY is total, bag comparison otherwise).

Like the txn axis there is no reducer: a failing case prints its script
and seed, and ``--index`` replays it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.server import ServerError, ServerThread, connect
from repro.server.protocol import LABEL_FOR_SQLSTATE, render_row
from repro.sql.profiler import (FUZZ_CASES, FUZZ_COMPARISONS,
                                FUZZ_DISCREPANCIES, FUZZ_EXECUTIONS,
                                Profiler)

from .oracle import (DifferentialChecker, Outcome, rows_equal,
                     run_statement)
from .querygen import Case, Query


@dataclass
class WireDiscrepancy:
    """One disagreement between the served and embedded twins."""

    kind: str            # 'status' | 'result'
    case: Case
    query: Query
    sql: str
    embedded: Outcome
    wire: Outcome

    def describe(self) -> str:
        return (f"[wire/{self.kind}] case seed {self.case.seed}\n"
                f"  sql: {self.sql}\n"
                f"  embedded: {self.embedded.describe()}\n"
                f"  wire:     {self.wire.describe()}")


def wire_outcome(client, sql: str) -> Outcome:
    """Run *sql* over the wire, folded into an :class:`Outcome` whose
    ``error`` is the taxonomy label recovered from the SQLSTATE."""
    try:
        results = client.query(sql)
    except ServerError as error:
        label = LABEL_FOR_SQLSTATE.get(error.sqlstate,
                                       f"sqlstate:{error.sqlstate}")
        return Outcome("error", error=label, message=error.message)
    for result in reversed(results):
        if result.rows is not None:
            return Outcome("ok", rows=result.rows)
    return Outcome("ok", rows=[])


def check_wire_case(case: Case, *, profiler: Optional[Profiler] = None
                    ) -> list[WireDiscrepancy]:
    """Run one case on twin databases (one served, one embedded)."""
    profiler = profiler if profiler is not None else Profiler()
    profiler.bump(FUZZ_CASES)
    builder = DifferentialChecker(use_sqlite=False, profiler=profiler)
    embedded, compiled = builder.build_database(case)
    served, _ = builder.build_database(case)

    variants: list[tuple[Query, str]] = []
    for query in case.queries:
        if query.function is None:
            variants.append((query, query.sql))
        else:
            variants.append((query, query.sql.format(f=query.function)))
            twin = compiled.get(query.function)
            if twin:
                variants.append((query, query.sql.format(f=twin)))

    discrepancies: list[WireDiscrepancy] = []

    def report(kind, query, sql, emb, wire):
        profiler.bump(FUZZ_DISCREPANCIES)
        discrepancies.append(WireDiscrepancy(
            kind=kind, case=case, query=query, sql=sql,
            embedded=emb, wire=wire))

    with ServerThread(served, workers=2) as address:
        with connect(*address) as client:
            for query, sql in variants:
                emb = run_statement(embedded, sql)
                wire = wire_outcome(client, sql)
                profiler.bump(FUZZ_EXECUTIONS, 2)
                profiler.bump(FUZZ_COMPARISONS)
                if emb.status != wire.status:
                    report("status", query, sql, emb, wire)
                    continue
                if emb.status == "error":
                    if emb.error != wire.error:
                        report("status", query, sql, emb, wire)
                    continue
                rendered = [render_row(row) for row in emb.rows]
                if not rows_equal(rendered, wire.rows,
                                  ordered=query.order == "total"):
                    report("result", query, sql, emb, wire)
    return discrepancies
