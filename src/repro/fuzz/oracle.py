"""Multi-oracle differential checking.

One generated case is checked three ways:

* **Engine-vs-engine** — every query runs under a configuration matrix
  derived mechanically from the settings registry
  (:meth:`repro.sql.settings.SettingsRegistry.plan_axes`): an "everything
  off" baseline (seq scans, full sorts, nested loops, scalar UDF calls),
  each finite plan-affecting setting toggled one at a time from both the
  baseline and the defaults, the defaults themselves, and the defaults
  with the plan cache disabled.  A planner flag added to the registry
  joins this matrix automatically.
* **Interpreted-vs-compiled-vs-batched** — case functions register twice
  (PL/pgSQL interpreter and compiled trampoline); function queries run
  with both names under every configuration, so the scalar, inlined,
  batched-machine and batched-SQL execution strategies all face the same
  inputs.
* **Engine-vs-SQLite** — dialect-portable queries over SQLite-safe data
  also run on :mod:`sqlite3`, with a *lax* value normalization (bools are
  ints, ``5.0`` is ``5``) and a known-dialect classifier that explains
  away representation limits (int64 overflow) instead of reporting them.

Outcomes compare as row *bags* by default; a query whose ORDER BY covers
every output column compares as a list, and a partial ordering is checked
for sortedness under the engine's NULL/NaN placement rules.  Errors
compare by the taxonomy of :func:`repro.sql.errors.error_class`: two
strategies agree when both reject, but an exception from outside the
engine's deliberate error hierarchy is a **crash** and always reported.
"""

from __future__ import annotations

import math
import sqlite3
from dataclasses import dataclass
from typing import Optional

from repro.sql import Database
from repro.sql.errors import CRASH, SqlError, error_class
from repro.sql.profiler import (FUZZ_ANALYZER_CHECKS, FUZZ_CASES,
                                FUZZ_COMPARISONS, FUZZ_DIALECT_EXPLAINED,
                                FUZZ_DISCREPANCIES, FUZZ_EXECUTIONS,
                                FUZZ_SQLITE_CHECKS, Profiler)
from repro.sql.values import Row, row_sort_key

from .datagen import data_sqlite_safe, value_sqlite_safe
from .querygen import Case, Query
from .txngen import CONFLICT, OK, TxnCase

# ---------------------------------------------------------------------------
# Row normalization and comparison (the shared helper)
# ---------------------------------------------------------------------------


def normalize_value(value, lax: bool = False):
    """A hashable, deterministically-orderable normal form of one value.

    Values normalize to ``(tag, payload)`` tuples whose tags keep SQL's
    comparability classes apart.  Numbers canonicalize **by value**, not
    by Python type: SQL's value-merging operators (DISTINCT, UNION,
    GROUP BY keys, min/max) keep whichever of several equal
    representatives arrives first, so ``0`` from one access path and
    ``0.0`` from another are the same legal answer (fuzz seed 31000799).
    Integral values render exactly (Python bigints — the engine's exact
    arithmetic must survive normalization); non-integral floats
    canonicalize to 12 significant digits, enough to absorb
    accumulation-order differences between access paths while far tighter
    than any real engine bug.  NaNs are one class, as is ``-0.0 = 0.0``.
    With *lax* (the SQLite oracle), booleans additionally become ints,
    mirroring SQLite's storage model.
    """
    if value is None:
        return ("null",)
    if isinstance(value, bool):
        return ("num", repr(int(value))) if lax else ("bool", value)
    if isinstance(value, float):
        if value != value:
            return ("num", "nan")
        if value in (math.inf, -math.inf):
            return ("num", repr(value))
        if value == int(value):
            return ("num", repr(int(value)))
        return ("num", f"{value:.12g}")
    if isinstance(value, int):
        return ("num", repr(value))
    if isinstance(value, Row):
        return ("row",) + tuple(normalize_value(v, lax) for v in value)
    if isinstance(value, list):
        return ("arr",) + tuple(normalize_value(v, lax) for v in value)
    return ("text", value) if isinstance(value, str) else ("obj", repr(value))


def normalize_row(row, lax: bool = False) -> tuple:
    return tuple(normalize_value(v, lax) for v in row)


def rows_equal(expected, actual, *, ordered: bool = False,
               lax: bool = False) -> bool:
    """True when two result sets agree under SQL semantics.

    *ordered* compares row lists positionally (use when the ordering is
    fully determined); otherwise rows compare as multisets.  Numbers
    compare by SQL value (``0 = 0.0 = -0.0``; exact for integral values,
    12 significant digits otherwise), NaNs form one equality class, and
    *lax* additionally merges SQLite's bool representation
    (``True`` = ``1``).  This is the one comparison routine shared by the
    fuzzer's oracles and the hand-written differential tests.
    """
    a = [normalize_row(r, lax) for r in expected]
    b = [normalize_row(r, lax) for r in actual]
    if not ordered:
        a.sort()
        b.sort()
    return a == b


def is_sorted_by(rows, keys) -> bool:
    """Whether *rows* respects ``keys`` — ((position, descending), ...) —
    under the engine's ordering (ASC = NULLS LAST, DESC = NULLS FIRST,
    NaN above every number).  The oracle applies this to each outcome of a
    partially-ordered query, where bag comparison alone would let a broken
    ordering slip through."""
    if not keys:
        return True
    descending = [desc for _, desc in keys]
    previous = None
    for row in rows:
        key = row_sort_key([row[pos] for pos, _ in keys], descending)
        if previous is not None and key < previous:
            return False
        previous = key
    return True


# ---------------------------------------------------------------------------
# Outcomes
# ---------------------------------------------------------------------------


@dataclass
class Outcome:
    """What one statement did under one configuration."""

    status: str                      # 'ok' | 'error'
    rows: Optional[list] = None
    error: Optional[str] = None      # taxonomy label when status == 'error'
    message: str = ""

    @property
    def crashed(self) -> bool:
        return self.status == "error" and self.error == CRASH

    def describe(self) -> str:
        if self.status == "ok":
            sample = ", ".join(repr(r) for r in (self.rows or [])[:4])
            more = "" if len(self.rows or []) <= 4 else ", ..."
            return f"ok: {len(self.rows or [])} rows [{sample}{more}]"
        return f"{self.error}: {self.message}"


def run_statement(db: Database, sql: str, params=()) -> Outcome:
    """Execute one statement, folding the result or failure into an
    :class:`Outcome` with the engine's error taxonomy applied."""
    try:
        result = db.execute(sql, list(params))
    except Exception as error:  # noqa: BLE001 — taxonomy decides severity
        return Outcome("error", error=error_class(error),
                       message=f"{type(error).__name__}: {error}")
    return Outcome("ok", rows=list(result.rows))


@dataclass
class Discrepancy:
    """One disagreement between two oracles on one statement."""

    kind: str            # 'result' | 'status' | 'order' | 'crash' |
    #                      'sqlite' | 'analyzer-unsound' | 'analyzer-crash'
    case: Case
    query: Query
    sql: str
    config_a: str
    config_b: str
    outcome_a: Outcome
    outcome_b: Outcome

    def describe(self) -> str:
        return (f"[{self.kind}] case seed {self.case.seed}\n"
                f"  sql: {self.sql}\n"
                f"  {self.config_a}: {self.outcome_a.describe()}\n"
                f"  {self.config_b}: {self.outcome_b.describe()}")


# ---------------------------------------------------------------------------
# The settings matrix
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class OracleConfig:
    """A named engine configuration: SET statements applied after RESET."""

    label: str
    set_statements: tuple[str, ...]

    def apply(self, db: Database) -> None:
        db.execute("RESET ALL")
        for statement in self.set_statements:
            db.execute(statement)


def _set_sql(setting, value) -> str:
    if setting.type == "bool":
        return f"SET {setting.name} = {'on' if value else 'off'}"
    if setting.type == "enum":
        return f"SET {setting.name} = '{value}'"
    return f"SET {setting.name} = {value}"


def settings_matrix(db: Database) -> list[OracleConfig]:
    """The oracle configuration matrix, derived from the registry.

    Mechanical construction: a baseline with every finite plan-affecting
    setting at its first domain value (all booleans off — seq scan, full
    sort, nested loop, scalar UDF calls), each setting toggled through its
    other values on top of *both* the baseline and the defaults (so
    features that only act in combination, like batching under inlining,
    still get isolated), the plain defaults, and the defaults without the
    statement plan cache.
    """
    axes = db.settings.plan_axes()
    baseline = {s.name: values[0] for s, values in axes}
    defaults = {s.name: db._setting_defaults[s.name] for s, _ in axes}

    def config(label: str, overrides: dict) -> OracleConfig:
        statements = tuple(
            _set_sql(setting, overrides[setting.name])
            for setting, _ in axes if setting.name in overrides)
        return OracleConfig(label, statements)

    configs = [config("baseline", baseline)]
    seen = {tuple(sorted(baseline.items()))}

    def add(label: str, overrides: dict) -> None:
        key = tuple(sorted(overrides.items()))
        if key not in seen:
            seen.add(key)
            configs.append(config(label, overrides))

    for setting, values in axes:
        for value in values:
            if value != baseline[setting.name]:
                add(f"baseline+{setting.name}={setting.format(value)}",
                    {**baseline, setting.name: value})
    add("defaults", defaults)
    for setting, values in axes:
        for value in values:
            if value != defaults[setting.name]:
                add(f"defaults+{setting.name}={setting.format(value)}",
                    {**defaults, setting.name: value})
    nocache = OracleConfig("defaults+plan_cache_enabled=off",
                           ("SET plan_cache_enabled = off",))
    configs.append(nocache)
    return configs


# ---------------------------------------------------------------------------
# SQLite cross-check
# ---------------------------------------------------------------------------

_SQLITE_AFFINITY = {"int": "INTEGER", "float": "REAL",
                    "text": "TEXT", "bool": "INTEGER"}


def _sqlite_database(case: Case) -> sqlite3.Connection:
    conn = sqlite3.connect(":memory:")
    for table in case.schema.tables:
        columns = ", ".join(
            f"{c.name} {_SQLITE_AFFINITY[c.dtype]}" for c in table.columns)
        conn.execute(f"CREATE TABLE {table.name}({columns})")
        for index in table.indexes:
            cols = ", ".join(f"{n} DESC" if d else n
                             for n, d in index.columns)
            conn.execute(
                f"CREATE INDEX {index.name} ON {index.table}({cols})")
        rows = case.data.get(table.name, [])
        if rows:
            holes = ", ".join("?" * len(table.columns))
            conn.executemany(
                f"INSERT INTO {table.name} VALUES ({holes})", rows)
    return conn


def _run_sqlite(conn: sqlite3.Connection, sql: str) -> Outcome:
    try:
        rows = conn.execute(sql).fetchall()
    except sqlite3.Error as error:
        return Outcome("error", error=f"sqlite-{type(error).__name__}",
                       message=str(error))
    return Outcome("ok", rows=rows)


def _sqlite_difference_explained(engine: Outcome, lite: Outcome) -> bool:
    """Known dialect gaps that are not engine bugs: SQLite cannot
    represent ints outside signed 64-bit (its arithmetic raises where this
    engine's Python ints keep going), and NaN/Inf results degrade to NULL
    on its side."""
    if lite.status == "error" and "overflow" in lite.message.lower():
        return True
    for row in engine.rows or []:
        for value in row:
            if isinstance(value, bool):
                continue
            if not value_sqlite_safe(value):
                return True
    return False


# ---------------------------------------------------------------------------
# The checker
# ---------------------------------------------------------------------------


class DifferentialChecker:
    """Runs a case's queries across all oracles and reports disagreements.

    ``profiler`` (a :class:`repro.sql.profiler.Profiler`) aggregates the
    fuzz counters across cases; the per-case scratch databases run
    unprofiled for speed.
    """

    def __init__(self, use_sqlite: bool = True,
                 profiler: Optional[Profiler] = None):
        self.use_sqlite = use_sqlite
        self.profiler = profiler if profiler is not None else Profiler()

    # -- case setup -----------------------------------------------------

    def build_database(self, case: Case) -> tuple[Database, dict]:
        """A fresh engine loaded with the case's schema, data, and both
        the interpreted and (where compilable) compiled function twins.
        Returns ``(db, {function name: compiled name or None})``."""
        db = Database(seed=0, profile=False)
        for statement in case.setup_statements():
            db.execute(statement)
        for table in case.schema.tables:
            rows = case.data.get(table.name, [])
            if rows:
                holes = ", ".join(f"${i + 1}"
                                  for i in range(len(table.columns)))
                insert = f"INSERT INTO {table.name} VALUES ({holes})"
                for row in rows:
                    db.execute(insert, row)
        compiled = {}
        for fn in case.functions:
            db.execute(fn.source)
            try:
                from repro.compiler import compile_plsql
                compile_plsql(fn.source, db).register(
                    db, name=f"{fn.name}_c")
                compiled[fn.name] = f"{fn.name}_c"
            except SqlError:
                # A deliberate CompileError (unsupported shape) leaves an
                # interpreter-only twin; anything else is a compiler
                # crash and must propagate to the harness's reporting.
                compiled[fn.name] = None
        return db, compiled

    # -- checking -------------------------------------------------------

    def check_case(self, case: Case) -> list[Discrepancy]:
        profiler = self.profiler
        profiler.bump(FUZZ_CASES)
        db, compiled = self.build_database(case)
        configs = settings_matrix(db)

        # Concrete statements per query: (variant label, sql).
        variants_per_query: list[list[tuple[str, str]]] = []
        for query in case.queries:
            if query.function is None:
                variants_per_query.append([("plain", query.sql)])
            else:
                variants = [("interp",
                             query.sql.format(f=query.function))]
                twin = compiled.get(query.function)
                if twin:
                    variants.append(("compiled", query.sql.format(f=twin)))
                variants_per_query.append(variants)

        # Execute everything: outcomes[query index][variant][config label].
        outcomes: list[dict[str, dict[str, Outcome]]] = [
            {label: {} for label, _ in variants}
            for variants in variants_per_query]
        for config in configs:
            config.apply(db)
            for qi, variants in enumerate(variants_per_query):
                for label, sql in variants:
                    outcomes[qi][label][config.label] = run_statement(
                        db, sql)
                    profiler.bump(FUZZ_EXECUTIONS)

        discrepancies: list[Discrepancy] = []

        def report(kind, query, sql, config_a, config_b, a, b):
            profiler.bump(FUZZ_DISCREPANCIES)
            discrepancies.append(Discrepancy(
                kind=kind, case=case, query=query, sql=sql,
                config_a=config_a, config_b=config_b,
                outcome_a=a, outcome_b=b))

        baseline_label = configs[0].label
        sqlite_conn = None
        for qi, (query, variants) in enumerate(
                zip(case.queries, variants_per_query)):
            ref_variant = variants[0][0]
            ref_sql = variants[0][1]
            reference = outcomes[qi][ref_variant][baseline_label]
            if reference.crashed:
                report("crash", query, ref_sql, baseline_label,
                       baseline_label, reference, reference)
                continue
            if (reference.status == "ok" and query.order != "none"
                    and not is_sorted_by(reference.rows,
                                         query.order_keys)):
                # Absolute check: every other config is compared against
                # the baseline, so a mis-sort all strategies share would
                # otherwise be invisible.
                report("order", query, ref_sql, baseline_label,
                       baseline_label, reference, reference)
                continue
            for label, sql in variants:
                for config in configs:
                    outcome = outcomes[qi][label][config.label]
                    if label == ref_variant and \
                            config.label == baseline_label:
                        continue
                    profiler.bump(FUZZ_COMPARISONS)
                    where = f"{config.label}/{label}"
                    base = f"{baseline_label}/{ref_variant}"
                    if outcome.crashed:
                        report("crash", query, sql, base, where,
                               reference, outcome)
                        continue
                    if outcome.status != reference.status:
                        report("status", query, sql, base, where,
                               reference, outcome)
                        continue
                    if outcome.status == "error":
                        # Both reject: agreement only at the same stage
                        # of the taxonomy (an execution error in one
                        # strategy vs a plan error in another is a
                        # divergence worth seeing).
                        if outcome.error != reference.error:
                            report("status", query, sql, base, where,
                                   reference, outcome)
                        continue
                    ordered = query.order == "total"
                    if not rows_equal(reference.rows, outcome.rows,
                                      ordered=ordered):
                        report("result", query, sql, base, where,
                               reference, outcome)
                        continue
                    if query.order == "partial" and not is_sorted_by(
                            outcome.rows, query.order_keys):
                        report("order", query, sql, where, where,
                               outcome, outcome)
            if (self.use_sqlite and query.sqlite_sql is not None
                    and reference.status == "ok"
                    and data_sqlite_safe(case.data)):
                if sqlite_conn is None:
                    sqlite_conn = _sqlite_database(case)
                profiler.bump(FUZZ_SQLITE_CHECKS)
                lite = _run_sqlite(sqlite_conn, query.sqlite_sql)
                agree = (lite.status == "ok"
                         and rows_equal(reference.rows, lite.rows,
                                        ordered=query.order == "total",
                                        lax=True))
                if not agree:
                    if _sqlite_difference_explained(reference, lite):
                        profiler.bump(FUZZ_DIALECT_EXPLAINED)
                    else:
                        report("sqlite", query, query.sqlite_sql,
                               baseline_label, "sqlite3", reference, lite)
        if sqlite_conn is not None:
            sqlite_conn.close()
        discrepancies.extend(self._check_analyzer_soundness(
            case, db, compiled, variants_per_query, outcomes,
            baseline_label))
        return discrepancies

    def _check_analyzer_soundness(self, case: Case, db: Database,
                                  compiled: dict,
                                  variants_per_query, outcomes,
                                  baseline_label: str) -> list[Discrepancy]:
        """The static analyzer's soundness oracle: a function that just
        executed cleanly can never deserve an error-severity diagnostic
        (errors are reserved for defects that fire on *every* terminating
        call — see repro.analysis).  Any violation is a fuzz discrepancy
        like a result mismatch would be."""
        from repro.analysis import analyze_function

        clean: dict[str, tuple] = {}  # fn name -> (query, sql, outcome)
        for qi, (query, variants) in enumerate(
                zip(case.queries, variants_per_query)):
            if query.function is None:
                continue
            for label, sql in variants:
                outcome = outcomes[qi][label].get(baseline_label)
                if outcome is None or outcome.status != "ok":
                    continue
                name = (query.function if label == "interp"
                        else compiled.get(query.function))
                if name:
                    clean.setdefault(name.lower(), (query, sql, outcome))

        out: list[Discrepancy] = []
        for name, (query, sql, outcome) in sorted(clean.items()):
            fdef = db.catalog.get_function(name)
            if fdef is None:
                continue
            self.profiler.bump(FUZZ_ANALYZER_CHECKS)
            try:
                diagnostics = analyze_function(db, fdef)
            except Exception as error:  # noqa: BLE001 — crash = finding
                self.profiler.bump(FUZZ_DISCREPANCIES)
                out.append(Discrepancy(
                    kind="analyzer-crash", case=case, query=query, sql=sql,
                    config_a=baseline_label, config_b="analyzer",
                    outcome_a=outcome,
                    outcome_b=Outcome("error", error="crash",
                                      message=f"{type(error).__name__}: "
                                              f"{error}")))
                continue
            errors = [d for d in diagnostics if d.severity == "error"]
            if errors:
                self.profiler.bump(FUZZ_DISCREPANCIES)
                detail = "; ".join(f"{d.code}: {d.message}" for d in errors)
                out.append(Discrepancy(
                    kind="analyzer-unsound", case=case, query=query,
                    sql=sql, config_a=baseline_label, config_b="analyzer",
                    outcome_a=outcome,
                    outcome_b=Outcome("error", error="analyzer",
                                      message=f"{name} executed cleanly "
                                              f"but was flagged: {detail}")))
        return out


# ---------------------------------------------------------------------------
# The committed-state oracle (multi-session transaction cases)
# ---------------------------------------------------------------------------


@dataclass
class TxnDiscrepancy:
    """One failure of a transaction case against its oracle."""

    kind: str        # 'expect' | 'state' | 'sqlite' | 'crash'
    case: TxnCase
    detail: str

    def describe(self) -> str:
        return (f"[txn/{self.kind}] case seed {self.case.seed}\n"
                f"  {self.detail}")


def _table_rows(db: Database, table: str) -> list:
    return list(db.execute(f"SELECT k, v FROM {table}").rows)


def check_txn_case(case: TxnCase, *, use_sqlite: bool = True,
                   profiler: Optional[Profiler] = None
                   ) -> list[TxnDiscrepancy]:
    """Run one interleaved multi-session script and check it three ways.

    * **Expectations** — every step must do what the generator promised:
      plain steps succeed, conflict probes raise ``SerializationError``
      (first-writer-wins must never let the probe through, and must not
      fail with anything else).
    * **Committed-state equality** — the final contents of every table
      must equal a *serial* forced-autocommit replay of exactly the
      statements that committed (per-session buffering: a transaction's
      statements enter the replay log at its COMMIT, in commit order;
      rolled-back blocks, savepoint-undone spans, and failed statements
      contribute nothing).  Per table there is a single writer session
      by construction, so the serial replay is a true linearization.
    * **SQLite cross-check** — the same replay log runs on sqlite3
      (every statement is literal integer DML, so it is dialect-safe)
      and must land in the same committed state.
    """
    from repro.sql.errors import SerializationError
    profiler = profiler if profiler is not None else Profiler()
    profiler.bump(FUZZ_CASES)
    discrepancies: list[TxnDiscrepancy] = []

    def report(kind: str, detail: str) -> None:
        profiler.bump(FUZZ_DISCREPANCIES)
        discrepancies.append(TxnDiscrepancy(kind, case, detail))

    db = Database(seed=0, profile=False)
    for sql in case.setup:
        db.execute(sql)
    conns = [db.connect() for _ in range(case.sessions)]

    committed: list[str] = []                 # the serial replay log
    pending: list[list[str]] = [[] for _ in conns]
    # Per-session savepoint stacks: (name, pending length at creation).
    savepoints: list[list[tuple[str, int]]] = [[] for _ in conns]
    in_txn = [False] * case.sessions

    for step in case.steps:
        profiler.bump(FUZZ_EXECUTIONS)
        try:
            conns[step.session].execute(step.sql)
            outcome = OK
        except SerializationError:
            outcome = CONFLICT
        except SqlError as error:
            outcome = f"error:{error_class(error)}"
        except Exception as error:  # noqa: BLE001 — crash class
            report("crash", f"s{step.session}: {step.sql}\n"
                            f"  {type(error).__name__}: {error}")
            continue
        if outcome != step.expect:
            report("expect",
                   f"s{step.session}: {step.sql}\n"
                   f"  expected {step.expect}, got {outcome}")
            continue
        if outcome != OK:
            continue  # the conflict probe failed as promised: no effect
        # Mirror the transaction state machine for the replay log.
        i = step.session
        sql = step.sql
        first = sql.split(None, 1)[0].upper()
        if first == "BEGIN":
            in_txn[i] = True
            pending[i] = []
            savepoints[i] = []
        elif first == "COMMIT":
            committed.extend(pending[i])
            in_txn[i] = False
            pending[i] = []
        elif first == "SAVEPOINT":
            savepoints[i].append((sql.split()[1].lower(), len(pending[i])))
        elif first == "RELEASE":
            name = sql.split()[-1].lower()
            for j in range(len(savepoints[i]) - 1, -1, -1):
                if savepoints[i][j][0] == name:
                    del savepoints[i][j:]
                    break
        elif first == "ROLLBACK":
            if sql.upper().startswith("ROLLBACK TO"):
                name = sql.split()[-1].lower()
                for j in range(len(savepoints[i]) - 1, -1, -1):
                    if savepoints[i][j][0] == name:
                        del pending[i][savepoints[i][j][1]:]
                        del savepoints[i][j + 1:]
                        break
            else:
                in_txn[i] = False
                pending[i] = []
        elif in_txn[i]:
            pending[i].append(sql)
        else:
            committed.append(sql)

    # Forced-autocommit serial replay of the committed statements.
    replay = Database(seed=0, profile=False)
    for sql in case.setup:
        replay.execute(sql)
    for sql in committed:
        try:
            replay.execute(sql)
        except Exception as error:  # noqa: BLE001
            report("crash", f"replay: {sql}\n"
                            f"  {type(error).__name__}: {error}")
    for table in case.all_tables():
        profiler.bump(FUZZ_COMPARISONS)
        engine_rows = _table_rows(db, table)
        if not rows_equal(_table_rows(replay, table), engine_rows):
            report("state",
                   f"table {table}: engine {sorted(engine_rows)} != "
                   f"replay {sorted(_table_rows(replay, table))}")

    if use_sqlite and not discrepancies:
        conn = sqlite3.connect(":memory:")
        try:
            for sql in case.setup:
                conn.execute(_sqlite_ddl(sql))
            for sql in committed:
                conn.execute(sql)
            for table in case.all_tables():
                profiler.bump(FUZZ_SQLITE_CHECKS)
                lite = conn.execute(f"SELECT k, v FROM {table}").fetchall()
                if not rows_equal(_table_rows(db, table), lite, lax=True):
                    report("sqlite",
                           f"table {table}: engine != sqlite {sorted(lite)}")
        except sqlite3.Error as error:
            report("sqlite", f"sqlite rejected replay: {error}")
        finally:
            conn.close()
    return discrepancies


def _sqlite_ddl(sql: str) -> str:
    """The engine's ``int`` column type spelled for SQLite (identical
    here — the hook exists so future txn-case DDL stays translatable)."""
    return sql
