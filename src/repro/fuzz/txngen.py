"""Multi-session transaction workload generation.

A :class:`TxnCase` is an interleaved script over 2-4 sessions exercising
BEGIN / COMMIT / ROLLBACK / SAVEPOINT / ROLLBACK TO / RELEASE around
plain literal DML.  Generation is shaped so the *expected* outcome of
every step is decidable without executing anything:

* each session writes a **dedicated** table, so interleavings can never
  conflict by accident — per table there is one writer, and committed-
  state equality against a serial replay (in commit order) holds by
  construction,
* write-write conflicts are injected only as **guaranteed-to-fail
  probes** against one shared table: a "winner" session updates a row
  inside an open block, and while that block stays open another session
  probes the same row — first-writer-wins must raise
  ``SerializationError`` every time,
* all values are small integer literals, so the same statements replay
  verbatim on SQLite for the dialect cross-check.

Everything is a pure function of ``random.Random``: the same
``(run seed, index)`` regenerates the identical script.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from .querygen import case_seed

#: Step expectations the oracle asserts.
OK = "ok"
CONFLICT = "conflict"


@dataclass(frozen=True)
class TxnStep:
    """One scheduled statement: which session runs what, expecting what."""

    session: int
    sql: str
    expect: str = OK     # 'ok' | 'conflict' (SerializationError)


@dataclass
class TxnCase:
    """One multi-session transaction fuzz case."""

    seed: int
    sessions: int
    tables: list[str]            # dedicated tables, one per session
    shared: str | None           # the conflict-probe table (may be absent)
    setup: list[str] = field(default_factory=list)
    steps: list[TxnStep] = field(default_factory=list)

    def all_tables(self) -> list[str]:
        return self.tables + ([self.shared] if self.shared else [])

    def statement_count(self) -> int:
        return len(self.setup) + len(self.steps)

    def script(self) -> str:
        """Human-readable dump (``--txn --dump``)."""
        out = [f"-- txn case seed {self.seed}: {self.sessions} sessions"]
        out += [f"{sql};" for sql in self.setup]
        for step in self.steps:
            note = "  -- expect SerializationError" \
                if step.expect == CONFLICT else ""
            out.append(f"/*s{step.session}*/ {step.sql};{note}")
        return "\n".join(out) + "\n"


class _SessionState:
    """Generator-side mirror of one session's transaction state."""

    __slots__ = ("in_txn", "savepoints", "snap_fresh", "did_winner",
                 "winner_sp_len")

    def __init__(self):
        self.in_txn = False
        self.savepoints: list[str] = []
        #: True while the session's snapshot (not yet captured, or
        #: captured after the last shared-table commit) is current
        #: enough to safely take the winner role.
        self.snap_fresh = True
        self.did_winner = False
        #: Savepoint-stack depth when the winner update was emitted: a
        #: ROLLBACK TO anything shallower undoes the update (and its
        #: xmax stamp), releasing the row.
        self.winner_sp_len = 0


def generate_txn_case(run_seed: int, index: int) -> TxnCase:
    """Generate transaction fuzz case *index* of the run *run_seed*."""
    seed = case_seed(run_seed, index) ^ 0x7A7A7A
    rng = random.Random(seed)
    sessions = rng.randint(2, 4)
    tables = [f"w{i}" for i in range(sessions)]
    shared = "shared" if rng.random() < 0.8 else None
    case = TxnCase(seed=seed, sessions=sessions, tables=tables,
                   shared=shared)

    keys = list(range(rng.randint(3, 6)))
    for table in tables:
        case.setup.append(f"CREATE TABLE {table}(k int, v int)")
        values = ", ".join(f"({k}, {rng.randint(0, 9)})" for k in keys)
        case.setup.append(f"INSERT INTO {table} VALUES {values}")
    if shared:
        case.setup.append(f"CREATE TABLE {shared}(k int, v int)")
        values = ", ".join(f"({k}, {rng.randint(0, 9)})" for k in keys)
        case.setup.append(f"INSERT INTO {shared} VALUES {values}")

    states = [_SessionState() for _ in range(sessions)]
    #: Which session holds an uncommitted winner update, and on what key.
    lock_holder: int | None = None
    lock_key = 0
    next_value = 100   # distinct literals, so UPDATEs are observable

    def emit(session: int, sql: str, expect: str = OK) -> None:
        case.steps.append(TxnStep(session, sql, expect))

    def own_dml(session: int) -> str:
        nonlocal next_value
        table = tables[session]
        key = rng.choice(keys)
        next_value += 1
        roll = rng.random()
        if roll < 0.45:
            return f"INSERT INTO {table} VALUES ({key}, {next_value})"
        if roll < 0.8:
            return (f"UPDATE {table} SET v = {next_value} "
                    f"WHERE k = {key}")
        return f"DELETE FROM {table} WHERE k = {key} AND v < {next_value}"

    def finish(session: int, commit: bool) -> None:
        nonlocal lock_holder
        state = states[session]
        emit(session, "COMMIT" if commit else "ROLLBACK")
        if lock_holder == session:
            lock_holder = None
            if commit:
                # A new shared-table version landed: every other open
                # block's snapshot predates it, so none of them may take
                # the winner role until they finish.
                for other in states:
                    if other.in_txn and other is not state:
                        other.snap_fresh = False
        state.in_txn = False
        state.savepoints = []
        state.snap_fresh = True
        state.did_winner = False

    for _ in range(rng.randint(12, 32)):
        session = rng.randrange(sessions)
        state = states[session]
        if not state.in_txn:
            roll = rng.random()
            if roll < 0.55:
                emit(session, "BEGIN")
                state.in_txn = True
            elif roll < 0.9:
                emit(session, own_dml(session))
            elif shared and lock_holder is not None \
                    and lock_holder != session:
                # Autocommit probe against the held row: guaranteed loss.
                emit(session,
                     f"UPDATE {shared} SET v = v + 1 WHERE k = {lock_key}",
                     expect=CONFLICT)
            continue
        # Inside a block.
        roll = rng.random()
        if roll < 0.35:
            emit(session, own_dml(session))
        elif roll < 0.45:
            name = f"sp{len(state.savepoints)}"
            emit(session, f"SAVEPOINT {name}")
            state.savepoints.append(name)
        elif roll < 0.55 and state.savepoints:
            pick = rng.randrange(len(state.savepoints))
            name = state.savepoints[pick]
            if rng.random() < 0.5:
                emit(session, f"ROLLBACK TO {name}")
                # The target survives, later ones are destroyed.
                state.savepoints = state.savepoints[:pick + 1]
                if lock_holder == session \
                        and len(state.savepoints) <= state.winner_sp_len:
                    # The winner update was just undone: its xmax stamp
                    # is restored to None, so the row is probe-safe no
                    # more.
                    lock_holder = None
            else:
                emit(session, f"RELEASE SAVEPOINT {name}")
                state.savepoints = state.savepoints[:pick]
        elif roll < 0.65 and shared and lock_holder is None \
                and state.snap_fresh and not state.did_winner:
            lock_holder = session
            lock_key = rng.choice(keys)
            state.did_winner = True
            state.winner_sp_len = len(state.savepoints)
            emit(session,
                 f"UPDATE {shared} SET v = v + 10 WHERE k = {lock_key}")
        elif roll < 0.75 and shared and lock_holder is not None \
                and lock_holder != session:
            emit(session,
                 f"UPDATE {shared} SET v = v + 1 WHERE k = {lock_key}",
                 expect=CONFLICT)
        elif roll < 0.9:
            finish(session, commit=True)
        else:
            finish(session, commit=False)

    # Close every block deterministically so committed state is final.
    for session, state in enumerate(states):
        if state.in_txn:
            finish(session, commit=rng.random() < 0.7)
    return case
