"""Chaos fuzzing: fault injection under the differential oracles.

The chaos axis (``python -m repro.fuzz --chaos``) stresses the paths the
other axes deliberately keep quiet: WAL checkpointing racing a live
workload, injected checkpoint failures, replay after reopen, and wire
delivery under injected latency.  The question it answers is *does a
fault ever corrupt state the engine already acknowledged?*

Each case reuses the regular query-fuzz corpus
(:func:`repro.fuzz.querygen.generate_case`) and drives **twin
databases** through the same workload:

* the *durable* twin lives in a temp directory with a WAL attached, a
  deliberately small ``wal_checkpoint_interval``, extra ``CHECKPOINT``
  statements sprinkled through the data load, and ``error-once`` faults
  armed on random ``wal.checkpoint.*`` points (a failing checkpoint must
  surface as an error — or be swallowed by the auto path — while the old
  log stays authoritative),
* the *memory* twin runs the identical workload with no WAL and no
  faults.

After the workload, the durable twin is closed and **reopened** (a full
replay of whatever mixture of snapshot and suffix the faults left
behind); every table must match the memory twin row-for-row and every
corpus query must agree.  A sampled wire sub-check then serves the
reopened twin behind a live :class:`~repro.server.ServerThread` with a
``delay`` fault armed on ``server.send`` — injected latency may slow
delivery but never change an answer.

All triggers are armed from the case's seeded RNG, so a failing case
replays from its seed exactly like the other axes (``--chaos --index N
--cases 1``).  There is no reducer: the workload is the case's data
load, so the script plus the chaos seed is the reproducer.
"""

from __future__ import annotations

import os
import random
import shutil
import tempfile
from dataclasses import dataclass
from typing import Optional

from repro.faults import FAULTS
from repro.server import ServerThread, connect
from repro.server.protocol import render_row
from repro.sql import Database
from repro.sql.profiler import (FUZZ_CASES, FUZZ_COMPARISONS,
                                FUZZ_DISCREPANCIES, FUZZ_EXECUTIONS,
                                Profiler)

from .oracle import rows_equal, run_statement
from .querygen import Case
from .wire import wire_outcome

#: Everywhere a checkpoint can fail; ``error-once`` on any of them must
#: leave the live log authoritative and the manager appendable.
CHECKPOINT_POINTS = (
    "wal.checkpoint.start",
    "wal.checkpoint.write",
    "wal.checkpoint.fsync",
    "wal.checkpoint.rename",
    "wal.checkpoint.reopen",
)


@dataclass
class ChaosDiscrepancy:
    """One broken invariant under fault injection."""

    kind: str            # 'workload' | 'checkpoint' | 'reopen' | 'query' | 'wire'
    case: Case
    sql: str
    detail: str

    def describe(self) -> str:
        return (f"[chaos/{self.kind}] case seed {self.case.seed}\n"
                f"  sql: {self.sql}\n"
                f"  {self.detail}")


def _workload(case: Case) -> list[tuple[str, tuple]]:
    """The DML stream both twins execute: the case's data load plus a
    few deterministic mutations over its int columns."""
    statements: list[tuple[str, tuple]] = []
    for table in case.schema.tables:
        holes = ", ".join(f"${i + 1}" for i in range(len(table.columns)))
        insert = f"INSERT INTO {table.name} VALUES ({holes})"
        for row in case.data.get(table.name, []):
            statements.append((insert, row))
    for table in case.schema.tables:
        ints = table.columns_of_dtype("int")
        if not ints:
            continue
        col = ints[0].name
        statements.append((f"UPDATE {table.name} SET {col} = {col} + 1 "
                           f"WHERE {col} % 2 = 0", ()))
        statements.append((f"DELETE FROM {table.name} "
                           f"WHERE {col} % 5 = 3", ()))
    return statements


def check_chaos_case(case: Case, *, profiler: Optional[Profiler] = None
                     ) -> list[ChaosDiscrepancy]:
    """Run one case's workload on durable-with-faults vs memory twins."""
    profiler = profiler if profiler is not None else Profiler()
    profiler.bump(FUZZ_CASES)
    rng = random.Random(case.seed ^ 0x5EED)
    discrepancies: list[ChaosDiscrepancy] = []

    def report(kind: str, sql: str, detail: str) -> None:
        profiler.bump(FUZZ_DISCREPANCIES)
        discrepancies.append(ChaosDiscrepancy(
            kind=kind, case=case, sql=sql, detail=detail))

    tmpdir = tempfile.mkdtemp(prefix="repro-chaos-")
    path = os.path.join(tmpdir, "chaos.wal")
    durable: Optional[Database] = None
    try:
        durable = Database(seed=0, profile=False, path=path)
        memory = Database(seed=0, profile=False)
        # Small interval: the auto-checkpoint path fires mid-workload.
        durable.execute(
            f"SET wal_checkpoint_interval = {rng.choice([7, 19, 53])}")
        for statement in case.setup_statements():
            durable.execute(statement)
            memory.execute(statement)
        for fn in case.functions:
            durable.execute(fn.source)
            memory.execute(fn.source)

        for sql, params in _workload(case):
            a = run_statement(durable, sql, params)
            b = run_statement(memory, sql, params)
            profiler.bump(FUZZ_EXECUTIONS, 2)
            profiler.bump(FUZZ_COMPARISONS)
            if (a.status, a.error) != (b.status, b.error):
                report("workload", sql,
                       f"durable: {a.describe()}\n  memory:  {b.describe()}")
            if rng.random() < 0.15:
                armed = rng.random() < 0.5
                if armed:
                    FAULTS.arm(rng.choice(CHECKPOINT_POINTS), "error-once",
                               at=rng.randint(1, 8))
                outcome = run_statement(durable, "CHECKPOINT")
                FAULTS.disarm()  # drop any unspent trigger
                if outcome.status == "error" and not armed:
                    report("checkpoint", "CHECKPOINT",
                           f"unexpected failure: {outcome.describe()}")

        # Close and reopen: replay whatever snapshot/suffix mixture the
        # injected checkpoint failures left behind.
        durable.wal.close()
        durable = Database(seed=0, profile=False, path=path)
        for table in case.schema.tables:
            sql = f"SELECT * FROM {table.name}"
            a = run_statement(durable, sql)
            b = run_statement(memory, sql)
            profiler.bump(FUZZ_EXECUTIONS, 2)
            profiler.bump(FUZZ_COMPARISONS)
            if a.status != "ok" or b.status != "ok" or \
                    not rows_equal(a.rows, b.rows):
                report("reopen", sql,
                       f"replayed: {a.describe()}\n"
                       f"  memory:   {b.describe()}")

        # The corpus queries must agree on the replayed state (compiled
        # twins are skipped: programmatic registrations are not logged).
        queries = [(q, q.sql if q.function is None
                    else q.sql.format(f=q.function))
                   for q in case.queries]
        for query, sql in queries:
            a = run_statement(durable, sql)
            b = run_statement(memory, sql)
            profiler.bump(FUZZ_EXECUTIONS, 2)
            profiler.bump(FUZZ_COMPARISONS)
            if a.status != b.status or (
                    a.status == "error" and a.error != b.error):
                report("query", sql,
                       f"replayed: {a.describe()}\n"
                       f"  memory:   {b.describe()}")
            elif a.status == "ok" and not rows_equal(
                    a.rows, b.rows, ordered=query.order == "total"):
                report("query", sql,
                       f"replayed: {a.describe()}\n"
                       f"  memory:   {b.describe()}")

        # Sampled wire sub-check: serve the replayed twin with injected
        # send latency; delays must never change an answer.
        if queries and rng.random() < 0.3:
            FAULTS.arm("server.send", "delay", at=rng.randint(1, 6),
                       delay_s=rng.choice([0.001, 0.005, 0.02]))
            try:
                with ServerThread(durable, workers=2) as address:
                    with connect(*address) as client:
                        for query, sql in queries[:3]:
                            emb = run_statement(memory, sql)
                            wire = wire_outcome(client, sql)
                            profiler.bump(FUZZ_EXECUTIONS, 2)
                            profiler.bump(FUZZ_COMPARISONS)
                            if emb.status != wire.status:
                                report("wire", sql,
                                       f"embedded: {emb.describe()}\n"
                                       f"  wire:     {wire.describe()}")
                            elif emb.status == "ok" and not rows_equal(
                                    [render_row(r) for r in emb.rows],
                                    wire.rows,
                                    ordered=query.order == "total"):
                                report("wire", sql,
                                       f"embedded: {emb.describe()}\n"
                                       f"  wire:     {wire.describe()}")
            finally:
                FAULTS.disarm()
    finally:
        FAULTS.disarm()
        if durable is not None and durable.wal is not None:
            durable.wal.close()
        shutil.rmtree(tmpdir, ignore_errors=True)
    return discrepancies
