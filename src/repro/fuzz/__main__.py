"""Command-line driver: ``python -m repro.fuzz --seed N --cases K``.

Generates and checks cases until the case budget (or ``--time-budget``
seconds) runs out.  Every discrepancy is delta-debugged to a minimal
reproducer and written to ``--emit-dir`` as a ready-to-run pytest module;
the process exits non-zero when any discrepancy survives.  Re-running with
the same seed regenerates byte-identical cases, and any single case can be
replayed directly with ``--index``.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.sql.profiler import (FUZZ_ANALYZER_CHECKS, FUZZ_CASES,
                                FUZZ_COMPARISONS, FUZZ_DIALECT_EXPLAINED,
                                FUZZ_DISCREPANCIES, FUZZ_EXECUTIONS,
                                FUZZ_SQLITE_CHECKS, Profiler)

from .chaos import check_chaos_case
from .oracle import DifferentialChecker, check_txn_case
from .querygen import generate_case
from .reduce import Reducer, emit_pytest
from .txngen import generate_txn_case
from .wire import check_wire_case


def run_fuzz(seed: int = 0, cases: int = 200, *, use_sqlite: bool = True,
             reduce_failures: bool = True, emit_dir: str | None = None,
             time_budget: float | None = None, max_failures: int = 5,
             start_index: int = 0, verbose: bool = True,
             profiler: Profiler | None = None) -> int:
    """Run the fuzz loop; returns the number of failing cases.

    Importable so tests and CI drive the same loop as the CLI.
    """
    checker = DifferentialChecker(use_sqlite=use_sqlite, profiler=profiler)
    profiler = checker.profiler
    started = time.monotonic()
    failures = 0
    emitted: list[str] = []
    for index in range(start_index, start_index + cases):
        if time_budget is not None and \
                time.monotonic() - started > time_budget:
            if verbose:
                print(f"time budget ({time_budget:.0f}s) reached after "
                      f"{index - start_index} cases")
            break
        case = generate_case(seed, index)
        try:
            discrepancies = checker.check_case(case)
        except Exception as error:  # noqa: BLE001 — harness must survive
            failures += 1
            print(f"case {index} (seed {case.seed}): harness error "
                  f"{type(error).__name__}: {error}", file=sys.stderr)
            if failures >= max_failures:
                break
            continue
        if not discrepancies:
            continue
        failures += 1
        print(f"case {index} (seed {case.seed}): "
              f"{len(discrepancies)} discrepancies", file=sys.stderr)
        print(discrepancies[0].describe(), file=sys.stderr)
        if reduce_failures:
            reducer = Reducer(checker.check_case)
            case = reducer.reduce(case)
            remaining = checker.check_case(case) or discrepancies
            print(f"  reduced to {case.statement_count()} statements "
                  f"({reducer.checks_spent} oracle re-checks)",
                  file=sys.stderr)
            discrepancies = remaining
        if emit_dir is not None:
            path = Path(emit_dir)
            path.mkdir(parents=True, exist_ok=True)
            target = path / f"test_fuzz_repro_{case.seed}.py"
            target.write_text(emit_pytest(case, discrepancies))
            emitted.append(str(target))
            print(f"  reproducer written to {target}", file=sys.stderr)
        if failures >= max_failures:
            if verbose:
                print(f"stopping after {max_failures} failing cases",
                      file=sys.stderr)
            break
    if verbose:
        counts = profiler.counts
        print(f"seed {seed}: {counts[FUZZ_CASES]} cases, "
              f"{counts[FUZZ_EXECUTIONS]} oracle executions, "
              f"{counts[FUZZ_COMPARISONS]} comparisons, "
              f"{counts[FUZZ_SQLITE_CHECKS]} sqlite cross-checks "
              f"({counts[FUZZ_DIALECT_EXPLAINED]} dialect diffs explained), "
              f"{counts.get(FUZZ_ANALYZER_CHECKS, 0)} analyzer soundness "
              f"checks, "
              f"{counts[FUZZ_DISCREPANCIES]} discrepancies, "
              f"{failures} failing cases "
              f"in {time.monotonic() - started:.1f}s")
        for target in emitted:
            print(f"  reproducer: {target}")
    return failures


def run_txn_fuzz(seed: int = 0, cases: int = 500, *,
                 use_sqlite: bool = True, time_budget: float | None = None,
                 max_failures: int = 5, start_index: int = 0,
                 verbose: bool = True,
                 profiler: Profiler | None = None) -> int:
    """Run the multi-session transaction fuzz axis; returns failures.

    Each case is an interleaved BEGIN/COMMIT/ROLLBACK/SAVEPOINT script
    over several connections, checked against step expectations, a
    forced-autocommit serial replay of the committed statements, and a
    SQLite cross-check (see :func:`repro.fuzz.oracle.check_txn_case`).
    """
    profiler = profiler if profiler is not None else Profiler()
    started = time.monotonic()
    failures = 0
    for index in range(start_index, start_index + cases):
        if time_budget is not None and \
                time.monotonic() - started > time_budget:
            if verbose:
                print(f"time budget ({time_budget:.0f}s) reached after "
                      f"{index - start_index} cases")
            break
        case = generate_txn_case(seed, index)
        try:
            discrepancies = check_txn_case(case, use_sqlite=use_sqlite,
                                           profiler=profiler)
        except Exception as error:  # noqa: BLE001 — harness must survive
            failures += 1
            print(f"txn case {index} (seed {case.seed}): harness error "
                  f"{type(error).__name__}: {error}", file=sys.stderr)
            if failures >= max_failures:
                break
            continue
        if not discrepancies:
            continue
        failures += 1
        print(f"txn case {index} (seed {case.seed}): "
              f"{len(discrepancies)} discrepancies", file=sys.stderr)
        print(discrepancies[0].describe(), file=sys.stderr)
        print("  script:\n" + case.script(), file=sys.stderr)
        if failures >= max_failures:
            if verbose:
                print(f"stopping after {max_failures} failing cases",
                      file=sys.stderr)
            break
    if verbose:
        counts = profiler.counts
        print(f"txn seed {seed}: {counts[FUZZ_CASES]} cases, "
              f"{counts[FUZZ_EXECUTIONS]} statements, "
              f"{counts[FUZZ_COMPARISONS]} state comparisons, "
              f"{counts[FUZZ_SQLITE_CHECKS]} sqlite cross-checks, "
              f"{counts[FUZZ_DISCREPANCIES]} discrepancies, "
              f"{failures} failing cases "
              f"in {time.monotonic() - started:.1f}s")
    return failures


def run_wire_fuzz(seed: int = 0, cases: int = 200, *,
                  time_budget: float | None = None, max_failures: int = 5,
                  start_index: int = 0, verbose: bool = True,
                  profiler: Profiler | None = None) -> int:
    """Run the wire-path fuzz axis; returns the number of failing cases.

    Each case from the regular query corpus runs on twin databases — one
    embedded, one behind a live :class:`repro.server.ServerThread` — and
    rows (text-rendered) and error taxonomy labels (via SQLSTATEs) must
    agree (see :func:`repro.fuzz.wire.check_wire_case`).
    """
    profiler = profiler if profiler is not None else Profiler()
    started = time.monotonic()
    failures = 0
    for index in range(start_index, start_index + cases):
        if time_budget is not None and \
                time.monotonic() - started > time_budget:
            if verbose:
                print(f"time budget ({time_budget:.0f}s) reached after "
                      f"{index - start_index} cases")
            break
        case = generate_case(seed, index)
        try:
            discrepancies = check_wire_case(case, profiler=profiler)
        except Exception as error:  # noqa: BLE001 — harness must survive
            failures += 1
            print(f"wire case {index} (seed {case.seed}): harness error "
                  f"{type(error).__name__}: {error}", file=sys.stderr)
            if failures >= max_failures:
                break
            continue
        if not discrepancies:
            continue
        failures += 1
        print(f"wire case {index} (seed {case.seed}): "
              f"{len(discrepancies)} discrepancies", file=sys.stderr)
        print(discrepancies[0].describe(), file=sys.stderr)
        print("  script:\n" + case.script(), file=sys.stderr)
        if failures >= max_failures:
            if verbose:
                print(f"stopping after {max_failures} failing cases",
                      file=sys.stderr)
            break
    if verbose:
        counts = profiler.counts
        print(f"wire seed {seed}: {counts[FUZZ_CASES]} cases, "
              f"{counts[FUZZ_EXECUTIONS]} executions, "
              f"{counts[FUZZ_COMPARISONS]} comparisons, "
              f"{counts[FUZZ_DISCREPANCIES]} discrepancies, "
              f"{failures} failing cases "
              f"in {time.monotonic() - started:.1f}s")
    return failures


def run_chaos_fuzz(seed: int = 0, cases: int = 200, *,
                   time_budget: float | None = None, max_failures: int = 5,
                   start_index: int = 0, verbose: bool = True,
                   profiler: Profiler | None = None) -> int:
    """Run the fault-injection chaos axis; returns failing cases.

    Each case from the regular corpus drives a durable twin (WAL +
    aggressive checkpointing + injected ``wal.checkpoint.*`` failures)
    and a memory twin through the same workload, then reopens the
    durable one and requires full agreement — plus a sampled wire check
    under injected send latency (see :mod:`repro.fuzz.chaos`).
    """
    profiler = profiler if profiler is not None else Profiler()
    started = time.monotonic()
    failures = 0
    for index in range(start_index, start_index + cases):
        if time_budget is not None and \
                time.monotonic() - started > time_budget:
            if verbose:
                print(f"time budget ({time_budget:.0f}s) reached after "
                      f"{index - start_index} cases")
            break
        case = generate_case(seed, index)
        try:
            discrepancies = check_chaos_case(case, profiler=profiler)
        except Exception as error:  # noqa: BLE001 — harness must survive
            failures += 1
            print(f"chaos case {index} (seed {case.seed}): harness error "
                  f"{type(error).__name__}: {error}", file=sys.stderr)
            if failures >= max_failures:
                break
            continue
        if not discrepancies:
            continue
        failures += 1
        print(f"chaos case {index} (seed {case.seed}): "
              f"{len(discrepancies)} discrepancies", file=sys.stderr)
        print(discrepancies[0].describe(), file=sys.stderr)
        print("  script:\n" + case.script(), file=sys.stderr)
        if failures >= max_failures:
            if verbose:
                print(f"stopping after {max_failures} failing cases",
                      file=sys.stderr)
            break
    if verbose:
        counts = profiler.counts
        print(f"chaos seed {seed}: {counts[FUZZ_CASES]} cases, "
              f"{counts[FUZZ_EXECUTIONS]} executions, "
              f"{counts[FUZZ_COMPARISONS]} comparisons, "
              f"{counts[FUZZ_DISCREPANCIES]} discrepancies, "
              f"{failures} failing cases "
              f"in {time.monotonic() - started:.1f}s")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="Differential fuzzing of the SQL/PL-SQL engine: "
                    "random workloads checked across execution strategies, "
                    "the planner settings matrix, and SQLite.")
    parser.add_argument("--seed", type=int, default=0,
                        help="run seed (default 0); same seed, same cases")
    parser.add_argument("--cases", type=int, default=200,
                        help="number of cases to generate (default 200)")
    parser.add_argument("--index", type=int, default=0,
                        help="first case index (replay one with --cases 1)")
    parser.add_argument("--time-budget", type=float, default=None,
                        metavar="SECONDS",
                        help="stop generating new cases after this long")
    parser.add_argument("--emit-dir", default="fuzz_failures",
                        help="directory for minimized pytest reproducers "
                             "(default ./fuzz_failures)")
    parser.add_argument("--max-failures", type=int, default=5,
                        help="stop after this many failing cases")
    parser.add_argument("--no-sqlite", action="store_true",
                        help="skip the SQLite cross-check oracle")
    parser.add_argument("--no-reduce", action="store_true",
                        help="report discrepancies without delta-debugging")
    parser.add_argument("--dump", action="store_true",
                        help="print each generated case instead of checking")
    parser.add_argument("--txn", action="store_true",
                        help="fuzz the multi-session transaction axis "
                             "(interleaved BEGIN/COMMIT/ROLLBACK/SAVEPOINT "
                             "scripts against the committed-state oracle)")
    parser.add_argument("--server", action="store_true",
                        help="fuzz the wire path: run each case through a "
                             "live TCP server and compare rows and error "
                             "SQLSTATEs against the embedded engine")
    parser.add_argument("--chaos", action="store_true",
                        help="fuzz under fault injection: durable twin "
                             "with WAL checkpointing and injected "
                             "wal.checkpoint.*/server.send faults vs a "
                             "memory twin, reopened and compared")
    args = parser.parse_args(argv)
    if args.dump:
        for index in range(args.index, args.index + args.cases):
            if args.txn:
                sys.stdout.write(generate_txn_case(args.seed, index).script())
            else:
                sys.stdout.write(generate_case(args.seed, index).script())
        return 0
    if args.chaos:
        failures = run_chaos_fuzz(
            seed=args.seed, cases=args.cases,
            time_budget=args.time_budget, max_failures=args.max_failures,
            start_index=args.index)
        return 1 if failures else 0
    if args.server:
        failures = run_wire_fuzz(
            seed=args.seed, cases=args.cases,
            time_budget=args.time_budget, max_failures=args.max_failures,
            start_index=args.index)
        return 1 if failures else 0
    if args.txn:
        failures = run_txn_fuzz(
            seed=args.seed, cases=args.cases,
            use_sqlite=not args.no_sqlite,
            time_budget=args.time_budget, max_failures=args.max_failures,
            start_index=args.index)
        return 1 if failures else 0
    failures = run_fuzz(
        seed=args.seed, cases=args.cases, use_sqlite=not args.no_sqlite,
        reduce_failures=not args.no_reduce, emit_dir=args.emit_dir,
        time_budget=args.time_budget, max_failures=args.max_failures,
        start_index=args.index)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
