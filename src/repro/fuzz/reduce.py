"""Delta-debugging reduction of failing fuzz cases.

Given a case on which the checker reports a discrepancy, the reducer
shrinks the (schema, data, statements) triple while the discrepancy keeps
reproducing: first the checked queries (classic ddmin), then unreferenced
functions, whole tables, indexes, table rows (ddmin again), and finally
individual columns.  Every candidate is re-checked from scratch — a
candidate that errors uniformly under all configurations counts as
agreement and is rejected, which is what keeps e.g. a column a query still
references from being dropped.

The result is emitted as a ready-to-paste pytest regression: the minimized
:class:`~repro.fuzz.querygen.Case` as a literal, plus an assertion that the
checker finds nothing — so the regression re-runs the *whole* oracle
matrix, not just the pair of configurations that originally disagreed.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Optional

from .oracle import Discrepancy
from .querygen import Case
from .schema import TableSpec


def ddmin(items: list, predicate: Callable[[list], bool]) -> list:
    """Zeller's ddmin: a minimal sublist of *items* still satisfying
    *predicate* (which must hold for *items* itself).  Deterministic;
    granularity doubles on failure and resets after every successful
    reduction."""
    n = 2
    while len(items) >= 2:
        chunk = max(len(items) // n, 1)
        subsets = [items[i:i + chunk] for i in range(0, len(items), chunk)]
        reduced = False
        for i, subset in enumerate(subsets):
            if predicate(subset):
                items = subset
                n = 2
                reduced = True
                break
            complement = [x for j, s in enumerate(subsets) if j != i
                          for x in s]
            if complement and predicate(complement):
                items = complement
                n = max(n - 1, 2)
                reduced = True
                break
        if not reduced:
            if n >= len(items):
                break
            n = min(n * 2, len(items))
    return items


class Reducer:
    """Shrinks a failing case under a bounded number of oracle re-checks.

    *check* maps a case to its discrepancy list (normally
    ``DifferentialChecker.check_case``); *max_checks* caps the total
    re-checks so reduction cost stays bounded — when the budget runs out
    the best case found so far is returned.
    """

    def __init__(self, check: Callable[[Case], list],
                 max_checks: int = 400):
        self.check = check
        self.max_checks = max_checks
        self.checks_spent = 0

    # -- predicate ------------------------------------------------------

    def _fails(self, case: Case) -> bool:
        if self.checks_spent >= self.max_checks:
            return False
        self.checks_spent += 1
        try:
            return bool(self.check(case))
        except Exception:
            # A candidate that breaks the harness itself is not a valid
            # reduction step (the discrepancy did not "still reproduce").
            return False

    # -- structural edits ----------------------------------------------

    @staticmethod
    def _drop_table(case: Case, name: str) -> Case:
        tables = tuple(t for t in case.schema.tables if t.name != name)
        data = {k: v for k, v in case.data.items() if k != name}
        return replace(case, schema=replace(case.schema, tables=tables),
                       data=data)

    @staticmethod
    def _drop_index(case: Case, table_name: str, index_name: str) -> Case:
        tables = tuple(
            replace(t, indexes=tuple(ix for ix in t.indexes
                                     if ix.name != index_name))
            if t.name == table_name else t
            for t in case.schema.tables)
        return replace(case, schema=replace(case.schema, tables=tables))

    @staticmethod
    def _drop_column(case: Case, table: TableSpec, position: int) -> Case:
        column = table.columns[position]
        columns = tuple(c for i, c in enumerate(table.columns)
                        if i != position)
        indexes = tuple(ix for ix in table.indexes
                        if all(name != column.name
                               for name, _ in ix.columns))
        new_table = replace(table, columns=columns, indexes=indexes)
        tables = tuple(new_table if t.name == table.name else t
                       for t in case.schema.tables)
        rows = [tuple(v for i, v in enumerate(row) if i != position)
                for row in case.data.get(table.name, [])]
        data = dict(case.data)
        data[table.name] = rows
        return replace(case, schema=replace(case.schema, tables=tables),
                       data=data)

    # -- the passes -----------------------------------------------------

    def reduce(self, case: Case) -> Case:
        """Shrink *case*; the discrepancy must reproduce on entry."""
        if not self._fails(case):
            return case
        for _ in range(3):              # fixpoint over all passes
            before = case.statement_count()
            case = self._reduce_queries(case)
            case = self._reduce_functions(case)
            case = self._reduce_tables(case)
            case = self._reduce_indexes(case)
            case = self._reduce_rows(case)
            case = self._reduce_columns(case)
            if case.statement_count() >= before:
                break
        return case

    def _reduce_queries(self, case: Case) -> Case:
        queries = ddmin(
            list(case.queries),
            lambda qs: self._fails(replace(case, queries=tuple(qs))))
        return replace(case, queries=tuple(queries))

    def _reduce_functions(self, case: Case) -> Case:
        for fn in list(case.functions):
            candidate = replace(case, functions=tuple(
                f for f in case.functions if f.name != fn.name))
            if self._fails(candidate):
                case = candidate
        return case

    def _reduce_tables(self, case: Case) -> Case:
        for table in list(case.schema.tables):
            if len(case.schema.tables) == 1:
                break
            candidate = self._drop_table(case, table.name)
            if self._fails(candidate):
                case = candidate
        return case

    def _reduce_indexes(self, case: Case) -> Case:
        for table in case.schema.tables:
            for index in list(table.indexes):
                candidate = self._drop_index(case, table.name, index.name)
                if self._fails(candidate):
                    case = candidate
        return case

    def _reduce_rows(self, case: Case) -> Case:
        for table in case.schema.tables:
            rows = case.data.get(table.name, [])
            if len(rows) < 2:
                continue

            def with_rows(new_rows: list) -> Case:
                data = dict(case.data)
                data[table.name] = list(new_rows)
                return replace(case, data=data)

            kept = ddmin(list(rows),
                         lambda rs: self._fails(with_rows(rs)))
            case = with_rows(kept)
        return case

    def _reduce_columns(self, case: Case) -> Case:
        for table in case.schema.tables:
            for column in list(table.columns):
                current = next(t for t in case.schema.tables
                               if t.name == table.name)
                if len(current.columns) == 1:
                    break
                position = next(
                    (i for i, c in enumerate(current.columns)
                     if c.name == column.name), None)
                if position is None:
                    continue
                candidate = self._drop_column(case, current, position)
                if self._fails(candidate):
                    case = candidate
        return case


# ---------------------------------------------------------------------------
# Regression emission
# ---------------------------------------------------------------------------


def emit_pytest(case: Case, discrepancies: list[Discrepancy],
                test_name: Optional[str] = None) -> str:
    """Render a self-contained pytest module reproducing *case*.

    The module re-asserts the full oracle sweep (``check_case`` must come
    back empty), so the regression holds even if the original pair of
    disagreeing configurations later changes its name or defaults.
    Boundary floats repr as ``inf``/``nan``, hence the math import.
    """
    name = test_name or f"test_fuzz_case_{case.seed}"
    summary_lines = []
    for d in discrepancies[:3]:
        summary_lines.append(f"  [{d.kind}] {d.sql}")
        summary_lines.append(f"    {d.config_a}: {d.outcome_a.describe()}")
        summary_lines.append(f"    {d.config_b}: {d.outcome_b.describe()}")
    summary = "\n".join(summary_lines) or "  (discrepancy details omitted)"
    script = "\n".join("-- " + line if line and not line.startswith("--")
                       else line
                       for line in case.script().strip().splitlines())
    return f'''"""Fuzz regression: minimized reproducer for case seed {case.seed}.

Original discrepancy:
{summary}

Case as SQL (data loads through parameter binding):
{script}
"""

from math import inf, nan  # noqa: F401 — boundary values in the case repr

from repro.fuzz.oracle import DifferentialChecker
from repro.fuzz.querygen import Case, FunctionSpec, Query
from repro.fuzz.schema import ColumnSpec, IndexSpec, SchemaSpec, TableSpec

CASE = {case!r}


def {name}():
    discrepancies = DifferentialChecker().check_case(CASE)
    assert discrepancies == [], "\\n".join(
        d.describe() for d in discrepancies)
'''
