"""Seeded random table contents for the differential fuzzer.

Values are drawn from small per-type pools so that duplicates — the food
of GROUP BY, DISTINCT, hash builds and merge-join group buffering — occur
constantly, with a NULL sprinkled into every column and, for *extreme*
schemas, the boundary values that historically break engines: IEEE NaN and
infinities (which must order as one equality class above every number),
signed 64-bit limits, and integers just past them (exact in this engine's
Python ints, unrepresentable in SQLite's int64).

Rows are fed to the engine through parameterized INSERTs rather than
rendered literals: NaN has no SQL literal, and parameter binding keeps the
loaded value bit-identical to the generated one in both the engine and the
SQLite cross-check.
"""

from __future__ import annotations

import math
import random

from .schema import SchemaSpec, TableSpec

_INT64_MAX = 2**63 - 1
_INT64_MIN = -(2**63)

_INT_POOL = (0, 1, -1, 2, 3, -3, 5, 7, -17, 41, 100, 999)
_INT_POOL_EXTREME = _INT_POOL + (
    2**31 - 1, -(2**31), _INT64_MAX, _INT64_MIN, 2**63, -(2**70))
_FLOAT_POOL = (0.0, -0.0, 0.5, -2.75, 1.0, 3.25, 1e-3, 1e10, -123.5)
_FLOAT_POOL_EXTREME = _FLOAT_POOL + (
    math.inf, -math.inf, math.nan, 1e308, 5e-324)
_TEXT_POOL = ("", "a", "b", "ab", "B", "zz", "a b", "quo'te", "%_x")
_BOOL_POOL = (True, False)

#: Per-value NULL probability: high enough that three-valued logic paths
#: (NULL join keys, NULL ORDER BY keys, NULL aggregates) run in most cases.
_NULL_P = 0.15


def _pool(dtype: str, extreme: bool):
    if dtype == "int":
        return _INT_POOL_EXTREME if extreme else _INT_POOL
    if dtype == "float":
        return _FLOAT_POOL_EXTREME if extreme else _FLOAT_POOL
    if dtype == "text":
        return _TEXT_POOL
    return _BOOL_POOL


def generate_rows(rng: random.Random, table: TableSpec,
                  extreme: bool) -> list[tuple]:
    """Rows for one table: sometimes empty, duplicate-heavy otherwise."""
    if rng.random() < 0.08:
        return []
    count = rng.randint(1, 36)
    rows: list[tuple] = []
    for _ in range(count):
        if rows and rng.random() < 0.25:
            rows.append(rng.choice(rows))  # exact duplicate row
            continue
        row = []
        for column in table.columns:
            if rng.random() < _NULL_P:
                row.append(None)
            else:
                row.append(rng.choice(_pool(column.dtype, extreme)))
        rows.append(tuple(row))
    return rows


def generate_data(rng: random.Random,
                  schema: SchemaSpec) -> dict[str, list[tuple]]:
    """Contents for every table of *schema*, keyed by table name."""
    return {t.name: generate_rows(rng, t, schema.extreme)
            for t in schema.tables}


def value_sqlite_safe(value) -> bool:
    """True when SQLite *represents* this value losslessly: NaN binds as
    NULL and ints outside signed-64-bit range refuse to bind at all.
    Infinities round-trip but turn engine-side NaN arithmetic (inf - inf)
    into SQLite NULLs.  Used by the oracle's known-dialect classifier to
    explain engine results SQLite could never produce."""
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return True
    if isinstance(value, float):
        return math.isfinite(value)
    return _INT64_MIN <= value <= _INT64_MAX


def value_sqlite_arithmetic_safe(value) -> bool:
    """Stricter gate for *input* data to the SQLite cross-check.

    SQLite does not raise on int64 overflow in ``+ - *`` — it silently
    degrades to floating point, so ``(-2^63) - ((-2^63) + (-3))`` is
    ``0.0`` there and exact ``3`` on this engine's Python bigints (fuzz
    seed 2001579).  Bounding input ints to 32 bits keeps every expression
    the generator can build (sums over tens of rows, products of a few
    terms) inside int64 on SQLite's side; the engine-vs-engine matrix
    still sweeps the full 64-bit-and-beyond range."""
    if isinstance(value, int) and not isinstance(value, bool):
        return -(2**31) <= value <= 2**31
    return value_sqlite_safe(value)


def data_sqlite_safe(data: dict[str, list[tuple]]) -> bool:
    """Whether a case's contents are eligible for the SQLite oracle."""
    return all(value_sqlite_arithmetic_safe(v)
               for rows in data.values() for row in rows for v in row)
