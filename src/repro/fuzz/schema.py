"""Seeded random schema generation for the differential fuzzer.

A :class:`SchemaSpec` is the structural half of a fuzz case: a handful of
tables with typed columns (the engine's four storable scalar types) plus a
few sorted indexes, so that every access path the planner can choose —
range scans, sort elimination, merge joins — has raw material to fire on.

Generation is a pure function of the :class:`random.Random` stream handed
in: the same seed always yields byte-identical DDL, which is what makes a
failing case reproducible from its seed alone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

#: (engine type name, comparability class, dtype) — dtype distinguishes
#: int from float inside the "num" class because integer division and
#: modulo only apply to exact ints.
COLUMN_TYPES = (
    ("int", "num", "int"),
    ("double precision", "num", "float"),
    ("text", "text", "text"),
    ("boolean", "bool", "bool"),
)

#: Draw weights for the four column types: keys and join columns are
#: mostly ints, which is also where the paper's workloads live.
_TYPE_WEIGHTS = (5, 2, 3, 1)


@dataclass(frozen=True)
class ColumnSpec:
    """One typed column of a generated table."""

    name: str
    type_name: str        # engine DDL spelling
    cls: str              # comparability class: 'num' | 'text' | 'bool'
    dtype: str            # 'int' | 'float' | 'text' | 'bool'


@dataclass(frozen=True)
class IndexSpec:
    """One generated CREATE INDEX: name plus (column, DESC?) pairs."""

    name: str
    table: str
    columns: tuple[tuple[str, bool], ...]

    def create_sql(self) -> str:
        cols = ", ".join(f"{name} DESC" if desc else name
                         for name, desc in self.columns)
        return f"CREATE INDEX {self.name} ON {self.table}({cols})"


@dataclass(frozen=True)
class TableSpec:
    """One generated table: columns plus any indexes declared over it."""

    name: str
    columns: tuple[ColumnSpec, ...]
    indexes: tuple[IndexSpec, ...] = ()

    def create_sql(self) -> str:
        cols = ", ".join(f"{c.name} {c.type_name}" for c in self.columns)
        return f"CREATE TABLE {self.name}({cols})"

    def columns_of_class(self, cls: str) -> list[ColumnSpec]:
        return [c for c in self.columns if c.cls == cls]

    def columns_of_dtype(self, dtype: str) -> list[ColumnSpec]:
        return [c for c in self.columns if c.dtype == dtype]


@dataclass(frozen=True)
class SchemaSpec:
    """The full structural spec of one fuzz case."""

    tables: tuple[TableSpec, ...]
    #: When set, the data generator mixes in boundary values (NaN,
    #: infinities, exact-int limits) that probe the engine's edges but
    #: disqualify the case from the SQLite cross-check.
    extreme: bool = False

    def statements(self) -> list[str]:
        out = [t.create_sql() for t in self.tables]
        for table in self.tables:
            out.extend(ix.create_sql() for ix in table.indexes)
        return out


def generate_schema(rng: random.Random) -> SchemaSpec:
    """Draw a random schema: 1-3 tables, 2-5 columns, 0-2 indexes each.

    Every table gets at least one int column so join keys, range
    predicates and deterministic ORDER BY tiebreaks always exist.
    """
    tables = []
    for t in range(rng.randint(1, 3)):
        columns = [ColumnSpec(f"c0_{t}", "int", "num", "int")]
        for i in range(1, rng.randint(2, 5)):
            type_name, cls, dtype = rng.choices(
                COLUMN_TYPES, weights=_TYPE_WEIGHTS)[0]
            columns.append(ColumnSpec(f"c{i}_{t}", type_name, cls, dtype))
        name = f"t{t}"
        indexes = []
        for i in range(rng.randint(0, 2)):
            width = rng.randint(1, min(2, len(columns)))
            picked = rng.sample(columns, width)
            indexes.append(IndexSpec(
                name=f"ix{i}_{t}", table=name,
                columns=tuple((c.name, rng.random() < 0.25)
                              for c in picked)))
        tables.append(TableSpec(name, tuple(columns), tuple(indexes)))
    return SchemaSpec(tuple(tables), extreme=rng.random() < 0.5)
