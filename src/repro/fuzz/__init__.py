"""Differential fuzzing for the SQL/PL-SQL engine.

The engine now carries four interacting execution strategies (interpreted
PL/pgSQL, scalar compiled UDFs, batched trampolines, and a planner with a
settings matrix of access paths); their agreement surface is far larger
than hand-written differential tests can cover.  This package generates
that coverage:

* :mod:`repro.fuzz.schema` / :mod:`repro.fuzz.datagen` — seeded random
  schemas and boundary-heavy table contents, byte-reproducible from a
  single seed,
* :mod:`repro.fuzz.querygen` — grammar-driven SELECTs and loop-bearing
  PL/pgSQL functions in the paper's workload shapes,
* :mod:`repro.fuzz.oracle` — the multi-oracle checker (engine settings
  matrix x interpreted/compiled/batched UDF paths, plus a SQLite
  cross-check) and the shared :func:`~repro.fuzz.oracle.rows_equal`
  comparison,
* :mod:`repro.fuzz.reduce` — a delta-debugging reducer that shrinks a
  failing case to a minimal reproducer and emits it as a pytest module.

Quickstart::

    python -m repro.fuzz --seed 0 --cases 200

"""

from .oracle import (DifferentialChecker, Discrepancy, Outcome,
                     TxnDiscrepancy, check_txn_case, rows_equal,
                     run_statement, settings_matrix)
from .querygen import Case, FunctionSpec, Query, case_seed, generate_case
from .reduce import Reducer, ddmin, emit_pytest
from .schema import SchemaSpec, TableSpec, generate_schema
from .txngen import TxnCase, TxnStep, generate_txn_case

__all__ = [
    "Case", "DifferentialChecker", "Discrepancy", "FunctionSpec",
    "Outcome", "Query", "Reducer", "SchemaSpec", "TableSpec", "TxnCase",
    "TxnDiscrepancy", "TxnStep", "case_seed", "check_txn_case", "ddmin",
    "emit_pytest", "generate_case", "generate_schema", "generate_txn_case",
    "rows_equal", "run_statement", "settings_matrix",
]
