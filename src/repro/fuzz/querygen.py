"""Grammar-driven random SQL and PL/pgSQL generation.

The generator emits the workload shapes the paper's pipeline (and this
engine's planner) actually distinguishes: single-table filters and
projections, inner/left/cross joins, range and BETWEEN predicates, ORDER
BY / LIMIT / OFFSET, GROUP BY with aggregates and HAVING, scalar and
EXISTS subqueries (correlated and not), set operations, and loop-bearing
PL/pgSQL functions in the gcd/sum-loop family that the compiler turns into
``WITH RECURSIVE`` trampolines.

Two properties make the output usable as an oracle workload:

* **Type discipline** — every expression carries its comparability class
  and exact dtype, so generated comparisons never mix classes (which the
  engine rejects but SQLite happily coerces) and integer division/modulo
  only applies to exact ints (where both dialects truncate toward zero).
* **Determinism discipline** — ORDER BY is rendered over output ordinals;
  LIMIT/OFFSET is only attached when the ordering covers *every* output
  column, which pins the result list up to fully-equal rows.  A partial
  ordering is recorded as metadata so the oracle can fall back to
  bag-comparison plus a sortedness check instead of a false row-order
  mismatch.

Queries carry a second rendering for the SQLite cross-check, identical but
for explicit ``NULLS LAST`` / ``NULLS FIRST`` (SQLite's defaults are the
mirror image of PostgreSQL's); constructs SQLite lacks (UDF calls,
``greatest``/``least``) mark the query engine-only.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from .datagen import data_sqlite_safe, generate_data
from .schema import ColumnSpec, SchemaSpec, TableSpec, generate_schema

# ---------------------------------------------------------------------------
# Generated artifacts
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Query:
    """One generated statement plus the metadata its oracle needs."""

    sql: str
    #: SQLite rendering, or None when the query is engine-only.
    sqlite_sql: Optional[str]
    #: 'none' (compare bags), 'partial' (bags + sortedness on the keys),
    #: or 'total' (ordering covers all output columns: compare lists).
    order: str = "none"
    #: (0-based output position, descending) per ORDER BY key.
    order_keys: tuple[tuple[int, bool], ...] = ()
    #: Set when the SQL contains the ``{f}`` function-name placeholder;
    #: the oracle formats it with the interpreted and compiled names.
    function: Optional[str] = None


@dataclass(frozen=True)
class FunctionSpec:
    """One generated PL/pgSQL function (interpreted name; the oracle
    registers the compiled twin as ``<name>_c``)."""

    name: str
    arity: int
    source: str


@dataclass(frozen=True)
class Case:
    """A complete fuzz case: schema, data, functions, checked queries."""

    seed: int
    schema: SchemaSpec
    data: dict[str, list[tuple]]
    functions: tuple[FunctionSpec, ...]
    queries: tuple[Query, ...]

    def setup_statements(self) -> list[str]:
        return self.schema.statements()

    def statement_count(self) -> int:
        """Statements a written-out reproducer needs: one CREATE TABLE and
        (when non-empty) one INSERT per table, one CREATE INDEX per index,
        one CREATE FUNCTION per function, plus the checked queries."""
        count = len(self.queries) + len(self.functions)
        for table in self.schema.tables:
            count += 1 + len(table.indexes)
            if self.data.get(table.name):
                count += 1
        return count

    def script(self) -> str:
        """A canonical, byte-stable rendering of the whole case (used by
        the determinism tests and ``--dump``; data rows appear as comments
        because they load through parameter binding, not literals)."""
        lines = [f"-- case seed {self.seed}"]
        for statement in self.setup_statements():
            lines.append(statement + ";")
        for table in self.schema.tables:
            for row in self.data.get(table.name, []):
                lines.append(f"-- INSERT INTO {table.name} VALUES {row!r}")
        for fn in self.functions:
            lines.append(fn.source.strip() + ";")
        for query in self.queries:
            lines.append(f"-- order={query.order} keys={query.order_keys}")
            lines.append(query.sql + ";")
        return "\n".join(lines) + "\n"


@dataclass(frozen=True)
class _Expr:
    """A rendered scalar expression with its type facts."""

    text: str
    cls: str                  # 'num' | 'text' | 'bool'
    dtype: str                # 'int' | 'float' | 'text' | 'bool'
    sqlite_ok: bool = True


# ---------------------------------------------------------------------------
# Expression generation
# ---------------------------------------------------------------------------

_CMP_OPS = ("=", "<>", "<", "<=", ">", ">=")


class _ExprGen:
    """Class- and dtype-aware expression generator over a FROM context.

    *ctx* is a list of ``(alias, TableSpec)``; column references render as
    ``alias.column``.  Depth bounds recursion; the ``allow_subquery`` hook
    lets the query generator lend out subquery construction.
    """

    def __init__(self, rng: random.Random, ctx, subquery_fn=None,
                 exists_fn=None):
        self.rng = rng
        self.ctx = ctx
        self.subquery_fn = subquery_fn
        self.exists_fn = exists_fn

    # -- leaves ---------------------------------------------------------

    def columns(self, cls: Optional[str] = None,
                dtype: Optional[str] = None) -> list[_Expr]:
        out = []
        for alias, table in self.ctx:
            for c in table.columns:
                if cls is not None and c.cls != cls:
                    continue
                if dtype is not None and c.dtype != dtype:
                    continue
                out.append(_Expr(f"{alias}.{c.name}", c.cls, c.dtype))
        return out

    def int_literal(self, lo: int = -20, hi: int = 20) -> _Expr:
        value = self.rng.randint(lo, hi)
        text = str(value) if value >= 0 else f"({value})"
        return _Expr(text, "num", "int")

    def float_literal(self) -> _Expr:
        value = self.rng.choice((0.0, 0.5, 1.5, -2.75, 100.25, 1e-3))
        text = repr(value) if value >= 0 else f"({value!r})"
        return _Expr(text, "num", "float")

    def text_literal(self) -> _Expr:
        value = self.rng.choice(("", "a", "b", "ab", "zz", "quo'te"))
        return _Expr("'" + value.replace("'", "''") + "'", "text", "text")

    def literal(self, cls: str, dtype: Optional[str] = None) -> _Expr:
        if cls == "text":
            return self.text_literal()
        if cls == "bool":
            return _Expr(self.rng.choice(("true", "false")), "bool", "bool")
        if dtype == "float" or (dtype is None and self.rng.random() < 0.3):
            return self.float_literal()
        return self.int_literal()

    # -- scalar expressions --------------------------------------------

    def scalar(self, depth: int = 2) -> _Expr:
        cls = self.rng.choices(("num", "text", "bool"),
                               weights=(6, 3, 1))[0]
        if cls == "text":
            return self.text_expr(depth)
        if cls == "bool":
            candidates = self.columns(cls="bool")
            if candidates:
                return self.rng.choice(candidates)
            return self.num_expr(depth)
        return self.num_expr(depth)

    def num_expr(self, depth: int = 2) -> _Expr:
        roll = self.rng.random()
        columns = self.columns(cls="num")
        if depth <= 0 or roll < 0.35:
            if columns and self.rng.random() < 0.75:
                return self.rng.choice(columns)
            return self.literal("num")
        if roll < 0.70:
            a = self.num_expr(depth - 1)
            b = self.num_expr(depth - 1)
            op = self.rng.choice(("+", "-", "*", "/", "%"))
            if op == "%" and not (a.dtype == "int" and b.dtype == "int"):
                op = "+"   # modulo only over exact ints (dialect-portable)
            if op in ("/", "%"):
                # Guard the divisor: engines disagree on division by zero
                # (error here, NULL in SQLite); NULLIF makes both NULL.
                text = f"({a.text} {op} nullif({b.text}, 0))"
            else:
                text = f"({a.text} {op} {b.text})"
            dtype = "int" if a.dtype == "int" and b.dtype == "int" else "float"
            return _Expr(text, "num", dtype,
                         sqlite_ok=a.sqlite_ok and b.sqlite_ok)
        if roll < 0.78:
            inner = self.num_expr(depth - 1)
            return _Expr(f"abs({inner.text})", "num", inner.dtype,
                         sqlite_ok=inner.sqlite_ok)
        if roll < 0.84:
            inner = self.text_expr(depth - 1)
            return _Expr(f"length({inner.text})", "num", "int",
                         sqlite_ok=inner.sqlite_ok)
        if roll < 0.90:
            when = self.predicate(depth - 1)
            then = self.num_expr(depth - 1)
            other = self.num_expr(depth - 1)
            dtype = then.dtype if then.dtype == other.dtype else "float"
            return _Expr(
                f"(CASE WHEN {when.text} THEN {then.text} "
                f"ELSE {other.text} END)", "num", dtype,
                sqlite_ok=when.sqlite_ok and then.sqlite_ok and other.sqlite_ok)
        if roll < 0.95:
            a = self.num_expr(depth - 1)
            b = self.num_expr(depth - 1)
            fn = self.rng.choice(("greatest", "least"))
            dtype = a.dtype if a.dtype == b.dtype else "float"
            # greatest/least exist in PostgreSQL (and here) but not SQLite.
            return _Expr(f"{fn}({a.text}, {b.text})", "num", dtype,
                         sqlite_ok=False)
        if self.subquery_fn is not None:
            sub = self.subquery_fn(self)
            if sub is not None:
                return sub
        return self.rng.choice(columns) if columns else self.int_literal()

    def text_expr(self, depth: int = 2) -> _Expr:
        columns = self.columns(cls="text")
        roll = self.rng.random()
        if depth <= 0 or roll < 0.45:
            if columns and self.rng.random() < 0.7:
                return self.rng.choice(columns)
            return self.text_literal()
        if roll < 0.65:
            a = self.text_expr(depth - 1)
            b = self.text_expr(depth - 1)
            return _Expr(f"({a.text} || {b.text})", "text", "text",
                         sqlite_ok=a.sqlite_ok and b.sqlite_ok)
        if roll < 0.80:
            inner = self.text_expr(depth - 1)
            fn = self.rng.choice(("upper", "lower"))
            return _Expr(f"{fn}({inner.text})", "text", "text",
                         sqlite_ok=inner.sqlite_ok)
        if roll < 0.90:
            inner = self.text_expr(depth - 1)
            start = self.rng.randint(1, 3)
            count = self.rng.randint(0, 4)
            return _Expr(f"substr({inner.text}, {start}, {count})",
                         "text", "text", sqlite_ok=inner.sqlite_ok)
        inner = self.text_expr(depth - 1)
        return _Expr(f"replace({inner.text}, 'a', 'zz')", "text", "text",
                     sqlite_ok=inner.sqlite_ok)

    # -- predicates -----------------------------------------------------

    def predicate(self, depth: int = 2) -> _Expr:
        roll = self.rng.random()
        if depth > 0 and roll < 0.22:
            a = self.predicate(depth - 1)
            b = self.predicate(depth - 1)
            op = self.rng.choice(("AND", "OR"))
            return _Expr(f"({a.text} {op} {b.text})", "bool", "bool",
                         sqlite_ok=a.sqlite_ok and b.sqlite_ok)
        if depth > 0 and roll < 0.28:
            inner = self.predicate(depth - 1)
            return _Expr(f"(NOT {inner.text})", "bool", "bool",
                         sqlite_ok=inner.sqlite_ok)
        if depth > 0 and roll < 0.36 and self.exists_fn is not None:
            exists = self.exists_fn(self)
            if exists is not None:
                return exists
        return self.comparison(depth)

    def comparison(self, depth: int = 2) -> _Expr:
        roll = self.rng.random()
        if roll < 0.42:
            left = self.num_expr(max(depth - 1, 0))
            right = (self.rng.choice(self.columns(cls="num"))
                     if self.columns(cls="num") and self.rng.random() < 0.4
                     else self.literal("num"))
            op = self.rng.choice(_CMP_OPS)
            return _Expr(f"({left.text} {op} {right.text})", "bool", "bool",
                         sqlite_ok=left.sqlite_ok and right.sqlite_ok)
        if roll < 0.55:
            subject = (self.rng.choice(self.columns(cls="num"))
                       if self.columns(cls="num") else self.int_literal())
            lo, hi = sorted((self.rng.randint(-10, 30),
                             self.rng.randint(-10, 30)))
            negate = "NOT " if self.rng.random() < 0.25 else ""
            return _Expr(f"({subject.text} {negate}BETWEEN {lo} AND {hi})",
                         "bool", "bool", sqlite_ok=subject.sqlite_ok)
        if roll < 0.68:
            subject = self.scalar(max(depth - 1, 0))
            negate = " NOT" if self.rng.random() < 0.4 else ""
            return _Expr(f"({subject.text} IS{negate} NULL)", "bool", "bool",
                         sqlite_ok=subject.sqlite_ok)
        if roll < 0.80:
            columns = self.columns()
            if columns:
                subject = self.rng.choice(columns)
                items = [self.literal(subject.cls, subject.dtype).text
                         for _ in range(self.rng.randint(1, 3))]
                if self.rng.random() < 0.25:
                    # A NULL in the list: x NOT IN (.., NULL) is never
                    # true — prime three-valued-logic territory.
                    items.append("NULL")
                negate = " NOT" if self.rng.random() < 0.3 else ""
                return _Expr(
                    f"({subject.text}{negate} IN ({', '.join(items)}))",
                    "bool", "bool", sqlite_ok=subject.sqlite_ok)
        if roll < 0.84:
            columns = self.columns(cls="text")
            if columns:
                subject = self.rng.choice(columns)
                pattern = self.rng.choice(
                    ("a%", "%b", "%a%", "_", "%", "ab", "%_x", ""))
                op = self.rng.choice(("LIKE", "NOT LIKE", "ILIKE"))
                # Engine LIKE is case-sensitive (PostgreSQL), SQLite's is
                # not: engine-only.
                return _Expr(f"({subject.text} {op} '{pattern}')",
                             "bool", "bool", sqlite_ok=False)
        if roll < 0.88:
            columns = self.columns(cls="text")
            if columns:
                subject = self.rng.choice(columns)
                op = self.rng.choice(_CMP_OPS)
                lit = self.text_literal()
                return _Expr(f"({subject.text} {op} {lit.text})",
                             "bool", "bool")
        if roll < 0.94:
            columns = self.columns(cls="bool")
            if columns:
                subject = self.rng.choice(columns)
                word = self.rng.choice(("true", "false"))
                return _Expr(f"({subject.text} = {word})", "bool", "bool")
        left = (self.rng.choice(self.columns(cls="num"))
                if self.columns(cls="num") else self.int_literal())
        return _Expr(f"({left.text} >= {self.int_literal().text})",
                     "bool", "bool", sqlite_ok=left.sqlite_ok)


# ---------------------------------------------------------------------------
# Query generation
# ---------------------------------------------------------------------------


class QueryGen:
    """Draws whole statements over a schema (plus optional functions)."""

    def __init__(self, rng: random.Random, schema: SchemaSpec,
                 functions: tuple[FunctionSpec, ...] = ()):
        self.rng = rng
        self.schema = schema
        self.functions = functions
        self._sub_alias = 0

    # -- helpers --------------------------------------------------------

    def _table(self) -> TableSpec:
        return self.rng.choice(self.schema.tables)

    def _subquery(self, outer: _ExprGen) -> Optional[_Expr]:
        """A scalar subquery (aggregate, hence at most one row), sometimes
        correlated with the outer context on a same-class column pair."""
        table = self._table()
        self._sub_alias += 1
        alias = f"x{self._sub_alias}"
        num_cols = table.columns_of_class("num")
        if num_cols and self.rng.random() < 0.7:
            agg_col = self.rng.choice(num_cols)
            agg = self.rng.choice(("min", "max", "sum"))
            select = f"{agg}({alias}.{agg_col.name})"
            dtype = agg_col.dtype
        else:
            select = "count(*)"
            dtype = "int"
        where = ""
        sqlite_ok = True
        if self.rng.random() < 0.6:
            pairs = [(o, c) for _, t in outer.ctx for o in t.columns
                     for c in table.columns if o.cls == c.cls]
            if pairs and self.rng.random() < 0.6:
                outer_col, inner_col = self.rng.choice(pairs)
                outer_alias = next(a for a, t in outer.ctx
                                   if outer_col in t.columns)
                op = self.rng.choice(("=", "<", ">"))
                where = (f" WHERE {alias}.{inner_col.name} {op} "
                         f"{outer_alias}.{outer_col.name}")
            else:
                inner = _ExprGen(self.rng, [(alias, table)])
                pred = inner.predicate(1)
                where = f" WHERE {pred.text}"
                sqlite_ok = pred.sqlite_ok
        return _Expr(f"(SELECT {select} FROM {table.name} {alias}{where})",
                     "num", dtype, sqlite_ok=sqlite_ok)

    def _exists_subquery(self, outer: _ExprGen) -> Optional[_Expr]:
        """``[NOT] EXISTS (SELECT 1 FROM t x WHERE ...)``, correlated with
        the outer context on a same-class column pair when one exists."""
        table = self._table()
        self._sub_alias += 1
        alias = f"e{self._sub_alias}"
        sqlite_ok = True
        pairs = [(o, c) for _, t in outer.ctx for o in t.columns
                 for c in table.columns if o.cls == c.cls]
        if pairs and self.rng.random() < 0.7:
            outer_col, inner_col = self.rng.choice(pairs)
            outer_alias = next(a for a, t in outer.ctx
                               if outer_col in t.columns)
            op = self.rng.choice(("=", "<", ">", "<>"))
            where = (f" WHERE {alias}.{inner_col.name} {op} "
                     f"{outer_alias}.{outer_col.name}")
        else:
            inner = _ExprGen(self.rng, [(alias, table)])
            pred = inner.predicate(1)
            where = f" WHERE {pred.text}"
            sqlite_ok = pred.sqlite_ok
        negate = "NOT " if self.rng.random() < 0.3 else ""
        return _Expr(
            f"({negate}EXISTS (SELECT 1 FROM {table.name} {alias}{where}))",
            "bool", "bool", sqlite_ok=sqlite_ok)

    def _order_clause(self, n_output: int, total: bool):
        """An ORDER BY over output ordinals.  *total* permutes all output
        positions (list-comparable result); otherwise a proper subset is
        used and recorded for bag + sortedness checking."""
        positions = list(range(n_output))
        self.rng.shuffle(positions)
        if not total and n_output > 1:
            positions = positions[:self.rng.randint(1, n_output - 1)]
        keys = tuple((p, self.rng.random() < 0.35) for p in positions)
        engine = ", ".join(f"{p + 1} DESC" if desc else f"{p + 1}"
                           for p, desc in keys)
        # SQLite's NULLS defaults mirror PostgreSQL's, so the cross-check
        # rendering pins them to the engine's behaviour explicitly.
        lite = ", ".join(
            f"{p + 1} DESC NULLS FIRST" if desc else f"{p + 1} NULLS LAST"
            for p, desc in keys)
        return f" ORDER BY {engine}", f" ORDER BY {lite}", keys

    def _finish(self, engine_body: str, lite_body: Optional[str],
                n_output: int, function: Optional[str] = None,
                orderable: bool = True) -> Query:
        order = "none"
        keys: tuple = ()
        engine_tail = lite_tail = ""
        if orderable and self.rng.random() < 0.62:
            total = self.rng.random() < 0.6 or n_output == 1
            engine_tail, lite_tail, keys = self._order_clause(
                n_output, total)
            order = "total" if total else "partial"
            if order == "total" and self.rng.random() < 0.45:
                if self.rng.random() < 0.85:
                    limit = self.rng.randint(0, 7)
                    engine_clause = f" LIMIT {limit}"
                    lite_clause = engine_clause
                    if self.rng.random() < 0.4:
                        offset = f" OFFSET {self.rng.randint(0, 3)}"
                        engine_clause += offset
                        lite_clause += offset
                else:
                    # OFFSET without LIMIT: SQLite's grammar needs the
                    # LIMIT -1 spelling for the same meaning.
                    offset = self.rng.randint(0, 3)
                    engine_clause = f" OFFSET {offset}"
                    lite_clause = f" LIMIT -1 OFFSET {offset}"
                engine_tail += engine_clause
                lite_tail += lite_clause
        sql = engine_body + engine_tail
        sqlite_sql = (lite_body + lite_tail
                      if lite_body is not None and function is None else None)
        return Query(sql=sql, sqlite_sql=sqlite_sql, order=order,
                     order_keys=keys, function=function)

    # -- statement shapes ----------------------------------------------

    def generate(self) -> Query:
        shapes = [(self._simple_select, 28), (self._join_select, 20),
                  (self._aggregate_select, 18), (self._setop_select, 11),
                  (self._window_select, 11)]
        if self.functions:
            shapes.append((self._function_select, 26))
        maker = self.rng.choices([s for s, _ in shapes],
                                 weights=[w for _, w in shapes])[0]
        return maker()

    def _simple_select(self) -> Query:
        table = self._table()
        gen = _ExprGen(self.rng, [("a", table)], self._subquery,
                        self._exists_subquery)
        items = [gen.scalar(2) for _ in range(self.rng.randint(1, 3))]
        distinct = "DISTINCT " if self.rng.random() < 0.15 else ""
        select = ", ".join(e.text for e in items)
        where = ""
        sqlite_ok = all(e.sqlite_ok for e in items)
        if self.rng.random() < 0.7:
            pred = gen.predicate(2)
            where = f" WHERE {pred.text}"
            sqlite_ok = sqlite_ok and pred.sqlite_ok
        body = f"SELECT {distinct}{select} FROM {table.name} a{where}"
        return self._finish(body, body if sqlite_ok else None, len(items))

    def _join_select(self) -> Query:
        left = self._table()
        right = self._table()
        ctx = [("a", left), ("b", right)]
        gen = _ExprGen(self.rng, ctx, self._subquery,
                        self._exists_subquery)
        kind = self.rng.choices(("JOIN", "LEFT JOIN", "CROSS JOIN", ","),
                                weights=(5, 4, 1, 2))[0]
        pairs = [(lc, rc) for lc in left.columns for rc in right.columns
                 if lc.cls == rc.cls]
        on = ""
        where_parts = []
        if kind in ("JOIN", "LEFT JOIN"):
            if not pairs:
                kind = "CROSS JOIN"
            else:
                lc, rc = self.rng.choice(pairs)
                on = f" ON a.{lc.name} = b.{rc.name}"
                if self.rng.random() < 0.3:
                    extra = gen.predicate(1)
                    if extra.sqlite_ok:
                        on += f" AND {extra.text}"
        elif kind == "," and pairs:
            lc, rc = self.rng.choice(pairs)
            where_parts.append(f"a.{lc.name} = b.{rc.name}")
        items = [gen.scalar(2) for _ in range(self.rng.randint(1, 3))]
        sqlite_ok = all(e.sqlite_ok for e in items)
        if self.rng.random() < 0.4:
            pred = gen.predicate(1)
            where_parts.append(pred.text)
            sqlite_ok = sqlite_ok and pred.sqlite_ok
        from_clause = (f"{left.name} a{kind}{on} {right.name} b"
                       if kind == ","
                       else f"{left.name} a {kind} {right.name} b{on}")
        where = f" WHERE {' AND '.join(where_parts)}" if where_parts else ""
        body = (f"SELECT {', '.join(e.text for e in items)} "
                f"FROM {from_clause}{where}")
        return self._finish(body, body if sqlite_ok else None, len(items))

    def _aggregate_select(self) -> Query:
        table = self._table()
        gen = _ExprGen(self.rng, [("a", table)], self._subquery,
                        self._exists_subquery)
        num_cols = table.columns_of_class("num")
        aggs = []
        for _ in range(self.rng.randint(1, 2)):
            choice = self.rng.random()
            if choice < 0.25 or not num_cols:
                aggs.append("count(*)")
            elif choice < 0.45:
                aggs.append(f"count(a.{self.rng.choice(table.columns).name})")
            else:
                fn = self.rng.choice(("sum", "min", "max", "avg"))
                aggs.append(f"{fn}(a.{self.rng.choice(num_cols).name})")
        where = ""
        sqlite_ok = True
        if self.rng.random() < 0.5:
            pred = gen.predicate(1)
            where = f" WHERE {pred.text}"
            sqlite_ok = pred.sqlite_ok
        if self.rng.random() < 0.7 and table.columns:
            group_cols = self.rng.sample(
                list(table.columns), self.rng.randint(1, 2))
            group_refs = [f"a.{c.name}" for c in group_cols]
            select = ", ".join(group_refs + aggs)
            having = ""
            if self.rng.random() < 0.3:
                having = f" HAVING count(*) > {self.rng.randint(0, 2)}"
            body = (f"SELECT {select} FROM {table.name} a{where} "
                    f"GROUP BY {', '.join(group_refs)}{having}")
            n_output = len(group_refs) + len(aggs)
            # Grouped rows are unique on the group keys, so ordering by
            # exactly those keys already pins the full row order.
            keys = tuple((i, self.rng.random() < 0.35)
                         for i in range(len(group_refs)))
            engine_tail = ", ".join(
                f"{p + 1} DESC" if d else f"{p + 1}" for p, d in keys)
            lite_tail = ", ".join(
                f"{p + 1} DESC NULLS FIRST" if d else f"{p + 1} NULLS LAST"
                for p, d in keys)
            if self.rng.random() < 0.7:
                sql = f"{body} ORDER BY {engine_tail}"
                lite = f"{body} ORDER BY {lite_tail}" if sqlite_ok else None
                return Query(sql=sql, sqlite_sql=lite, order="total",
                             order_keys=keys)
            return Query(sql=body, sqlite_sql=body if sqlite_ok else None)
        body = f"SELECT {', '.join(aggs)} FROM {table.name} a{where}"
        return Query(sql=body, sqlite_sql=body if sqlite_ok else None)

    def _window_select(self) -> Query:
        """An aggregate over a window.  The default RANGE frame includes
        every peer of the current row, so the window value is a
        deterministic function of the row even when the window ordering
        has ties — which keeps all oracles comparable."""
        table = self._table()
        gen = _ExprGen(self.rng, [("a", table)], None)
        num_cols = table.columns_of_class("num")
        if not num_cols:
            return self._simple_select()
        agg_col = self.rng.choice(num_cols)
        fn = self.rng.choice(("sum", "count", "min", "max", "avg"))
        over_parts_engine = []
        over_parts_lite = []
        if self.rng.random() < 0.7:
            part = self.rng.choice(table.columns)
            over_parts_engine.append(f"PARTITION BY a.{part.name}")
            over_parts_lite.append(f"PARTITION BY a.{part.name}")
        if self.rng.random() < 0.7:
            order_col = self.rng.choice(table.columns)
            desc = self.rng.random() < 0.3
            over_parts_engine.append(
                f"ORDER BY a.{order_col.name}{' DESC' if desc else ''}")
            # Pin SQLite's window ordering to the engine's NULLS defaults.
            over_parts_lite.append(
                f"ORDER BY a.{order_col.name} DESC NULLS FIRST" if desc
                else f"ORDER BY a.{order_col.name} NULLS LAST")
        win_engine = f"{fn}(a.{agg_col.name}) OVER " \
                     f"({' '.join(over_parts_engine)})"
        win_lite = f"{fn}(a.{agg_col.name}) OVER " \
                   f"({' '.join(over_parts_lite)})"
        items = [gen.scalar(1) for _ in range(self.rng.randint(1, 2))]
        where = ""
        sqlite_ok = all(e.sqlite_ok for e in items)
        if self.rng.random() < 0.5:
            pred = gen.predicate(1)
            where = f" WHERE {pred.text}"
            sqlite_ok = sqlite_ok and pred.sqlite_ok
        select_engine = ", ".join([e.text for e in items] + [win_engine])
        select_lite = ", ".join([e.text for e in items] + [win_lite])
        body = f"SELECT {select_engine} FROM {table.name} a{where}"
        lite = (f"SELECT {select_lite} FROM {table.name} a{where}"
                if sqlite_ok else None)
        return self._finish(body, lite, len(items) + 1)

    def _setop_select(self) -> Query:
        arity = self.rng.randint(1, 2)
        classes = [self.rng.choices(("num", "text"), weights=(3, 2))[0]
                   for _ in range(arity)]

        def branch() -> tuple[str, bool]:
            table = self._table()
            gen = _ExprGen(self.rng, [("a", table)], None)
            items = [(gen.num_expr(1) if cls == "num" else gen.text_expr(1))
                     for cls in classes]
            where = ""
            ok = all(e.sqlite_ok for e in items)
            if self.rng.random() < 0.5:
                pred = gen.predicate(1)
                where = f" WHERE {pred.text}"
                ok = ok and pred.sqlite_ok
            text = (f"SELECT {', '.join(e.text for e in items)} "
                    f"FROM {table.name} a{where}")
            return text, ok

        op = self.rng.choice(("UNION", "UNION ALL", "INTERSECT", "EXCEPT"))
        (left, ok_l), (right, ok_r) = branch(), branch()
        body = f"{left} {op} {right}"
        return self._finish(body, body if ok_l and ok_r else None, arity)

    def _function_select(self) -> Query:
        fn = self.rng.choice(self.functions)
        table = self._table()
        gen = _ExprGen(self.rng, [("a", table)], None)
        int_cols = table.columns_of_dtype("int")

        def arg() -> str:
            if int_cols and self.rng.random() < 0.75:
                return f"a.{self.rng.choice(int_cols).name}"
            return str(self.rng.randint(0, 12))

        args = ", ".join(arg() for _ in range(fn.arity))
        call = "{f}(" + args + ")"
        shape = self.rng.random()
        if shape < 0.15:
            lits = ", ".join(str(self.rng.randint(-6, 12))
                             for _ in range(fn.arity))
            return Query(sql="SELECT {f}(" + lits + ")", sqlite_sql=None,
                         order="total", order_keys=((0, False),),
                         function=fn.name)
        if shape < 0.30:
            body = (f"SELECT sum({call}), count(*) FROM {table.name} a")
            return Query(sql=body, sqlite_sql=None, function=fn.name)
        if shape < 0.45:
            pred_col = (f"a.{self.rng.choice(int_cols).name}"
                        if int_cols else "1")
            body = (f"SELECT {pred_col} FROM {table.name} a "
                    f"WHERE ({call} % 2 = 0)")
            return self._finish(body, None, 1, function=fn.name)
        items = [call]
        for _ in range(self.rng.randint(0, 2)):
            items.append(gen.scalar(1).text)
        body = f"SELECT {', '.join(items)} FROM {table.name} a"
        return self._finish(body, None, len(items), function=fn.name)


# ---------------------------------------------------------------------------
# PL/pgSQL function generation
# ---------------------------------------------------------------------------


def generate_function(rng: random.Random, index: int) -> FunctionSpec:
    """A loop-bearing (or occasionally Froid-style branching) int function
    in the paper's workload family.  Loops always terminate: the counter
    increments unconditionally and bounds derive from ``arg % m + k``.
    Every arithmetic step is total over ints (constant nonzero divisors),
    so interpreter, compiled trampoline and batched execution must agree
    on values *and* errors."""
    name = f"fz{index}"
    arity = rng.randint(1, 2)
    params = ", ".join(f"{p} int" for p in ("a", "b")[:arity])
    args = ("a", "b")[:arity]
    if rng.random() < 0.3:
        k = rng.randint(0, 6)
        e1 = f"a * {rng.randint(1, 4)} + {rng.randint(-3, 3)}"
        e2 = (f"a % {rng.randint(2, 5)}" if arity == 1
              else f"a - b * {rng.randint(1, 3)}")
        e3 = rng.choice(("0", "a", f"a + {rng.randint(1, 9)}"))
        source = f"""CREATE FUNCTION {name}({params}) RETURNS int AS $$
BEGIN
  IF a > {k} THEN RETURN {e1};
  ELSIF a < {-k - 1} THEN RETURN {e2};
  END IF;
  RETURN {e3};
END;
$$ LANGUAGE plpgsql"""
        return FunctionSpec(name, arity, source)
    acc0 = rng.randint(0, 5)
    bound_arg = rng.choice(args)
    bound = rng.choice((
        f"{bound_arg} % {rng.randint(3, 7)} + {rng.randint(1, 4)}",
        str(rng.randint(2, 8)),
    ))
    steps = []
    for _ in range(rng.randint(1, 2)):
        steps.append(rng.choice((
            f"acc := acc + (i * {rng.randint(1, 4)} + {rng.choice(args)});",
            f"acc := acc * 2 - i;",
            f"acc := acc + {rng.choice(args)} % {rng.randint(2, 6)};",
            f"acc := acc / {rng.randint(2, 4)} + i;",
        )))
    if rng.random() < 0.5:
        steps.append(
            f"IF acc > {rng.randint(50, 200)} THEN "
            f"acc := acc % {rng.randint(7, 97)}; END IF;")
    ret = rng.choice(("acc", "acc + i", f"acc % {rng.randint(5, 50)}"))
    body = "\n    ".join(steps)
    source = f"""CREATE FUNCTION {name}({params}) RETURNS int AS $$
DECLARE acc int := {acc0}; i int := 0;
BEGIN
  WHILE i < ({bound}) LOOP
    {body}
    i := i + 1;
  END LOOP;
  RETURN {ret};
END;
$$ LANGUAGE plpgsql"""
    return FunctionSpec(name, arity, source)


# ---------------------------------------------------------------------------
# Case assembly
# ---------------------------------------------------------------------------


def case_seed(run_seed: int, index: int) -> int:
    """The per-case sub-seed: a pure function of (run seed, case index),
    so any case from a run is regenerable without replaying the run."""
    return (run_seed * 1_000_003 + index) & 0xFFFF_FFFF_FFFF


def generate_case(run_seed: int, index: int,
                  queries: Optional[int] = None) -> Case:
    """Generate fuzz case *index* of the run seeded with *run_seed*."""
    seed = case_seed(run_seed, index)
    rng = random.Random(seed)
    schema = generate_schema(rng)
    data = generate_data(rng, schema)
    functions: tuple[FunctionSpec, ...] = ()
    if rng.random() < 0.55:
        functions = tuple(generate_function(rng, i)
                          for i in range(rng.randint(1, 2)))
    qgen = QueryGen(rng, schema, functions)
    count = queries if queries is not None else rng.randint(2, 5)
    return Case(seed=seed, schema=schema, data=data, functions=functions,
                queries=tuple(qgen.generate() for _ in range(count)))
