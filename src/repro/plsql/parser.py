"""Parser for PL/pgSQL function bodies.

Reuses the SQL lexer and expression/select grammar of :mod:`repro.sql.parser`
for everything inside statements, and adds the statement-level grammar:
DECLARE sections, assignment (``:=`` or ``=``), IF/ELSIF/ELSE, CASE, the loop
family (LOOP, WHILE, FOR range, FOR query, FOREACH), EXIT/CONTINUE with
labels and WHEN guards, RETURN, PERFORM, RAISE, and nested blocks.
"""

from __future__ import annotations

from typing import Optional

from ..sql import ast as SA
from ..sql.errors import ParseError
from ..sql.lexer import IDENT, OP, STRING, TokenStream
from ..sql.parser import SqlParser
from . import ast as P

#: Keywords that may not be used as variable/assignment targets.
_STATEMENT_KEYWORDS = {
    "if", "elsif", "elseif", "else", "end", "loop", "while", "for", "foreach",
    "exit", "continue", "return", "raise", "perform", "declare", "begin",
    "null", "case", "when", "then", "into",
}


class PlsqlParser:
    """Statement-level parser; expression parsing delegates to SqlParser."""

    def __init__(self, stream: TokenStream):
        self.ts = stream
        self.sql = SqlParser(stream)

    # ------------------------------------------------------------------

    def parse_body(self) -> tuple[list[P.Declaration], list[P.Stmt]]:
        declarations: list[P.Declaration] = []
        if self.ts.accept_keyword("declare"):
            declarations = self._parse_declarations()
        self.ts.expect_keyword("begin")
        body = self._parse_statements(until=("end",))
        self.ts.expect_keyword("end")
        self.ts.accept_op(";")
        if not self.ts.at_end():
            token = self.ts.peek()
            raise ParseError(f"trailing input after function body: {token}",
                             token.line, token.column)
        return declarations, body

    def _parse_declarations(self) -> list[P.Declaration]:
        declarations = []
        while not self.ts.at_keyword("begin"):
            line = self.ts.peek().line
            name = self.ts.expect_ident("variable name")
            type_name = self.sql._parse_type_name()
            default = None
            if self.ts.accept_op(":=") or self.ts.accept_op("="):
                default = self.sql.parse_expression()
            elif self.ts.accept_keyword("default"):
                default = self.sql.parse_expression()
            self.ts.expect_op(";")
            declarations.append(P.Declaration(name.lower(), type_name, default,
                                              line=line))
        return declarations

    # ------------------------------------------------------------------

    def _parse_statements(self, until: tuple[str, ...]) -> list[P.Stmt]:
        statements: list[P.Stmt] = []
        while not self.ts.at_keyword(*until):
            if self.ts.at_end():
                token = self.ts.peek()
                raise ParseError(f"unexpected end of input, expected one of "
                                 f"{[u.upper() for u in until]}",
                                 token.line, token.column)
            statements.append(self._parse_statement())
        return statements

    def _parse_statement(self) -> P.Stmt:
        line = self.ts.peek().line
        stmt = self._parse_statement_inner()
        stmt.line = line
        return stmt

    def _parse_statement_inner(self) -> P.Stmt:
        ts = self.ts
        label = self._parse_label()
        if ts.at_keyword("if"):
            return self._parse_if()
        if ts.at_keyword("case"):
            return self._parse_case_statement()
        if ts.at_keyword("loop"):
            return self._parse_loop(label)
        if ts.at_keyword("while"):
            return self._parse_while(label)
        if ts.at_keyword("for"):
            return self._parse_for(label)
        if ts.at_keyword("foreach"):
            return self._parse_foreach(label)
        if label is not None:
            if ts.at_keyword("declare", "begin"):
                return self._parse_block(label)
            token = ts.peek()
            raise ParseError("a label must precede LOOP/WHILE/FOR/block",
                             token.line, token.column)
        if ts.at_keyword("declare", "begin"):
            return self._parse_block(None)
        if ts.accept_keyword("exit"):
            return self._parse_exit_continue(P.ExitStmt)
        if ts.accept_keyword("continue"):
            return self._parse_exit_continue(P.ContinueStmt)
        if ts.accept_keyword("return"):
            expr = None
            if not ts.at_op(";"):
                expr = self.sql.parse_expression()
            ts.expect_op(";")
            return P.ReturnStmt(expr)
        if ts.accept_keyword("perform"):
            return self._parse_perform()
        if ts.accept_keyword("raise"):
            return self._parse_raise()
        if ts.accept_keyword("null"):
            ts.expect_op(";")
            return P.NullStmt()
        # Assignment: target := expr;  or  target = expr;
        token = ts.peek()
        if token.type == IDENT and token.value not in _STATEMENT_KEYWORDS:
            target = ts.expect_ident("assignment target")
            if not (ts.accept_op(":=") or ts.accept_op("=")):
                bad = ts.peek()
                raise ParseError(f"expected ':=' after {target!r}",
                                 bad.line, bad.column)
            expr = self.sql.parse_expression()
            ts.expect_op(";")
            return P.Assign(target.lower(), expr)
        raise ParseError(f"unexpected token in PL/pgSQL body: {token}",
                         token.line, token.column)

    def _parse_label(self) -> Optional[str]:
        ts = self.ts
        if ts.at_op("<") and ts.peek(1).type == OP and ts.peek(1).value == "<":
            ts.advance()
            ts.advance()
            label = ts.expect_ident("label")
            ts.expect_op(">")
            ts.expect_op(">")
            return label.lower()
        return None

    # -- control flow ----------------------------------------------------

    def _parse_if(self) -> P.IfStmt:
        ts = self.ts
        ts.expect_keyword("if")
        branches = []
        condition = self.sql.parse_expression()
        ts.expect_keyword("then")
        branches.append((condition,
                         self._parse_statements(("elsif", "elseif", "else", "end"))))
        while ts.at_keyword("elsif", "elseif"):
            ts.advance()
            condition = self.sql.parse_expression()
            ts.expect_keyword("then")
            branches.append((condition,
                             self._parse_statements(("elsif", "elseif",
                                                     "else", "end"))))
        else_body: list[P.Stmt] = []
        if ts.accept_keyword("else"):
            else_body = self._parse_statements(("end",))
        ts.expect_keyword("end")
        ts.expect_keyword("if")
        ts.expect_op(";")
        return P.IfStmt(branches, else_body)

    def _parse_case_statement(self) -> P.IfStmt:
        """CASE statements desugar to IF chains."""
        ts = self.ts
        ts.expect_keyword("case")
        operand = None
        if not ts.at_keyword("when"):
            operand = self.sql.parse_expression()
        branches = []
        while ts.accept_keyword("when"):
            test = self.sql.parse_expression()
            if operand is not None:
                test = SA.BinaryOp("=", operand, test)
            ts.expect_keyword("then")
            branches.append((test, self._parse_statements(("when", "else", "end"))))
        else_body: list[P.Stmt] = []
        if ts.accept_keyword("else"):
            else_body = self._parse_statements(("end",))
        ts.expect_keyword("end")
        ts.expect_keyword("case")
        ts.expect_op(";")
        return P.IfStmt(branches, else_body)

    def _parse_loop(self, label: Optional[str]) -> P.LoopStmt:
        self.ts.expect_keyword("loop")
        body = self._parse_statements(("end",))
        self._finish_loop(label)
        return P.LoopStmt(body, label)

    def _parse_while(self, label: Optional[str]) -> P.WhileStmt:
        self.ts.expect_keyword("while")
        condition = self.sql.parse_expression()
        self.ts.expect_keyword("loop")
        body = self._parse_statements(("end",))
        self._finish_loop(label)
        return P.WhileStmt(condition, body, label)

    def _parse_for(self, label: Optional[str]) -> P.Stmt:
        ts = self.ts
        ts.expect_keyword("for")
        var = ts.expect_ident("loop variable").lower()
        ts.expect_keyword("in")
        if ts.at_keyword("select", "with", "values"):
            query = self.sql.parse_select()
            ts.expect_keyword("loop")
            body = self._parse_statements(("end",))
            self._finish_loop(label)
            return P.ForQueryStmt(var, query, body, label)
        reverse = bool(ts.accept_keyword("reverse"))
        start = self.sql.parse_expression()
        ts.expect_op("..")
        stop = self.sql.parse_expression()
        step = None
        if ts.accept_keyword("by"):
            step = self.sql.parse_expression()
        ts.expect_keyword("loop")
        body = self._parse_statements(("end",))
        self._finish_loop(label)
        return P.ForRangeStmt(var, start, stop, body, step, reverse, label)

    def _parse_foreach(self, label: Optional[str]) -> P.ForEachStmt:
        ts = self.ts
        ts.expect_keyword("foreach")
        var = ts.expect_ident("loop variable").lower()
        ts.expect_keyword("in")
        ts.expect_keyword("array")
        array = self.sql.parse_expression()
        ts.expect_keyword("loop")
        body = self._parse_statements(("end",))
        self._finish_loop(label)
        return P.ForEachStmt(var, array, body, label)

    def _finish_loop(self, label: Optional[str]) -> None:
        ts = self.ts
        ts.expect_keyword("end")
        ts.expect_keyword("loop")
        if ts.peek().type == IDENT and not ts.at_op(";"):
            closing = ts.expect_ident("loop label")
            if label is not None and closing.lower() != label:
                token = ts.peek()
                raise ParseError(
                    f"END LOOP label {closing!r} does not match {label!r}",
                    token.line, token.column)
        ts.expect_op(";")

    def _parse_block(self, label: Optional[str]) -> P.BlockStmt:
        ts = self.ts
        declarations: list[P.Declaration] = []
        if ts.accept_keyword("declare"):
            declarations = self._parse_declarations()
        ts.expect_keyword("begin")
        body = self._parse_statements(("end",))
        ts.expect_keyword("end")
        if ts.peek().type == IDENT and not ts.at_op(";"):
            ts.expect_ident("block label")
        ts.expect_op(";")
        return P.BlockStmt(declarations, body, label)

    def _parse_exit_continue(self, cls):
        ts = self.ts
        label = None
        if ts.peek().type == IDENT and not ts.at_keyword("when") \
                and not ts.at_op(";"):
            label = ts.expect_ident("loop label").lower()
        when = None
        if ts.accept_keyword("when"):
            when = self.sql.parse_expression()
        ts.expect_op(";")
        return cls(label, when)

    def _parse_perform(self) -> P.PerformStmt:
        """PERFORM <select-list> [FROM ...]: re-use the SELECT grammar by
        parsing the tail as if prefixed by SELECT."""
        core = self.sql._parse_select_core_after_keyword()
        self.ts.expect_op(";")
        return P.PerformStmt(SA.SelectStmt(None, core))

    def _parse_raise(self) -> P.RaiseStmt:
        ts = self.ts
        level = "exception"
        if ts.at_keyword("notice", "warning", "info", "exception", "debug", "log"):
            level = str(ts.advance().value)
        token = ts.peek()
        message = ""
        if token.type == STRING:
            ts.advance()
            message = str(token.value)
        args: list[SA.Expr] = []
        while ts.accept_op(","):
            args.append(self.sql.parse_expression())
        ts.expect_op(";")
        return P.RaiseStmt(level, message, args)


def parse_plpgsql_body(body: str) -> tuple[list[P.Declaration], list[P.Stmt]]:
    return PlsqlParser(TokenStream.from_text(body)).parse_body()


def parse_plpgsql_function(name: str, param_names: list[str],
                           param_types: list[str], return_type: str,
                           body: str) -> P.PlsqlFunctionDef:
    """Parse a CREATE FUNCTION body into a :class:`PlsqlFunctionDef`."""
    declarations, statements = parse_plpgsql_body(body)
    lowered = [p.lower() for p in param_names]
    declared = {d.name for d in declarations}
    clash = declared.intersection(lowered)
    if clash:
        raise ParseError(f"declaration shadows parameter(s): {sorted(clash)}")
    return P.PlsqlFunctionDef(name.lower(), lowered, list(param_types),
                              return_type, declarations, statements)
