"""``repro.plsql`` — the PL/pgSQL front end and interpreter.

The interpreter is the paper's *baseline*: it executes function bodies
statement by statement, paying a ``Q→f`` context switch on every invocation
from SQL and an ``f→Qi`` plan-instantiation/teardown round trip on every
embedded-query evaluation, while "simple" expressions take PostgreSQL's
fast path (no ExecutorStart/End — see the ``fibonacci`` row of Table 1).
"""

from .ast import PlsqlFunctionDef
from .parser import parse_plpgsql_function
from .interpreter import call_plpgsql

__all__ = ["PlsqlFunctionDef", "parse_plpgsql_function", "call_plpgsql"]
