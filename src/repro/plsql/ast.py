"""AST for PL/pgSQL function bodies.

Expressions inside statements are ordinary SQL expression nodes from
:mod:`repro.sql.ast` — "expressions in these SSA programs are regular SQL
expressions" (paper, Section 2) — including embedded queries, which appear
as :class:`repro.sql.ast.ScalarSubquery`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..sql import ast as SA


class Stmt:
    """Base class for PL/pgSQL statements."""

    __slots__ = ()
    #: 1-based source line of the statement's first token; set by the parser
    #: (class-level default so hand-built ASTs need not care).  Dataclass
    #: subclasses carry ``__dict__``, so the parser assigns it per instance.
    line: Optional[int] = None


@dataclass
class Declaration:
    name: str
    type_name: str
    default: Optional[SA.Expr] = None
    line: Optional[int] = None


@dataclass
class Assign(Stmt):
    target: str
    expr: SA.Expr


@dataclass
class IfStmt(Stmt):
    """IF / ELSIF / ELSE; each branch is (condition, statements)."""

    branches: list[tuple[SA.Expr, list[Stmt]]]
    else_body: list[Stmt] = field(default_factory=list)


@dataclass
class LoopStmt(Stmt):
    """Unconditional LOOP ... END LOOP (exits via EXIT/RETURN)."""

    body: list[Stmt]
    label: Optional[str] = None


@dataclass
class WhileStmt(Stmt):
    condition: SA.Expr
    body: list[Stmt]
    label: Optional[str] = None


@dataclass
class ForRangeStmt(Stmt):
    """FOR var IN [REVERSE] lo .. hi [BY step] LOOP ... END LOOP."""

    var: str
    start: SA.Expr
    stop: SA.Expr
    body: list[Stmt]
    step: Optional[SA.Expr] = None
    reverse: bool = False
    label: Optional[str] = None


@dataclass
class ForQueryStmt(Stmt):
    """FOR var IN <query> LOOP — interpreter-only (cursor iteration)."""

    var: str
    query: SA.SelectStmt
    body: list[Stmt]
    label: Optional[str] = None


@dataclass
class ForEachStmt(Stmt):
    """FOREACH var IN ARRAY expr LOOP ... END LOOP."""

    var: str
    array: SA.Expr
    body: list[Stmt]
    label: Optional[str] = None


@dataclass
class ExitStmt(Stmt):
    label: Optional[str] = None
    when: Optional[SA.Expr] = None


@dataclass
class ContinueStmt(Stmt):
    label: Optional[str] = None
    when: Optional[SA.Expr] = None


@dataclass
class ReturnStmt(Stmt):
    expr: Optional[SA.Expr] = None


@dataclass
class PerformStmt(Stmt):
    """PERFORM <query>: evaluate an embedded query, discard the result."""

    query: SA.SelectStmt


@dataclass
class RaiseStmt(Stmt):
    level: str  # 'notice' | 'warning' | 'info' | 'exception'
    message: str
    args: list[SA.Expr] = field(default_factory=list)


@dataclass
class NullStmt(Stmt):
    pass


@dataclass
class BlockStmt(Stmt):
    """Nested DECLARE ... BEGIN ... END block."""

    declarations: list[Declaration]
    body: list[Stmt]
    label: Optional[str] = None


@dataclass
class PlsqlFunctionDef:
    """A parsed PL/pgSQL function."""

    name: str
    param_names: list[str]
    param_types: list[str]
    return_type: str
    declarations: list[Declaration]
    body: list[Stmt]

    def all_variables(self) -> list[tuple[str, str]]:
        """(name, type) of every variable: params, declarations (recursively
        through nested blocks), and loop variables."""
        out: list[tuple[str, str]] = list(zip(self.param_names, self.param_types))
        seen = {n.lower() for n, _ in out}

        def add(name: str, type_name: str) -> None:
            if name.lower() not in seen:
                seen.add(name.lower())
                out.append((name.lower(), type_name))

        def visit(statements: list[Stmt]) -> None:
            for stmt in statements:
                if isinstance(stmt, IfStmt):
                    for _, branch in stmt.branches:
                        visit(branch)
                    visit(stmt.else_body)
                elif isinstance(stmt, (LoopStmt, WhileStmt)):
                    visit(stmt.body)
                elif isinstance(stmt, ForRangeStmt):
                    add(stmt.var, "int")
                    visit(stmt.body)
                elif isinstance(stmt, ForQueryStmt):
                    add(stmt.var, "record")
                    visit(stmt.body)
                elif isinstance(stmt, ForEachStmt):
                    add(stmt.var, "text")
                    visit(stmt.body)
                elif isinstance(stmt, BlockStmt):
                    for declaration in stmt.declarations:
                        add(declaration.name, declaration.type_name)
                    visit(stmt.body)

        for declaration in self.declarations:
            add(declaration.name, declaration.type_name)
        visit(self.body)
        return out
