"""The PL/pgSQL interpreter — the paper's baseline execution model.

Cost model (deliberately PostgreSQL-faithful, since the whole paper is about
these costs):

* Invoking a PL/pgSQL function from SQL is a **Q→f** context switch
  (counted by :meth:`repro.sql.engine.Database.call_function`); the body is
  then executed statement by statement under the ``Interp`` profiling phase.
* Every *embedded query* evaluation — any expression containing a subquery —
  is an **f→Qi** switch: its (cached) plan is *instantiated* anew
  (ExecutorStart), run, and torn down (ExecutorEnd), once per evaluation.
  A loop multiplies this toll, exactly as in Section 1.
* *Simple* expressions (no subquery) take the fast path: a one-time compile,
  then direct evaluation with no ExecutorStart/End — reproducing Table 1's
  ``fibonacci`` row, whose Exec·Start and Exec·End columns are zero.
"""

from __future__ import annotations

from typing import Optional

from ..sql import ast as SA
from ..sql.astutil import walk_expr
from ..sql.catalog import FunctionDef
from ..sql.cancel import NEVER_CANCELED
from ..sql.errors import (NoReturnError, PlsqlRuntimeError,
                          QueryCanceledError)
from ..sql.expr import EvalContext, ExprCompiler, Relation, RuntimeContext, Scope
from ..sql.executor.scan import make_slots
from ..sql.profiler import (EXEC_END, EXEC_RUN, EXEC_START, INTERP, PLAN,
                            SWITCH_F_TO_Q)
from ..sql.types import cast_value
from ..sql.values import Row, Value, render_value
from . import ast as P
from .parser import parse_plpgsql_function

_VARS_REL = "__plsql_vars"


class _Return(Exception):
    def __init__(self, value: Value):
        self.value = value


class _Exit(Exception):
    def __init__(self, label: Optional[str]):
        self.label = label


class _Continue(Exception):
    def __init__(self, label: Optional[str]):
        self.label = label


class CompiledPlExpr:
    """A PL/pgSQL expression compiled against the function's variable scope."""

    __slots__ = ("closure", "subplans", "simple")

    def __init__(self, closure, subplans, simple: bool):
        self.closure = closure
        self.subplans = subplans
        self.simple = simple


def _is_simple(expr: SA.Expr) -> bool:
    """PostgreSQL's "simple expression" test: no embedded query."""
    for node in walk_expr(expr):
        if isinstance(node, (SA.ScalarSubquery, SA.Exists, SA.InSubquery)):
            return False
    return True


class FunctionRuntime:
    """Parsed body + compiled-expression cache, kept on the FunctionDef."""

    def __init__(self, db, fdef: FunctionDef):
        self.db = db
        self.func = parse_plpgsql_function(
            fdef.name, fdef.param_names, fdef.param_types,
            fdef.return_type, fdef.body or "")
        variables = self.func.all_variables()
        self.var_names = [name for name, _ in variables]
        self.var_types = [type_name for _, type_name in variables]
        self.var_index = {name: i for i, name in enumerate(self.var_names)}
        self.scope = Scope([Relation(_VARS_REL, self.var_names)])
        self._expr_cache: dict[int, CompiledPlExpr] = {}
        self._query_cache: dict[int, object] = {}

    def compiled_expr(self, expr: SA.Expr) -> CompiledPlExpr:
        key = id(expr)
        cached = self._expr_cache.get(key)
        if cached is None:
            with self.db.profiler.phase(PLAN):
                compiler = ExprCompiler(self.scope, self.db.planner)
                closure = compiler.compile(expr)
            cached = CompiledPlExpr(closure, compiler.subplans, _is_simple(expr))
            self._expr_cache[key] = cached
        return cached

    def compiled_query(self, query: SA.SelectStmt):
        key = id(query)
        plan = self._query_cache.get(key)
        if plan is None:
            with self.db.profiler.phase(PLAN):
                plan = self.db.planner.plan_select(query, outer_scope=self.scope)
            self._query_cache[key] = plan
        return plan


class Interpreter:
    """One activation of a PL/pgSQL function."""

    def __init__(self, db, runtime: FunctionRuntime, args: list[Value]):
        self.db = db
        self.runtime = runtime
        self.values: list[Value] = [None] * len(runtime.var_names)
        self._stmt_budget = db.max_interp_statements
        self._stmt_count = 0
        # The enclosing SQL statement's cancel token (an activation never
        # outlives its statement), so every interpreted statement polls
        # the same flag the executor loops do.
        cancel = getattr(db, "_active_cancel", None)
        self._cancel = cancel if cancel is not None else NEVER_CANCELED
        func = runtime.func
        for index, (name, type_name) in enumerate(
                zip(func.param_names, func.param_types)):
            self.values[runtime.var_index[name]] = self._coerce(args[index],
                                                                type_name)

    # -- variable helpers --------------------------------------------------

    def _coerce(self, value: Value, type_name: str) -> Value:
        if value is None or type_name.lower() == "record":
            return value
        composite = self.db.catalog.get_type(type_name)
        try:
            return cast_value(value, type_name, composite)
        except Exception:
            return value

    def set_var(self, name: str, value: Value) -> None:
        index = self.runtime.var_index.get(name)
        if index is None:
            raise PlsqlRuntimeError(f"unknown variable {name!r}")
        self.values[index] = self._coerce(value, self.runtime.var_types[index])

    def get_var(self, name: str) -> Value:
        index = self.runtime.var_index.get(name)
        if index is None:
            raise PlsqlRuntimeError(f"unknown variable {name!r}")
        return self.values[index]

    # -- expression / query evaluation ------------------------------------

    def eval_expr(self, expr: SA.Expr) -> Value:
        """Evaluate one PL/pgSQL expression, with the paper's cost model."""
        plan = self.runtime.compiled_expr(expr)
        profiler = self.db.profiler
        rt = RuntimeContext(self.db, ())
        if plan.simple:
            # Fast path: no plan instantiation, no ExecutorStart/End.
            ctx = EvalContext(rt, (tuple(self.values),), slots=())
            profiler.push(EXEC_RUN)
            try:
                return plan.closure(ctx)
            finally:
                profiler.pop()
        # Embedded query: f->Qi context switch with per-evaluation
        # instantiation and teardown.
        profiler.bump(SWITCH_F_TO_Q)
        profiler.push(EXEC_START)
        try:
            slots = make_slots(rt, None, plan.subplans)
            ctx = EvalContext(rt, (tuple(self.values),), slots=slots)
        finally:
            profiler.pop()
        profiler.push(EXEC_RUN)
        try:
            result = plan.closure(ctx)
        finally:
            profiler.pop()
        profiler.push(EXEC_END)
        try:
            for state in slots:
                state.close()
            del slots
        finally:
            profiler.pop()
        return result

    def eval_bool(self, expr: SA.Expr) -> bool:
        return self.eval_expr(expr) is True

    def run_query(self, query: SA.SelectStmt):
        """Run an embedded full query (FOR ... IN SELECT, PERFORM)."""
        plan = self.runtime.compiled_query(query)
        profiler = self.db.profiler
        profiler.bump(SWITCH_F_TO_Q)
        rt = RuntimeContext(self.db, ())
        outer = EvalContext(rt, (tuple(self.values),))
        profiler.push(EXEC_START)
        try:
            state = plan.instantiate(rt)
            state.open(outer)
        finally:
            profiler.pop()
        profiler.push(EXEC_RUN)
        try:
            rows = state.fetch_all()
        finally:
            profiler.pop()
        profiler.push(EXEC_END)
        try:
            state.close()
            del state
        finally:
            profiler.pop()
        return rows, list(plan.output_columns)

    # -- statement execution ---------------------------------------------

    def run(self) -> Value:
        func = self.runtime.func
        for declaration in func.declarations:
            if declaration.default is not None:
                self.set_var(declaration.name, self.eval_expr(declaration.default))
        try:
            self.exec_block(func.body)
        except _Return as signal:
            return self._coerce(signal.value, func.return_type)
        raise NoReturnError(
            f"control reached end of function {func.name}() without RETURN")

    def exec_block(self, statements: list[P.Stmt]) -> None:
        for stmt in statements:
            self.exec_stmt(stmt)

    #: Leaf statements attributed individually in per-statement profiles
    #: (containers like IF/FOR would double-count their bodies).
    _PROFILED_LEAVES = ("Assign", "ReturnStmt", "PerformStmt", "ExitStmt",
                        "ContinueStmt")

    def _tick(self) -> None:
        """Charge one statement against the activation's budget."""
        self._cancel.check()
        self._stmt_count += 1
        if self._stmt_count > self._stmt_budget:
            # Budget exhaustion is resource governance cutting off a
            # (most likely) non-terminating loop — the same family as a
            # statement timeout, so it classifies under SQLSTATE 57014
            # rather than as a generic execution error.
            raise QueryCanceledError(
                f"statement budget exceeded in {self.runtime.func.name}() "
                f"after {self._stmt_budget} statements "
                f"(max_interp_statements={self._stmt_budget}); "
                "non-terminating loop?")

    def exec_stmt(self, stmt: P.Stmt) -> None:
        self._tick()
        kind = type(stmt).__name__
        method = getattr(self, "_exec_" + kind, None)
        if method is None:
            raise PlsqlRuntimeError(f"unsupported statement {kind}")
        profile = self.db.plsql_statement_profile
        if profile is None or kind not in self._PROFILED_LEAVES:
            method(stmt)
            return
        times = self.db.profiler.times
        before = dict(times)
        try:
            method(stmt)
        finally:
            entry = profile.setdefault(stmt_label(stmt), {})
            for phase, total in times.items():
                delta = total - before.get(phase, 0.0)
                if delta > 0:
                    entry[phase] = entry.get(phase, 0.0) + delta

    def _exec_Assign(self, stmt: P.Assign) -> None:
        self.set_var(stmt.target, self.eval_expr(stmt.expr))

    def _exec_IfStmt(self, stmt: P.IfStmt) -> None:
        for condition, body in stmt.branches:
            if self.eval_bool(condition):
                self.exec_block(body)
                return
        self.exec_block(stmt.else_body)

    def _loop_body(self, stmt, body: list[P.Stmt]) -> bool:
        """Run one iteration; return False when the loop should stop."""
        # Charge the iteration itself, so even an empty or condition-only
        # loop (WHILE ... LOOP END LOOP) stays within the statement budget.
        self._tick()
        try:
            self.exec_block(body)
        except _Exit as signal:
            if signal.label is None or signal.label == stmt.label:
                return False
            raise
        except _Continue as signal:
            if signal.label is None or signal.label == stmt.label:
                return True
            raise
        return True

    def _exec_LoopStmt(self, stmt: P.LoopStmt) -> None:
        while True:
            if not self._loop_body(stmt, stmt.body):
                return

    def _exec_WhileStmt(self, stmt: P.WhileStmt) -> None:
        while self.eval_bool(stmt.condition):
            if not self._loop_body(stmt, stmt.body):
                return

    def _exec_ForRangeStmt(self, stmt: P.ForRangeStmt) -> None:
        start = self.eval_expr(stmt.start)
        stop = self.eval_expr(stmt.stop)
        if start is None or stop is None:
            raise PlsqlRuntimeError("FOR range bounds must not be NULL")
        step = 1
        if stmt.step is not None:
            step = self.eval_expr(stmt.step)
            if step is None or step <= 0:
                raise PlsqlRuntimeError("BY value of FOR loop must be positive")
        current = int(start)
        stop = int(stop)
        while (current >= stop) if stmt.reverse else (current <= stop):
            self.set_var(stmt.var, current)
            if not self._loop_body(stmt, stmt.body):
                return
            current += -step if stmt.reverse else step

    def _exec_ForQueryStmt(self, stmt: P.ForQueryStmt) -> None:
        rows, columns = self.run_query(stmt.query)
        for row in rows:
            value: Value = row[0] if len(row) == 1 else Row(row, names=columns)
            self.set_var(stmt.var, value)
            if not self._loop_body(stmt, stmt.body):
                return

    def _exec_ForEachStmt(self, stmt: P.ForEachStmt) -> None:
        array = self.eval_expr(stmt.array)
        if array is None:
            return
        if not isinstance(array, list):
            raise PlsqlRuntimeError("FOREACH expects an array expression")
        for element in array:
            self.set_var(stmt.var, element)
            if not self._loop_body(stmt, stmt.body):
                return

    def _exec_ExitStmt(self, stmt: P.ExitStmt) -> None:
        if stmt.when is None or self.eval_bool(stmt.when):
            raise _Exit(stmt.label)

    def _exec_ContinueStmt(self, stmt: P.ContinueStmt) -> None:
        if stmt.when is None or self.eval_bool(stmt.when):
            raise _Continue(stmt.label)

    def _exec_ReturnStmt(self, stmt: P.ReturnStmt) -> None:
        value = self.eval_expr(stmt.expr) if stmt.expr is not None else None
        raise _Return(value)

    def _exec_PerformStmt(self, stmt: P.PerformStmt) -> None:
        self.run_query(stmt.query)

    def _exec_RaiseStmt(self, stmt: P.RaiseStmt) -> None:
        message = stmt.message
        for arg in stmt.args:
            value = self.eval_expr(arg)
            message = message.replace("%", render_value(value), 1)
        if stmt.level == "exception":
            raise PlsqlRuntimeError(message)
        self.db.notices.append(f"{stmt.level.upper()}: {message}")

    def _exec_NullStmt(self, stmt: P.NullStmt) -> None:
        pass

    def _exec_BlockStmt(self, stmt: P.BlockStmt) -> None:
        for declaration in stmt.declarations:
            default = (self.eval_expr(declaration.default)
                       if declaration.default is not None else None)
            self.set_var(declaration.name, default)
        try:
            self.exec_block(stmt.body)
        except _Exit as signal:
            if signal.label is not None and signal.label == stmt.label:
                return
            raise


def stmt_label(stmt: P.Stmt) -> str:
    """A short, human-readable label for one statement (Figure 3 bars)."""
    from ..compiler.dialects import render_expression

    def render(expr) -> str:
        return " ".join(render_expression(expr).split())

    if isinstance(stmt, P.Assign):
        rendered = render(stmt.expr)
        if len(rendered) > 40:
            rendered = rendered[:37] + "..."
        return f"{stmt.target} = {rendered}"
    if isinstance(stmt, P.ReturnStmt):
        if stmt.expr is None:
            return "RETURN"
        rendered = render(stmt.expr)
        return f"RETURN {rendered[:34]}" + ("..." if len(rendered) > 34 else "")
    if isinstance(stmt, P.PerformStmt):
        return "PERFORM ..."
    if isinstance(stmt, P.ExitStmt):
        return "EXIT" + (f" {stmt.label}" if stmt.label else "")
    if isinstance(stmt, P.ContinueStmt):
        return "CONTINUE" + (f" {stmt.label}" if stmt.label else "")
    return type(stmt).__name__


def call_plpgsql(db, fdef: FunctionDef, args: list[Value]) -> Value:
    """Interpret one invocation of PL/pgSQL function *fdef* (Q→f switch)."""
    if fdef.parsed_body is None:
        with db.profiler.phase(PLAN):
            fdef.parsed_body = FunctionRuntime(db, fdef)
    runtime: FunctionRuntime = fdef.parsed_body  # type: ignore[assignment]
    db.profiler.push(INTERP)
    try:
        return Interpreter(db, runtime, args).run()
    finally:
        db.profiler.pop()
