"""SSA-level optimizations.

"The SSA invariant facilitates a wide range of code simplifications, among
these the tracking of redundant code, constant propagation, or strength
reduction" (paper, Section 2).  We implement the classic set — each pass is
small because SSA makes them small:

* φ simplification (single-operand / all-identical φs become copies),
* copy propagation and constant propagation,
* constant folding (pure operators only; division is never folded unless
  the divisor is a non-zero literal — errors must stay at run time),
* dead code elimination (volatile expressions such as ``random()`` are
  never removed: the compiled function must draw the same random sequence
  as the interpreted one),
* jump threading (empty forwarding blocks disappear),
* block merging (straight-line chains collapse — this is what shrinks the
  paper's L0 into L1 between Figures 5 and 6).

All passes preserve the SSA invariants; :func:`optimize_ssa` iterates them
to a fixpoint (bounded), and the pipeline can disable them for ablation.
"""

from __future__ import annotations

from typing import Optional

from ..sql import ast as A
from ..sql.astutil import walk_expr
from ..sql.functions import VOLATILE_FUNCTIONS
from ..sql.values import sql_and, sql_eq, sql_ge, sql_gt, sql_le, sql_lt, sql_ne, sql_not, sql_or
from .cfg import CondGoto, Goto, Return
from .rename import collect_variable_uses, rename_variables
from .ssa import Phi, SsaAssign, SsaProgram


def expr_is_volatile(expr: A.Expr) -> bool:
    """True when *expr* (or an embedded query) calls a volatile function."""
    for node in walk_expr(expr):
        if isinstance(node, A.FuncCall) and node.name.lower() in VOLATILE_FUNCTIONS:
            return True
        if isinstance(node, A.ScalarSubquery):
            if _select_is_volatile(node.query):
                return True
        elif isinstance(node, A.Exists):
            if _select_is_volatile(node.subquery):
                return True
        elif isinstance(node, A.InSubquery):
            if _select_is_volatile(node.subquery):
                return True
    return False


def _select_is_volatile(stmt: A.SelectStmt) -> bool:
    from ..sql.astutil import _walk_select

    hit = False

    class _Visitor:
        def visit(self, expr: A.Expr) -> None:
            nonlocal hit
            if not hit and expr_is_volatile(expr):
                hit = True

    _walk_select(stmt, _Visitor())
    return hit


class _Subst:
    """name -> replacement expression (copies and constants)."""

    def __init__(self, catalog=None):
        self.map: dict[str, A.Expr] = {}
        self.catalog = catalog

    def resolve(self, name: str) -> Optional[A.Expr]:
        seen = set()
        expr: Optional[A.Expr] = None
        current = name
        while current in self.map and current not in seen:
            seen.add(current)
            expr = self.map[current]
            if isinstance(expr, A.ColumnRef) and len(expr.parts) == 1:
                current = expr.parts[0]
            else:
                break
        return expr

    def resolve_name(self, name: str) -> str:
        """Follow copy chains name -> name (for φ operands)."""
        seen = set()
        current = name
        while current in self.map and current not in seen:
            seen.add(current)
            expr = self.map[current]
            if isinstance(expr, A.ColumnRef) and len(expr.parts) == 1:
                current = expr.parts[0]
            else:
                break
        return current

    def apply(self, expr: A.Expr) -> A.Expr:
        if not self.map:
            return expr
        return rename_variables(expr, self.resolve, self.catalog)


def optimize_ssa(program: SsaProgram, catalog=None,
                 max_rounds: int = 10) -> SsaProgram:
    """Run the optimization pipeline to a (bounded) fixpoint, in place."""
    for _ in range(max_rounds):
        changed = False
        changed |= simplify_phis(program)
        changed |= propagate_copies_and_constants(program, catalog)
        changed |= fold_constants(program)
        changed |= eliminate_dead_code(program, catalog)
        changed |= thread_jumps(program)
        changed |= merge_blocks(program)
        if not changed:
            break
    return program


# ---------------------------------------------------------------------------
# Individual passes
# ---------------------------------------------------------------------------


def simplify_phis(program: SsaProgram) -> bool:
    """φs whose operands all agree (modulo self-reference) become copies."""
    changed = False
    for block in program.blocks.values():
        kept: list[Phi] = []
        for phi in block.phis:
            operands = {operand for pred, operand in phi.args.items()
                        if operand != phi.target}
            if len(phi.args) <= 1 or len(operands) == 1:
                operand = next(iter(operands)) if operands else None
                expr: A.Expr = (A.ColumnRef((operand,)) if operand is not None
                                else A.Literal(None))
                block.stmts.insert(0, SsaAssign(phi.target, expr))
                changed = True
            else:
                kept.append(phi)
        block.phis = kept
    return changed


def propagate_copies_and_constants(program: SsaProgram, catalog=None) -> bool:
    """Substitute ``x_k := y_j`` copies and ``x_k := literal`` constants."""
    subst = _Subst(catalog)
    for block in program.blocks.values():
        for stmt in block.stmts:
            expr = stmt.expr
            if isinstance(expr, A.Literal):
                subst.map[stmt.target] = expr
            elif isinstance(expr, A.ColumnRef) and len(expr.parts) == 1 \
                    and expr.parts[0] in program.var_types:
                subst.map[stmt.target] = expr
    if not subst.map:
        return False
    changed = False
    for block in program.blocks.values():
        for phi in block.phis:
            for pred, operand in list(phi.args.items()):
                if operand is None:
                    continue
                resolved = subst.resolve_name(operand)
                if resolved != operand:
                    phi.args[pred] = resolved
                    changed = True
        for stmt in block.stmts:
            new_expr = subst.apply(stmt.expr)
            if new_expr is not stmt.expr:
                stmt.expr = new_expr
                changed = True
        terminator = block.terminator
        if isinstance(terminator, CondGoto):
            new_cond = subst.apply(terminator.condition)
            if new_cond is not terminator.condition:
                terminator.condition = new_cond
                changed = True
        elif isinstance(terminator, Return):
            new_expr = subst.apply(terminator.expr)
            if new_expr is not terminator.expr:
                terminator.expr = new_expr
                changed = True
    return changed


_FOLD_COMPARE = {"=": sql_eq, "<>": sql_ne, "<": sql_lt, "<=": sql_le,
                 ">": sql_gt, ">=": sql_ge}


def _fold_expr(expr: A.Expr) -> A.Expr:
    """Bottom-up constant folding of pure scalar operators."""
    import dataclasses

    # Fold children first (shallow rebuild, not crossing subqueries).
    changes = {}
    for fld in dataclasses.fields(expr):  # type: ignore[arg-type]
        value = getattr(expr, fld.name)
        if isinstance(value, A.Expr):
            new = _fold_expr(value)
            if new is not value:
                changes[fld.name] = new
        elif isinstance(value, list) and value and all(
                isinstance(v, (A.Expr, tuple)) for v in value):
            new_list = []
            dirty = False
            for element in value:
                if isinstance(element, A.Expr):
                    new_element = _fold_expr(element)
                elif isinstance(element, tuple):
                    new_element = tuple(_fold_expr(p) if isinstance(p, A.Expr)
                                        else p for p in element)
                else:
                    new_element = element
                dirty = dirty or new_element is not element
                new_list.append(new_element)
            if dirty:
                changes[fld.name] = new_list
    if changes:
        expr = dataclasses.replace(expr, **changes)  # type: ignore[type-var]

    if isinstance(expr, A.UnaryOp) and isinstance(expr.operand, A.Literal):
        value = expr.operand.value
        if expr.op == "not" and (value is None or isinstance(value, bool)):
            return A.Literal(sql_not(value))
        if expr.op == "-" and isinstance(value, (int, float)) \
                and not isinstance(value, bool):
            return A.Literal(-value)
    if isinstance(expr, A.BinaryOp) and isinstance(expr.left, A.Literal) \
            and isinstance(expr.right, A.Literal):
        a, b = expr.left.value, expr.right.value
        op = expr.op
        try:
            if op in _FOLD_COMPARE:
                return A.Literal(_FOLD_COMPARE[op](a, b))
            if op == "and":
                return A.Literal(sql_and(a, b))
            if op == "or":
                return A.Literal(sql_or(a, b))
            if a is None or b is None:
                if op in ("+", "-", "*", "/", "%", "||"):
                    return A.Literal(None)
            elif isinstance(a, (int, float)) and isinstance(b, (int, float)) \
                    and not isinstance(a, bool) and not isinstance(b, bool):
                if op == "+":
                    return A.Literal(a + b)
                if op == "-":
                    return A.Literal(a - b)
                if op == "*":
                    return A.Literal(a * b)
                # '/' and '%' fold only for non-zero literal divisors.
                if op in ("/", "%") and b != 0:
                    from ..sql.expr import _div, _mod
                    return A.Literal(_div(a, b) if op == "/" else _mod(a, b))
            elif isinstance(a, str) and isinstance(b, str) and op == "||":
                return A.Literal(a + b)
        except Exception:
            return expr
    if isinstance(expr, A.CaseExpr) and expr.operand is None:
        whens = []
        for condition, result in expr.whens:
            if isinstance(condition, A.Literal):
                if condition.value is True:
                    if not whens:
                        return result
                    whens.append((condition, result))
                    break
                continue  # constant false/NULL: branch unreachable
            whens.append((condition, result))
        if not whens:
            return expr.else_result if expr.else_result is not None \
                else A.Literal(None)
        if whens != expr.whens:
            return A.CaseExpr(None, whens, expr.else_result)
    if isinstance(expr, A.FuncCall) and expr.name.lower() == "coalesce":
        args = expr.args
        out = []
        for arg in args:
            if isinstance(arg, A.Literal):
                if arg.value is not None:
                    out.append(arg)
                    break
                continue
            out.append(arg)
        if len(out) == 1:
            return out[0]
        if not out:
            return A.Literal(None)
        if len(out) != len(args):
            return A.FuncCall("coalesce", out)
    return expr


def fold_constants(program: SsaProgram) -> bool:
    changed = False
    for block in program.blocks.values():
        for stmt in block.stmts:
            folded = _fold_expr(stmt.expr)
            if folded is not stmt.expr:
                stmt.expr = folded
                changed = True
        terminator = block.terminator
        if isinstance(terminator, CondGoto):
            folded = _fold_expr(terminator.condition)
            if folded is not terminator.condition:
                terminator.condition = folded
                changed = True
            if isinstance(terminator.condition, A.Literal):
                target = (terminator.then_target
                          if terminator.condition.value is True
                          else terminator.else_target)
                block.terminator = Goto(target)
                changed = True
        elif isinstance(terminator, Return):
            folded = _fold_expr(terminator.expr)
            if folded is not terminator.expr:
                terminator.expr = folded
                changed = True
    return changed


def eliminate_dead_code(program: SsaProgram, catalog=None) -> bool:
    """Remove assignments and φs whose targets are never used.

    Volatile expressions (``random()``) survive: removing one would shift
    the RNG sequence and desynchronise compiled vs interpreted runs.
    """
    names = set(program.var_types)
    changed = False
    while True:
        used: set[str] = set()
        for block in program.blocks.values():
            for phi in block.phis:
                for operand in phi.args.values():
                    if operand is not None:
                        used.add(operand)
            for stmt in block.stmts:
                used |= collect_variable_uses(stmt.expr, names, catalog)
            terminator = block.terminator
            if isinstance(terminator, CondGoto):
                used |= collect_variable_uses(terminator.condition, names, catalog)
            elif isinstance(terminator, Return):
                used |= collect_variable_uses(terminator.expr, names, catalog)
        removed = False
        for block in program.blocks.values():
            kept_stmts = []
            for stmt in block.stmts:
                if stmt.target not in used and not expr_is_volatile(stmt.expr):
                    removed = True
                    continue
                kept_stmts.append(stmt)
            block.stmts = kept_stmts
            kept_phis = []
            for phi in block.phis:
                if phi.target not in used:
                    removed = True
                    continue
                kept_phis.append(phi)
            block.phis = kept_phis
        if not removed:
            break
        changed = True
    return changed


def thread_jumps(program: SsaProgram) -> bool:
    """Bypass empty blocks that merely ``goto`` somewhere else."""
    changed = False
    preds = program.predecessors()
    for bid in program.block_ids():
        block = program.blocks.get(bid)
        if block is None or bid == program.entry:
            continue
        if block.phis or block.stmts or not isinstance(block.terminator, Goto):
            continue
        target_bid = block.terminator.target
        if target_bid == bid:
            continue  # self-loop (infinite loop) — leave alone
        target = program.blocks[target_bid]
        redirected_all = True
        for pred_bid in list(preds.get(bid, ())):
            pred = program.blocks.get(pred_bid)
            if pred is None:
                continue
            # Don't create a duplicate edge with conflicting φ operands.
            conflict = False
            if pred_bid in preds.get(target_bid, ()):
                for phi in target.phis:
                    if phi.args.get(pred_bid) != phi.args.get(bid):
                        conflict = True
                        break
            if conflict:
                redirected_all = False
                continue
            _redirect(pred, bid, target_bid)
            for phi in target.phis:
                phi.args[pred_bid] = phi.args.get(bid)
            preds.setdefault(target_bid, []).append(pred_bid)
            preds[bid].remove(pred_bid)
            changed = True
        if redirected_all and not preds.get(bid):
            for phi in target.phis:
                phi.args.pop(bid, None)
            del program.blocks[bid]
            changed = True
    return changed


def _redirect(block, old_target: int, new_target: int) -> None:
    terminator = block.terminator
    if isinstance(terminator, Goto) and terminator.target == old_target:
        terminator.target = new_target
    elif isinstance(terminator, CondGoto):
        if terminator.then_target == old_target:
            terminator.then_target = new_target
        if terminator.else_target == old_target:
            terminator.else_target = new_target


def merge_blocks(program: SsaProgram) -> bool:
    """Merge B into A when A ends ``goto B`` and B's only pred is A."""
    changed = False
    while True:
        preds = program.predecessors()
        merged = False
        for bid in program.block_ids():
            block = program.blocks.get(bid)
            if block is None or not isinstance(block.terminator, Goto):
                continue
            target_bid = block.terminator.target
            if target_bid == bid or target_bid == program.entry:
                continue
            if len(preds.get(target_bid, [])) != 1:
                continue
            target = program.blocks[target_bid]
            if target.phis:
                # Single-pred φs should have been simplified already; be safe.
                continue
            block.stmts.extend(target.stmts)
            block.terminator = target.terminator
            # Successor φs that referenced the merged block now come from us.
            for successor in target.successors():
                succ = program.blocks.get(successor)
                if succ is None:
                    continue
                for phi in succ.phis:
                    if target_bid in phi.args:
                        phi.args[bid] = phi.args.pop(target_bid)
            del program.blocks[target_bid]
            merged = True
            changed = True
            break
        if not merged:
            return changed
