"""Lowering PL/pgSQL to a goto-based control-flow graph.

First half of the paper's **SSA** step: "the zoo of PL/SQL control flow
constructs — including LOOP, EXIT (to label), CONTINUE (at label), FOREACH,
FOR, WHILE — are now exclusively expressed in terms of goto and jump labels".

The CFG keeps expressions as SQL AST nodes with the *original* variable
names; versioning happens in :mod:`repro.compiler.ssa`.  Statements inside
blocks are plain assignments; control transfer lives only in block
terminators (``goto`` / conditional ``goto`` / ``return``).

Lowering notes (all matching PostgreSQL semantics):

* every declared variable is initialised at entry (default or NULL),
* FOR bounds (and BY) are evaluated once, into hidden temporaries,
* FOREACH desugars to an index loop over a hidden array temporary,
* PERFORM wraps its query in ``(SELECT count(*) FROM (...) ...)`` so the
  query is fully evaluated and the result discarded,
* RAISE NOTICE/... is dropped (side-effect-free in our engine's model);
  RAISE EXCEPTION cannot be compiled away and raises
  :class:`~repro.sql.errors.CompileError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..plsql import ast as P
from ..sql import ast as A
from ..sql.errors import CompileError


@dataclass
class CfgAssign:
    """``target <- expr`` (expr may embed SQL queries)."""

    target: str
    expr: A.Expr
    #: Source line of the originating statement (None for synthesised code);
    #: carried for the static analyzer's diagnostics, ignored by codegen.
    line: Optional[int] = None
    #: True for the builder's default-less declaration initialisers
    #: (``name <- NULL``): real to codegen, but not a *programmer* write —
    #: the analyzer's def-use passes skip them.
    implicit: bool = False
    #: True for any declaration initialiser, explicit default included.
    #: The dead-store pass exempts these: ``x int := 0`` followed by an
    #: unconditional reassignment is a defensive idiom, not a bug.
    decl: bool = False


class Terminator:
    __slots__ = ()


@dataclass
class Goto(Terminator):
    target: int


@dataclass
class CondGoto(Terminator):
    condition: A.Expr
    then_target: int
    else_target: int
    line: Optional[int] = None


@dataclass
class Return(Terminator):
    expr: A.Expr
    #: True for the builder's fall-off-the-end return (no RETURN statement
    #: in the source reached this point).
    synthetic: bool = False
    #: True when this exit models RAISE EXCEPTION (analysis mode only) —
    #: a legitimate way to leave the function without returning a value.
    raises: bool = False
    line: Optional[int] = None


@dataclass
class BasicBlock:
    bid: int
    stmts: list[CfgAssign] = field(default_factory=list)
    terminator: Optional[Terminator] = None

    @property
    def label(self) -> str:
        return f"L{self.bid}"

    def successors(self) -> list[int]:
        t = self.terminator
        if isinstance(t, Goto):
            return [t.target]
        if isinstance(t, CondGoto):
            return [t.then_target, t.else_target]
        return []


@dataclass
class ControlFlowGraph:
    func_name: str
    params: list[str]
    param_types: list[str]
    return_type: str
    var_types: dict[str, str]
    blocks: dict[int, BasicBlock]
    entry: int

    def block_ids(self) -> list[int]:
        return sorted(self.blocks)

    def predecessors(self) -> dict[int, list[int]]:
        preds: dict[int, list[int]] = {bid: [] for bid in self.blocks}
        for bid, block in self.blocks.items():
            for successor in block.successors():
                preds[successor].append(bid)
        return preds

    def variables(self) -> set[str]:
        return set(self.var_types)

    def pretty(self) -> str:
        """Render the CFG in the paper's Figure 5 style."""
        from .dialects import render_expression
        lines = [f"function {self.func_name}({', '.join(self.params)})", "{"]
        for bid in self.block_ids():
            block = self.blocks[bid]
            lines.append(f"  {block.label}:")
            for stmt in block.stmts:
                lines.append(f"    {stmt.target} <- "
                             f"{render_expression(stmt.expr)};")
            t = block.terminator
            if isinstance(t, Goto):
                lines.append(f"    goto L{t.target};")
            elif isinstance(t, CondGoto):
                lines.append(f"    if {render_expression(t.condition)} "
                             f"then goto L{t.then_target} "
                             f"else goto L{t.else_target};")
            elif isinstance(t, Return):
                lines.append(f"    return {render_expression(t.expr)};")
        lines.append("}")
        return "\n".join(lines)


class _LoopContext:
    __slots__ = ("label", "break_target", "continue_target", "is_loop")

    def __init__(self, label: Optional[str], break_target: int,
                 continue_target: Optional[int], is_loop: bool = True):
        self.label = label
        self.break_target = break_target
        self.continue_target = continue_target
        self.is_loop = is_loop


class CfgBuilder:
    """Lowers one :class:`~repro.plsql.ast.PlsqlFunctionDef` to a CFG.

    With ``for_analysis=True`` the builder lowers interpreter-only
    constructs too, so the static analyzer can see every function: RAISE
    EXCEPTION becomes a ``Return(raises=True)`` exit and ``FOR ... IN
    <query>`` becomes a loop with an opaque condition.  Such CFGs are for
    inspection only — never feed them to the SSA/codegen pipeline.
    """

    def __init__(self, func: P.PlsqlFunctionDef, for_analysis: bool = False):
        self.func = func
        self.for_analysis = for_analysis
        self.blocks: dict[int, BasicBlock] = {}
        self.loops: list[_LoopContext] = []
        self.var_types: dict[str, str] = {}
        self._temp_counter = 0
        self._current: Optional[BasicBlock] = None
        self._line: Optional[int] = None

    # -- block helpers -----------------------------------------------------

    def new_block(self) -> BasicBlock:
        block = BasicBlock(bid=len(self.blocks))
        self.blocks[block.bid] = block
        return block

    def switch_to(self, block: BasicBlock) -> None:
        self._current = block

    def emit(self, target: str, expr: A.Expr,
             implicit: bool = False, decl: bool = False) -> None:
        assert self._current is not None and self._current.terminator is None
        self._current.stmts.append(CfgAssign(target.lower(), expr,
                                             line=self._line,
                                             implicit=implicit,
                                             decl=decl))

    def terminate(self, terminator: Terminator) -> None:
        assert self._current is not None
        if self._current.terminator is None:
            if getattr(terminator, "line", "absent") is None:
                terminator.line = self._line
            self._current.terminator = terminator

    def _ensure_open(self) -> None:
        """After RETURN/EXIT mid-block, keep lowering into a fresh
        (unreachable) block so the remaining statements stay well formed."""
        if self._current is None or self._current.terminator is not None:
            self.switch_to(self.new_block())

    def temp(self, prefix: str, type_name: str = "int") -> str:
        self._temp_counter += 1
        name = f"__{prefix}{self._temp_counter}"
        self.var_types[name] = type_name
        return name

    # -- entry point --------------------------------------------------------

    def build(self) -> ControlFlowGraph:
        func = self.func
        for name, type_name in zip(func.param_names, func.param_types):
            self.var_types[name.lower()] = type_name
        entry = self.new_block()
        self.switch_to(entry)
        self._declare_all(func.declarations)
        self.lower_statements(func.body)
        # Falling off the end raises at run time, matching PostgreSQL
        # (SQLSTATE 2F005): the synthetic terminator calls the raising
        # __no_return builtin.  Unreachable for functions that always
        # RETURN — SSA drops the dead blocks and nothing changes for them.
        self._line = None
        self.terminate(self._fall_off_return())
        for block in self.blocks.values():
            if block.terminator is None:
                block.terminator = self._fall_off_return()
        return ControlFlowGraph(
            func_name=func.name,
            params=[p.lower() for p in func.param_names],
            param_types=list(func.param_types),
            return_type=func.return_type,
            var_types=dict(self.var_types),
            blocks=self.blocks,
            entry=entry.bid,
        )

    def _fall_off_return(self) -> Return:
        return Return(A.FuncCall("__no_return", [A.Literal(self.func.name)]),
                      synthetic=True)

    def _declare_all(self, declarations: list[P.Declaration]) -> None:
        for declaration in declarations:
            name = declaration.name.lower()
            if name in self.var_types:
                raise CompileError(f"variable {name!r} declared twice")
            self.var_types[name] = declaration.type_name
            default = declaration.default if declaration.default is not None \
                else A.Literal(None)
            self._line = declaration.line
            self.emit(name, default, implicit=declaration.default is None,
                      decl=True)

    # -- statements ----------------------------------------------------------

    def lower_statements(self, statements: list[P.Stmt]) -> None:
        for stmt in statements:
            self._ensure_open()
            self.lower_statement(stmt)

    def lower_statement(self, stmt: P.Stmt) -> None:
        method = getattr(self, "_lower_" + type(stmt).__name__, None)
        if method is None:
            raise CompileError(
                f"cannot compile statement {type(stmt).__name__} "
                "(interpreter-only construct)")
        self._line = stmt.line
        method(stmt)

    def _lower_Assign(self, stmt: P.Assign) -> None:
        if stmt.target not in self.var_types:
            if not self.for_analysis:
                raise CompileError(f"assignment to undeclared variable "
                                   f"{stmt.target!r}")
            # Analysis mode keeps lowering; the analyzer reports the
            # undeclared target as its own diagnostic.
            self.var_types[stmt.target.lower()] = "unknown"
        self.emit(stmt.target, stmt.expr)

    def _lower_NullStmt(self, stmt: P.NullStmt) -> None:
        pass

    def _lower_ReturnStmt(self, stmt: P.ReturnStmt) -> None:
        expr = stmt.expr if stmt.expr is not None else A.Literal(None)
        self.terminate(Return(expr))

    def _lower_IfStmt(self, stmt: P.IfStmt) -> None:
        join = self.new_block()
        for condition, body in stmt.branches:
            then_block = self.new_block()
            else_block = self.new_block()
            self.terminate(CondGoto(condition, then_block.bid, else_block.bid))
            self.switch_to(then_block)
            self.lower_statements(body)
            self.terminate(Goto(join.bid))
            self.switch_to(else_block)
        self.lower_statements(stmt.else_body)
        self.terminate(Goto(join.bid))
        self.switch_to(join)

    def _lower_LoopStmt(self, stmt: P.LoopStmt) -> None:
        header = self.new_block()
        exit_block = self.new_block()
        self.terminate(Goto(header.bid))
        self.switch_to(header)
        self.loops.append(_LoopContext(stmt.label, exit_block.bid, header.bid))
        self.lower_statements(stmt.body)
        self.terminate(Goto(header.bid))
        self.loops.pop()
        self.switch_to(exit_block)

    def _lower_WhileStmt(self, stmt: P.WhileStmt) -> None:
        header = self.new_block()
        body_block = self.new_block()
        exit_block = self.new_block()
        self.terminate(Goto(header.bid))
        self.switch_to(header)
        self.terminate(CondGoto(stmt.condition, body_block.bid, exit_block.bid))
        self.switch_to(body_block)
        self.loops.append(_LoopContext(stmt.label, exit_block.bid, header.bid))
        self.lower_statements(stmt.body)
        self.terminate(Goto(header.bid))
        self.loops.pop()
        self.switch_to(exit_block)

    def _lower_ForRangeStmt(self, stmt: P.ForRangeStmt) -> None:
        var = stmt.var.lower()
        self.var_types.setdefault(var, "int")
        stop = self.temp("stop")
        self.emit(stop, stmt.stop)
        step: Optional[str] = None
        if stmt.step is not None:
            step = self.temp("step")
            self.emit(step, stmt.step)
        self.emit(var, stmt.start)
        header = self.new_block()
        body_block = self.new_block()
        incr_block = self.new_block()
        exit_block = self.new_block()
        self.terminate(Goto(header.bid))
        self.switch_to(header)
        comparison = ">=" if stmt.reverse else "<="
        condition = A.BinaryOp(comparison, A.ColumnRef((var,)),
                               A.ColumnRef((stop,)))
        self.terminate(CondGoto(condition, body_block.bid, exit_block.bid))
        self.switch_to(body_block)
        self.loops.append(_LoopContext(stmt.label, exit_block.bid, incr_block.bid))
        self.lower_statements(stmt.body)
        self.terminate(Goto(incr_block.bid))
        self.loops.pop()
        self.switch_to(incr_block)
        step_expr: A.Expr = A.ColumnRef((step,)) if step else A.Literal(1)
        op = "-" if stmt.reverse else "+"
        self.emit(var, A.BinaryOp(op, A.ColumnRef((var,)), step_expr))
        self.terminate(Goto(header.bid))
        self.switch_to(exit_block)

    def _lower_ForEachStmt(self, stmt: P.ForEachStmt) -> None:
        var = stmt.var.lower()
        self.var_types.setdefault(var, "text")
        array = self.temp("arr", "text[]")
        index = self.temp("idx")
        self.emit(array, stmt.array)
        self.emit(index, A.Literal(1))
        header = self.new_block()
        body_block = self.new_block()
        incr_block = self.new_block()
        exit_block = self.new_block()
        self.terminate(Goto(header.bid))
        self.switch_to(header)
        condition = A.BinaryOp(
            "<=", A.ColumnRef((index,)),
            A.FuncCall("coalesce",
                       [A.FuncCall("cardinality", [A.ColumnRef((array,))]),
                        A.Literal(0)]))
        self.terminate(CondGoto(condition, body_block.bid, exit_block.bid))
        self.switch_to(body_block)
        self.emit(var, A.ArrayIndex(A.ColumnRef((array,)), A.ColumnRef((index,))))
        self.loops.append(_LoopContext(stmt.label, exit_block.bid, incr_block.bid))
        self.lower_statements(stmt.body)
        self.terminate(Goto(incr_block.bid))
        self.loops.pop()
        self.switch_to(incr_block)
        self.emit(index, A.BinaryOp("+", A.ColumnRef((index,)), A.Literal(1)))
        self.terminate(Goto(header.bid))
        self.switch_to(exit_block)

    def _find_loop(self, label: Optional[str], want_continue: bool) -> _LoopContext:
        for context in reversed(self.loops):
            if label is None and not context.is_loop:
                continue  # unlabelled EXIT targets loops, not blocks
            if label is None or context.label == label:
                if want_continue and context.continue_target is None:
                    continue
                return context
        what = "CONTINUE" if want_continue else "EXIT"
        raise CompileError(f"{what}{' ' + label if label else ''} outside a "
                           "matching loop")

    def _lower_ExitStmt(self, stmt: P.ExitStmt) -> None:
        context = self._find_loop(stmt.label, want_continue=False)
        self._conditional_jump(stmt.when, context.break_target)

    def _lower_ContinueStmt(self, stmt: P.ContinueStmt) -> None:
        context = self._find_loop(stmt.label, want_continue=True)
        assert context.continue_target is not None
        self._conditional_jump(stmt.when, context.continue_target)

    def _conditional_jump(self, when: Optional[A.Expr], target: int) -> None:
        if when is None:
            self.terminate(Goto(target))
            return
        fallthrough = self.new_block()
        self.terminate(CondGoto(when, target, fallthrough.bid))
        self.switch_to(fallthrough)

    def _lower_BlockStmt(self, stmt: P.BlockStmt) -> None:
        exit_block = self.new_block()
        for declaration in stmt.declarations:
            name = declaration.name.lower()
            self.var_types.setdefault(name, declaration.type_name)
            default = declaration.default if declaration.default is not None \
                else A.Literal(None)
            self.emit(name, default, implicit=declaration.default is None,
                      decl=True)
        self.loops.append(_LoopContext(stmt.label, exit_block.bid, None,
                                       is_loop=False))
        self.lower_statements(stmt.body)
        self.loops.pop()
        self.terminate(Goto(exit_block.bid))
        self.switch_to(exit_block)

    def _lower_PerformStmt(self, stmt: P.PerformStmt) -> None:
        sink = self.temp("perform")
        wrapped = A.ScalarSubquery(A.SelectStmt(
            None,
            A.SelectCore(items=[A.SelectItem(A.FuncCall("count", [], star=True))],
                         from_clause=A.SubqueryRef(stmt.query, alias="_perform"))))
        self.emit(sink, wrapped)

    def _lower_RaiseStmt(self, stmt: P.RaiseStmt) -> None:
        if stmt.level == "exception":
            if not self.for_analysis:
                raise CompileError("RAISE EXCEPTION cannot be compiled to SQL")
            # A legitimate non-RETURN exit for control-flow analysis.
            self.terminate(Return(A.Literal(None), raises=True))
        # NOTICE/WARNING/INFO have no effect on the function's value; drop.

    def _lower_ForQueryStmt(self, stmt: P.ForQueryStmt) -> None:
        if not self.for_analysis:
            raise CompileError(
                "FOR ... IN <query> LOOP is not supported by the compiler "
                "(cursor iteration); rewrite using set-oriented SQL")
        # Model the cursor loop as: var <- <query>; while <opaque> loop.
        # The query rides along as the loop condition so the analyzer's
        # SQL checks and volatility inference still see it.
        var = stmt.var.lower()
        self.var_types.setdefault(var, "record")
        header = self.new_block()
        body_block = self.new_block()
        exit_block = self.new_block()
        self.terminate(Goto(header.bid))
        self.switch_to(header)
        self.terminate(CondGoto(A.ScalarSubquery(stmt.query),
                                body_block.bid, exit_block.bid))
        self.switch_to(body_block)
        self.emit(var, A.ScalarSubquery(stmt.query))
        self.loops.append(_LoopContext(stmt.label, exit_block.bid, header.bid))
        self.lower_statements(stmt.body)
        self.terminate(Goto(header.bid))
        self.loops.pop()
        self.switch_to(exit_block)


def build_cfg(func: P.PlsqlFunctionDef,
              for_analysis: bool = False) -> ControlFlowGraph:
    """Lower *func* to its goto-based control-flow graph."""
    return CfgBuilder(func, for_analysis=for_analysis).build()
