"""Scope-aware renaming of PL/pgSQL variable references inside expressions.

PL/pgSQL expressions are SQL expressions; a bare identifier may be a
function variable *or* a column of a table inside an embedded query.  When
the SSA pass renames ``reward`` to ``reward_2`` it must rename only the
variable references — a bare ``reward`` that resolves to a column of the
embedded query's own FROM clause must stay, and a name visible as *both* is
ambiguous (PostgreSQL raises; so do we).

The shadow analysis walks subqueries, collecting the column names each
nesting level contributes: base-table columns come from the catalog,
derived tables from their alias lists or select-item names.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional

from ..sql import ast as A
from ..sql.errors import CompileError

Renamer = Callable[[str], Optional[A.Expr]]


def rename_variables(expr: A.Expr, rename: Renamer, catalog=None,
                     shadowed: frozenset[str] = frozenset()) -> A.Expr:
    """Rewrite bare variable references in *expr* via *rename*.

    ``rename(name)`` returns the replacement expression (usually a renamed
    :class:`~repro.sql.ast.ColumnRef`) or ``None`` when the name is not a
    function variable.  *catalog* (optional) supplies base-table schemas for
    shadow analysis inside embedded queries.
    """
    return _Renamer(rename, catalog).expr(expr, shadowed)


class _Renamer:
    def __init__(self, rename: Renamer, catalog):
        self.rename = rename
        self.catalog = catalog

    # -- expressions -----------------------------------------------------

    def expr(self, node: A.Expr, shadowed: frozenset[str]) -> A.Expr:
        if isinstance(node, A.ColumnRef):
            if len(node.parts) == 1:
                name = node.parts[0].lower()
                replacement = self.rename(name)
                if replacement is not None:
                    if name in shadowed:
                        raise CompileError(
                            f"column reference {name!r} is ambiguous: it may "
                            "refer to either a PL/pgSQL variable or a table "
                            "column — qualify the column or rename the "
                            "variable")
                    return replacement
            return node
        if isinstance(node, A.ScalarSubquery):
            return A.ScalarSubquery(self.select(node.query, shadowed))
        if isinstance(node, A.Exists):
            return A.Exists(self.select(node.subquery, shadowed))
        if isinstance(node, A.InSubquery):
            return A.InSubquery(self.expr(node.operand, shadowed),
                                self.select(node.subquery, shadowed),
                                node.negated)
        return self._rebuild(node, shadowed)

    def _rebuild(self, node: A.Expr, shadowed: frozenset[str]) -> A.Expr:
        changes = {}
        for fld in dataclasses.fields(node):  # type: ignore[arg-type]
            value = getattr(node, fld.name)
            if isinstance(value, A.Expr):
                new = self.expr(value, shadowed)
                if new is not value:
                    changes[fld.name] = new
            elif isinstance(value, list) and value:
                new_list = []
                dirty = False
                for item in value:
                    if isinstance(item, A.Expr):
                        new_item = self.expr(item, shadowed)
                    elif isinstance(item, tuple) and any(
                            isinstance(p, A.Expr) for p in item):
                        new_item = tuple(self.expr(p, shadowed)
                                         if isinstance(p, A.Expr) else p
                                         for p in item)
                    else:
                        new_item = item
                    dirty = dirty or new_item is not item
                    new_list.append(new_item)
                if dirty:
                    changes[fld.name] = new_list
        if not changes:
            return node
        return dataclasses.replace(node, **changes)  # type: ignore[type-var]

    # -- queries ----------------------------------------------------------

    def select(self, stmt: A.SelectStmt, shadowed: frozenset[str]) -> A.SelectStmt:
        with_clause = stmt.with_clause
        if with_clause is not None:
            with_clause = A.WithClause(
                with_clause.recursive,
                [A.CommonTableExpr(c.name, c.column_names,
                                   self.select(c.query, shadowed))
                 for c in with_clause.ctes],
                with_clause.iterate)
        body = self.body(stmt.body, shadowed)
        inner = shadowed | self._body_columns(stmt.body)
        return A.SelectStmt(
            with_clause, body,
            order_by=[A.SortItem(self.expr(s.expr, inner), s.descending,
                                 s.nulls_first) for s in stmt.order_by],
            limit=self.expr(stmt.limit, inner) if stmt.limit is not None else None,
            offset=(self.expr(stmt.offset, inner)
                    if stmt.offset is not None else None),
        )

    def body(self, body, shadowed: frozenset[str]):
        if isinstance(body, A.SetOp):
            return A.SetOp(body.op, self.body(body.left, shadowed),
                           self.body(body.right, shadowed))
        if isinstance(body, A.ValuesClause):
            return A.ValuesClause([[self.expr(e, shadowed) for e in row]
                                   for row in body.rows])
        core: A.SelectCore = body
        inner = shadowed | self._from_columns(core.from_clause)
        items = [item if isinstance(item, A.Star)
                 else A.SelectItem(self.expr(item.expr, inner), item.alias)
                 for item in core.items]
        return A.SelectCore(
            items=items,
            from_clause=self.table(core.from_clause, shadowed),
            where=(self.expr(core.where, inner)
                   if core.where is not None else None),
            group_by=[self.expr(e, inner) for e in core.group_by],
            having=(self.expr(core.having, inner)
                    if core.having is not None else None),
            distinct=core.distinct,
            windows={name: A.WindowSpec(
                ref_name=spec.ref_name,
                partition_by=[self.expr(e, inner) for e in spec.partition_by],
                order_by=[A.SortItem(self.expr(s.expr, inner), s.descending,
                                     s.nulls_first) for s in spec.order_by],
                frame=spec.frame)
                for name, spec in core.windows.items()},
        )

    def table(self, ref, shadowed: frozenset[str]):
        if ref is None:
            return None
        if isinstance(ref, A.TableName):
            return ref
        if isinstance(ref, A.SubqueryRef):
            # A non-lateral FROM subquery cannot see the outer variables of
            # its own level, but *can* see the function's variables (they are
            # globals from SQL's perspective); lateral additionally sees
            # sibling columns.  Either way the same shadow set applies.
            return A.SubqueryRef(self.select(ref.query, shadowed), ref.alias,
                                 ref.column_aliases, ref.lateral)
        if isinstance(ref, A.Join):
            inner = shadowed | self._from_columns(ref)
            condition = (self.expr(ref.condition, inner)
                         if ref.condition is not None else None)
            return A.Join(ref.kind, self.table(ref.left, shadowed),
                          self.table(ref.right, shadowed), condition)
        raise CompileError(f"unknown table ref {type(ref).__name__}")

    # -- shadow sets --------------------------------------------------------

    def _body_columns(self, body) -> frozenset[str]:
        if isinstance(body, A.SetOp):
            return self._body_columns(body.left)
        if isinstance(body, A.ValuesClause):
            return frozenset()
        return self._from_columns(body.from_clause)

    def _from_columns(self, ref) -> frozenset[str]:
        if ref is None:
            return frozenset()
        if isinstance(ref, A.TableName):
            if ref.column_aliases:
                return frozenset(c.lower() for c in ref.column_aliases)
            if self.catalog is not None:
                table = self.catalog.tables.get(ref.name.lower())
                if table is not None:
                    return frozenset(table.column_names)
            return frozenset()
        if isinstance(ref, A.SubqueryRef):
            if ref.column_aliases:
                return frozenset(c.lower() for c in ref.column_aliases)
            return self._derived_columns(ref.query)
        if isinstance(ref, A.Join):
            return self._from_columns(ref.left) | self._from_columns(ref.right)
        return frozenset()

    def _derived_columns(self, stmt: A.SelectStmt) -> frozenset[str]:
        body = stmt.body
        while isinstance(body, A.SetOp):
            body = body.left
        if isinstance(body, A.ValuesClause):
            return frozenset()
        out: set[str] = set()
        for item in body.items:
            if isinstance(item, A.Star):
                out |= self._from_columns(body.from_clause)
            elif item.alias:
                out.add(item.alias.lower())
            elif isinstance(item.expr, A.ColumnRef):
                out.add(item.expr.parts[-1].lower())
        return frozenset(out)


def collect_variable_uses(expr: A.Expr, variables: set[str], catalog=None) -> set[str]:
    """Names from *variables* referenced (as variables) in *expr*."""
    used: set[str] = set()

    def probe(name: str) -> Optional[A.Expr]:
        if name in variables:
            # Over-approximates: a shadowed column sharing a variable's name
            # also counts.  Safe for liveness (at worst an extra parameter).
            used.add(name)
        return None  # never rewrite; we only observe

    rename_variables(expr, probe, catalog)
    return used
