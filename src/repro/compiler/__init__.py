"""``repro.compiler`` — compiling PL/SQL away.

The four-stage pipeline of the paper (Section 2):

====  ======================================================================
SSA   :mod:`.cfg` lowers PL/pgSQL to goto form; :mod:`.ssa` builds static
      single assignment (dominance frontiers, φ placement, renaming);
      :mod:`.optimize` runs the classic SSA cleanups.
ANF   :mod:`.anf` turns blocks into (mutually tail-recursive) functions —
      "SSA is functional programming".
UDF   :mod:`.udf` defunctionalizes to one directly tail-recursive SQL UDF
      (``fn`` dispatch, ``let`` -> LATERAL chains, ``if`` -> CASE).
SQL   :mod:`.template` plants the adapted body into the generic
      ``WITH RECURSIVE`` template (or ``WITH ITERATE``), yielding pure SQL.
====  ======================================================================

:mod:`.pipeline` drives the stages and exposes every intermediate form;
:mod:`.froid` is the loop-free Froid baseline; :mod:`.dialects` renders the
result for PostgreSQL, SQLite3, MySQL, SQL Server, and Oracle.
"""

from .pipeline import CompiledFunction, compile_plsql
from .froid import froid_compile
from .dialects import DIALECTS, Dialect

__all__ = ["CompiledFunction", "compile_plsql", "froid_compile",
           "DIALECTS", "Dialect"]
