"""SQL text emission for five dialects (paper Section 3, "Beyond PostgreSQL").

"Modulo syntactic details, we were able to apply the function transformation
immediately to Oracle, MySQL, SQL Server, and HyPer" — the syntactic details
live here:

============  ==========================================================
PostgreSQL    ``LEFT JOIN LATERAL ... ON true``, ``WITH RECURSIVE``, ``$n``
SQLite3       no LATERAL → the compiler uses the nested-subquery ``let``
              rewrite; ``WITH RECURSIVE``; ``?n`` parameters
MySQL 8       ``JOIN LATERAL``, ``WITH RECURSIVE``, ``?`` parameters
SQL Server    ``OUTER APPLY``, ``WITH`` (no RECURSIVE keyword), ``@pn``,
              ``[quoted]`` identifiers, 1/0 booleans
Oracle        ``CROSS APPLY``, plain ``WITH``, ``:n`` parameters,
              1/0 booleans
============  ==========================================================

Only the PostgreSQL dialect is executed (by our engine, whose grammar is a
PostgreSQL subset plus WITH ITERATE); the others are emitted for inspection
and round-trip tests where syntax permits.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..sql import ast as A
from ..sql.errors import CompileError

_PLAIN_IDENT = re.compile(r"[a-z_][a-z0-9_]*$")

_KEYWORDS = {
    "select", "from", "where", "group", "order", "by", "having", "union",
    "all", "and", "or", "not", "case", "when", "then", "else", "end", "as",
    "on", "join", "left", "right", "inner", "outer", "cross", "lateral",
    "with", "recursive", "values", "in", "is", "null", "true", "false",
    "between", "like", "limit", "offset", "distinct", "exists", "cast",
    "row", "array", "window", "partition", "rows", "range", "user", "table",
    "result",
}


@dataclass(frozen=True)
class Dialect:
    """Rendering options for one target system."""

    name: str
    lateral_join: str = "left_join_lateral"  # | 'outer_apply' | 'cross_apply' | 'join_lateral'
    let_style: str = "lateral"               # | 'nested' (no LATERAL at all)
    recursive_keyword: bool = True           # WITH RECURSIVE vs WITH
    supports_iterate: bool = False           # our engine's extension
    boolean_literals: bool = True            # true/false vs 1/0
    param_style: str = "dollar"              # dollar | qmark | colon | at
    quote_open: str = '"'
    quote_close: str = '"'
    supports_frame_exclude: bool = True
    statement_terminator: str = ";"

    def quote(self, name: str) -> str:
        if _PLAIN_IDENT.match(name) and name not in _KEYWORDS:
            return name
        escaped = name.replace(self.quote_close,
                               self.quote_close + self.quote_close)
        return f"{self.quote_open}{escaped}{self.quote_close}"

    def param(self, index: int) -> str:
        if self.param_style == "dollar":
            return f"${index}"
        if self.param_style == "qmark":
            return f"?{index}"
        if self.param_style == "colon":
            return f":{index}"
        if self.param_style == "at":
            return f"@p{index}"
        raise CompileError(f"unknown param style {self.param_style!r}")

    def boolean(self, value: bool) -> str:
        if self.boolean_literals:
            return "true" if value else "false"
        return "1" if value else "0"


POSTGRES = Dialect(name="postgres", supports_iterate=True)
SQLITE = Dialect(name="sqlite", let_style="nested", param_style="qmark")
MYSQL = Dialect(name="mysql", lateral_join="join_lateral", param_style="qmark",
                supports_frame_exclude=False)
SQLSERVER = Dialect(name="sqlserver", lateral_join="outer_apply",
                    recursive_keyword=False, boolean_literals=False,
                    param_style="at", quote_open="[", quote_close="]",
                    supports_frame_exclude=False)
ORACLE = Dialect(name="oracle", lateral_join="cross_apply",
                 recursive_keyword=False, boolean_literals=False,
                 param_style="colon", supports_frame_exclude=False)

DIALECTS: dict[str, Dialect] = {d.name: d for d in
                                (POSTGRES, SQLITE, MYSQL, SQLSERVER, ORACLE)}


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


class SqlRenderer:
    def __init__(self, dialect: Dialect = POSTGRES, pretty: bool = True):
        self.dialect = dialect
        self.pretty = pretty

    # -- statements ----------------------------------------------------

    def select(self, stmt: A.SelectStmt, indent: int = 0) -> str:
        d = self.dialect
        parts: list[str] = []
        pad = "  " * indent if self.pretty else ""
        if stmt.with_clause is not None:
            wc = stmt.with_clause
            if wc.iterate:
                if not d.supports_iterate:
                    raise CompileError(
                        f"dialect {d.name} does not support WITH ITERATE")
                keyword = "WITH ITERATE"
            elif wc.recursive and d.recursive_keyword:
                keyword = "WITH RECURSIVE"
            else:
                keyword = "WITH"
            ctes = []
            for cte in wc.ctes:
                columns = ""
                if cte.column_names:
                    columns = "(" + ", ".join(d.quote(c)
                                              for c in cte.column_names) + ")"
                ctes.append(f"{d.quote(cte.name)}{columns} AS (\n"
                            + self.select(cte.query, indent + 1)
                            + f"\n{pad})")
            parts.append(pad + keyword + " " + (",\n" + pad).join(ctes))
        parts.append(self.body(stmt.body, indent))
        if stmt.order_by:
            parts.append(pad + "ORDER BY "
                         + ", ".join(self.sort_item(s) for s in stmt.order_by))
        if stmt.limit is not None:
            parts.append(pad + "LIMIT " + self.expr(stmt.limit))
        if stmt.offset is not None:
            parts.append(pad + "OFFSET " + self.expr(stmt.offset))
        return "\n".join(parts)

    def body(self, body, indent: int) -> str:
        pad = "  " * indent if self.pretty else ""
        if isinstance(body, A.SetOp):
            op = {"union_all": "UNION ALL", "union": "UNION",
                  "intersect": "INTERSECT", "except": "EXCEPT"}[body.op]
            return (self.body(body.left, indent) + f"\n{pad}{op}\n"
                    + self.body(body.right, indent))
        if isinstance(body, A.ValuesClause):
            rows = ", ".join(
                "(" + ", ".join(self.expr(e) for e in row) + ")"
                for row in body.rows)
            return pad + "VALUES " + rows
        return self.core(body, indent)

    def core(self, core: A.SelectCore, indent: int) -> str:
        d = self.dialect
        pad = "  " * indent if self.pretty else ""
        items = []
        for item in core.items:
            if isinstance(item, A.Star):
                items.append(f"{d.quote(item.table)}.*" if item.table else "*")
            else:
                text = self.expr(item.expr)
                if item.alias:
                    text += f" AS {d.quote(item.alias)}"
                items.append(text)
        head = pad + "SELECT " + ("DISTINCT " if core.distinct else "") \
            + ", ".join(items)
        parts = [head]
        if core.from_clause is not None:
            parts.append(pad + "FROM " + self.table_ref(core.from_clause, indent))
        if core.where is not None:
            parts.append(pad + "WHERE " + self.expr(core.where))
        if core.group_by:
            parts.append(pad + "GROUP BY "
                         + ", ".join(self.expr(e) for e in core.group_by))
        if core.having is not None:
            parts.append(pad + "HAVING " + self.expr(core.having))
        if core.windows:
            windows = ", ".join(
                f"{d.quote(name)} AS ({self.window_spec(spec)})"
                for name, spec in core.windows.items())
            parts.append(pad + "WINDOW " + windows)
        return "\n".join(parts)

    def table_ref(self, ref: A.TableRef, indent: int) -> str:
        d = self.dialect
        if isinstance(ref, A.TableName):
            text = d.quote(ref.name)
            if ref.alias and ref.alias != ref.name:
                text += f" AS {d.quote(ref.alias)}"
            if ref.column_aliases:
                text += "(" + ", ".join(d.quote(c)
                                        for c in ref.column_aliases) + ")"
            return text
        if isinstance(ref, A.SubqueryRef):
            inner = self.select(ref.query, indent + 1)
            alias = f" AS {d.quote(ref.alias)}"
            if ref.column_aliases:
                alias += "(" + ", ".join(d.quote(c)
                                         for c in ref.column_aliases) + ")"
            return "(\n" + inner + "\n" + "  " * indent + ")" + alias
        if isinstance(ref, A.Join):
            return self.join(ref, indent)
        raise CompileError(f"cannot render {type(ref).__name__}")

    def join(self, join: A.Join, indent: int) -> str:
        d = self.dialect
        pad = "  " * indent if self.pretty else ""
        left = self.table_ref(join.left, indent)
        lateral = isinstance(join.right, A.SubqueryRef) and join.right.lateral
        right = self.table_ref(join.right, indent)
        if lateral:
            style = d.lateral_join
            if style == "left_join_lateral":
                connector = "LEFT JOIN LATERAL"
            elif style == "join_lateral":
                connector = "JOIN LATERAL"
            elif style == "outer_apply":
                return f"{left}\n{pad}OUTER APPLY {right}"
            elif style == "cross_apply":
                return f"{left}\n{pad}CROSS APPLY {right}"
            else:
                raise CompileError(f"unknown lateral style {style!r}")
            condition = self.expr(join.condition) if join.condition is not None \
                else d.boolean(True)
            return f"{left}\n{pad}{connector} {right} ON {condition}"
        if join.kind == "cross":
            return f"{left},\n{pad}     {right}"
        keyword = {"inner": "JOIN", "left": "LEFT JOIN"}[join.kind]
        condition = self.expr(join.condition) if join.condition is not None \
            else d.boolean(True)
        return f"{left}\n{pad}{keyword} {right} ON {condition}"

    def sort_item(self, item: A.SortItem) -> str:
        text = self.expr(item.expr)
        if item.descending:
            text += " DESC"
        if item.nulls_first is True:
            text += " NULLS FIRST"
        elif item.nulls_first is False:
            text += " NULLS LAST"
        return text

    def window_spec(self, spec: A.WindowSpec) -> str:
        bits = []
        if spec.ref_name:
            bits.append(self.dialect.quote(spec.ref_name))
        if spec.partition_by:
            bits.append("PARTITION BY "
                        + ", ".join(self.expr(e) for e in spec.partition_by))
        if spec.order_by:
            bits.append("ORDER BY "
                        + ", ".join(self.sort_item(s) for s in spec.order_by))
        if spec.frame is not None:
            bits.append(self.frame(spec.frame))
        return " ".join(bits)

    def frame(self, frame: A.FrameSpec) -> str:
        def bound(b: A.FrameBound) -> str:
            if b.kind == "unbounded_preceding":
                return "UNBOUNDED PRECEDING"
            if b.kind == "unbounded_following":
                return "UNBOUNDED FOLLOWING"
            if b.kind == "current":
                return "CURRENT ROW"
            offset = self.expr(b.offset) if b.offset is not None else "?"
            return f"{offset} {'PRECEDING' if b.kind == 'preceding' else 'FOLLOWING'}"

        text = (f"{frame.mode.upper()} BETWEEN {bound(frame.start)} "
                f"AND {bound(frame.end)}")
        if frame.exclusion:
            if not self.dialect.supports_frame_exclude:
                raise CompileError(
                    f"dialect {self.dialect.name} lacks frame EXCLUDE")
            text += f" EXCLUDE {frame.exclusion.upper()}"
        return text

    # -- expressions -----------------------------------------------------

    def expr(self, node: A.Expr) -> str:
        d = self.dialect
        if isinstance(node, A.Literal):
            value = node.value
            if value is None:
                return "NULL"
            if isinstance(value, bool):
                return d.boolean(value)
            if isinstance(value, (int, float)):
                return repr(value)
            if isinstance(value, str):
                return "'" + value.replace("'", "''") + "'"
            raise CompileError(f"cannot render literal {value!r}")
        if isinstance(node, A.ColumnRef):
            return ".".join(d.quote(p) for p in node.parts)
        if isinstance(node, A.Param):
            return d.param(node.index)
        if isinstance(node, A.BinaryOp):
            op = node.op.upper() if node.op in ("and", "or") else node.op
            return f"({self.expr(node.left)} {op} {self.expr(node.right)})"
        if isinstance(node, A.UnaryOp):
            op = "NOT " if node.op == "not" else node.op
            return f"({op}{self.expr(node.operand)})"
        if isinstance(node, A.IsNull):
            negated = " NOT" if node.negated else ""
            return f"({self.expr(node.operand)} IS{negated} NULL)"
        if isinstance(node, A.IsBool):
            negated = " NOT" if node.negated else ""
            literal = "TRUE" if node.value else "FALSE"
            if not d.boolean_literals:
                eq = "<>" if node.negated else "="
                return f"({self.expr(node.operand)} {eq} {d.boolean(node.value)})"
            return f"({self.expr(node.operand)} IS{negated} {literal})"
        if isinstance(node, A.Between):
            negated = "NOT " if node.negated else ""
            return (f"({self.expr(node.operand)} {negated}BETWEEN "
                    f"{self.expr(node.low)} AND {self.expr(node.high)})")
        if isinstance(node, A.InList):
            negated = "NOT " if node.negated else ""
            items = ", ".join(self.expr(e) for e in node.items)
            return f"({self.expr(node.operand)} {negated}IN ({items}))"
        if isinstance(node, A.InSubquery):
            negated = "NOT " if node.negated else ""
            return (f"({self.expr(node.operand)} {negated}IN "
                    f"({self.select(node.subquery)}))")
        if isinstance(node, A.Exists):
            return f"EXISTS ({self.select(node.subquery)})"
        if isinstance(node, A.Like):
            negated = "NOT " if node.negated else ""
            keyword = "ILIKE" if node.case_insensitive else "LIKE"
            return (f"({self.expr(node.operand)} {negated}{keyword} "
                    f"{self.expr(node.pattern)})")
        if isinstance(node, A.CaseExpr):
            bits = ["CASE"]
            if node.operand is not None:
                bits.append(self.expr(node.operand))
            for condition, result in node.whens:
                bits.append(f"WHEN {self.expr(condition)} "
                            f"THEN {self.expr(result)}")
            if node.else_result is not None:
                bits.append(f"ELSE {self.expr(node.else_result)}")
            bits.append("END")
            return " ".join(bits)
        if isinstance(node, A.Cast):
            return f"CAST({self.expr(node.operand)} AS {node.type_name})"
        if isinstance(node, A.FuncCall):
            rewritten = self._dialect_function(node)
            if rewritten is not None:
                return rewritten
            if node.star:
                inner = "*"
            else:
                inner = ", ".join(self.expr(a) for a in node.args)
                if node.distinct:
                    inner = "DISTINCT " + inner
            text = f"{node.name}({inner})"
            if node.window is not None:
                if isinstance(node.window, str):
                    text += f" OVER {d.quote(node.window)}"
                else:
                    text += f" OVER ({self.window_spec(node.window)})"
            return text
        if isinstance(node, A.RowExpr):
            inner = ", ".join(self.expr(e) for e in node.items)
            return f"ROW({inner})"
        if isinstance(node, A.ArrayExpr):
            inner = ", ".join(self.expr(e) for e in node.items)
            return f"ARRAY[{inner}]"
        if isinstance(node, A.ArrayIndex):
            return f"({self.expr(node.operand)})[{self.expr(node.index)}]"
        if isinstance(node, A.FieldAccess):
            return f"({self.expr(node.operand)}).{d.quote(node.fieldname)}"
        if isinstance(node, A.ScalarSubquery):
            return "(" + self.select(node.query) + ")"
        raise CompileError(f"cannot render expression {type(node).__name__}")

    def _dialect_function(self, node: A.FuncCall) -> str | None:
        """Per-dialect scalar-function spelling differences."""
        if self.dialect.name != "sqlite" or node.window is not None:
            return None
        name = node.name.lower()
        args = node.args
        # LEFT/RIGHT are join keywords in SQLite; spell via substr().
        if name == "left" and len(args) == 2:
            return (f"substr({self.expr(args[0])}, 1, {self.expr(args[1])})")
        if name == "right" and len(args) == 2:
            return (f"substr({self.expr(args[0])}, -({self.expr(args[1])}))")
        if name == "sign" and len(args) == 1:
            inner = self.expr(args[0])
            return (f"(CASE WHEN {inner} > 0 THEN 1 WHEN {inner} < 0 "
                    f"THEN -1 ELSE 0 END)")
        if name == "random" and not args:
            # SQLite's random() yields a 64-bit int; normalise to [0, 1).
            return "((random() + 9223372036854775808) / 18446744073709551616.0)"
        return None


def render_select(stmt: A.SelectStmt, dialect: Dialect = POSTGRES) -> str:
    return SqlRenderer(dialect).select(stmt)


def render_expression(expr: A.Expr, dialect: Dialect = POSTGRES) -> str:
    return SqlRenderer(dialect).expr(expr)


def render_create_function(name: str, params: list[tuple[str, str]],
                           return_type: str, body_sql: str,
                           language: str = "SQL",
                           dialect: Dialect = POSTGRES) -> str:
    """CREATE FUNCTION text (PostgreSQL syntax; other systems vary widely
    for DDL, which the paper sidesteps too — Qf needs no function at all)."""
    rendered_params = ", ".join(f"{dialect.quote(n)} {t}" for n, t in params)
    return (f"CREATE FUNCTION {dialect.quote(name)}({rendered_params})\n"
            f"RETURNS {return_type} AS $$\n{body_sql}\n"
            f"$$ LANGUAGE {language};")
