"""The Froid baseline (Ramachandra et al., VLDB 2018) — loop-free only.

Froid compiles sequences of PL/SQL assignments into subqueries chained with
OUTER APPLY (SQL Server) and inlines them — "elegant and simple but comes
with severe restrictions: foremost, the chaining will only work for
functions that exhibit loop-less control flow" (paper, Section 1).

We realise Froid as the prefix of our own pipeline: lowering, SSA, ANF, and
the lateral-chain translation are shared; the difference is that Froid
*stops* if any control-flow cycle remains.  This makes the baseline
faithful (identical translation quality on the loop-free subset) and the
comparison pointed (the only delta is recursion support).
"""

from __future__ import annotations

from typing import Optional, Union

from ..sql.errors import LoopNotSupportedError
from .cfg import build_cfg
from .pipeline import CompiledFunction, _parse_source, compile_plsql


def has_loop(cfg) -> bool:
    """Does the CFG contain a cycle (i.e. any iteration)?"""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {bid: WHITE for bid in cfg.blocks}

    def visit(bid: int) -> bool:
        color[bid] = GRAY
        for successor in cfg.blocks[bid].successors():
            if color[successor] == GRAY:
                return True
            if color[successor] == WHITE and visit(successor):
                return True
        color[bid] = BLACK
        return False

    return visit(cfg.entry)


def froid_compile(source: Union[str, object], db=None,
                  optimize: bool = True) -> CompiledFunction:
    """Compile a *loop-free* PL/pgSQL function the Froid way.

    Raises :class:`~repro.sql.errors.LoopNotSupportedError` when the
    function iterates — the show stopper the paper's approach removes.
    """
    func = _parse_source(source)
    cfg = build_cfg(func)
    if has_loop(cfg):
        raise LoopNotSupportedError(
            f"function {func.name}() contains a loop; Froid-style chaining "
            "only supports loop-less control flow (compile_plsql handles "
            "iteration via WITH RECURSIVE)")
    compiled = compile_plsql(func, db=db, optimize=optimize)
    assert not compiled.is_recursive
    return compiled
