"""Source-level inlining of compiled functions into calling queries.

The engine's planner already inlines compiled functions transparently at
plan time (see :mod:`repro.sql.planner`).  This module does the same as a
*source-to-source* transformation so the final merged SQL — "any occurrence
of PL/SQL has been compiled away" — can be inspected, exported, or fed to a
foreign system (the PostgreSQL 12 CTE-inlining direction of Section 4).
"""

from __future__ import annotations

from typing import Optional, Union

from ..sql import ast as A
from ..sql.astutil import substitute_params_select, transform_select
from ..sql.errors import CompileError
from ..sql.parser import parse_select
from .dialects import POSTGRES, Dialect, render_select
from .pipeline import CompiledFunction, _resolve_dialect


def inline_compiled_calls(stmt: A.SelectStmt,
                          functions: dict[str, A.SelectStmt]) -> A.SelectStmt:
    """Replace calls to the given compiled functions with scalar subqueries.

    *functions* maps lower-case function names to their parameterised Qf
    query; each ``$n`` hole receives the call site's n-th argument
    expression.  Nested/repeated calls all get their own copy (the engine's
    planner does exactly the same).
    """

    def leaf(node: A.Expr) -> Optional[A.Expr]:
        if isinstance(node, A.FuncCall) and node.window is None:
            query = functions.get(node.name.lower())
            if query is not None:
                if node.star or node.distinct:
                    raise CompileError(
                        f"cannot inline {node.name}(*) / DISTINCT call")
                inlined = substitute_params_select(query, list(node.args))
                return A.ScalarSubquery(inlined)
        return None

    return transform_select(stmt, leaf)


def inline_into_query(sql: str,
                      compiled: Union[CompiledFunction, list[CompiledFunction]],
                      dialect: Union[str, Dialect] = POSTGRES) -> str:
    """Inline one or more compiled functions into query text and re-render.

    >>> from repro.sql import Database
    >>> from repro.compiler import compile_plsql
    >>> doubled = compile_plsql('''
    ...     CREATE FUNCTION double(n int) RETURNS int AS $$
    ...     BEGIN RETURN 2 * n; END;
    ...     $$ LANGUAGE PLPGSQL''', Database())
    >>> inline_into_query("SELECT double(21) AS x", doubled)
    'SELECT (SELECT (2 * 21)) AS x'

    A loop-free function inlines as a plain expression (Froid); recursive
    functions splice in their whole ``WITH RECURSIVE`` query Qf, so the
    merged text contains no trace of PL/SQL either way.
    """
    if isinstance(compiled, CompiledFunction):
        compiled = [compiled]
    functions = {c.name.lower(): c.query for c in compiled}
    stmt = parse_select(sql)
    merged = inline_compiled_calls(stmt, functions)
    return render_select(merged, _resolve_dialect(dialect))
