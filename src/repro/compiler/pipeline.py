"""The end-to-end compilation pipeline and its public API.

>>> from repro.sql import Database
>>> from repro.compiler import compile_plsql
>>> db = Database()
>>> compiled = compile_plsql('''
...     CREATE FUNCTION triple(n int) RETURNS int AS $$
...     BEGIN RETURN 3 * n; END;
...     $$ LANGUAGE PLPGSQL''', db)
>>> compiled.register(db)          # doctest: +ELLIPSIS
FunctionDef(...)
>>> db.query_value("SELECT triple(14)")
42

Every intermediate form of the paper's Figure 4 is retained on the returned
:class:`CompiledFunction`: the goto CFG (Fig. 5 via ``cfg.pretty()``), the
SSA program before and after optimization, the ANF program (Fig. 6 via
``anf.pretty()``), the flattened UDF (Fig. 7 via ``udf_sql()``), and the
final ``WITH RECURSIVE`` query Qf (Fig. 8/9 via ``sql()``).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Optional, Union

from ..plsql.ast import PlsqlFunctionDef
from ..plsql.parser import parse_plpgsql_function
from ..sql import ast as A
from ..sql.errors import CompileError
from ..sql.parser import parse_statement
from .anf import AnfProgram, inline_anf, ssa_to_anf
from .cfg import ControlFlowGraph, build_cfg
from .dialects import (DIALECTS, POSTGRES, Dialect, render_create_function,
                       render_select)
from .optimize import optimize_ssa
from .ssa import SsaProgram, build_ssa
from .template import build_template_query
from .udf import (LET_STYLE_LATERAL, LET_STYLE_NESTED, SqlUdf, build_udf,
                  udf_is_recursive)


@dataclass
class CompiledFunction:
    """The result of compiling one PL/pgSQL function away."""

    name: str
    param_names: list[str]
    param_types: list[str]
    return_type: str
    source: PlsqlFunctionDef = field(repr=False)
    cfg: ControlFlowGraph = field(repr=False)
    ssa_raw: SsaProgram = field(repr=False)
    ssa: SsaProgram = field(repr=False)
    anf: AnfProgram = field(repr=False)
    udf: SqlUdf = field(repr=False)
    query: A.SelectStmt = field(repr=False)
    iterate: bool = False
    optimized: bool = True

    # ------------------------------------------------------------------

    @property
    def is_recursive(self) -> bool:
        """Did the function contain iteration (=> Qf uses WITH RECURSIVE)?"""
        return udf_is_recursive(self.udf)

    def sql(self, dialect: Union[str, Dialect] = POSTGRES) -> str:
        """Render the pure-SQL query Qf (parameters as placeholders)."""
        dialect = _resolve_dialect(dialect)
        query = self.query
        if dialect.let_style == LET_STYLE_NESTED or dialect.name == "sqlite":
            # LATERAL-free target: column-wise split template (SQLite).
            from .template import build_split_template_query
            query = build_split_template_query(self.udf, self.iterate)
        if self.iterate and not dialect.supports_iterate:
            raise CompileError(f"dialect {dialect.name} lacks WITH ITERATE")
        return render_select(query, dialect)

    def _requery(self, let_style: str) -> A.SelectStmt:
        return build_template_query(self.udf, self.iterate, let_style)

    def udf_sql(self, dialect: Union[str, Dialect] = POSTGRES) -> str:
        """The intermediate UDF form as CREATE FUNCTION text (Figure 7)."""
        dialect = _resolve_dialect(dialect)
        renderer_style = (LET_STYLE_NESTED if dialect.let_style == "nested"
                          else LET_STYLE_LATERAL)
        udf = self.udf
        if renderer_style != LET_STYLE_LATERAL:
            udf = build_udf(self.udf.anf, renderer_style)
        from .dialects import render_expression
        statements = []
        if udf_is_recursive(udf):
            star_params = list(zip(udf.rec_params, udf.rec_param_types))
            statements.append(render_create_function(
                udf.star_name, star_params, udf.return_type,
                "SELECT " + render_expression(udf.star_body, dialect),
                dialect=dialect))
        wrapper_params = list(zip(udf.params, udf.param_types))
        statements.append(render_create_function(
            udf.name, wrapper_params, udf.return_type,
            "SELECT " + render_expression(udf.wrapper_body, dialect),
            dialect=dialect))
        return "\n\n".join(statements)

    # ------------------------------------------------------------------

    def register(self, db, name: Optional[str] = None):
        """Register Qf with *db* so calls to it are inlined at plan time.

        Recursive, non-volatile functions additionally register the
        *batched* Qf (one trampoline advancing a whole relation of calls;
        see :func:`repro.compiler.template.build_batched_template_query`)
        so the planner can evaluate ``SELECT f(x) FROM t`` set-oriented.
        """
        from .template import (batch_input_columns, build_batched_machine,
                               build_batched_template_query,
                               udf_contains_volatile)
        batched_query = None
        batch_columns = None
        batch_machine = None
        if self.is_recursive and not udf_contains_volatile(self.udf):
            batched_query = build_batched_template_query(self.udf)
            batch_columns = batch_input_columns(self.udf)
            batch_machine = build_batched_machine(self.udf)
        return db.register_compiled_function(
            name or self.name, self.param_names, self.param_types,
            self.return_type, self.query,
            batched_query=batched_query, batch_columns=batch_columns,
            batch_machine=batch_machine, source=self.source)

    def register_udf_form(self, db, name: Optional[str] = None) -> str:
        """Register the *UDF intermediate form* (wrapper + recursive worker)
        as LANGUAGE SQL functions — the paper's cautionary ablation: direct
        recursive UDF evaluation pays per-call instantiation and hits stack
        depth limits."""
        wrapper_name = (name or self.name + "__udf").lower()
        udf = self.udf
        from .dialects import render_expression
        from .rename import rename_variables
        if udf_is_recursive(udf):
            star_body = "SELECT " + render_expression(udf.star_body)
            db.execute_ast(A.CreateFunction(
                udf.star_name, [A.FunctionParam(n, t) for n, t in
                                zip(udf.rec_params, udf.rec_param_types)],
                udf.return_type, "sql", star_body, replace=True))
        wrapper_body = "SELECT " + render_expression(udf.wrapper_body)
        db.execute_ast(A.CreateFunction(
            wrapper_name, [A.FunctionParam(n, t) for n, t in
                           zip(udf.params, udf.param_types)],
            udf.return_type, "sql", wrapper_body, replace=True))
        return wrapper_name

    def explain(self) -> str:
        """A multi-section dump of every intermediate form."""
        sections = [
            ("PL/pgSQL", f"{self.name}({', '.join(self.param_names)}) "
                         f"RETURNS {self.return_type}"),
            ("goto CFG (Figure 5, pre-SSA)", self.cfg.pretty()),
            ("SSA (optimized)" if self.optimized else "SSA", self.ssa.pretty()),
            ("ANF (Figure 6)", self.anf.pretty()),
            ("UDF (Figure 7)", self.udf_sql()),
            ("SQL (Figures 8/9)", self.sql()),
        ]
        out = []
        for title, body in sections:
            out.append("=" * 72)
            out.append(title)
            out.append("=" * 72)
            out.append(body)
        return "\n".join(out)


def _resolve_dialect(dialect: Union[str, Dialect]) -> Dialect:
    if isinstance(dialect, Dialect):
        return dialect
    resolved = DIALECTS.get(dialect.lower())
    if resolved is None:
        raise CompileError(f"unknown dialect {dialect!r} "
                           f"(have: {sorted(DIALECTS)})")
    return resolved


def _parse_source(source: Union[str, A.CreateFunction, PlsqlFunctionDef]
                  ) -> PlsqlFunctionDef:
    if isinstance(source, PlsqlFunctionDef):
        return source
    if isinstance(source, str):
        statement = parse_statement(source)
        if not isinstance(statement, A.CreateFunction):
            raise CompileError("expected a CREATE FUNCTION statement")
        source = statement
    if source.language.lower() != "plpgsql":
        raise CompileError(
            f"can only compile LANGUAGE PLPGSQL functions, got "
            f"{source.language!r}")
    return parse_plpgsql_function(
        source.name, [p.name for p in source.params],
        [p.type_name for p in source.params], source.return_type, source.body)


def compile_plsql(source: Union[str, A.CreateFunction, PlsqlFunctionDef],
                  db=None, optimize: bool = True, iterate: bool = False,
                  let_style: str = LET_STYLE_LATERAL) -> CompiledFunction:
    """Compile a PL/pgSQL function into pure SQL (the paper, end to end).

    Parameters
    ----------
    source:
        CREATE FUNCTION text, its parsed AST, or a PlsqlFunctionDef.
    db:
        Optional database; its catalog powers variable-vs-column shadow
        analysis inside embedded queries (recommended).
    optimize:
        Run the SSA cleanup pipeline (disable for ablation).
    iterate:
        Emit ``WITH ITERATE`` instead of ``WITH RECURSIVE`` (engine
        extension; Section 3 "When WITH RECURSIVE does too much").
    let_style:
        ``"lateral"`` (default, Figure 7) or ``"nested"`` (the SQLite
        rewrite) for the engine-executed query.
    """
    func = _parse_source(source)
    catalog = db.catalog if db is not None else None
    cfg = build_cfg(func)
    ssa_raw = build_ssa(cfg, catalog)
    ssa = copy.deepcopy(ssa_raw)
    if optimize:
        optimize_ssa(ssa, catalog)
    anf = inline_anf(ssa_to_anf(ssa, catalog))
    udf = build_udf(anf, let_style)
    query = build_template_query(udf, iterate, let_style)
    return CompiledFunction(
        name=func.name,
        param_names=list(func.param_names),
        param_types=list(func.param_types),
        return_type=func.return_type,
        source=func,
        cfg=cfg,
        ssa_raw=ssa_raw,
        ssa=ssa,
        anf=anf,
        udf=udf,
        query=query,
        iterate=iterate,
        optimized=optimize,
    )
