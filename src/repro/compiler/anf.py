"""SSA → administrative normal form (the paper's **ANF** step).

Following Appel ("SSA is functional programming") and Chakravarty et al.,
each basic block becomes a function: jump labels turn into function names,
gotos into *tail* calls, φ-bound variables into parameters, and lambda
lifting adds the remaining free variables as explicit parameters.  Iteration
— looping back to a label — thereby turns into tail recursion (paper
Figure 6).

An inlining pass then merges functions with exactly one call site into
their caller, which collapses the straight-line blocks the CFG lowering
introduced and leaves only genuinely shared or recursive functions — the
ones the UDF stage must defunctionalize.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from ..sql import ast as A
from ..sql.errors import CompileError
from .cfg import CondGoto, Goto, Return
from .rename import collect_variable_uses
from .ssa import SsaProgram


class AnfExpr:
    __slots__ = ()


@dataclass
class AnfLet(AnfExpr):
    """``let var = value in body`` (value is a SQL expression)."""

    var: str
    value: A.Expr
    body: AnfExpr


@dataclass
class AnfIf(AnfExpr):
    condition: A.Expr
    then_branch: AnfExpr
    else_branch: AnfExpr


@dataclass
class AnfCall(AnfExpr):
    """Tail call to another ANF function."""

    func: str
    args: list[A.Expr]


@dataclass
class AnfRet(AnfExpr):
    expr: A.Expr


@dataclass
class AnfFunction:
    name: str
    params: list[str]
    body: AnfExpr


@dataclass
class AnfProgram:
    func_name: str
    params: list[str]           # SSA names of the original parameters
    param_types: list[str]
    return_type: str
    entry: str                  # name of the entry function ("main")
    functions: dict[str, AnfFunction] = field(default_factory=dict)
    var_types: dict[str, str] = field(default_factory=dict)
    base_of: dict[str, str] = field(default_factory=dict)

    def recursive_functions(self) -> list[AnfFunction]:
        """Every function except the entry, in stable (name) order."""
        return [f for name, f in sorted(self.functions.items())
                if name != self.entry]

    def pretty(self) -> str:
        from .dialects import render_expression

        def render(expr: AnfExpr, indent: int) -> list[str]:
            pad = "  " * indent
            if isinstance(expr, AnfLet):
                lines = [f"{pad}let {expr.var} = "
                         f"{render_expression(expr.value)} in"]
                lines.extend(render(expr.body, indent))
                return lines
            if isinstance(expr, AnfIf):
                lines = [f"{pad}if {render_expression(expr.condition)} then"]
                lines.extend(render(expr.then_branch, indent + 1))
                lines.append(f"{pad}else")
                lines.extend(render(expr.else_branch, indent + 1))
                return lines
            if isinstance(expr, AnfCall):
                args = ", ".join(render_expression(a) for a in expr.args)
                return [f"{pad}{expr.func}({args})"]
            if isinstance(expr, AnfRet):
                return [f"{pad}{render_expression(expr.expr)}"]
            raise CompileError(f"unknown ANF node {type(expr).__name__}")

        lines = [f"function {self.func_name}({', '.join(self.params)}) ="]
        for name, func in sorted(self.functions.items()):
            if name == self.entry:
                continue
            lines.append(f"  letrec {name}({', '.join(func.params)}) =")
            lines.extend(render(func.body, 2))
        lines.append("  in")
        lines.extend(render(self.functions[self.entry].body, 2))
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# SSA -> ANF conversion
# ---------------------------------------------------------------------------


def ssa_to_anf(program: SsaProgram, catalog=None) -> AnfProgram:
    """Translate SSA blocks into mutually tail-recursive ANF functions."""
    entry_name = "main"
    names = {bid: (entry_name if bid == program.entry else f"l{bid}")
             for bid in program.blocks}
    variables = set(program.var_types)

    # Lambda lifting: compute each block-function's free variables.
    # Start from direct uses minus local definitions, then propagate the
    # frees of callees (their φ params are bound by the call, the rest flow
    # through the caller) until fixpoint.
    direct_uses: dict[int, set[str]] = {}
    local_defs: dict[int, set[str]] = {}
    phi_params: dict[int, list[str]] = {}
    for bid, block in program.blocks.items():
        uses: set[str] = set()
        for stmt in block.stmts:
            uses |= collect_variable_uses(stmt.expr, variables, catalog)
        terminator = block.terminator
        if isinstance(terminator, CondGoto):
            uses |= collect_variable_uses(terminator.condition, variables, catalog)
        elif isinstance(terminator, Return):
            uses |= collect_variable_uses(terminator.expr, variables, catalog)
        for successor in block.successors():
            for phi in program.blocks[successor].phis:
                operand = phi.args.get(bid)
                if operand is not None:
                    uses.add(operand)
        phi_params[bid] = [phi.target for phi in block.phis]
        local_defs[bid] = (set(phi_params[bid])
                           | {stmt.target for stmt in block.stmts})
        direct_uses[bid] = uses

    free: dict[int, set[str]] = {bid: direct_uses[bid] - local_defs[bid]
                                 for bid in program.blocks}
    if program.entry in free:
        # The entry's frees are the function parameters themselves.
        pass
    changed = True
    while changed:
        changed = False
        for bid, block in program.blocks.items():
            for successor in block.successors():
                inherited = free[successor] - set(phi_params[successor])
                extra = inherited - local_defs[bid] - free[bid]
                if extra:
                    free[bid] |= extra
                    changed = True

    entry_free = free[program.entry] - set(program.params)
    if entry_free:
        raise CompileError(
            f"variables used before definition: {sorted(entry_free)}")

    params_of: dict[int, list[str]] = {}
    for bid in program.blocks:
        if bid == program.entry:
            params_of[bid] = list(program.params)
        else:
            params_of[bid] = phi_params[bid] + sorted(free[bid])

    def call_for_edge(source: int, target: int) -> AnfCall:
        args: list[A.Expr] = []
        for phi in program.blocks[target].phis:
            operand = phi.args.get(source)
            args.append(A.ColumnRef((operand,)) if operand is not None
                        else A.Literal(None))
        for name in sorted(free[target]):
            args.append(A.ColumnRef((name,)))
        return AnfCall(names[target], args)

    functions: dict[str, AnfFunction] = {}
    for bid, block in program.blocks.items():
        terminator = block.terminator
        if isinstance(terminator, Return):
            tail: AnfExpr = AnfRet(terminator.expr)
        elif isinstance(terminator, Goto):
            tail = call_for_edge(bid, terminator.target)
        elif isinstance(terminator, CondGoto):
            tail = AnfIf(terminator.condition,
                         call_for_edge(bid, terminator.then_target),
                         call_for_edge(bid, terminator.else_target))
        else:
            raise CompileError(f"block L{bid} lacks a terminator")
        body: AnfExpr = tail
        for stmt in reversed(block.stmts):
            body = AnfLet(stmt.target, stmt.expr, body)
        functions[names[bid]] = AnfFunction(names[bid], params_of[bid], body)

    return AnfProgram(
        func_name=program.func_name,
        params=list(program.params),
        param_types=list(program.param_types),
        return_type=program.return_type,
        entry=entry_name,
        functions=functions,
        var_types=dict(program.var_types),
        base_of=dict(program.base_of),
    )


# ---------------------------------------------------------------------------
# ANF inlining
# ---------------------------------------------------------------------------


def _count_calls(program: AnfProgram) -> dict[str, int]:
    counts = {name: 0 for name in program.functions}

    def visit(expr: AnfExpr) -> None:
        if isinstance(expr, AnfLet):
            visit(expr.body)
        elif isinstance(expr, AnfIf):
            visit(expr.then_branch)
            visit(expr.else_branch)
        elif isinstance(expr, AnfCall):
            counts[expr.func] = counts.get(expr.func, 0) + 1

    for func in program.functions.values():
        visit(func.body)
    return counts


def _calls_in(expr: AnfExpr) -> set[str]:
    out: set[str] = set()

    def visit(node: AnfExpr) -> None:
        if isinstance(node, AnfLet):
            visit(node.body)
        elif isinstance(node, AnfIf):
            visit(node.then_branch)
            visit(node.else_branch)
        elif isinstance(node, AnfCall):
            out.add(node.func)

    visit(expr)
    return out


def _call_edges(program: AnfProgram) -> dict[str, set[str]]:
    return {name: _calls_in(func.body)
            for name, func in program.functions.items()}


def _cyclic_functions(program: AnfProgram) -> set[str]:
    """Functions that can reach themselves through the call graph."""
    edges = _call_edges(program)
    cyclic: set[str] = set()
    for start in program.functions:
        seen: set[str] = set()
        work = list(edges.get(start, ()))
        while work:
            name = work.pop()
            if name == start:
                cyclic.add(start)
                break
            if name in seen:
                continue
            seen.add(name)
            work.extend(edges.get(name, ()))
    return cyclic


def inline_anf(program: AnfProgram) -> AnfProgram:
    """Inline ANF functions until only cyclic ones (and the entry) remain.

    Two rules, applied to fixpoint:

    * a function with exactly one call site is grafted into its caller;
    * an *acyclic* function is grafted into all callers even when called
      from several sites (the code duplication Froid accepts too) — this is
      what makes loop-free input compile to a plain query with no CTE.

    Because SSA names are globally unique, inlining is pure tree grafting:
    the callee's parameters become ``let`` bindings of the argument
    expressions, no renaming required — except that a multi-site inline
    duplicates let-bound names across *disjoint* branches, which stays
    sound for translation (each branch is rendered independently).
    """
    progress = True
    while progress:
        progress = False
        counts = _count_calls(program)
        # Unreachable functions (no call sites) simply disappear.
        for name in list(program.functions):
            if name != program.entry and counts.get(name, 0) == 0:
                del program.functions[name]
                progress = True
        if progress:
            continue
        cyclic = _cyclic_functions(program)
        for name, func in list(program.functions.items()):
            if name == program.entry:
                continue
            if counts.get(name, 0) != 1 and name in cyclic:
                continue
            if name in _calls_in(func.body):
                continue  # self-recursive: calls itself directly

            def splice(expr: AnfExpr) -> AnfExpr:
                if isinstance(expr, AnfLet):
                    return AnfLet(expr.var, expr.value, splice(expr.body))
                if isinstance(expr, AnfIf):
                    return AnfIf(expr.condition, splice(expr.then_branch),
                                 splice(expr.else_branch))
                if isinstance(expr, AnfCall) and expr.func == name:
                    body = func.body
                    for param, arg in zip(reversed(func.params),
                                          reversed(expr.args)):
                        body = AnfLet(param, arg, body)
                    return body
                return expr

            callers = [caller for caller_name, caller in
                       program.functions.items()
                       if caller_name != name and name in _calls_in(caller.body)]
            if not callers:
                continue
            for caller in callers:
                caller.body = splice(caller.body)
            del program.functions[name]
            progress = True
            break
    _simplify_trivial_lets(program)
    return program


def _simplify_trivial_lets(program: AnfProgram) -> None:
    """Drop ``let v = <var or literal> in body`` by substituting into body.

    Keeps the emitted LATERAL chains short after inlining introduced
    parameter bindings that are just variable renames.
    """
    from .rename import rename_variables

    def subst_in_sql(expr: A.Expr, var: str, value: A.Expr) -> A.Expr:
        return rename_variables(
            expr, lambda name: value if name == var else None)

    def subst(expr: AnfExpr, var: str, value: A.Expr) -> AnfExpr:
        if isinstance(expr, AnfLet):
            return AnfLet(expr.var, subst_in_sql(expr.value, var, value),
                          subst(expr.body, var, value))
        if isinstance(expr, AnfIf):
            return AnfIf(subst_in_sql(expr.condition, var, value),
                         subst(expr.then_branch, var, value),
                         subst(expr.else_branch, var, value))
        if isinstance(expr, AnfCall):
            return AnfCall(expr.func,
                           [subst_in_sql(a, var, value) for a in expr.args])
        assert isinstance(expr, AnfRet)
        return AnfRet(subst_in_sql(expr.expr, var, value))

    def simplify(expr: AnfExpr) -> AnfExpr:
        if isinstance(expr, AnfLet):
            value = expr.value
            if isinstance(value, A.Literal) or (
                    isinstance(value, A.ColumnRef) and len(value.parts) == 1):
                return simplify(subst(expr.body, expr.var, value))
            return AnfLet(expr.var, value, simplify(expr.body))
        if isinstance(expr, AnfIf):
            return AnfIf(expr.condition, simplify(expr.then_branch),
                         simplify(expr.else_branch))
        return expr

    for func in program.functions.values():
        func.body = simplify(func.body)
