"""The ``WITH RECURSIVE`` code template (the paper's **SQL** step, Fig. 8/9).

The tail-recursive UDF ``f*`` is *simulated* by a CTE ``run`` that tracks
its evaluation::

    WITH RECURSIVE run("call?", fn, <vars...>, result) AS (
      SELECT base.*                                  -- original invocation
      FROM (SELECT <adapted main>) AS base(...)
      UNION ALL
      SELECT iter.*                                  -- calls and base cases
      FROM run AS r,
           LATERAL (SELECT <adapted body>) AS iter(...)
      WHERE r."call?"
    )
    SELECT r.result FROM run AS r WHERE NOT r."call?"

Adaptation replaces each recursive call site with a ``ROW(true, args, NULL)``
constructor and each base-case result with ``ROW(false, NULLs, v)`` — a
plain AST traversal, done here at the ANF level so the shared translation
machinery of :mod:`repro.compiler.udf` emits the final SQL.

The run table's ``args`` are flattened into one column per UDF parameter
(the paper's ``args`` abbreviation, footnote 2).  ``WITH ITERATE`` uses the
identical template with the ITERATE keyword — only the engine-side working
table behaviour differs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sql import ast as A
from ..sql.errors import CompileError
from .anf import AnfCall
from .rename import rename_variables
from .udf import LET_STYLE_LATERAL, SqlUdf, translate_anf, udf_is_recursive

RUN_ALIAS = "r"
CALL_COLUMN = "call?"
#: The batched template's caller row-key column and batch-input names.
BATCH_KEY = "k"
BATCH_ALIAS = "b"
BATCH_TABLE = "__batch_input"


def run_columns(udf: SqlUdf) -> list[str]:
    return [CALL_COLUMN] + udf.rec_params + ["result"]


def batch_input_columns(udf: SqlUdf) -> list[str]:
    """Schema of the batch-input relation feeding the batched template:
    one caller row key plus one column per UDF parameter."""
    return [BATCH_KEY] + [p.lower() for p in udf.params]


def _call_row(udf: SqlUdf, call: AnfCall) -> A.Expr:
    anf = udf.anf
    target = anf.functions.get(call.func)
    if target is None:
        raise CompileError(f"call to unknown function {call.func!r}")
    by_param = dict(zip(target.params, call.args))
    items: list[A.Expr] = [A.Literal(True), A.Literal(udf.labels[call.func])]
    for param in udf.rec_params[1:]:
        items.append(by_param.get(param, A.Literal(None)))
    items.append(A.Cast(A.Literal(None), udf.return_type))
    return A.RowExpr(items)


def _result_row(udf: SqlUdf, value: A.Expr) -> A.Expr:
    items: list[A.Expr] = [A.Literal(False)]
    items.extend(A.Literal(None) for _ in udf.rec_params)
    items.append(value)
    return A.RowExpr(items)


def _translate_substituted(expr, on_tail) -> A.Expr:
    """Translate an ANF expression to a *single scalar expression* with let
    bindings inlined by substitution (no FROM chains at all).

    This is the SQLite rewrite: the engine lacks LATERAL, and correlated
    derived tables are off the menu too, so each ``run`` column is computed
    by an independent copy of the body with lets substituted away.  The
    duplication is only sound for non-volatile bodies — the caller checks.
    """
    from .anf import AnfCall, AnfIf, AnfLet, AnfRet

    if isinstance(expr, AnfRet) or isinstance(expr, AnfCall):
        return on_tail(expr)
    if isinstance(expr, AnfIf):
        return A.CaseExpr(None, [(expr.condition,
                                  _translate_substituted(expr.then_branch,
                                                         on_tail))],
                          _translate_substituted(expr.else_branch, on_tail))
    if isinstance(expr, AnfLet):
        body = _translate_substituted(expr.body, on_tail)
        value = expr.value
        condition_free = rename_variables(
            body, lambda name: value if name == expr.var else None)
        return condition_free
    raise CompileError(f"unknown ANF node {type(expr).__name__}")


def _assert_not_volatile(udf: SqlUdf) -> None:
    from .anf import AnfCall, AnfIf, AnfLet, AnfRet
    from .optimize import expr_is_volatile

    def check(expr) -> None:
        if isinstance(expr, AnfLet):
            if expr_is_volatile(expr.value):
                raise CompileError(
                    "the LATERAL-free (SQLite) rewrite duplicates "
                    "expressions per output column; volatile functions "
                    "(random()) would be drawn more than once — not "
                    "supported for this function")
            check(expr.body)
        elif isinstance(expr, AnfIf):
            check(expr.then_branch)
            check(expr.else_branch)

    for func in udf.anf.functions.values():
        check(func.body)


def _split_column_exprs(udf: SqlUdf, body, binder) -> list[A.Expr]:
    """One independent scalar expression per run column (split rewrite)."""
    columns = run_columns(udf)
    out = []
    for index in range(len(columns)):
        def on_tail(tail, index=index):
            from .anf import AnfCall
            row = (_call_row(udf, tail) if isinstance(tail, AnfCall)
                   else _result_row(udf, tail.expr))
            return row.items[index]

        expr = _translate_substituted(body, on_tail)
        out.append(rename_variables(expr, binder))
    return out


def _split_rec_items(udf: SqlUdf) -> list[A.SelectItem]:
    """The recursive term's run-column items, dispatched per ANF function
    over ``r.fn`` (split rewrite counterpart of :func:`_dispatch_body`)."""
    columns = run_columns(udf)
    exprs_per_function = []
    for func in udf.anf.recursive_functions():
        condition = A.BinaryOp("=", A.ColumnRef((RUN_ALIAS, "fn")),
                               A.Literal(udf.labels[func.name]))
        # Bind only this function's own parameters (see _dispatch_body).
        own = {name: A.ColumnRef((RUN_ALIAS, name)) for name in func.params}
        exprs_per_function.append(
            (condition, _split_column_exprs(udf, func.body,
                                            lambda n: own.get(n))))
    rec_items = []
    for index in range(len(columns)):
        branches = [(condition, exprs[index])
                    for condition, exprs in exprs_per_function]
        expr = (branches[0][1] if len(branches) == 1
                else A.CaseExpr(None, branches[:-1], branches[-1][1]))
        rec_items.append(A.SelectItem(expr, alias=columns[index]))
    return rec_items


def build_split_template_query(udf: SqlUdf, iterate: bool = False) -> A.SelectStmt:
    """The Figure 8 template without any LATERAL: each run column is an
    independent scalar expression (SQLite-compatible rewrite)."""
    if not udf_is_recursive(udf):
        return build_template_query(udf, iterate, "nested")
    _assert_not_volatile(udf)
    columns = run_columns(udf)
    anf = udf.anf
    param_map = {name: A.Param(index + 1)
                 for index, name in enumerate(udf.params)}

    entry = anf.functions[anf.entry]
    base_core = A.SelectCore(items=[
        A.SelectItem(e, alias=columns[i]) for i, e in enumerate(
            _split_column_exprs(udf, entry.body, lambda n: param_map.get(n)))])

    rec_core = A.SelectCore(
        items=_split_rec_items(udf),
        from_clause=A.TableName("run", alias=RUN_ALIAS),
        where=A.ColumnRef((RUN_ALIAS, CALL_COLUMN)))

    cte = A.CommonTableExpr(
        "run", list(columns),
        A.SelectStmt(None, A.SetOp("union_all", base_core, rec_core)))
    final_core = A.SelectCore(
        items=[A.SelectItem(A.ColumnRef((RUN_ALIAS, "result")), alias="result")],
        from_clause=A.TableName("run", alias=RUN_ALIAS),
        where=A.UnaryOp("not", A.ColumnRef((RUN_ALIAS, CALL_COLUMN))))
    return A.SelectStmt(A.WithClause(recursive=True, ctes=[cte],
                                     iterate=iterate), final_core)


def udf_contains_volatile(udf: SqlUdf) -> bool:
    """Does any expression anywhere in the UDF call a volatile function?

    Batched (set-oriented) execution interleaves the machine steps of many
    caller rows in one trampoline, which reorders volatile draws relative
    to the one-call-at-a-time scalar path; such functions therefore stay on
    the scalar path entirely.
    """
    from .anf import AnfCall, AnfIf, AnfLet, AnfRet
    from .optimize import expr_is_volatile

    def check(expr) -> bool:
        if isinstance(expr, AnfLet):
            return expr_is_volatile(expr.value) or check(expr.body)
        if isinstance(expr, AnfIf):
            return (expr_is_volatile(expr.condition)
                    or check(expr.then_branch) or check(expr.else_branch))
        if isinstance(expr, AnfRet):
            return expr_is_volatile(expr.expr)
        if isinstance(expr, AnfCall):
            return any(expr_is_volatile(a) for a in expr.args)
        raise CompileError(f"unknown ANF node {type(expr).__name__}")

    return any(check(func.body) for func in udf.anf.functions.values())


def build_batched_template_query(udf: SqlUdf,
                                 batch_table: str = BATCH_TABLE) -> A.SelectStmt:
    """The set-oriented Qf: one trampoline advancing *all* pending calls.

    The scalar template (Fig. 8) simulates one activation of ``f*``; applied
    per caller row it re-runs the whole recursive CTE N times.  The batched
    variant instead seeds the working set from a *batch-input* relation
    ``__batch_input(k, <params...>)`` — one machine state per caller row,
    tagged with the caller's row key ``k`` — and carries ``k`` through every
    step, so a single ``WITH RECURSIVE`` evaluation advances every pending
    call in lock-step::

        WITH RECURSIVE run(k, "call?", fn, <vars...>, result) AS (
          SELECT b.k, <adapted main>            -- one seed per caller row
          FROM __batch_input AS b
          UNION ALL
          SELECT r.k, <adapted body>            -- all pending calls advance
          FROM run AS r WHERE r."call?"
        )
        SELECT r.k, r.result FROM run AS r WHERE NOT r."call?"

    The run columns use the LATERAL-free split rewrite (each column an
    independent scalar expression) so a step over N machine states is N
    plain expression evaluations instead of N lateral subquery rescans.
    ``WITH ITERATE`` is never used here: callers finish at different steps,
    and ITERATE would drop every result produced before the last one.
    """
    if not udf_is_recursive(udf):
        raise CompileError("the batched template requires a recursive UDF; "
                           "loop-free functions inline as plain expressions")
    _assert_not_volatile(udf)
    columns = run_columns(udf)
    anf = udf.anf
    # SSA names always carry a version suffix ("x_1"), so the bare batch
    # key cannot collide with machine-state columns.
    assert BATCH_KEY not in columns

    param_map = {name: A.ColumnRef((BATCH_ALIAS, name.lower()))
                 for name in udf.params}
    entry = anf.functions[anf.entry]
    base_items = [A.SelectItem(A.ColumnRef((BATCH_ALIAS, BATCH_KEY)),
                               alias=BATCH_KEY)]
    base_items.extend(
        A.SelectItem(e, alias=columns[i]) for i, e in enumerate(
            _split_column_exprs(udf, entry.body, lambda n: param_map.get(n))))
    base_core = A.SelectCore(
        items=base_items,
        from_clause=A.TableName(batch_table, alias=BATCH_ALIAS))

    rec_items = [A.SelectItem(A.ColumnRef((RUN_ALIAS, BATCH_KEY)),
                              alias=BATCH_KEY)]
    rec_items.extend(_split_rec_items(udf))
    rec_core = A.SelectCore(
        items=rec_items,
        from_clause=A.TableName("run", alias=RUN_ALIAS),
        where=A.ColumnRef((RUN_ALIAS, CALL_COLUMN)))

    cte = A.CommonTableExpr(
        "run", [BATCH_KEY] + list(columns),
        A.SelectStmt(None, A.SetOp("union_all", base_core, rec_core)))
    final_core = A.SelectCore(
        items=[A.SelectItem(A.ColumnRef((RUN_ALIAS, BATCH_KEY)),
                            alias=BATCH_KEY),
               A.SelectItem(A.ColumnRef((RUN_ALIAS, "result")),
                            alias="result")],
        from_clause=A.TableName("run", alias=RUN_ALIAS),
        where=A.UnaryOp("not", A.ColumnRef((RUN_ALIAS, CALL_COLUMN))))
    return A.SelectStmt(A.WithClause(recursive=True, ctes=[cte]), final_core)


def build_template_query(udf: SqlUdf, iterate: bool = False,
                         let_style: str = LET_STYLE_LATERAL) -> A.SelectStmt:
    """Produce the pure-SQL query Qf for *udf*.

    Function parameters appear as ``$n`` placeholders; the planner (or
    :mod:`repro.compiler.inline`) splices call-site arguments into them.
    Loop-free functions skip the CTE entirely: Qf is just the translated
    body, exactly as in Froid.
    """
    param_map = {name: A.Param(index + 1)
                 for index, name in enumerate(udf.params)}

    def bind_params(expr: A.Expr) -> A.Expr:
        return rename_variables(expr, lambda n: param_map.get(n))

    if not udf_is_recursive(udf):
        entry = udf.anf.functions[udf.anf.entry]
        body = translate_anf(entry.body,
                             on_call=_no_calls_expected,
                             on_return=lambda v: v,
                             let_style=let_style)
        return _scalar_stmt(bind_params(body))

    columns = run_columns(udf)
    anf = udf.anf

    # Base term: the entry expression with calls/returns encoded as rows.
    entry = anf.functions[anf.entry]
    base_expr = translate_anf(
        entry.body,
        on_call=lambda call: _call_row(udf, call),
        on_return=lambda value: _result_row(udf, value),
        let_style=let_style)
    base_expr = bind_params(base_expr)
    base_core = A.SelectCore(
        items=[A.Star("base")],
        from_clause=A.SubqueryRef(_scalar_stmt(base_expr), alias="base",
                                  column_aliases=list(columns)))

    # Recursive term: the adapted UDF body over the newest run row.
    body_expr = _dispatch_body(udf, let_style)
    rec_core = A.SelectCore(
        items=[A.Star("iter")],
        from_clause=A.Join(
            "cross",
            A.TableName("run", alias=RUN_ALIAS),
            A.SubqueryRef(_scalar_stmt(body_expr), alias="iter",
                          column_aliases=list(columns), lateral=True)),
        where=A.ColumnRef((RUN_ALIAS, CALL_COLUMN)))

    cte = A.CommonTableExpr(
        "run", list(columns),
        A.SelectStmt(None, A.SetOp("union_all", base_core, rec_core)))

    final_core = A.SelectCore(
        items=[A.SelectItem(A.ColumnRef((RUN_ALIAS, "result")), alias="result")],
        from_clause=A.TableName("run", alias=RUN_ALIAS),
        where=A.UnaryOp("not", A.ColumnRef((RUN_ALIAS, CALL_COLUMN))))

    return A.SelectStmt(A.WithClause(recursive=True, ctes=[cte],
                                     iterate=iterate),
                        final_core)


def _dispatch_body(udf: SqlUdf, let_style: str) -> A.Expr:
    """Figure 9: the UDF body with rows replacing calls and base cases.

    Variable binding is per dispatched function: only *that* function's
    parameters map to ``r.<name>``.  A name can be a parameter of one
    function and a let-bound local of another (lambda lifting reuses SSA
    names), so a global map would capture locals.
    """
    anf = udf.anf
    whens: list[tuple[A.Expr, A.Expr]] = []
    for func in anf.recursive_functions():
        condition = A.BinaryOp("=", A.ColumnRef((RUN_ALIAS, "fn")),
                               A.Literal(udf.labels[func.name]))
        body = translate_anf(
            func.body,
            on_call=lambda call: _call_row(udf, call),
            on_return=lambda value: _result_row(udf, value),
            let_style=let_style)
        own = {name: A.ColumnRef((RUN_ALIAS, name)) for name in func.params}
        body = rename_variables(body, lambda n: own.get(n))
        whens.append((condition, body))
    if len(whens) == 1:
        return whens[0][1]
    return A.CaseExpr(None, whens[:-1], whens[-1][1])


# ---------------------------------------------------------------------------
# The machine form of the batched template
# ---------------------------------------------------------------------------
#
# The batched Qf above *spells* a state machine in SQL: every run row is a
# machine state ``(fn, <vars...>)`` and the recursive term is its transition
# function.  The engine's BatchedUdf operator can evaluate that machine
# directly — compiled condition/argument expressions over the working set,
# no generic operator overhead per step — exactly as WITH ITERATE is an
# engine-side evaluation strategy for the same template.  The structures
# below are that machine, handed to the engine alongside the SQL form
# (``planner.batch_strategy`` picks which one runs; both must agree).


@dataclass
class MachineLet:
    """Bind *var* to *value* for *body* — the template's LATERAL binding,
    evaluated exactly once per step (no substitution duplication)."""

    var: str
    value: A.Expr
    body: object


@dataclass
class MachineIf:
    """Branch on *condition* (an SQL expression over the state columns)."""

    condition: A.Expr
    then_node: object
    else_node: object


@dataclass
class MachineCall:
    """Tail call: the next state is ``(label, <args...>)``."""

    label: int
    args: list  # one A.Expr per state variable column (rec_params[1:])


@dataclass
class MachineResult:
    """Base case: the activation finishes with *value*."""

    value: A.Expr


@dataclass
class BatchedMachine:
    """The batched template's trampoline as explicit transition rules.

    ``base`` is evaluated over one row of ``(param_columns)`` per caller;
    ``transitions[label]`` over one state row of ``(state_columns)``, where
    only the columns in ``own_params[label]`` carry that rule's meaningful
    values (the rest are another rule's slots — see
    :func:`_dispatch_body`'s per-function binding note).  Expressions
    reference variables as bare SSA names, resolved against those columns
    plus any enclosing :class:`MachineLet` bindings.
    """

    param_columns: list[str]
    state_columns: list[str]          # ["fn"] + machine variables
    own_params: dict[int, frozenset]  # label -> that rule's live columns
    base: object = field(repr=False)  # type: ignore[assignment]
    transitions: dict[int, object] = field(repr=False)  # type: ignore[assignment]


def build_batched_machine(udf: SqlUdf) -> BatchedMachine:
    """Derive the transition rules of the batched template from the ANF."""
    if not udf_is_recursive(udf):
        raise CompileError("the machine form requires a recursive UDF")
    _assert_not_volatile(udf)
    anf = udf.anf
    state_vars = udf.rec_params[1:]  # "fn" is the dispatch slot

    def node(expr):
        from .anf import AnfIf, AnfLet, AnfRet

        if isinstance(expr, AnfLet):
            return MachineLet(expr.var, expr.value, node(expr.body))
        if isinstance(expr, AnfIf):
            return MachineIf(expr.condition, node(expr.then_branch),
                             node(expr.else_branch))
        if isinstance(expr, AnfCall):
            target = anf.functions.get(expr.func)
            if target is None:
                raise CompileError(f"call to unknown function {expr.func!r}")
            by_param = dict(zip(target.params, expr.args))
            args = [by_param.get(p, A.Literal(None)) for p in state_vars]
            return MachineCall(udf.labels[expr.func], args)
        if isinstance(expr, AnfRet):
            return MachineResult(expr.expr)
        raise CompileError(f"unknown ANF node {type(expr).__name__}")

    transitions = {}
    own_params = {}
    for func in anf.recursive_functions():
        label = udf.labels[func.name]
        transitions[label] = node(func.body)
        own_params[label] = frozenset(p.lower() for p in func.params)
    return BatchedMachine(
        param_columns=[p.lower() for p in udf.params],
        state_columns=[p.lower() for p in udf.rec_params],
        own_params=own_params,
        base=node(anf.functions[anf.entry].body),
        transitions=transitions)


def _scalar_stmt(expr: A.Expr) -> A.SelectStmt:
    """``SELECT <expr>`` — unwrapping a redundant scalar-subquery shell."""
    if isinstance(expr, A.ScalarSubquery):
        # The let-chain translation already built a single-row SELECT whose
        # item is the row constructor; use it directly as the FROM body.
        return expr.query
    return A.SelectStmt(None, A.SelectCore(items=[A.SelectItem(expr)]))


def _no_calls_expected(call: AnfCall) -> A.Expr:
    raise CompileError("internal: loop-free function still contains a call "
                       f"to {call.func!r}")
