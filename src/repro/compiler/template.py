"""The ``WITH RECURSIVE`` code template (the paper's **SQL** step, Fig. 8/9).

The tail-recursive UDF ``f*`` is *simulated* by a CTE ``run`` that tracks
its evaluation::

    WITH RECURSIVE run("call?", fn, <vars...>, result) AS (
      SELECT base.*                                  -- original invocation
      FROM (SELECT <adapted main>) AS base(...)
      UNION ALL
      SELECT iter.*                                  -- calls and base cases
      FROM run AS r,
           LATERAL (SELECT <adapted body>) AS iter(...)
      WHERE r."call?"
    )
    SELECT r.result FROM run AS r WHERE NOT r."call?"

Adaptation replaces each recursive call site with a ``ROW(true, args, NULL)``
constructor and each base-case result with ``ROW(false, NULLs, v)`` — a
plain AST traversal, done here at the ANF level so the shared translation
machinery of :mod:`repro.compiler.udf` emits the final SQL.

The run table's ``args`` are flattened into one column per UDF parameter
(the paper's ``args`` abbreviation, footnote 2).  ``WITH ITERATE`` uses the
identical template with the ITERATE keyword — only the engine-side working
table behaviour differs.
"""

from __future__ import annotations

from ..sql import ast as A
from ..sql.errors import CompileError
from .anf import AnfCall
from .rename import rename_variables
from .udf import LET_STYLE_LATERAL, SqlUdf, translate_anf, udf_is_recursive

RUN_ALIAS = "r"
CALL_COLUMN = "call?"


def run_columns(udf: SqlUdf) -> list[str]:
    return [CALL_COLUMN] + udf.rec_params + ["result"]


def _call_row(udf: SqlUdf, call: AnfCall) -> A.Expr:
    anf = udf.anf
    target = anf.functions.get(call.func)
    if target is None:
        raise CompileError(f"call to unknown function {call.func!r}")
    by_param = dict(zip(target.params, call.args))
    items: list[A.Expr] = [A.Literal(True), A.Literal(udf.labels[call.func])]
    for param in udf.rec_params[1:]:
        items.append(by_param.get(param, A.Literal(None)))
    items.append(A.Cast(A.Literal(None), udf.return_type))
    return A.RowExpr(items)


def _result_row(udf: SqlUdf, value: A.Expr) -> A.Expr:
    items: list[A.Expr] = [A.Literal(False)]
    items.extend(A.Literal(None) for _ in udf.rec_params)
    items.append(value)
    return A.RowExpr(items)


def _translate_substituted(expr, on_tail) -> A.Expr:
    """Translate an ANF expression to a *single scalar expression* with let
    bindings inlined by substitution (no FROM chains at all).

    This is the SQLite rewrite: the engine lacks LATERAL, and correlated
    derived tables are off the menu too, so each ``run`` column is computed
    by an independent copy of the body with lets substituted away.  The
    duplication is only sound for non-volatile bodies — the caller checks.
    """
    from .anf import AnfCall, AnfIf, AnfLet, AnfRet

    if isinstance(expr, AnfRet) or isinstance(expr, AnfCall):
        return on_tail(expr)
    if isinstance(expr, AnfIf):
        return A.CaseExpr(None, [(expr.condition,
                                  _translate_substituted(expr.then_branch,
                                                         on_tail))],
                          _translate_substituted(expr.else_branch, on_tail))
    if isinstance(expr, AnfLet):
        body = _translate_substituted(expr.body, on_tail)
        value = expr.value
        condition_free = rename_variables(
            body, lambda name: value if name == expr.var else None)
        return condition_free
    raise CompileError(f"unknown ANF node {type(expr).__name__}")


def _assert_not_volatile(udf: SqlUdf) -> None:
    from .anf import AnfCall, AnfIf, AnfLet, AnfRet
    from .optimize import expr_is_volatile

    def check(expr) -> None:
        if isinstance(expr, AnfLet):
            if expr_is_volatile(expr.value):
                raise CompileError(
                    "the LATERAL-free (SQLite) rewrite duplicates "
                    "expressions per output column; volatile functions "
                    "(random()) would be drawn more than once — not "
                    "supported for this function")
            check(expr.body)
        elif isinstance(expr, AnfIf):
            check(expr.then_branch)
            check(expr.else_branch)

    for func in udf.anf.functions.values():
        check(func.body)


def build_split_template_query(udf: SqlUdf, iterate: bool = False) -> A.SelectStmt:
    """The Figure 8 template without any LATERAL: each run column is an
    independent scalar expression (SQLite-compatible rewrite)."""
    if not udf_is_recursive(udf):
        return build_template_query(udf, iterate, "nested")
    _assert_not_volatile(udf)
    columns = run_columns(udf)
    anf = udf.anf
    param_map = {name: A.Param(index + 1)
                 for index, name in enumerate(udf.params)}

    def column_exprs(body, binder) -> list[A.Expr]:
        out = []
        for index in range(len(columns)):
            def on_tail(tail, index=index):
                from .anf import AnfCall
                row = (_call_row(udf, tail) if isinstance(tail, AnfCall)
                       else _result_row(udf, tail.expr))
                return row.items[index]

            expr = _translate_substituted(body, on_tail)
            out.append(rename_variables(expr, binder))
        return out

    entry = anf.functions[anf.entry]
    base_core = A.SelectCore(items=[
        A.SelectItem(e, alias=columns[i]) for i, e in enumerate(
            column_exprs(entry.body, lambda n: param_map.get(n)))])

    whens_per_function = [(func, A.BinaryOp("=", A.ColumnRef((RUN_ALIAS, "fn")),
                                            A.Literal(udf.labels[func.name])))
                          for func in anf.recursive_functions()]

    exprs_per_function = []
    for func, condition in whens_per_function:
        # Bind only this function's own parameters (see _dispatch_body).
        own = {name: A.ColumnRef((RUN_ALIAS, name)) for name in func.params}
        exprs_per_function.append(
            (condition, column_exprs(func.body, lambda n: own.get(n))))
    rec_items = []
    for index in range(len(columns)):
        branches = [(condition, exprs[index])
                    for condition, exprs in exprs_per_function]
        expr = (branches[0][1] if len(branches) == 1
                else A.CaseExpr(None, branches[:-1], branches[-1][1]))
        rec_items.append(A.SelectItem(expr, alias=columns[index]))
    rec_core = A.SelectCore(
        items=rec_items,
        from_clause=A.TableName("run", alias=RUN_ALIAS),
        where=A.ColumnRef((RUN_ALIAS, CALL_COLUMN)))

    cte = A.CommonTableExpr(
        "run", list(columns),
        A.SelectStmt(None, A.SetOp("union_all", base_core, rec_core)))
    final_core = A.SelectCore(
        items=[A.SelectItem(A.ColumnRef((RUN_ALIAS, "result")), alias="result")],
        from_clause=A.TableName("run", alias=RUN_ALIAS),
        where=A.UnaryOp("not", A.ColumnRef((RUN_ALIAS, CALL_COLUMN))))
    return A.SelectStmt(A.WithClause(recursive=True, ctes=[cte],
                                     iterate=iterate), final_core)


def build_template_query(udf: SqlUdf, iterate: bool = False,
                         let_style: str = LET_STYLE_LATERAL) -> A.SelectStmt:
    """Produce the pure-SQL query Qf for *udf*.

    Function parameters appear as ``$n`` placeholders; the planner (or
    :mod:`repro.compiler.inline`) splices call-site arguments into them.
    Loop-free functions skip the CTE entirely: Qf is just the translated
    body, exactly as in Froid.
    """
    param_map = {name: A.Param(index + 1)
                 for index, name in enumerate(udf.params)}

    def bind_params(expr: A.Expr) -> A.Expr:
        return rename_variables(expr, lambda n: param_map.get(n))

    if not udf_is_recursive(udf):
        entry = udf.anf.functions[udf.anf.entry]
        body = translate_anf(entry.body,
                             on_call=_no_calls_expected,
                             on_return=lambda v: v,
                             let_style=let_style)
        return _scalar_stmt(bind_params(body))

    columns = run_columns(udf)
    anf = udf.anf

    # Base term: the entry expression with calls/returns encoded as rows.
    entry = anf.functions[anf.entry]
    base_expr = translate_anf(
        entry.body,
        on_call=lambda call: _call_row(udf, call),
        on_return=lambda value: _result_row(udf, value),
        let_style=let_style)
    base_expr = bind_params(base_expr)
    base_core = A.SelectCore(
        items=[A.Star("base")],
        from_clause=A.SubqueryRef(_scalar_stmt(base_expr), alias="base",
                                  column_aliases=list(columns)))

    # Recursive term: the adapted UDF body over the newest run row.
    body_expr = _dispatch_body(udf, let_style)
    rec_core = A.SelectCore(
        items=[A.Star("iter")],
        from_clause=A.Join(
            "cross",
            A.TableName("run", alias=RUN_ALIAS),
            A.SubqueryRef(_scalar_stmt(body_expr), alias="iter",
                          column_aliases=list(columns), lateral=True)),
        where=A.ColumnRef((RUN_ALIAS, CALL_COLUMN)))

    cte = A.CommonTableExpr(
        "run", list(columns),
        A.SelectStmt(None, A.SetOp("union_all", base_core, rec_core)))

    final_core = A.SelectCore(
        items=[A.SelectItem(A.ColumnRef((RUN_ALIAS, "result")), alias="result")],
        from_clause=A.TableName("run", alias=RUN_ALIAS),
        where=A.UnaryOp("not", A.ColumnRef((RUN_ALIAS, CALL_COLUMN))))

    return A.SelectStmt(A.WithClause(recursive=True, ctes=[cte],
                                     iterate=iterate),
                        final_core)


def _dispatch_body(udf: SqlUdf, let_style: str) -> A.Expr:
    """Figure 9: the UDF body with rows replacing calls and base cases.

    Variable binding is per dispatched function: only *that* function's
    parameters map to ``r.<name>``.  A name can be a parameter of one
    function and a let-bound local of another (lambda lifting reuses SSA
    names), so a global map would capture locals.
    """
    anf = udf.anf
    whens: list[tuple[A.Expr, A.Expr]] = []
    for func in anf.recursive_functions():
        condition = A.BinaryOp("=", A.ColumnRef((RUN_ALIAS, "fn")),
                               A.Literal(udf.labels[func.name]))
        body = translate_anf(
            func.body,
            on_call=lambda call: _call_row(udf, call),
            on_return=lambda value: _result_row(udf, value),
            let_style=let_style)
        own = {name: A.ColumnRef((RUN_ALIAS, name)) for name in func.params}
        body = rename_variables(body, lambda n: own.get(n))
        whens.append((condition, body))
    if len(whens) == 1:
        return whens[0][1]
    return A.CaseExpr(None, whens[:-1], whens[-1][1])


def _scalar_stmt(expr: A.Expr) -> A.SelectStmt:
    """``SELECT <expr>`` — unwrapping a redundant scalar-subquery shell."""
    if isinstance(expr, A.ScalarSubquery):
        # The let-chain translation already built a single-row SELECT whose
        # item is the row constructor; use it directly as the FROM body.
        return expr.query
    return A.SelectStmt(None, A.SelectCore(items=[A.SelectItem(expr)]))


def _no_calls_expected(call: AnfCall) -> A.Expr:
    raise CompileError("internal: loop-free function still contains a call "
                       f"to {call.func!r}")
