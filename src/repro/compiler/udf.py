"""ANF → one directly tail-recursive SQL UDF (the paper's **UDF** step).

Mutual recursion between the remaining ANF functions is flattened with an
additional dispatch parameter ``fn`` (defunctionalization, Reynolds / Grust
et al.), and the functional constructs map onto SQL:

* ``let v = e1 in e2``  →  chained single-row subqueries glued with
  ``LEFT JOIN LATERAL ... ON true`` (paper Figure 7) — LATERAL plays the
  role of ``;`` statement sequencing,
* ``if·then·else``       →  ``CASE WHEN``,
* tail calls             →  calls to the flattened UDF ``f*``.

The same translation machinery is reused by :mod:`repro.compiler.template`
with a different call/return treatment (rows instead of calls) and by the
SQLite dialect with a nested-subquery ``let`` style instead of LATERAL.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..sql import ast as A
from ..sql.errors import CompileError
from .anf import AnfCall, AnfExpr, AnfFunction, AnfIf, AnfLet, AnfProgram, AnfRet

#: How ``let`` chains are rendered:
#: - "lateral": (SELECT e1) AS _0(v1) LEFT JOIN LATERAL (SELECT e2) AS _1(v2)
#: - "nested":  SELECT ... FROM (SELECT prev.*, e2 AS v2 FROM (...) prev)
LET_STYLE_LATERAL = "lateral"
LET_STYLE_NESTED = "nested"


def translate_anf(expr: AnfExpr,
                  on_call: Callable[[AnfCall], A.Expr],
                  on_return: Callable[[A.Expr], A.Expr],
                  let_style: str = LET_STYLE_LATERAL) -> A.Expr:
    """Translate an ANF expression to one SQL scalar expression.

    *on_call* renders tail calls (a recursive UDF invocation for the UDF
    form, a ``ROW(true, args, NULL)`` constructor for the CTE template);
    *on_return* renders base-case results likewise.
    """
    if isinstance(expr, AnfRet):
        return on_return(expr.expr)
    if isinstance(expr, AnfCall):
        return on_call(expr)
    if isinstance(expr, AnfIf):
        return A.CaseExpr(
            None,
            [(expr.condition,
              translate_anf(expr.then_branch, on_call, on_return, let_style))],
            translate_anf(expr.else_branch, on_call, on_return, let_style))
    if isinstance(expr, AnfLet):
        bindings: list[tuple[str, A.Expr]] = []
        tail: AnfExpr = expr
        while isinstance(tail, AnfLet):
            bindings.append((tail.var, tail.value))
            tail = tail.body
        item = translate_anf(tail, on_call, on_return, let_style)
        if let_style == LET_STYLE_LATERAL:
            from_clause = _lateral_chain(bindings)
        elif let_style == LET_STYLE_NESTED:
            from_clause = _nested_chain(bindings)
        else:
            raise CompileError(f"unknown let style {let_style!r}")
        core = A.SelectCore(items=[A.SelectItem(item)], from_clause=from_clause)
        return A.ScalarSubquery(A.SelectStmt(None, core))
    raise CompileError(f"unknown ANF node {type(expr).__name__}")


def _one_row_select(value: A.Expr) -> A.SelectStmt:
    return A.SelectStmt(None, A.SelectCore(items=[A.SelectItem(value)]))


def _lateral_chain(bindings: list[tuple[str, A.Expr]]) -> A.TableRef:
    """Paper Figure 7: ``(SELECT e1) AS _0(v1) LEFT JOIN LATERAL ...``."""
    var0, value0 = bindings[0]
    chain: A.TableRef = A.SubqueryRef(_one_row_select(value0), alias="_0",
                                      column_aliases=[var0], lateral=False)
    for index, (var, value) in enumerate(bindings[1:], start=1):
        right = A.SubqueryRef(_one_row_select(value), alias=f"_{index}",
                              column_aliases=[var], lateral=True)
        chain = A.Join("left", chain, right, condition=A.Literal(True))
    return chain


def _nested_chain(bindings: list[tuple[str, A.Expr]]) -> A.TableRef:
    """LATERAL-free rewrite for SQLite: each binding level wraps the previous
    derived table and passes earlier columns through with ``prev.*``."""
    var0, value0 = bindings[0]
    inner = A.SelectStmt(None, A.SelectCore(
        items=[A.SelectItem(value0, alias=var0)]))
    current = A.SubqueryRef(inner, alias="_0")
    for index, (var, value) in enumerate(bindings[1:], start=1):
        core = A.SelectCore(
            items=[A.Star(current.alias), A.SelectItem(value, alias=var)],
            from_clause=current)
        current = A.SubqueryRef(A.SelectStmt(None, core), alias=f"_{index}")
    return current


# ---------------------------------------------------------------------------
# Defunctionalization
# ---------------------------------------------------------------------------


@dataclass
class SqlUdf:
    """The flattened tail-recursive UDF and its wrapper (paper Figure 7)."""

    name: str                       # original function name f
    star_name: str                  # the recursive worker f* ("<f>__rec")
    params: list[str]               # original parameter SSA names
    param_types: list[str]
    return_type: str
    labels: dict[str, int]          # ANF function name -> fn label value
    rec_params: list[str]           # ["fn", <union of ANF function params>]
    rec_param_types: list[str]
    star_body: A.Expr               # dispatch CASE with recursive calls
    wrapper_body: A.Expr            # the entry expression calling f*
    entry_call_args: Optional[list[A.Expr]] = None  # None if entry has lets
    anf: AnfProgram = field(repr=False, default=None)  # type: ignore[assignment]


def build_udf(program: AnfProgram, let_style: str = LET_STYLE_LATERAL) -> SqlUdf:
    """Flatten *program* into one directly tail-recursive SQL UDF."""
    rec_functions = program.recursive_functions()
    labels = {func.name: index + 1 for index, func in enumerate(rec_functions)}
    star_name = f"{program.func_name}__rec"

    # Union of parameters over all dispatched functions, stable order:
    # first-seen wins; 'fn' goes first.
    rec_params: list[str] = []
    for func in rec_functions:
        for param in func.params:
            if param not in rec_params:
                rec_params.append(param)
    # SSA names always carry a version suffix ("x_1"), so the bare dispatch
    # name "fn" cannot collide with them.
    assert "fn" not in rec_params
    rec_param_types = [program.var_types.get(p, "int") for p in rec_params]

    def on_call(call: AnfCall) -> A.Expr:
        target = program.functions.get(call.func)
        if target is None:
            raise CompileError(f"call to unknown function {call.func!r}")
        by_param = dict(zip(target.params, call.args))
        args: list[A.Expr] = [A.Literal(labels[call.func])]
        for param in rec_params:
            args.append(by_param.get(param, A.Literal(None)))
        return A.FuncCall(star_name, args)

    def on_return(value: A.Expr) -> A.Expr:
        return value

    whens: list[tuple[A.Expr, A.Expr]] = []
    for func in rec_functions:
        condition = A.BinaryOp("=", A.ColumnRef(("fn",)),
                               A.Literal(labels[func.name]))
        body = translate_anf(func.body, on_call, on_return, let_style)
        whens.append((condition, body))
    if not whens:
        star_body: A.Expr = A.Literal(None)
    elif len(whens) == 1:
        # A single recursive function needs no dispatch at all.
        star_body = whens[0][1]
    else:
        # Last label becomes the ELSE branch (no silent NULL fallthrough).
        star_body = A.CaseExpr(None, whens[:-1], whens[-1][1])

    entry = program.functions[program.entry]
    wrapper_body = translate_anf(entry.body, on_call, on_return, let_style)
    entry_call_args = None
    if isinstance(entry.body, AnfCall):
        entry_call_args = _entry_args(entry.body, program, rec_params, labels)

    return SqlUdf(
        name=program.func_name,
        star_name=star_name,
        params=list(program.params),
        param_types=list(program.param_types),
        return_type=program.return_type,
        labels=labels,
        rec_params=["fn"] + rec_params,
        rec_param_types=["int"] + rec_param_types,
        star_body=star_body,
        wrapper_body=wrapper_body,
        entry_call_args=entry_call_args,
        anf=program,
    )


def _entry_args(call: AnfCall, program: AnfProgram, rec_params: list[str],
                labels: dict[str, int]) -> list[A.Expr]:
    target = program.functions[call.func]
    by_param = dict(zip(target.params, call.args))
    args: list[A.Expr] = [A.Literal(labels[call.func])]
    for param in rec_params:
        args.append(by_param.get(param, A.Literal(None)))
    return args


def udf_is_recursive(udf: SqlUdf) -> bool:
    return bool(udf.labels)
