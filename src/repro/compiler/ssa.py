"""Static single assignment construction (second half of the paper's SSA step).

Given the goto CFG, place φ functions at dominance frontiers of each
variable's definition sites (Cytron et al.) and rename every definition to a
fresh version ``name_k``.  The result matches the paper's Figure 5: every
variable assigned exactly once, φs at join points carrying one operand per
predecessor, and expressions that are still plain SQL — now over versioned
variables.

Also provides :func:`evaluate_ssa`, a reference interpreter for SSA programs
used by the differential tests (PL/SQL interpreter vs SSA vs compiled SQL).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..sql import ast as A
from ..sql.errors import CompileError
from .cfg import (BasicBlock, CfgAssign, CondGoto, ControlFlowGraph, Goto,
                  Return, Terminator)
from .dominators import DominatorInfo
from .rename import rename_variables


@dataclass
class Phi:
    """``target <- φ(pred_bid: operand, ...)``; operand None means the
    variable is undefined along that edge (evaluates to NULL)."""

    target: str
    args: dict[int, Optional[str]] = field(default_factory=dict)


@dataclass
class SsaAssign:
    target: str
    expr: A.Expr


@dataclass
class SsaBlock:
    bid: int
    phis: list[Phi] = field(default_factory=list)
    stmts: list[SsaAssign] = field(default_factory=list)
    terminator: Optional[Terminator] = None

    @property
    def label(self) -> str:
        return f"L{self.bid}"

    def successors(self) -> list[int]:
        t = self.terminator
        if isinstance(t, Goto):
            return [t.target]
        if isinstance(t, CondGoto):
            return [t.then_target, t.else_target]
        return []


@dataclass
class SsaProgram:
    func_name: str
    params: list[str]              # SSA names of the parameters (version 1)
    param_types: list[str]
    return_type: str
    blocks: dict[int, SsaBlock]
    entry: int
    base_of: dict[str, str]        # ssa name -> original variable
    var_types: dict[str, str]      # ssa name -> declared type

    def block_ids(self) -> list[int]:
        return sorted(self.blocks)

    def predecessors(self) -> dict[int, list[int]]:
        preds: dict[int, list[int]] = {bid: [] for bid in self.blocks}
        for bid, block in self.blocks.items():
            for successor in block.successors():
                if successor in preds:
                    preds[successor].append(bid)
        return preds

    def pretty(self) -> str:
        from .dialects import render_expression
        lines = [f"function {self.func_name}({', '.join(self.params)})", "{"]
        for bid in self.block_ids():
            block = self.blocks[bid]
            lines.append(f"  {block.label}:")
            for phi in block.phis:
                operands = ", ".join(
                    f"L{pred}:{operand if operand is not None else 'NULL'}"
                    for pred, operand in sorted(phi.args.items()))
                lines.append(f"    {phi.target} <- phi({operands});")
            for stmt in block.stmts:
                lines.append(f"    {stmt.target} <- "
                             f"{render_expression(stmt.expr)};")
            t = block.terminator
            if isinstance(t, Goto):
                lines.append(f"    goto L{t.target};")
            elif isinstance(t, CondGoto):
                lines.append(f"    if {render_expression(t.condition)} "
                             f"then goto L{t.then_target} "
                             f"else goto L{t.else_target};")
            elif isinstance(t, Return):
                lines.append(f"    return {render_expression(t.expr)};")
        lines.append("}")
        return "\n".join(lines)


class SsaBuilder:
    def __init__(self, cfg: ControlFlowGraph, catalog=None):
        self.cfg = cfg
        self.catalog = catalog
        self.counters: dict[str, int] = {}
        self.stacks: dict[str, list[str]] = {}
        self.base_of: dict[str, str] = {}
        self.var_types: dict[str, str] = {}
        self.ssa_blocks: dict[int, SsaBlock] = {}

    # ------------------------------------------------------------------

    def fresh(self, base: str) -> str:
        version = self.counters.get(base, 0) + 1
        self.counters[base] = version
        name = f"{base}_{version}"
        self.base_of[name] = base
        self.var_types[name] = self.cfg.var_types.get(base, "int")
        return name

    def current(self, base: str) -> Optional[str]:
        stack = self.stacks.get(base)
        return stack[-1] if stack else None

    # ------------------------------------------------------------------

    def build(self) -> SsaProgram:
        cfg = self.cfg
        # Drop unreachable blocks first: dominance is undefined for them.
        reachable = self._reachable()
        successors = {bid: [s for s in cfg.blocks[bid].successors()]
                      for bid in reachable}
        dom = DominatorInfo(cfg.entry, successors)
        preds = {bid: dom.predecessors[bid] for bid in dom.rpo}

        # 1. φ placement at iterated dominance frontiers.
        defsites: dict[str, set[int]] = {v: set() for v in cfg.variables()}
        for bid in dom.rpo:
            for stmt in cfg.blocks[bid].stmts:
                defsites.setdefault(stmt.target, set()).add(bid)
        for param in cfg.params:
            defsites.setdefault(param, set()).add(cfg.entry)
        phi_sites: dict[int, list[Phi]] = {bid: [] for bid in dom.rpo}
        phi_bases: dict[int, set[str]] = {bid: set() for bid in dom.rpo}
        for variable, sites in defsites.items():
            work = list(sites)
            placed: set[int] = set()
            while work:
                site = work.pop()
                for frontier in dom.frontiers.get(site, ()):
                    if frontier in placed:
                        continue
                    placed.add(frontier)
                    phi_sites[frontier].append(Phi(target=variable))
                    phi_bases[frontier].add(variable)
                    if frontier not in sites:
                        work.append(frontier)

        for bid in dom.rpo:
            self.ssa_blocks[bid] = SsaBlock(bid=bid, phis=phi_sites[bid])

        # 2. Renaming along the dominator tree.
        params_ssa: list[str] = []
        for param in cfg.params:
            name = self.fresh(param)
            self.stacks.setdefault(param, []).append(name)
            params_ssa.append(name)
        self._rename_block(cfg.entry, dom, preds)

        return SsaProgram(
            func_name=cfg.func_name,
            params=params_ssa,
            param_types=list(cfg.param_types),
            return_type=cfg.return_type,
            blocks=self.ssa_blocks,
            entry=cfg.entry,
            base_of=dict(self.base_of),
            var_types=dict(self.var_types),
        )

    def _reachable(self) -> set[int]:
        seen = {self.cfg.entry}
        work = [self.cfg.entry]
        while work:
            bid = work.pop()
            for successor in self.cfg.blocks[bid].successors():
                if successor not in seen:
                    seen.add(successor)
                    work.append(successor)
        return seen

    # ------------------------------------------------------------------

    def _rename_expr(self, expr: A.Expr) -> A.Expr:
        def rename(name: str) -> Optional[A.Expr]:
            if name not in self.cfg.var_types:
                return None
            current = self.current(name)
            if current is None:
                # Used before any definition: declared variables are NULL.
                return A.Literal(None)
            return A.ColumnRef((current,))

        return rename_variables(expr, rename, self.catalog)

    def _rename_block(self, bid: int, dom: DominatorInfo,
                      preds: dict[int, list[int]]) -> None:
        block = self.cfg.blocks[bid]
        ssa_block = self.ssa_blocks[bid]
        pushed: list[str] = []

        for phi in ssa_block.phis:
            base = phi.target
            name = self.fresh(base)
            phi.target = name
            self.stacks.setdefault(base, []).append(name)
            pushed.append(base)

        for stmt in block.stmts:
            expr = self._rename_expr(stmt.expr)
            name = self.fresh(stmt.target)
            ssa_block.stmts.append(SsaAssign(name, expr))
            self.stacks.setdefault(stmt.target, []).append(name)
            pushed.append(stmt.target)

        terminator = block.terminator
        if isinstance(terminator, Goto):
            ssa_block.terminator = Goto(terminator.target)
        elif isinstance(terminator, CondGoto):
            ssa_block.terminator = CondGoto(
                self._rename_expr(terminator.condition),
                terminator.then_target, terminator.else_target)
        elif isinstance(terminator, Return):
            ssa_block.terminator = Return(self._rename_expr(terminator.expr))
        else:  # pragma: no cover - CFG builder always terminates blocks
            raise CompileError(f"block L{bid} lacks a terminator")

        # Fill φ operands of successors for the edges leaving this block.
        for successor in ssa_block.successors():
            succ_block = self.ssa_blocks.get(successor)
            if succ_block is None:
                continue
            for phi in succ_block.phis:
                base = self.base_of.get(phi.target, phi.target)
                phi.args[bid] = self.current(base)

        for child in dom.children.get(bid, ()):
            self._rename_block(child, dom, preds)

        for base in reversed(pushed):
            self.stacks[base].pop()


def build_ssa(cfg: ControlFlowGraph, catalog=None) -> SsaProgram:
    """Construct SSA form for *cfg* (paper Figure 5)."""
    return SsaBuilder(cfg, catalog).build()


# ---------------------------------------------------------------------------
# Reference interpreter (for differential testing)
# ---------------------------------------------------------------------------


def evaluate_ssa(program: SsaProgram, db, args: list) -> object:
    """Execute an SSA program directly against *db* (slow, for tests only).

    Expressions are evaluated through the engine's expression compiler with
    all live SSA variables in scope, mirroring the PL/pgSQL interpreter's
    variable binding but over versioned names.
    """
    from ..sql.expr import EvalContext, ExprCompiler, Relation, RuntimeContext, Scope
    from ..sql.executor.scan import make_slots

    names = sorted(program.var_types)
    index = {name: i for i, name in enumerate(names)}
    scope = Scope([Relation("__ssa", names)])
    rt = RuntimeContext(db, ())
    values: list = [None] * len(names)
    for name, value in zip(program.params, args):
        values[index[name]] = value

    compiled: dict[int, tuple] = {}

    def evaluate(expr: A.Expr):
        cached = compiled.get(id(expr))
        if cached is None:
            compiler = ExprCompiler(scope, db.planner)
            cached = (compiler.compile(expr), compiler.subplans)
            compiled[id(expr)] = cached
        closure, subplans = cached
        slots = make_slots(rt, None, subplans)
        ctx = EvalContext(rt, (tuple(values),), slots=slots)
        return closure(ctx)

    bid = program.entry
    previous: Optional[int] = None
    steps = 0
    while True:
        steps += 1
        if steps > db.max_recursion_iterations:
            raise CompileError("SSA evaluation did not terminate")
        block = program.blocks[bid]
        # φs read their operands simultaneously (pre-update snapshot).
        phi_values = []
        for phi in block.phis:
            operand = phi.args.get(previous)
            phi_values.append(None if operand is None
                              else values[index[operand]])
        for phi, value in zip(block.phis, phi_values):
            values[index[phi.target]] = value
        for stmt in block.stmts:
            values[index[stmt.target]] = evaluate(stmt.expr)
        terminator = block.terminator
        if isinstance(terminator, Return):
            return evaluate(terminator.expr)
        if isinstance(terminator, Goto):
            previous, bid = bid, terminator.target
        elif isinstance(terminator, CondGoto):
            condition = evaluate(terminator.condition)
            previous, bid = bid, (terminator.then_target if condition is True
                                  else terminator.else_target)
        else:  # pragma: no cover
            raise CompileError("missing terminator during SSA evaluation")
