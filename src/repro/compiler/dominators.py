"""Dominator tree and dominance frontiers (Cooper–Harvey–Kennedy).

Used by :mod:`repro.compiler.ssa` for φ placement per Cytron et al. [4 in
the paper].  The implementation is the classic "A Simple, Fast Dominance
Algorithm": iterate intersections over a reverse-postorder numbering until
fixpoint, then read dominance frontiers off join points.
"""

from __future__ import annotations

from typing import Iterable, Optional


def reverse_postorder(entry: int, successors: dict[int, list[int]]) -> list[int]:
    """Reverse postorder of the nodes reachable from *entry* (iterative)."""
    visited: set[int] = set()
    order: list[int] = []
    stack: list[tuple[int, Iterable[int]]] = [(entry, iter(successors.get(entry, ())))]
    visited.add(entry)
    while stack:
        node, it = stack[-1]
        advanced = False
        for succ in it:
            if succ not in visited:
                visited.add(succ)
                stack.append((succ, iter(successors.get(succ, ()))))
                advanced = True
                break
        if not advanced:
            order.append(node)
            stack.pop()
    order.reverse()
    return order


class DominatorInfo:
    """Immediate dominators, dominator tree children, dominance frontiers."""

    def __init__(self, entry: int, successors: dict[int, list[int]]):
        self.entry = entry
        self.rpo = reverse_postorder(entry, successors)
        self._rpo_index = {node: i for i, node in enumerate(self.rpo)}
        predecessors: dict[int, list[int]] = {node: [] for node in self.rpo}
        for node in self.rpo:
            for succ in successors.get(node, ()):
                if succ in self._rpo_index:
                    predecessors[succ].append(node)
        self.predecessors = predecessors
        self.idom = self._compute_idoms()
        self.children: dict[int, list[int]] = {node: [] for node in self.rpo}
        for node, dom in self.idom.items():
            if node != self.entry and dom is not None:
                self.children[dom].append(node)
        self.frontiers = self._compute_frontiers()

    # ------------------------------------------------------------------

    def _intersect(self, a: int, b: int, idom: dict[int, Optional[int]]) -> int:
        index = self._rpo_index
        while a != b:
            while index[a] > index[b]:
                a = idom[a]  # type: ignore[assignment]
            while index[b] > index[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    def _compute_idoms(self) -> dict[int, Optional[int]]:
        idom: dict[int, Optional[int]] = {node: None for node in self.rpo}
        idom[self.entry] = self.entry
        changed = True
        while changed:
            changed = False
            for node in self.rpo:
                if node == self.entry:
                    continue
                candidates = [p for p in self.predecessors[node]
                              if idom[p] is not None]
                if not candidates:
                    continue
                new_idom = candidates[0]
                for other in candidates[1:]:
                    new_idom = self._intersect(other, new_idom, idom)
                if idom[node] != new_idom:
                    idom[node] = new_idom
                    changed = True
        idom[self.entry] = None  # conventional: entry has no idom
        return idom

    def _compute_frontiers(self) -> dict[int, set[int]]:
        frontiers: dict[int, set[int]] = {node: set() for node in self.rpo}
        for node in self.rpo:
            preds = self.predecessors[node]
            if len(preds) < 2:
                continue
            for pred in preds:
                runner: Optional[int] = pred
                while runner is not None and runner != self.idom[node]:
                    frontiers[runner].add(node)
                    runner = self.idom[runner]
        return frontiers

    # ------------------------------------------------------------------

    def dominates(self, a: int, b: int) -> bool:
        """Does *a* dominate *b* (reflexively)?"""
        node: Optional[int] = b
        while node is not None:
            if node == a:
                return True
            if node == self.entry:
                return False
            node = self.idom[node]
        return False
