"""The robot-on-a-grid scenario of Figures 1–3.

A robot walks a grid whose cells hold rewards, following a policy that was
*precomputed by a Markov decision process* (paper, Section 1).  We build the
whole scenario from scratch:

* :class:`GridWorld` — rewards, walls, and the straying model (intended
  move with probability 0.8, perpendicular slips 0.1 each; bumping into a
  wall or the border leaves the robot in place, Figure 1c),
* :func:`value_iteration` — the MDP solver that precomputes the policy of
  Figure 1b,
* the tabular encoding of Figure 2 (``cells``, ``policy``, ``actions``),
* ``WALK_SOURCE`` — the PL/pgSQL function of Figure 3, verbatim modulo
  whitespace.

The paper's figure does not specify the full reward matrix (several cells
are illegible in print), so :func:`default_grid` reconstructs a 5x5 grid
with the same flavour: small negative step rewards, a few positive cells,
one wall.  EXPERIMENTS.md records this substitution; all results are
relative (interpreted vs compiled on the *same* grid), so the exact rewards
do not affect the claims being reproduced.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..sql.engine import Database
from ..sql.values import Row

#: Action names and their (dx, dy) movement vectors.
ACTIONS: dict[str, tuple[int, int]] = {
    "up": (0, 1),
    "down": (0, -1),
    "left": (-1, 0),
    "right": (1, 0),
}

#: Perpendicular slip directions per intended action (Figure 1c).
_SLIPS: dict[str, tuple[str, str]] = {
    "up": ("left", "right"),
    "down": ("left", "right"),
    "left": ("up", "down"),
    "right": ("up", "down"),
}


@dataclass
class GridWorld:
    """A rectangular grid with rewards, walls, and an unreliable robot."""

    width: int
    height: int
    rewards: dict[tuple[int, int], int]
    walls: set[tuple[int, int]] = field(default_factory=set)
    move_prob: float = 0.8
    slip_prob: float = 0.1

    def cells(self) -> list[tuple[int, int]]:
        return [(x, y) for y in range(self.height) for x in range(self.width)
                if (x, y) not in self.walls]

    def _step(self, cell: tuple[int, int], action: str) -> tuple[int, int]:
        dx, dy = ACTIONS[action]
        target = (cell[0] + dx, cell[1] + dy)
        if not (0 <= target[0] < self.width and 0 <= target[1] < self.height):
            return cell
        if target in self.walls:
            return cell
        return target

    def transition(self, cell: tuple[int, int],
                   action: str) -> dict[tuple[int, int], float]:
        """Outcome distribution for taking *action* in *cell* (Figure 1c)."""
        out: dict[tuple[int, int], float] = {}
        slips = _SLIPS[action]
        for direction, probability in ((action, self.move_prob),
                                       (slips[0], self.slip_prob),
                                       (slips[1], self.slip_prob)):
            target = self._step(cell, direction)
            out[target] = out.get(target, 0.0) + probability
        return out

    def reward(self, cell: tuple[int, int]) -> int:
        return self.rewards.get(cell, 0)


def default_grid() -> GridWorld:
    """The reconstructed 5x5 scenario of Figure 1 (see module docstring)."""
    rewards = {
        (0, 0): -1, (1, 0): 0, (2, 0): -2, (3, 0): 0, (4, 0): -1,
        (0, 1): -2, (1, 1): 1, (2, 1): 0, (3, 1): -1,
        (0, 2): 1, (1, 2): 1, (2, 2): -1, (3, 2): -1, (4, 2): 0,
        (0, 3): -2, (1, 3): 0, (2, 3): -1, (3, 3): 1, (4, 3): 1,
        (0, 4): -2, (1, 4): 0, (2, 4): -1, (3, 4): 2, (4, 4): -2,
    }
    return GridWorld(width=5, height=5, rewards=rewards, walls={(4, 1)})


def random_grid(seed: int, width: int = 5, height: int = 5,
                wall_count: int = 1) -> GridWorld:
    """A random grid for property-based testing."""
    rng = random.Random(seed)
    cells = [(x, y) for x in range(width) for y in range(height)]
    walls: set[tuple[int, int]] = set()
    candidates = [c for c in cells if c != (0, 0)]
    for _ in range(min(wall_count, len(candidates) - 1)):
        walls.add(candidates.pop(rng.randrange(len(candidates))))
    rewards = {c: rng.choice([-2, -1, -1, 0, 0, 1, 1, 2])
               for c in cells if c not in walls}
    return GridWorld(width, height, rewards, walls)


def value_iteration(grid: GridWorld, gamma: float = 0.9,
                    epsilon: float = 1e-6,
                    max_sweeps: int = 10_000) -> dict[tuple[int, int], str]:
    """Precompute the Markov policy of Figure 1b by value iteration.

    ``V(s) = max_a Σ_s' P(s'|s,a) (R(s') + γ V(s'))`` until the sweep delta
    drops below *epsilon*; the policy picks the argmax action (ties broken
    by action-name order for determinism).
    """
    cells = grid.cells()
    values: dict[tuple[int, int], float] = {c: 0.0 for c in cells}
    for _ in range(max_sweeps):
        delta = 0.0
        new_values: dict[tuple[int, int], float] = {}
        for cell in cells:
            best = None
            for action in sorted(ACTIONS):
                total = 0.0
                for target, probability in grid.transition(cell, action).items():
                    total += probability * (grid.reward(target)
                                            + gamma * values[target])
                if best is None or total > best:
                    best = total
            new_values[cell] = best if best is not None else 0.0
            delta = max(delta, abs(new_values[cell] - values[cell]))
        values = new_values
        if delta < epsilon:
            break
    policy: dict[tuple[int, int], str] = {}
    for cell in cells:
        best_action = None
        best_value = None
        for action in sorted(ACTIONS):
            total = 0.0
            for target, probability in grid.transition(cell, action).items():
                total += probability * (grid.reward(target)
                                        + gamma * values[target])
            if best_value is None or total > best_value:
                best_value = total
                best_action = action
        policy[cell] = best_action or "up"
    return policy


#: PL/pgSQL source of Figure 3 (modulo our ASCII action names).
WALK_SOURCE = """
CREATE FUNCTION walk(origin coord, win int, loose int, steps int)
RETURNS int AS $$
DECLARE
  reward int = 0;
  location coord = origin;
  movement text = '';
  roll float;
BEGIN
  -- move robot repeatedly
  FOR step IN 1..steps LOOP
    -- where does the Markov policy send the robot from here?
    movement = (SELECT p.action
                FROM policy AS p
                WHERE location = p.loc);
    -- compute new location of robot,
    -- robot may randomly stray from policy's direction
    roll = random();
    location =
      (SELECT move.loc
       FROM (SELECT a.there AS loc,
                    COALESCE(SUM(a.prob) OVER lt, 0.0) AS lo,
                    SUM(a.prob) OVER leq AS hi
             FROM actions AS a
             WHERE location = a.here AND movement = a.action
             WINDOW leq AS (ORDER BY a.there),
                    lt AS (leq ROWS UNBOUNDED PRECEDING
                           EXCLUDE CURRENT ROW)
            ) AS move(loc, lo, hi)
       WHERE roll BETWEEN move.lo AND move.hi);
    -- robot collects reward (or penalty) at new location
    reward = reward + (SELECT c.reward
                       FROM cells AS c
                       WHERE location = c.loc);
    -- bail out if we win or loose early
    IF reward >= win OR reward <= loose THEN
      RETURN step * sign(reward);
    END IF;
  END LOOP;
  -- draw: robot performed all steps without winning or losing
  RETURN 0;
END;
$$ LANGUAGE PLPGSQL
"""


def setup_robot(db: Database, grid: Optional[GridWorld] = None,
                gamma: float = 0.9) -> GridWorld:
    """Create the ``coord`` type, the Figure 2 tables, and ``walk()``."""
    if grid is None:
        grid = default_grid()
    policy = value_iteration(grid, gamma=gamma)
    if not db.catalog.get_type("coord"):
        db.execute("CREATE TYPE coord AS (x int, y int)")
    coord = db.catalog.get_type("coord")
    assert coord is not None

    def loc(cell: tuple[int, int]) -> Row:
        return coord.make_row([cell[0], cell[1]])

    cells_table = db.catalog.create_table("cells", ["loc", "reward"],
                                          ["coord", "int"])
    for cell in grid.cells():
        cells_table.insert((loc(cell), grid.reward(cell)))

    policy_table = db.catalog.create_table("policy", ["loc", "action"],
                                           ["coord", "text"])
    for cell, action in sorted(policy.items()):
        policy_table.insert((loc(cell), action))

    actions_table = db.catalog.create_table(
        "actions", ["here", "action", "there", "prob"],
        ["coord", "text", "coord", "float"])
    for cell in grid.cells():
        for action in sorted(ACTIONS):
            for target, probability in sorted(
                    grid.transition(cell, action).items()):
                actions_table.insert((loc(cell), action, loc(target),
                                      probability))

    db.execute(WALK_SOURCE)
    db.clear_plan_cache()
    return grid


def walk_reference(db: Database, grid: GridWorld, origin: tuple[int, int],
                   win: int, loose: int, steps: int, seed: int) -> int:
    """A plain-Python oracle for walk(), drawing from the same RNG model.

    Used by tests: with ``db.reseed(seed)`` before a SQL run and the same
    seed here, interpreted, compiled, and oracle walks agree step for step.
    """
    rng = random.Random(seed)
    policy = value_iteration(grid)
    reward = 0
    location = origin
    for step in range(1, steps + 1):
        action = policy[location]
        roll = rng.random()
        outcomes = sorted(grid.transition(location, action).items())
        low = 0.0
        new_location = None
        for target, probability in outcomes:
            high = low + probability
            if low <= roll <= high:
                new_location = target
                break
            low = high
        if new_location is None:
            # roll beyond cumulated probability (float residue): no match,
            # location becomes NULL in SQL; the paper's function would then
            # fail — our generator never reaches this.
            raise AssertionError("roll outside the outcome distribution")
        location = new_location
        reward += grid.reward(location)
        if reward >= win or reward <= loose:
            return step * (1 if reward > 0 else -1 if reward < 0 else 0)
    return 0
