"""``traverse()`` — directed graph traversal (Table 1, row 3).

Starting from a node, the function repeatedly follows the heaviest outgoing
edge (ties broken by target id) for a given number of hops, accumulating
the ids of visited nodes.  One embedded query per hop — the classic
pointer-chasing pattern that PL/SQL forces into statement-by-statement
evaluation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..sql.engine import Database

PARAMETRIC_TRAVERSE_SOURCE = """
CREATE FUNCTION traverse(start int, hops int) RETURNS int AS $$
DECLARE
  cur int = start;
  nxt int;
  acc int = 0;
BEGIN
  FOR hop IN 1..hops LOOP
    nxt = (SELECT e.dst
           FROM edges AS e
           WHERE e.src = cur
           ORDER BY e.weight DESC, e.dst
           LIMIT 1);
    IF nxt IS NULL THEN
      RETURN acc;          -- dead end: sum of node ids seen so far
    END IF;
    cur = nxt;
    acc = acc + cur;
  END LOOP;
  RETURN acc;
END;
$$ LANGUAGE PLPGSQL
"""


@dataclass
class Digraph:
    node_count: int
    edges: list[tuple[int, int, float]]  # (src, dst, weight)

    def heaviest_successor(self, node: int) -> int | None:
        best: tuple[float, int] | None = None
        for src, dst, weight in self.edges:
            if src != node:
                continue
            key = (-weight, dst)
            if best is None or key < best:
                best = key
        return best[1] if best is not None else None

    def traverse_reference(self, start: int, hops: int) -> int:
        """Python oracle mirroring traverse()."""
        current = start
        accumulator = 0
        for _ in range(hops):
            successor = self.heaviest_successor(current)
            if successor is None:
                return accumulator
            current = successor
            accumulator += current
        return accumulator


def random_digraph(node_count: int = 64, out_degree: int = 3,
                   seed: int = 0) -> Digraph:
    """A random digraph where every node has at least one outgoing edge."""
    rng = random.Random(seed)
    edges: list[tuple[int, int, float]] = []
    for src in range(node_count):
        targets = rng.sample(range(node_count),
                             k=min(out_degree, node_count))
        for dst in targets:
            edges.append((src, dst, round(rng.random(), 6)))
    return Digraph(node_count, edges)


def setup_graph(db: Database, graph: Digraph | None = None) -> Digraph:
    """Create ``edges`` and the ``traverse()`` function."""
    if graph is None:
        graph = random_digraph()
    edges_table = db.catalog.create_table("edges", ["src", "dst", "weight"],
                                          ["int", "int", "float"])
    for src, dst, weight in graph.edges:
        edges_table.insert((src, dst, weight))
    db.execute(PARAMETRIC_TRAVERSE_SOURCE)
    db.clear_plan_cache()
    return graph
