"""``fibonacci()`` — iterative, query-free Fibonacci (Table 1, row 4).

The function evaluates arithmetic only; the interpreter's *simple
expression* fast path applies, so its Table 1 profile shows zero
Exec·Start/Exec·End — "compiling PL/SQL away does not promise much in this
case" (but it still works, and the compiled form enables deep iteration
without interpreter dispatch).
"""

from __future__ import annotations

from ..sql.engine import Database

FIBONACCI_SOURCE = """
CREATE FUNCTION fibonacci(n int) RETURNS int AS $$
DECLARE
  a int = 0;
  b int = 1;
  t int;
BEGIN
  FOR i IN 1..n LOOP
    t = a + b;
    a = b;
    b = t;
  END LOOP;
  RETURN a;
END;
$$ LANGUAGE PLPGSQL
"""


def fibonacci_reference(n: int) -> int:
    a, b = 0, 1
    for _ in range(n):
        a, b = b, a + b
    return a


def setup_fibonacci(db: Database) -> None:
    db.execute(FIBONACCI_SOURCE)
    db.clear_plan_cache()
