"""``repro.workloads`` — the paper's four PL/pgSQL functions and their data.

========== ==========================================================
walk       robot on a Markov-policy grid (Figures 1–3, 10, 11a)
parse      finite-state-automaton string parser (Table 1, 2, Fig. 11b)
traverse   directed graph traversal (Table 1)
fibonacci  query-free iterative Fibonacci (Table 1)
========== ==========================================================
"""

from .robot import GridWorld, WALK_SOURCE, setup_robot
from .parser_fsm import Fsm, PARSE_SOURCE, setup_parser, make_parseable_input
from .graph import PARAMETRIC_TRAVERSE_SOURCE as TRAVERSE_SOURCE
from .graph import setup_graph, random_digraph
from .fibonacci import FIBONACCI_SOURCE, setup_fibonacci
from .loader import build_demo_database, compile_and_register_all, WORKLOADS

__all__ = [
    "GridWorld", "WALK_SOURCE", "setup_robot",
    "Fsm", "PARSE_SOURCE", "setup_parser", "make_parseable_input",
    "TRAVERSE_SOURCE", "setup_graph", "random_digraph",
    "FIBONACCI_SOURCE", "setup_fibonacci",
    "build_demo_database", "compile_and_register_all", "WORKLOADS",
]
