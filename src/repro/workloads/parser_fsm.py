"""``parse()`` — string parsing via a finite state automaton (Table 1, row 2).

The function consumes its input one character per loop iteration, looking
the transition up in table ``fsm(source, symbol, target)``.  Crucially for
Table 2, the function's loop state carries the *residual input string*
(``rest``) which shrinks by one character per step — compiled to a
recursive CTE, every activation row therefore stores the residue, and
vanilla ``WITH RECURSIVE`` buffers a quadratic number of bytes while
``WITH ITERATE`` buffers none.

The default automaton recognises a classic pattern: comma-separated,
optionally signed decimal numbers (the kind of CSV-cell validation the
follow-up ByePy work also uses).  States::

    0 start        (expect sign or digit)
    1 in integer   (digits; ',' restarts; '.' begins fraction)
    2 after sign   (expect digit)
    3 in fraction  (digits; ',' restarts)

Accepting states: 1 and 3.  parse() returns the number of characters
consumed on success, or ``-position`` of the offending character.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..sql.engine import Database

_DIGITS = "0123456789"


@dataclass
class Fsm:
    """A deterministic finite automaton over single characters."""

    transitions: dict[tuple[int, str], int]
    accepting: set[int]
    start: int = 0

    def step(self, state: int, symbol: str) -> int | None:
        return self.transitions.get((state, symbol))

    def run(self, text: str) -> int:
        """Python oracle mirroring parse(): chars consumed or -position."""
        state = self.start
        for position, symbol in enumerate(text, start=1):
            target = self.step(state, symbol)
            if target is None:
                return -position
            state = target
        return len(text) if state in self.accepting else -len(text) - 1


def csv_number_fsm() -> Fsm:
    """The default automaton described in the module docstring."""
    transitions: dict[tuple[int, str], int] = {}
    for digit in _DIGITS:
        transitions[(0, digit)] = 1
        transitions[(1, digit)] = 1
        transitions[(2, digit)] = 1
        transitions[(3, digit)] = 3
    for sign in "+-":
        transitions[(0, sign)] = 2
    transitions[(1, ".")] = 3
    transitions[(1, ",")] = 0
    transitions[(3, ",")] = 0
    return Fsm(transitions=transitions, accepting={1, 3})


def make_parseable_input(length: int, seed: int = 0) -> str:
    """A random string of exactly *length* characters accepted by the FSM."""
    rng = random.Random(seed)
    out: list[str] = []
    remaining = length
    first = True
    while remaining > 0:
        # Budget for this number: keep at least 2 chars for ",d" if more
        # numbers follow.
        if not first:
            out.append(",")
            remaining -= 1
        number_length = min(remaining, rng.randint(1, 8))
        if remaining - number_length == 1:
            number_length += 1  # never strand a single trailing char budget
        number_length = min(number_length, remaining)
        body = [rng.choice(_DIGITS) for _ in range(number_length)]
        if number_length >= 3 and rng.random() < 0.4:
            body[rng.randint(1, number_length - 2)] = "."
        out.append("".join(body))
        remaining -= number_length
        first = False
    text = "".join(out)
    assert len(text) == length, (len(text), length)
    return text


PARSE_SOURCE = """
CREATE FUNCTION parse(input text) RETURNS int AS $$
DECLARE
  cur int = 0;
  rest text = input;
  chr text;
  nxt int;
  pos int = 0;
BEGIN
  -- consume one character per iteration via the FSM transition table
  WHILE length(rest) > 0 LOOP
    pos = pos + 1;
    chr = left(rest, 1);
    nxt = (SELECT f.target
           FROM fsm AS f
           WHERE f.source = cur AND f.symbol = chr);
    IF nxt IS NULL THEN
      RETURN 0 - pos;          -- reject: position of the offending char
    END IF;
    cur = nxt;
    rest = substr(rest, 2);
  END LOOP;
  IF (SELECT a.is_final FROM fsm_accept AS a WHERE a.state = cur) THEN
    RETURN pos;                -- accept: number of characters consumed
  END IF;
  RETURN 0 - pos - 1;          -- ran dry in a non-accepting state
END;
$$ LANGUAGE PLPGSQL
"""


def setup_parser(db: Database, fsm: Fsm | None = None) -> Fsm:
    """Create ``fsm``, ``fsm_accept``, and the ``parse()`` function."""
    if fsm is None:
        fsm = csv_number_fsm()
    fsm_table = db.catalog.create_table("fsm", ["source", "symbol", "target"],
                                        ["int", "text", "int"])
    for (source, symbol), target in sorted(fsm.transitions.items()):
        fsm_table.insert((source, symbol, target))
    states = {fsm.start} | {s for s, _ in fsm.transitions} \
        | set(fsm.transitions.values()) | fsm.accepting
    accept_table = db.catalog.create_table("fsm_accept", ["state", "is_final"],
                                           ["int", "bool"])
    for state in sorted(states):
        accept_table.insert((state, state in fsm.accepting))
    db.execute(PARSE_SOURCE)
    db.clear_plan_cache()
    return fsm
