"""Assemble a database with all four workloads, interpreted and compiled.

Conventions used throughout tests, examples, and benchmarks:

* ``<name>``    — the original PL/pgSQL function (interpreted),
* ``<name>_c``  — the compiled pure-SQL variant (inlined at plan time),
* ``<name>_it`` — compiled with ``WITH ITERATE`` instead of RECURSIVE.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..compiler import CompiledFunction, compile_plsql
from ..sql.engine import Database
from .fibonacci import FIBONACCI_SOURCE, setup_fibonacci
from .graph import PARAMETRIC_TRAVERSE_SOURCE, setup_graph
from .parser_fsm import PARSE_SOURCE, setup_parser
from .robot import WALK_SOURCE, setup_robot

#: name -> PL/pgSQL source of the paper's four functions.
WORKLOADS: dict[str, str] = {
    "walk": WALK_SOURCE,
    "parse": PARSE_SOURCE,
    "traverse": PARAMETRIC_TRAVERSE_SOURCE,
    "fibonacci": FIBONACCI_SOURCE,
}


@dataclass
class DemoDatabase:
    """A database plus the compiled artifacts of every workload function."""

    db: Database
    compiled: dict[str, CompiledFunction]
    grid: object = None
    fsm: object = None
    graph: object = None


def compile_and_register_all(db: Database,
                             iterate_suffix: bool = True
                             ) -> dict[str, CompiledFunction]:
    """Compile every workload function present in *db* and register the
    ``_c`` (and optionally ``_it``) variants."""
    compiled: dict[str, CompiledFunction] = {}
    for name, source in WORKLOADS.items():
        if db.catalog.get_function(name) is None:
            continue
        artifact = compile_plsql(source, db)
        artifact.register(db, name=f"{name}_c")
        compiled[name] = artifact
        if iterate_suffix and artifact.is_recursive:
            iterate_artifact = compile_plsql(source, db, iterate=True)
            iterate_artifact.register(db, name=f"{name}_it")
    return compiled


def build_demo_database(seed: int = 0, grid=None, fsm=None, graph=None,
                        compile_functions: bool = True) -> DemoDatabase:
    """One-stop setup: schema + data + PL/pgSQL + compiled variants."""
    db = Database(seed=seed)
    grid = setup_robot(db, grid)
    fsm = setup_parser(db, fsm)
    graph = setup_graph(db, graph)
    setup_fibonacci(db)
    compiled = compile_and_register_all(db) if compile_functions else {}
    return DemoDatabase(db=db, compiled=compiled, grid=grid, fsm=fsm,
                        graph=graph)
