"""Measurement utilities behind every benchmark in ``benchmarks/``.

All timing helpers reseed the engine RNG before each run so interpreted and
compiled variants draw identical random sequences (``walk()`` depends on it)
and repetitions are comparable.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Sequence

from ..sql.engine import Database
from ..sql.profiler import EXEC_END, EXEC_RUN, EXEC_START, INTERP

#: The four columns of the paper's Table 1.
TABLE1_PHASES = (EXEC_START, EXEC_RUN, EXEC_END, INTERP)


# ---------------------------------------------------------------------------
# Timing primitives
# ---------------------------------------------------------------------------


@dataclass
class Timing:
    """Wall-clock samples for one query (seconds)."""

    samples: list[float]

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples)

    @property
    def minimum(self) -> float:
        return min(self.samples)

    @property
    def maximum(self) -> float:
        return max(self.samples)


def time_query(db: Database, sql: str, params: Sequence = (),
               runs: int = 5, seed: int = 42, warmup: int = 1) -> Timing:
    """Time *sql*; RNG reseeded per run; first ``warmup`` runs discarded."""
    samples = []
    for run in range(runs + warmup):
        db.reseed(seed)
        start = time.perf_counter()
        db.execute(sql, params)
        elapsed = time.perf_counter() - start
        if run >= warmup:
            samples.append(elapsed)
    return Timing(samples)


# ---------------------------------------------------------------------------
# Machine-readable results
# ---------------------------------------------------------------------------


def write_bench_json(name: str, payload: dict,
                     directory: "str | os.PathLike | None" = None) -> Path:
    """Write ``BENCH_<name>.json`` so the perf trajectory is tracked as
    machine-readable data across PRs (timings in seconds, speedups,
    rows/s — whatever the benchmark measured).

    *directory* defaults to ``$BENCH_RESULTS_DIR`` or ``./results`` (the
    benchmarks run with ``benchmarks/`` as the working directory, so both
    land next to the plain-text artifacts).  CI uploads the ``BENCH_*``
    files as artifacts.
    """
    if directory is None:
        directory = os.environ.get("BENCH_RESULTS_DIR", "results")
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    path = target / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


# ---------------------------------------------------------------------------
# Table 1 / Figure 3: profile breakdowns
# ---------------------------------------------------------------------------


@dataclass
class ProfileBreakdown:
    """Share (%) of evaluation time per phase for one function call."""

    function: str
    shares: dict[str, float]
    counts: dict[str, int]

    def row(self) -> list:
        return [self.function] + [round(self.shares.get(p, 0.0), 2)
                                  for p in TABLE1_PHASES]


def profile_function_call(db: Database, sql: str, params: Sequence = (),
                          seed: int = 42, label: str = "") -> ProfileBreakdown:
    """Run one interpreted call and report the Table 1 phase shares.

    Percentages are normalized over the four executor/interpreter phases
    (the paper's columns), ignoring one-time parse/plan cost — the paper's
    numbers are steady-state too.
    """
    db.execute(sql, params)  # warm the caches (plans, parsed bodies)
    db.reseed(seed)
    db.profiler.reset()
    was_enabled = db.profiler.enabled
    db.profiler.enabled = True
    try:
        db.execute(sql, params)
    finally:
        db.profiler.enabled = was_enabled
    times = db.profiler.times
    total = sum(times.get(p, 0.0) for p in TABLE1_PHASES)
    shares = {p: (100.0 * times.get(p, 0.0) / total if total else 0.0)
              for p in TABLE1_PHASES}
    return ProfileBreakdown(label or sql, shares, dict(db.profiler.counts))


def statement_profile(db: Database, sql: str, params: Sequence = (),
                      seed: int = 42) -> list[tuple[str, float, float]]:
    """Figure 3: per-statement share of run time and its f→Qi overhead share.

    Returns ``(statement label, % of total, % overhead within statement)``
    sorted by source order of first execution.
    """
    db.execute(sql, params)  # warm caches
    db.reseed(seed)
    db.profiler.reset()
    was_enabled = db.profiler.enabled
    db.profiler.enabled = True
    profile: dict = {}
    db.plsql_statement_profile = profile
    try:
        db.execute(sql, params)
    finally:
        db.plsql_statement_profile = None
        db.profiler.enabled = was_enabled
    total = sum(sum(phases.values()) for phases in profile.values())
    out = []
    for label, phases in profile.items():
        stmt_total = sum(phases.values())
        overhead = phases.get(EXEC_START, 0.0) + phases.get(EXEC_END, 0.0)
        out.append((label,
                    100.0 * stmt_total / total if total else 0.0,
                    100.0 * overhead / stmt_total if stmt_total else 0.0))
    return out


# ---------------------------------------------------------------------------
# Figure 10: series sweeps
# ---------------------------------------------------------------------------


@dataclass
class SeriesResult:
    """One series point per x value, for several variants."""

    x_label: str
    x_values: list
    variants: dict[str, list[Timing]] = field(default_factory=dict)

    def relative(self, variant: str, baseline: str) -> list[float]:
        return [100.0 * v.mean / b.mean
                for v, b in zip(self.variants[variant],
                                self.variants[baseline])]


def measure_series(db: Database, x_values: Sequence,
                   variants: dict[str, Callable[[object], tuple[str, list]]],
                   runs: int = 5, seed: int = 42,
                   x_label: str = "iterations") -> SeriesResult:
    """For each x, time each variant.  A variant maps x -> (sql, params)."""
    result = SeriesResult(x_label, list(x_values))
    for name, make in variants.items():
        timings = []
        for x in x_values:
            sql, params = make(x)
            timings.append(time_query(db, sql, params, runs=runs, seed=seed))
        result.variants[name] = timings
    return result


# ---------------------------------------------------------------------------
# Figure 11: heat maps
# ---------------------------------------------------------------------------

CALLS_TABLE = "bench_calls"


def ensure_calls_table(db: Database, n: int) -> None:
    """(Re)fill the driving table used to multiply invocations."""
    if not db.catalog.has_table(CALLS_TABLE):
        db.catalog.create_table(CALLS_TABLE, ["i"], ["int"])
    table = db.catalog.get_table(CALLS_TABLE)
    table.truncate()
    for i in range(n):
        table.insert((i,))


@dataclass
class HeatmapResult:
    invocation_counts: list[int]
    iteration_counts: list[int]
    #: relative runtime %, indexed [invocation_index][iteration_index]
    grid: list[list[float]]


def measure_heatmap(db: Database, invocation_counts: Sequence[int],
                    iteration_counts: Sequence[int],
                    make_query: Callable[[str, int], tuple[str, list]],
                    slow_name: str, fast_name: str,
                    runs: int = 3, seed: int = 42) -> HeatmapResult:
    """Figure 11: relative runtime of *fast* vs *slow* over a 2-D sweep.

    ``make_query(function_name, iterations)`` returns the driving query and
    parameters; the query must call ``function_name`` once per row of the
    calls table.
    """
    grid: list[list[float]] = []
    for invocations in invocation_counts:
        ensure_calls_table(db, invocations)
        row = []
        for iterations in iteration_counts:
            slow_sql, slow_params = make_query(slow_name, iterations)
            fast_sql, fast_params = make_query(fast_name, iterations)
            slow = time_query(db, slow_sql, slow_params, runs=runs, seed=seed)
            fast = time_query(db, fast_sql, fast_params, runs=runs, seed=seed)
            row.append(100.0 * fast.minimum / slow.minimum)
        grid.append(row)
    return HeatmapResult(list(invocation_counts), list(iteration_counts), grid)


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def render_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """Plain-text table with right-aligned numeric columns."""
    def fmt(value) -> str:
        if isinstance(value, float):
            return f"{value:.2f}"
        return str(value)

    cells = [[fmt(v) for v in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
              for i, h in enumerate(headers)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_heatmap(result: HeatmapResult, title: str = "") -> str:
    """Figure 11-style grid: rows = #invocations, columns = #iterations."""
    headers = ["inv\\iter"] + [str(i) for i in result.iteration_counts]
    rows = []
    for invocations, row in zip(result.invocation_counts, result.grid):
        rows.append([invocations] + [round(v) for v in row])
    return render_table(headers, rows, title)
