"""``repro.bench`` — measurement harness for the paper's tables and figures."""

from .harness import (HeatmapResult, ProfileBreakdown, SeriesResult,
                      ensure_calls_table, measure_heatmap, measure_series,
                      profile_function_call, render_heatmap, render_table,
                      statement_profile, time_query)

__all__ = [
    "HeatmapResult", "ProfileBreakdown", "SeriesResult",
    "ensure_calls_table", "measure_heatmap", "measure_series",
    "profile_function_call", "render_heatmap", "render_table",
    "statement_profile", "time_query",
]
