"""Deterministic fault injection: named points, seeded triggers.

PR 6 grew a one-off ``REPRO_WAL_FAULT`` environment hook that could kill
the process while appending the N-th WAL record.  This module generalizes
it into a process-wide registry of **named fault points** that any layer
can declare inline::

    from repro.faults import FAULTS
    FAULTS.fire("wal.checkpoint.rename", profiler)

A point that nothing armed costs one attribute load and a branch (the
registry keeps an ``active`` flag), so fault points are safe to leave in
production paths.  Arming is deterministic: a trigger names the point,
the **kind** of fault, and the 1-based **hit number** it fires on, so
the same workload hits the same fault at the same place every run —
which is what lets the crash-recovery suite and the chaos fuzzer replay
failures from a seed.

Fault kinds
-----------

``crash``       hard ``os._exit(1)`` (the recovery suite's subprocess axis)
``torn``        like crash, but the WAL append path writes half the record
                first (only meaningful on ``wal.append``; elsewhere it
                degrades to crash)
``delay``       ``time.sleep`` for the trigger's ``delay_s`` (races and
                timing windows without killing anything)
``error-once``  raise :class:`FaultInjectedError` on the triggering hit,
                then disarm — the error path must unwind cleanly

Fault points currently wired in (the catalog ARCHITECTURE.md documents):

=========================  ==============================================
``wal.append``             before appending one WAL record (commit path)
``wal.checkpoint.start``   CHECKPOINT admitted, before the snapshot scan
``wal.checkpoint.write``   per record written into the snapshot temp file
``wal.checkpoint.fsync``   snapshot temp file complete, before its fsync
``wal.checkpoint.rename``  before the atomic rename over the live log
``wal.checkpoint.reopen``  after the rename, before reopening for append
``server.send``            before the server flushes an outbox to a socket
``exec.recursion``         per WITH RECURSIVE / trampoline iteration
=========================  ==============================================

Environment syntax (parsed once at import): ``REPRO_FAULTS`` is a
comma-separated list of ``point:kind:N`` (or ``point:kind:N:delay_ms``
for delays), e.g. ``REPRO_FAULTS=wal.checkpoint.rename:crash:1``.  The
legacy ``REPRO_WAL_FAULT=crash:N|torn:N`` keeps working — the WAL
manager maps it onto ``wal.append`` here.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Optional

from .sql.profiler import FAULTS_INJECTED


class FaultInjectedError(Exception):
    """Raised by an ``error-once`` trigger; deliberately *not* a
    :class:`~repro.sql.errors.SqlError` — it classifies as a crash, so
    an injected error that escapes to a differential oracle is visible
    instead of blending into the expected-error taxonomy."""

    def __init__(self, point: str):
        super().__init__(f"injected fault at {point}")
        self.point = point


class _Trigger:
    __slots__ = ("kind", "at", "hits", "delay_s", "spent")

    def __init__(self, kind: str, at: int, delay_s: float):
        self.kind = kind
        self.at = max(1, at)
        self.hits = 0
        self.delay_s = delay_s
        self.spent = False


class FaultRegistry:
    """All armed triggers of this process, keyed by fault-point name."""

    def __init__(self) -> None:
        self._triggers: dict[str, _Trigger] = {}
        self._lock = threading.Lock()
        #: Fast-path flag: fault points return immediately when nothing
        #: is armed, so hot loops can afford to call :meth:`fire`.
        self.active = False

    # -- arming --------------------------------------------------------

    def arm(self, point: str, kind: str, at: int = 1,
            delay_s: float = 0.01) -> None:
        """Arm *point* to fire *kind* on its *at*-th hit from now."""
        if kind not in ("crash", "torn", "delay", "error-once"):
            raise ValueError(f"unknown fault kind {kind!r}")
        with self._lock:
            self._triggers[point] = _Trigger(kind, at, delay_s)
            self.active = True

    def disarm(self, point: Optional[str] = None) -> None:
        """Drop one trigger (or all of them with ``point=None``)."""
        with self._lock:
            if point is None:
                self._triggers.clear()
            else:
                self._triggers.pop(point, None)
            self.active = bool(self._triggers)

    def arm_from_env(self, spec: Optional[str] = None) -> None:
        """Arm triggers from a ``point:kind:N[:delay_ms],...`` spec."""
        if spec is None:
            spec = os.environ.get("REPRO_FAULTS", "")
        for part in filter(None, (p.strip() for p in spec.split(","))):
            fields = part.split(":")
            if len(fields) < 3:
                continue
            point, kind, at = fields[0], fields[1], fields[2]
            if not at.isdigit():
                continue
            delay_s = 0.01
            if len(fields) > 3 and fields[3].isdigit():
                delay_s = int(fields[3]) / 1000.0
            try:
                self.arm(point, kind, int(at), delay_s)
            except ValueError:
                continue

    # -- firing --------------------------------------------------------

    def check(self, point: str, profiler=None) -> Optional[_Trigger]:
        """Count one hit of *point*; return the trigger when it fires,
        None otherwise.  Callers that need custom behavior (the WAL's
        torn-write, its crash-after-append) use this; everyone else
        uses :meth:`fire`.  Each trigger fires exactly once.
        """
        if not self.active:
            return None
        with self._lock:
            trigger = self._triggers.get(point)
            if trigger is None or trigger.spent:
                return None
            trigger.hits += 1
            if trigger.hits != trigger.at:
                return None
            trigger.spent = True
        if profiler is not None:
            profiler.bump(FAULTS_INJECTED)
        return trigger

    def fire(self, point: str, profiler=None) -> None:
        """Hit *point* and apply the default behavior of its trigger."""
        trigger = self.check(point, profiler)
        if trigger is None:
            return
        if trigger.kind == "delay":
            time.sleep(trigger.delay_s)
        elif trigger.kind == "error-once":
            raise FaultInjectedError(point)
        else:  # crash / torn — outside the WAL both mean "die here"
            os._exit(1)


#: The process-wide registry; armed from ``REPRO_FAULTS`` at import.
FAULTS = FaultRegistry()
FAULTS.arm_from_env()
