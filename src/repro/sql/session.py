"""Sessions, prepared statements, and a PEP-249-style cursor surface.

The paper's cost model (parse/plan once, instantiate many times) needs a
client surface that can actually express "once": a :class:`Connection` is a
session with its own settings overlay, notices, and prepared-statement
registry; a :class:`PreparedStatement` carries its plan across executions;
a :class:`Cursor` exposes the familiar DB-API shape (``execute`` /
``executemany`` / ``description`` / ``fetchone`` / iteration).

``Database.execute`` keeps working unchanged — it is a thin facade over the
*root* session, whose settings overlay writes straight through to the
global values.

Isolation model (single-process, cooperative):

* **Settings** — ``SET`` on a connection lands in its overlay; the overlay
  is applied to the engine attributes for the duration of each statement
  and restored afterwards.  Cached plans can never leak across differing
  plan-affecting settings because every plan-cache key and prepared-
  statement stamp embeds the settings fingerprint
  (:meth:`repro.sql.settings.SettingsRegistry.fingerprint`).
* **Prepared statements** — per-session by name (SQL ``PREPARE``/
  ``EXECUTE``/``DEALLOCATE`` or the programmatic :meth:`Connection.
  prepare`).  A handle's plan is stamped with the DDL generation and the
  settings fingerprint: DDL (new index, dropped table, replaced function)
  or a plan-affecting ``SET`` makes the stamp stale and the handle replans
  on its next use — stale handles replan, they don't crash or return
  stale results.
* **Notices** — PL/pgSQL ``RAISE`` messages raised while a connection is
  executing land on that connection's :attr:`Connection.notices`.

>>> from repro.sql import Database
>>> db = Database()
>>> _ = db.execute("CREATE TABLE t(x int, y int)")
>>> conn = db.connect()
>>> cur = conn.cursor()
>>> _ = cur.executemany("INSERT INTO t VALUES ($1, $2)",
...                     [(1, 10), (2, 20), (3, 30)])
>>> cur.rowcount
3
>>> ps = conn.prepare("SELECT y FROM t WHERE x = $1")
>>> ps.execute([2]).scalar()
20
>>> _ = conn.execute("SET enable_rangescan = off")
>>> conn.execute("SHOW enable_rangescan").scalar()
'off'
>>> db.execute("SHOW enable_rangescan").scalar()  # overlay is per-session
'on'
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional, Sequence

from . import ast as A
from .astutil import statement_param_count
from .cancel import CancelToken
from .errors import CatalogError, ExecutionError, PlanError
from .profiler import PLAN, PREPARED_REPLANS

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Database, Result

#: Statement kinds a prepared statement may wrap (PostgreSQL's rule).
_PREPARABLE = (A.SelectStmt, A.Insert, A.Update, A.Delete)


class PreparedStatement:
    """A named, parsed, plan-carrying statement handle.

    For SELECTs the plan is cached on the handle and revalidated against
    ``(ddl generation, settings fingerprint)`` before every use; DML
    statements re-dispatch their (already parsed) AST per execution.
    """

    __slots__ = ("session", "db", "name", "statement", "param_types",
                 "param_count", "_plan", "_stamp")

    def __init__(self, session: "Connection", name: str,
                 statement: A.Statement,
                 param_types: Optional[list[str]] = None):
        if not isinstance(statement, _PREPARABLE):
            raise PlanError(
                f"cannot prepare a {type(statement).__name__}; PREPARE "
                "supports SELECT, INSERT, UPDATE and DELETE")
        self.session = session
        self.db = session.db
        self.name = name
        self.statement = statement
        self.param_types = param_types
        used = statement_param_count(statement)
        if param_types is not None:
            if used > len(param_types):
                raise PlanError(
                    f"prepared statement {name!r} uses ${used} but declares "
                    f"only {len(param_types)} parameter types")
            self.param_count = len(param_types)
        else:
            self.param_count = used
        self._plan = None
        self._stamp: Optional[tuple] = None

    # -- planning --------------------------------------------------------

    def plan(self):
        """The current plan, replanning when the stamp went stale.

        The stamp pairs the DDL generation (bumped by every
        ``clear_plan_cache``) with the plan-affecting settings
        fingerprint; either moving means the cached plan may name dropped
        structures or the wrong access paths, so it is rebuilt — against
        whatever catalog now exists, raising the same clean error a fresh
        query would (e.g. after ``DROP TABLE``).
        """
        db = self.db
        stamp = (db._plan_generation, db.settings.fingerprint())
        if self._plan is None or self._stamp != stamp:
            if self._plan is not None:
                db.profiler.bump(PREPARED_REPLANS)
            self._plan = None  # a failed replan must not leave a stale plan
            with db.profiler.phase(PLAN):
                self._plan = db.planner.plan_select(self.statement)
            self._stamp = stamp
        return self._plan

    # -- execution -------------------------------------------------------

    def check_arity(self, args: Sequence) -> None:
        if len(args) != self.param_count:
            raise ExecutionError(
                f"prepared statement {self.name!r} requires "
                f"{self.param_count} parameters, got {len(args)}")

    def dispatch(self, args: Sequence) -> tuple:
        """Run with the owning session assumed active; returns
        ``(kind, Result)`` (the engine's dispatch contract)."""
        self.check_arity(args)
        if self.param_types:
            # Declared types coerce the arguments, PostgreSQL-style
            # (leniently, like INSERT coercion — the engine is
            # dynamically typed).
            args = [self.db._coerce(value, type_name)
                    for value, type_name in zip(args, self.param_types)]
        return self.db.run_prepared(self, args)

    def execute(self, params: Sequence = ()) -> "Result":
        """Programmatic execution (activates the owning session)."""
        with self.session._activated():
            return self.dispatch(tuple(params))[1]

    def explain(self) -> str:
        """Render the *current* plan (replanned if stale) — the SQL-level
        ``EXPLAIN EXECUTE name`` goes through here."""
        if not isinstance(self.statement, A.SelectStmt):
            raise PlanError(
                f"EXPLAIN EXECUTE supports SELECT prepared statements, "
                f"not {type(self.statement).__name__}")
        return self.plan().explain()

    def deallocate(self) -> None:
        self.session.deallocate(self.name)

    def __repr__(self) -> str:
        return (f"PreparedStatement({self.name!r}, "
                f"{type(self.statement).__name__}, "
                f"params={self.param_count})")


class Connection:
    """One session against a :class:`~repro.sql.engine.Database`.

    Root sessions (``Database``'s own facade) write settings straight
    through to the global values; ordinary sessions keep them in an
    overlay applied around each statement.
    """

    def __init__(self, db: "Database", root: bool = False):
        self.db = db
        self._root = root
        self._closed = False
        self._overlay: dict[str, object] = {}
        self._notices: list[str] = db.notices if root else []
        self._prepared: dict[str, PreparedStatement] = {}
        #: The open explicit transaction (set by BEGIN, cleared by
        #: COMMIT/ROLLBACK).  Autocommit statements never land here.
        self._txn = None
        #: Cancellation flag for whatever statement this session is
        #: running: armed per statement by the engine's ``_TxnScope``,
        #: tripped cross-thread by the wire server's CancelRequest path.
        self.cancel = CancelToken()
        self._active_depth = 0
        self._saved: dict[str, object] = {}
        self._saved_notices: Optional[list[str]] = None
        #: One list of SET LOCAL restore records per nested script.
        self._script_stack: list[list] = []
        self._anon_counter = 0

    # -- lifecycle -------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def notices(self) -> list[str]:
        """RAISE NOTICE/WARNING/INFO messages from this session."""
        return self._notices

    def close(self) -> None:
        """Roll back any open transaction, deallocate prepared statements
        and refuse further execution."""
        if self._txn is not None and not self._closed:
            self.rollback()
        self._prepared.clear()
        self._overlay.clear()
        self._closed = True

    # -- transactions ----------------------------------------------------

    @property
    def in_transaction(self) -> bool:
        """True while an explicit transaction block is open."""
        return self._txn is not None

    def begin(self) -> None:
        """Open an explicit transaction block (``BEGIN``)."""
        self.execute("BEGIN")

    def commit(self) -> None:
        """Commit the open transaction block; a no-op outside one
        (PEP-249 allows commit on a fresh connection)."""
        if self._txn is not None:
            self.execute("COMMIT")

    def rollback(self) -> None:
        """Roll back the open transaction block; a no-op outside one."""
        if self._txn is not None:
            self.execute("ROLLBACK")

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise ExecutionError("connection is closed")

    # -- execution -------------------------------------------------------

    def cursor(self) -> "Cursor":
        self._check_open()
        return Cursor(self)

    def execute(self, sql: str, params: Sequence = ()) -> "Result":
        """Execute one statement in this session; returns the Result."""
        return self._execute_info(sql, params)[1]

    def execute_script(self, sql: str) -> "list[Result]":
        """Execute a ``;``-separated script (the scope of ``SET LOCAL``)."""
        self._check_open()
        with self._activated():
            return self.db._execute_script(sql, self)

    def query_value(self, sql: str, params: Sequence = ()):
        return self.execute(sql, params).scalar()

    def query_all(self, sql: str, params: Sequence = ()) -> list[tuple]:
        return self.execute(sql, params).rows

    def _execute_info(self, sql: str, params: Sequence) -> tuple:
        self._check_open()
        with self._activated():
            return self.db._execute_info(sql, params, self)

    def _execute_many(self, sql: str,
                      param_sets: Iterable[Sequence]) -> tuple:
        self._check_open()
        with self._activated():
            return self.db._execute_many(sql, param_sets, self)

    # -- prepared statements --------------------------------------------

    def prepare(self, sql: str, name: Optional[str] = None) -> PreparedStatement:
        """Parse *sql* once and return a :class:`PreparedStatement`.

        The handle is registered in this session (under a generated name
        when *name* is omitted), so SQL-level ``EXECUTE``/``DEALLOCATE``
        see it too.
        """
        self._check_open()
        from .parser import parse_statement
        from .profiler import PARSE
        with self.db.profiler.phase(PARSE):
            statement = parse_statement(sql)
        if isinstance(statement, A.PrepareStmt):
            return self.register_prepared(statement.name, statement.statement,
                                          statement.param_types)
        if name is None:
            self._anon_counter += 1
            name = f"_stmt{self._anon_counter}"
            while name in self._prepared:
                self._anon_counter += 1
                name = f"_stmt{self._anon_counter}"
        return self.register_prepared(name, statement)

    def register_prepared(self, name: str, statement: A.Statement,
                          param_types: Optional[list[str]] = None
                          ) -> PreparedStatement:
        self._check_open()
        key = name.lower()
        if key in self._prepared:
            raise CatalogError(f"prepared statement {name!r} already exists")
        handle = PreparedStatement(self, key, statement, param_types)
        self._prepared[key] = handle
        return handle

    def lookup_prepared(self, name: str) -> PreparedStatement:
        handle = self._prepared.get(name.lower())
        if handle is None:
            raise CatalogError(
                f"prepared statement {name!r} does not exist")
        return handle

    def deallocate(self, name: Optional[str]) -> None:
        """Drop one prepared statement, or all of them (``name`` None)."""
        if name is None:
            self._prepared.clear()
            return
        if self._prepared.pop(name.lower(), None) is None:
            raise CatalogError(
                f"prepared statement {name!r} does not exist")

    @property
    def prepared_names(self) -> list[str]:
        return sorted(self._prepared)

    # -- settings --------------------------------------------------------

    def get_setting(self, name: str):
        """Effective (typed) value of *name* as this session sees it."""
        setting = self.db.settings.lookup(name)
        if not self._root and setting.name in self._overlay:
            return self._overlay[setting.name]
        return setting.get(self.db)

    def set_setting(self, name: str, raw) -> object:
        """Session-scoped assignment (global write-through on the root
        session).  Validates against the setting's declared type/domain."""
        self._check_open()
        if self._root:
            return self.db.settings.assign(name, raw)
        setting = self.db.settings.lookup(name)
        value = setting.parse(raw)
        self._overlay[setting.name] = value
        if self._active_depth:
            # Mid-statement/script SET: take effect now; the pre-activation
            # global value is restored when the session deactivates.
            changed = setting.get(self.db) != value
            self._saved.setdefault(setting.name, setting.get(self.db))
            setting.set_raw(self.db, value)
            if changed and setting.plan_affecting:
                # Statement plans and prepared handles are fingerprint-
                # stamped, but function-body plan caches are not.
                self.db._clear_function_plan_caches()
        return value

    def reset_setting(self, name: str) -> None:
        """Drop the session override (root: restore the boot default)."""
        self._check_open()
        if self._root:
            self.db.settings.reset(name)
            return
        setting = self.db.settings.lookup(name)
        self._overlay.pop(setting.name, None)
        if self._active_depth and setting.name in self._saved:
            old = self._saved[setting.name]
            changed = setting.get(self.db) != old
            setting.set_raw(self.db, old)
            if changed and setting.plan_affecting:
                self.db._clear_function_plan_caches()

    def reset_all_settings(self) -> None:
        if self._root:
            for name in self.db.settings.names():
                self.db.settings.reset(name)
            return
        for name in list(self._overlay):
            self.reset_setting(name)

    def set_local(self, name: str, raw) -> None:
        """``SET LOCAL``: scoped to the enclosing transaction block
        (reverted at COMMIT or ROLLBACK, PostgreSQL's semantics) or, when
        no block is open, to the enclosing script.  Outside both this is
        a no-op with a notice, matching PostgreSQL's behaviour outside a
        transaction block."""
        self._check_open()
        txn = self._txn if self._txn is not None and not self._txn.finished \
            else None
        if txn is None and not self._script_stack:
            self.db.settings.lookup(name)   # still validate the name
            self._notices.append(
                "WARNING: SET LOCAL has no effect outside a script")
            return
        setting = self.db.settings.lookup(name)
        if self._root:
            restore = ("global", setting.name, setting.get(self.db))
        else:
            had = setting.name in self._overlay
            restore = ("overlay", setting.name, had,
                       self._overlay.get(setting.name))
        if txn is not None:
            txn.local_restores.append(restore)
        else:
            self._script_stack[-1].append(restore)
        self.set_setting(name, raw)

    def begin_script(self) -> None:
        self._script_stack.append([])

    def end_script(self) -> None:
        self._apply_restore_records(self._script_stack.pop())

    def _apply_restore_records(self, records: list) -> None:
        """Revert a batch of SET LOCAL restore records (newest first) —
        shared by script end and transaction finish."""
        for record in reversed(records):
            if record[0] == "global":
                _, name, old = record
                self.db.settings.assign(name, old)
            else:
                _, name, had, old = record
                if had:
                    self.set_setting(name, old)
                else:
                    self.reset_setting(name)

    # -- activation ------------------------------------------------------

    def _activated(self):
        """Context manager applying this session's state to the engine:
        overlay values are written to the backing attributes (saving the
        globals) and the notices list is swapped in; both are restored on
        exit.  Reentrant; a no-op for the root session."""
        return _Activation(self)


class _Activation:
    """Applies a session's overlay/notices to the engine — under the
    database's execution lock, so two threads activating different
    sessions can never interleave their save/restore of the globals
    (the lock is reentrant; the per-statement ``_TxnScope`` nests
    inside it)."""

    __slots__ = ("conn",)

    def __init__(self, conn: Connection):
        self.conn = conn

    def __enter__(self):
        conn = self.conn
        conn.db._exec_lock.acquire()
        conn._active_depth += 1
        if conn._root or conn._active_depth > 1:
            return conn
        db = conn.db
        conn._saved_notices = db.notices
        db.notices = conn._notices
        registry = db.settings
        plan_changed = False
        for name, value in conn._overlay.items():
            setting = registry.lookup(name)
            conn._saved[name] = setting.get(db)
            setting.set_raw(db, value)
            if setting.plan_affecting and conn._saved[name] != value:
                plan_changed = True
        if plan_changed:
            # Function-body plan caches are not fingerprint-stamped; an
            # overlay that changes plan-affecting values must not reuse
            # bodies planned under the globals (nor leave session-planned
            # bodies behind — see __exit__).
            db._clear_function_plan_caches()
        return conn

    def __exit__(self, *exc) -> None:
        conn = self.conn
        try:
            conn._active_depth -= 1
            if conn._root or conn._active_depth > 0:
                return
            db = conn.db
            registry = db.settings
            plan_changed = False
            for name, value in conn._saved.items():
                setting = registry.lookup(name)
                if setting.plan_affecting and setting.get(db) != value:
                    plan_changed = True
                setting.set_raw(db, value)
            conn._saved.clear()
            if plan_changed:
                db._clear_function_plan_caches()
            if conn._saved_notices is not None:
                db.notices = conn._saved_notices
                conn._saved_notices = None
        finally:
            conn.db._exec_lock.release()


class Cursor:
    """PEP-249-shaped cursor over one :class:`Connection`.

    ``description`` is a list of 7-tuples (name first, the rest ``None`` —
    the engine is dynamically typed); ``rowcount`` is the affected-row
    count for DML, the result-set size for queries, and -1 for DDL and
    session statements.  Results are materialized (the engine's executor
    is pull-to-completion), so ``fetchmany`` batching shapes the client
    loop, not the execution.
    """

    __slots__ = ("connection", "arraysize", "description", "rowcount",
                 "_rows", "_pos", "_closed")

    def __init__(self, connection: Connection):
        self.connection = connection
        self.arraysize = 1
        self.description: Optional[list[tuple]] = None
        self.rowcount = -1
        self._rows: Optional[list[tuple]] = None
        self._pos = 0
        self._closed = False

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        self._closed = True
        self._rows = None
        self.description = None

    def __enter__(self) -> "Cursor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise ExecutionError("cursor is closed")
        self.connection._check_open()

    # -- execution -------------------------------------------------------

    def execute(self, sql: str, params: Sequence = ()) -> "Cursor":
        """Execute one statement; returns self (chaining, PEP-249 style)."""
        self._check_open()
        kind, result = self.connection._execute_info(sql, params)
        self._absorb(kind, result)
        return self

    def executemany(self, sql: str,
                    param_sets: Iterable[Sequence]) -> "Cursor":
        """Execute once per parameter set.  INSERTs take a bulk path: the
        source is planned once and all rows land in one ``insert_many``
        (one index-maintenance pass), instead of N single-row plans."""
        self._check_open()
        kind, result = self.connection._execute_many(sql, param_sets)
        self._absorb(kind, result)
        return self

    def _absorb(self, kind: str, result: "Result") -> None:
        from .engine import COUNT, ROWS
        if kind == ROWS:
            self.description = [(name, None, None, None, None, None, None)
                                for name in result.columns]
            self._rows = list(result.rows)
            self.rowcount = len(self._rows)
        elif kind == COUNT:
            self.description = None
            self._rows = None
            self.rowcount = result.rows[0][0] if result.rows else 0
        else:
            self.description = None
            self._rows = None
            self.rowcount = -1
        self._pos = 0

    # -- fetching --------------------------------------------------------

    def _result_rows(self) -> list[tuple]:
        self._check_open()
        if self._rows is None:
            raise ExecutionError(
                "no result set (the last statement returned no rows)")
        return self._rows

    def fetchone(self) -> Optional[tuple]:
        rows = self._result_rows()
        if self._pos >= len(rows):
            return None
        row = rows[self._pos]
        self._pos += 1
        return row

    def fetchmany(self, size: Optional[int] = None) -> list[tuple]:
        rows = self._result_rows()
        count = self.arraysize if size is None else size
        batch = rows[self._pos:self._pos + max(count, 0)]
        self._pos += len(batch)
        return batch

    def fetchall(self) -> list[tuple]:
        rows = self._result_rows()
        batch = rows[self._pos:]
        self._pos = len(rows)
        return batch

    def __iter__(self) -> "Cursor":
        return self

    def __next__(self) -> tuple:
        row = self.fetchone()
        if row is None:
            raise StopIteration
        return row

    # -- PEP-249 no-ops --------------------------------------------------

    def setinputsizes(self, sizes) -> None:
        """No-op; PEP-249 shape only."""

    def setoutputsize(self, size, column=None) -> None:
        """No-op; PEP-249 shape only."""
