"""Error hierarchy for the SQL engine and the PL/SQL compiler.

Every error raised on purpose by this package derives from :class:`SqlError`
so that callers can catch one base class.  The subclasses mirror the stages of
query processing: lexing/parsing, name resolution and planning, execution, and
PL/SQL compilation.
"""

from __future__ import annotations


class SqlError(Exception):
    """Base class for all errors raised by the repro engine."""


class ParseError(SqlError):
    """Raised by the lexer or a parser on malformed input.

    Carries the offending line/column when known so error messages can point
    at the source position.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        if line is not None:
            message = f"{message} (at line {line}, column {column})"
        super().__init__(message)
        self.line = line
        self.column = column


class NameResolutionError(SqlError):
    """An identifier (table, column, function, type) could not be resolved."""


class PlanError(SqlError):
    """The planner rejected a query (unsupported shape, arity mismatch, ...)."""


class ExecutionError(SqlError):
    """A runtime error during plan execution (e.g. bad scalar subquery)."""


class TypeError_(SqlError):
    """A value had the wrong type for an operation or CAST failed."""


class CatalogError(SqlError):
    """Schema-level problem: duplicate table, unknown type, and so on."""


class SettingError(SqlError):
    """An unknown configuration parameter, or a value outside its domain
    (see :mod:`repro.sql.settings`)."""


class SerializationError(SqlError):
    """Write-write conflict under snapshot isolation.

    Raised when a transaction tries to update or delete a row version that
    another transaction has already written (first-writer-wins): either the
    other writer is still in progress, or it committed after this
    transaction's snapshot was taken.  The losing transaction should be
    rolled back and retried.
    """


class QueryCanceledError(SqlError):
    """The running statement was canceled (SQLSTATE 57014 family).

    Raised cooperatively from executor hot loops and the PL/pgSQL
    interpreter when the session's :class:`~repro.sql.cancel.CancelToken`
    was tripped (wire ``CancelRequest``, programmatic trip), when
    ``statement_timeout`` expired, or when the interpreter's statement
    budget ran out — PostgreSQL classifies all of these as "operator
    intervention / query canceled".  Only the canceled statement rolls
    back; an enclosing explicit transaction block survives.
    """


class PlsqlError(SqlError):
    """Base class for PL/pgSQL front-end and interpreter errors."""


class PlsqlRuntimeError(PlsqlError):
    """Raised while interpreting a PL/pgSQL function body."""


class NoReturnError(PlsqlRuntimeError):
    """Control reached the end of a function without RETURN.

    PostgreSQL raises this at run time (SQLSTATE 2F005); both execution
    strategies here do the same — the interpreter when it walks off the
    body, compiled functions via the ``__no_return`` builtin planted on
    the CFG's synthetic fall-off edge.  The static analyzer flags the
    same condition at CREATE FUNCTION time (codes CF002/CF003)."""


class CompileError(SqlError):
    """The PL/SQL -> SQL compiler could not translate a function."""


class LoopNotSupportedError(CompileError):
    """Raised by the Froid baseline when the input function contains a loop."""


#: Stable taxonomy labels, most-specific class first: :func:`error_class`
#: returns the label of the first matching entry.  The differential
#: fuzzer's oracle compares *labels*, not exception identity, so two
#: execution strategies "agree" when both reject a statement at the same
#: stage — while an exception outside the :class:`SqlError` hierarchy
#: (KeyError, RecursionError, ...) classifies as ``"crash"`` and is always
#: reported, even when every strategy crashes alike.
_ERROR_TAXONOMY: tuple[tuple[type, str], ...] = (
    (SerializationError, "serialization"),
    (QueryCanceledError, "query-canceled"),
    (ParseError, "parse"),
    (NameResolutionError, "name-resolution"),
    (PlanError, "plan"),
    (ExecutionError, "execution"),
    (TypeError_, "type"),
    (CatalogError, "catalog"),
    (SettingError, "setting"),
    (LoopNotSupportedError, "compile"),
    (CompileError, "compile"),
    (NoReturnError, "no-return"),
    (PlsqlRuntimeError, "plsql-runtime"),
    (PlsqlError, "plsql"),
    (SqlError, "sql"),
)

#: Label for exceptions no deliberate engine error path raised.
CRASH = "crash"


def error_class(error: BaseException) -> str:
    """Classify *error* into the engine's error taxonomy.

    Returns a stable stage label ("parse", "plan", "execution", ...) for
    deliberate :class:`SqlError` rejections and :data:`CRASH` for anything
    else, letting oracles distinguish "both strategies reject this input"
    (agreement) from "the engine fell over" (always a bug).
    """
    for exc_type, label in _ERROR_TAXONOMY:
        if isinstance(error, exc_type):
            return label
    return CRASH
