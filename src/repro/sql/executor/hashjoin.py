"""Build/probe hash joins over the shared row vector.

The planner (see :meth:`repro.sql.planner.Planner._finalize_from`) turns a
join whose condition contains equality conjuncts straddling the two sides —
from an explicit ``JOIN ... ON`` or from WHERE conjuncts over a cross join —
into a :class:`HashJoinPlan`.  At open, the *build* side is drained once into
a hash table keyed by its key expressions; the *probe* side then streams,
looking up matches per row.  This replaces the O(|L|·|R|) condition
evaluations of the nested-loop path with O(|L|+|R|) work, which is the whole
point of compiling PL/SQL into plain queries: once the workload is relational,
the engine can pick the join algorithm.

Vector protocol: both sides still write into the shared row vector.  While
building, each build-side tick's slot values are snapshotted into the hash
table; on a probe match the snapshot is written back into the vector before
the residual condition (non-equi leftovers of the join condition) runs and
the row is emitted.

Semantics kept identical to the nested loop:

* NULL keys never match (``NULL = x`` is not TRUE) — NULL build rows are
  not hashed, NULL probe rows find nothing,
* LEFT JOIN emits a NULL-filled right side for probe rows with no surviving
  match; the build side is therefore always the right (nullable) side,
* for INNER joins the planner picks the smaller estimated side as the build
  side (``storage.HeapTable.estimate_rows`` via the catalog).

LATERAL subtrees never reach this operator — the right side of a lateral
join must be re-evaluated per left tick, so the planner keeps those on the
nested-loop path.
"""

from __future__ import annotations

from ..errors import TypeError_
from ..expr import EvalContext
from ..profiler import HASHJOIN_BUILD_ROWS, HASHJOIN_BUILDS
from ..values import Row, hashable_value
from ..values import key_class as _key_class
from .fromtree import FromNodePlan, FromNodeState
from .scan import make_slots

_NO_MATCHES: list = []


def _key_type_error(probe_value, build_class, build_display) -> TypeError_:
    if isinstance(build_class, tuple) and isinstance(probe_value, Row):
        return TypeError_("cannot compare rows of different arity")
    return TypeError_(f"cannot compare {type(probe_value).__name__} "
                      f"with {build_display}")


class HashJoinPlan(FromNodePlan):
    """Hash join of two FROM subtrees.

    ``kind`` is ``inner`` or ``left`` (a keyed cross join is planned as
    ``inner``).  ``left_keys`` / ``right_keys`` are parallel lists of
    compiled key expressions, each referencing only its own side;
    ``residual`` is the compiled conjunction of the remaining condition
    conjuncts (may be None); ``subplans`` are the subquery slots any of
    those expressions need.  ``build_side`` is ``"left"`` or ``"right"``
    (always ``"right"`` for LEFT joins).

    ``rebuild_on_rescan`` is False when the planner proved the build side
    and its keys independent of the outer context (plain base-table scans,
    uncorrelated keys and filters): the hash table is then built once per
    execution and reused across rescans — e.g. when this join sits under
    the re-opened right side of an enclosing nested loop.
    """

    __slots__ = ("kind", "left", "right", "left_keys", "right_keys",
                 "residual", "subplans", "build_side", "key_display",
                 "rebuild_on_rescan")

    def __init__(self, kind: str, left: FromNodePlan, right: FromNodePlan,
                 left_keys, right_keys, residual, subplans,
                 build_side: str, key_display: str,
                 rebuild_on_rescan: bool = True):
        super().__init__(left.rel_slots + right.rel_slots)
        self.kind = kind
        self.left = left
        self.right = right
        self.left_keys = left_keys
        self.right_keys = right_keys
        self.residual = residual
        self.subplans = subplans
        self.build_side = build_side
        self.key_display = key_display
        self.rebuild_on_rescan = rebuild_on_rescan

    def instantiate(self, rt, ictx, vector: list) -> "HashJoinState":
        return HashJoinState(
            rt, vector, self,
            self.left.instantiate(rt, ictx, vector),
            self.right.instantiate(rt, ictx, vector),
            make_slots(rt, ictx, self.subplans))

    def explain(self, indent: int = 0) -> str:
        head = ("  " * indent
                + f"-> HashJoin {self.kind.upper()} JOIN"
                + f" ({self.key_display}) [build={self.build_side}]")
        return "\n".join([head,
                          self.left.explain(indent + 1),
                          self.right.explain(indent + 1)])


class HashJoinState(FromNodeState):
    __slots__ = ("plan", "left", "right", "slots", "_ctx", "_table",
                 "_build", "_build_node", "_build_slot_ids", "_probe",
                 "_probe_keys", "_matches", "_match_pos", "_matched",
                 "_key_cats")

    def __init__(self, rt, vector, plan: HashJoinPlan,
                 left: FromNodeState, right: FromNodeState, slots: list):
        super().__init__(rt, vector)
        self.plan = plan
        self.left = left
        self.right = right
        self.slots = slots
        if plan.build_side == "right":
            self._build_node = plan.right
            build_state, build_keys = right, plan.right_keys
            self._probe, self._probe_keys = left, plan.left_keys
        else:
            self._build_node = plan.left
            build_state, build_keys = left, plan.left_keys
            self._probe, self._probe_keys = right, plan.right_keys
        # Stashed for open(); avoids re-deriving the pairing per rescan.
        self._build = (build_state, build_keys)
        self._ctx: EvalContext | None = None
        self._table: dict | None = None  # None = not built yet
        self._key_cats: list[dict] = [{} for _ in self._probe_keys]
        self._build_slot_ids = [index for index, _ in self._build_node.rel_slots]
        self._matches = None
        self._match_pos = 0
        self._matched = False

    def open(self, outer) -> None:
        if self._ctx is None or self.outer is not outer:
            self._ctx = EvalContext(self.rt, self.vector, parent=outer,
                                    slots=self.slots)
        self.outer = outer
        if self._table is not None and not self.plan.rebuild_on_rescan:
            # Uncorrelated build side: reuse the table across rescans.
            self._probe.open(outer)
            self._matches = None
            self._match_pos = 0
            self._matched = False
            return
        ctx = self._ctx
        build_state, build_keys = self._build
        slot_ids = self._build_slot_ids
        vector = self.vector
        table: dict = {}
        key_cats: list[dict] = [{} for _ in build_keys]
        build_state.open(outer)
        cancel = self.rt.cancel
        count = 0
        while build_state.next():
            cancel.check()
            key = []
            for index, key_expr in enumerate(build_keys):
                value = key_expr(ctx)
                if value is None:
                    key = None  # NULL keys can never match: skip the row
                    continue    # (still record later components' types)
                key_cats[index].setdefault(_key_class(value),
                                           type(value).__name__)
                if key is not None:
                    key.append(hashable_value(value))
            if key is None:
                continue
            count += 1
            table.setdefault(tuple(key), []).append(
                tuple(vector[i] for i in slot_ids))
        self._table = table
        self._key_cats = key_cats
        profiler = self.rt.db.profiler
        profiler.bump(HASHJOIN_BUILDS)
        profiler.bump(HASHJOIN_BUILD_ROWS, count)
        self._probe.open(outer)
        self._matches = None
        self._match_pos = 0
        self._matched = False

    def _null_fill_build(self) -> None:
        for rel_index, width in self._build_node.rel_slots:
            self.vector[rel_index] = (None,) * width

    def next(self) -> bool:
        plan = self.plan
        ctx = self._ctx
        vector = self.vector
        slot_ids = self._build_slot_ids
        residual = plan.residual
        cancel = self.rt.cancel
        while True:
            cancel.check()
            matches = self._matches
            if matches is not None:
                while self._match_pos < len(matches):
                    snapshot = matches[self._match_pos]
                    self._match_pos += 1
                    for slot, value in zip(slot_ids, snapshot):
                        vector[slot] = value
                    if residual is None or residual(ctx) is True:
                        self._matched = True
                        return True
                self._matches = None
                if plan.kind == "left" and not self._matched:
                    # Probe side is the preserved left side; fill the
                    # (right) build side with NULLs.
                    self._null_fill_build()
                    return True
            if not self._probe.next():
                return False
            self._matched = False
            key = []
            for index, key_expr in enumerate(self._probe_keys):
                value = key_expr(ctx)
                if value is None:
                    key = None  # NULL never matches (but keep type-checking)
                    continue
                cats = self._key_cats[index]
                kind = _key_class(value)
                if cats and kind not in cats:
                    # The nested loop would raise on the first such pair;
                    # keep the strategies observably equivalent.
                    build_class, display = next(iter(cats.items()))
                    raise _key_type_error(value, build_class, display)
                if key is not None:
                    key.append(hashable_value(value))
            self._matches = (_NO_MATCHES if key is None
                             else self._table.get(tuple(key), _NO_MATCHES))
            self._match_pos = 0

    def close(self) -> None:
        self.left.close()
        self.right.close()
