"""Tuple-stream operators between SELECT levels: sort, limit, set ops."""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from ..errors import ExecutionError
from ..values import row_sort_key
from .base import Plan, PlanState
from ..values import hashable_row as _hashable_row


class SortPlan(Plan):
    """Sort the child's tuples by trailing hidden key columns.

    The planner appends one hidden column per ORDER BY key to the child's
    projection; ``key_start`` marks where they begin, ``strip`` says whether
    to cut them from emitted rows (true unless keys are real output columns).
    """

    __slots__ = ("child", "key_start", "descending", "nulls_first", "strip",
                 "key_indices")

    def __init__(self, child: Plan, output_columns: list[str], key_start: int,
                 descending: Sequence[bool],
                 nulls_first: Sequence[Optional[bool]], strip: bool,
                 key_indices: Optional[Sequence[int]] = None):
        super().__init__(output_columns)
        self.child = child
        self.key_start = key_start
        self.descending = list(descending)
        self.nulls_first = list(nulls_first)
        self.strip = strip
        #: When set, sort keys are these column positions instead of a
        #: trailing hidden-key block (used for ORDER BY over set operations).
        self.key_indices = list(key_indices) if key_indices is not None else None

    def children(self) -> list[Plan]:
        return [self.child]

    def instantiate(self, rt, ictx=None) -> "SortState":
        return SortState(rt, self, self.child.instantiate(rt, ictx))


class SortState(PlanState):
    __slots__ = ("plan", "child", "rows", "pos")

    def __init__(self, rt, plan: SortPlan, child: PlanState):
        super().__init__(rt)
        self.plan = plan
        self.child = child
        self.rows: list[tuple] = []
        self.pos = 0

    def open(self, outer) -> None:
        self.child.open(outer)
        plan = self.plan
        rows = self.child.fetch_all()
        rows.sort(key=make_row_key(plan))
        if plan.strip and plan.key_indices is None:
            self.rows = [row[:plan.key_start] for row in rows]
        else:
            self.rows = rows
        self.pos = 0

    def next(self) -> Optional[tuple]:
        if self.pos >= len(self.rows):
            return None
        row = self.rows[self.pos]
        self.pos += 1
        return row

    def close(self) -> None:
        self.child.close()


def make_row_key(plan) -> Callable[[tuple], tuple]:
    """The row -> sort-key closure for a :class:`SortPlan`-shaped node
    (``key_start`` / ``key_indices`` / ``descending`` / ``nulls_first``).
    Shared by :class:`SortState` and the bounded-heap TopN operator
    (:mod:`repro.sql.executor.select_core`), which must order rows
    identically to stay differentially equivalent."""

    def key(row: tuple):
        if plan.key_indices is not None:
            keys = tuple(row[i] for i in plan.key_indices)
        else:
            keys = row[plan.key_start:]
        base = row_sort_key(keys, plan.descending)
        # NULLS FIRST/LAST overrides: wrap once more when requested.
        return tuple(
            _null_adjust(part, value, plan.descending[i],
                         plan.nulls_first[i])
            for i, (part, value) in enumerate(zip(base, keys)))

    return key


def _null_adjust(key_part, value, descending: bool, nulls_first: Optional[bool]):
    """Re-wrap a sort key to honour an explicit NULLS FIRST/LAST."""
    if nulls_first is None:
        return key_part
    is_null = value is None
    # Default placement: NULLS LAST for ASC, NULLS FIRST for DESC.
    rank = 0 if (is_null and nulls_first) else (2 if is_null else 1)
    return (rank, key_part if not is_null else 0)


class LimitPlan(Plan):
    """LIMIT/OFFSET; the bounds are compiled expressions (params allowed)."""

    __slots__ = ("child", "limit", "offset", "subplans")

    def __init__(self, child: Plan, limit, offset, subplans):
        super().__init__(child.output_columns)
        self.child = child
        self.limit = limit
        self.offset = offset
        self.subplans = subplans

    def children(self) -> list[Plan]:
        return [self.child]

    def instantiate(self, rt, ictx=None) -> "LimitState":
        from .scan import make_slots
        return LimitState(rt, self, self.child.instantiate(rt, ictx),
                          make_slots(rt, ictx, self.subplans))


class LimitState(PlanState):
    __slots__ = ("plan", "child", "slots", "remaining", "to_skip")

    def __init__(self, rt, plan: LimitPlan, child: PlanState, slots):
        super().__init__(rt)
        self.plan = plan
        self.child = child
        self.slots = slots
        self.remaining: Optional[int] = None
        self.to_skip = 0

    def open(self, outer) -> None:
        from ..expr import EvalContext
        self.child.open(outer)
        ctx = EvalContext(self.rt, (), parent=outer, slots=self.slots)
        self.remaining = None
        if self.plan.limit is not None:
            value = self.plan.limit(ctx)
            if value is not None:
                if not isinstance(value, int) or value < 0:
                    raise ExecutionError("LIMIT must be a non-negative integer")
                self.remaining = value
        self.to_skip = 0
        if self.plan.offset is not None:
            value = self.plan.offset(ctx)
            if value is not None:
                if not isinstance(value, int) or value < 0:
                    raise ExecutionError("OFFSET must be a non-negative integer")
                self.to_skip = value

    def next(self) -> Optional[tuple]:
        while self.to_skip > 0:
            if self.child.next() is None:
                return None
            self.to_skip -= 1
        if self.remaining is not None:
            if self.remaining <= 0:
                return None
            self.remaining -= 1
        return self.child.next()

    def close(self) -> None:
        self.child.close()


class AppendPlan(Plan):
    """UNION ALL — concatenate children."""

    __slots__ = ("parts",)

    def __init__(self, parts: list[Plan], output_columns: list[str]):
        super().__init__(output_columns)
        self.parts = parts

    def children(self) -> list[Plan]:
        return self.parts

    def instantiate(self, rt, ictx=None) -> "AppendState":
        return AppendState(rt, [p.instantiate(rt, ictx) for p in self.parts])


class AppendState(PlanState):
    __slots__ = ("parts", "index", "outer")

    def __init__(self, rt, parts: list[PlanState]):
        super().__init__(rt)
        self.parts = parts
        self.index = 0
        self.outer = None

    def open(self, outer) -> None:
        self.outer = outer
        self.index = 0
        if self.parts:
            self.parts[0].open(outer)

    def next(self) -> Optional[tuple]:
        while self.index < len(self.parts):
            row = self.parts[self.index].next()
            if row is not None:
                return row
            self.index += 1
            if self.index < len(self.parts):
                self.parts[self.index].open(self.outer)
        return None

    def close(self) -> None:
        for part in self.parts:
            part.close()


class SetOpPlan(Plan):
    """UNION / INTERSECT / EXCEPT with SQL duplicate-elimination."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Plan, right: Plan,
                 output_columns: list[str]):
        super().__init__(output_columns)
        self.op = op
        self.left = left
        self.right = right

    def children(self) -> list[Plan]:
        return [self.left, self.right]

    def label(self) -> str:
        return self.op.upper()

    def instantiate(self, rt, ictx=None) -> "SetOpState":
        return SetOpState(rt, self, self.left.instantiate(rt, ictx),
                          self.right.instantiate(rt, ictx))


class SetOpState(PlanState):
    __slots__ = ("plan", "left", "right", "rows", "pos")

    def __init__(self, rt, plan: SetOpPlan, left: PlanState, right: PlanState):
        super().__init__(rt)
        self.plan = plan
        self.left = left
        self.right = right
        self.rows: list[tuple] = []
        self.pos = 0

    def open(self, outer) -> None:
        self.left.open(outer)
        self.right.open(outer)
        left_rows = self.left.fetch_all()
        right_rows = self.right.fetch_all()
        op = self.plan.op
        out: list[tuple] = []
        seen: set = set()
        if op == "union":
            for row in left_rows + right_rows:
                key = _hashable_row(row)
                if key not in seen:
                    seen.add(key)
                    out.append(row)
        elif op == "intersect":
            right_keys = {_hashable_row(r) for r in right_rows}
            for row in left_rows:
                key = _hashable_row(row)
                if key in right_keys and key not in seen:
                    seen.add(key)
                    out.append(row)
        elif op == "except":
            right_keys = {_hashable_row(r) for r in right_rows}
            for row in left_rows:
                key = _hashable_row(row)
                if key not in right_keys and key not in seen:
                    seen.add(key)
                    out.append(row)
        else:
            raise ExecutionError(f"unknown set operation {op!r}")
        self.rows = out
        self.pos = 0

    def next(self) -> Optional[tuple]:
        if self.pos >= len(self.rows):
            return None
        row = self.rows[self.pos]
        self.pos += 1
        return row

    def close(self) -> None:
        self.left.close()
        self.right.close()
