"""Set-oriented compiled-UDF execution: the ``BatchedUdf`` operator.

The planner's scalar finalization inlines a compiled function as a
*correlated scalar subquery*, so ``SELECT f(x) FROM t`` re-opens (and hence
re-materializes) the whole ``WITH RECURSIVE`` trampoline once per input
row.  This module evaluates the same workload through **one** trampoline:

1. the owning SELECT block materializes its surviving row vectors,
2. for each batched call site the argument expressions are evaluated per
   row, producing a *batch input* relation ``(k, <args...>)`` keyed by the
   row's position,
3. the function's batched Qf (see
   :func:`repro.compiler.template.build_batched_template_query`) runs once,
   its recursive working set carrying ``k`` alongside the machine state so
   every pending call advances in lock-step,
4. the ``(k, result)`` output is joined back positionally — a key join on
   ``k`` against an array — and exposed to the projection as the
   ``__batch`` relation.

Two interchangeable evaluation strategies execute the trampoline
(``planner.batch_strategy``):

* ``"machine"`` (default) — the batched template's *machine form*
  (:class:`repro.compiler.template.BatchedMachine`): the transition rules
  the SQL template spells out, evaluated as compiled expression closures
  over the working set.  One condition/argument evaluation per pending
  call per step, no generic operator overhead — the same engine-side move
  as ``WITH ITERATE``.
* ``"sql"`` — plan the batched Qf like any query and run it through the
  generic recursive-CTE executor, with the batch input injected as a
  pre-materialized CTE.  Slower, but shares every code path with ordinary
  queries; the differential tests hold both strategies to identical
  results.

The per-row scalar path remains the fallback: volatile argument
expressions, volatile function bodies, loop-free functions, calls outside
the select list, and ``planner.batch_compiled = False`` all keep the seed
behaviour (see :meth:`repro.sql.planner.Planner._plan_batched_udfs`).
"""

from __future__ import annotations

from typing import Optional

from ..errors import ExecutionError
from ..expr import EvalContext, ExprCompiler, Relation, Scope
from ..profiler import (BATCHED_UDF_BATCHES, BATCHED_UDF_DISTINCT,
                        BATCHED_UDF_ROWS, TRAMPOLINE_ITERATIONS,
                        TRAMPOLINE_WORKING_ROWS)
from ..values import Row
from .base import Plan
from .recursion import CteDef, CteRuntime, InstantiationContext
from .scan import make_slots


def _dedup_key(value):
    """Hashable dedup key distinguishing *representations*, not just SQL
    equality: ``f(5)`` and ``f(5.0)`` compare equal in SQL yet can produce
    different results (integer vs float division), so unlike join keys the
    argument dedup must never merge them."""
    if isinstance(value, Row):
        return ("row",) + tuple(_dedup_key(v) for v in value.values)
    if isinstance(value, list):
        return ("arr",) + tuple(_dedup_key(v) for v in value)
    return (type(value).__name__, value)

#: Sentinel distinguishing "no result row arrived for this k" from NULL.
_MISSING = object()


class BatchedUdfStagePlan:
    """All batched call sites of one SELECT block (plan-time).

    ``dedup`` (``planner.batch_dedup``): batching materializes the whole
    argument relation before the trampoline runs, so rows with identical
    argument vectors can share one activation — sound because batching
    already requires non-volatile functions.  The per-row scalar path can
    never see this: it evaluates calls one at a time.
    """

    __slots__ = ("calls", "subplans", "dedup")

    def __init__(self, calls: list, subplans, dedup: bool = True):
        self.calls = calls
        self.subplans = subplans
        self.dedup = dedup

    def explain(self, indent: int = 0) -> str:
        lines = []
        for call in self.calls:
            tags = f"one trampoline, keyed on k; {call.strategy}"
            if call.volatility:
                tags += f"; volatility={call.volatility}"
            lines.append("  " * indent
                         + f"-> BatchedUdf {call.name}({call.arg_display})"
                         + f"  [{tags}]")
            lines.extend(call.explain_children(indent + 1))
        return "\n".join(lines)


class BatchedUdfStageState:
    """Per-execution state: one instantiated trampoline per call site."""

    __slots__ = ("rt", "stage", "slots", "calls")

    def __init__(self, rt, stage: BatchedUdfStagePlan, ictx):
        self.rt = rt
        self.stage = stage
        self.slots = make_slots(rt, ictx, stage.subplans)
        self.calls = [call.instantiate(rt, ictx) for call in stage.calls]

    def attach(self, vectors: list[tuple], outer: Optional[EvalContext]
               ) -> list[tuple]:
        """Evaluate every batched call over *vectors*; returns the
        ``__batch`` relation row (one result column per call) per vector."""
        if not vectors:
            return []
        profiler = self.rt.db.profiler
        dedup = self.stage.dedup
        columns = []
        for call_state in self.calls:
            args = call_state.plan.args
            profiler.bump(BATCHED_UDF_BATCHES)
            profiler.bump(BATCHED_UDF_ROWS, len(vectors))
            if dedup:
                # One activation per *distinct* argument vector; every
                # caller row keeps a remap index into the unique batch.
                seen: dict = {}
                batch_rows: list[tuple] = []
                remap = []
                for vec in vectors:
                    ctx = EvalContext(self.rt, vec, parent=outer,
                                      slots=self.slots)
                    values = tuple(arg(ctx) for arg in args)
                    key = tuple(_dedup_key(v) for v in values)
                    index = seen.get(key)
                    if index is None:
                        index = len(batch_rows)
                        seen[key] = index
                        batch_rows.append((index,) + values)
                    remap.append(index)
                profiler.bump(BATCHED_UDF_DISTINCT, len(batch_rows))
                unique = call_state.run(batch_rows)
                columns.append([unique[index] for index in remap])
            else:
                batch_rows = []
                for k, vec in enumerate(vectors):
                    ctx = EvalContext(self.rt, vec, parent=outer,
                                      slots=self.slots)
                    batch_rows.append((k,) + tuple(arg(ctx) for arg in args))
                profiler.bump(BATCHED_UDF_DISTINCT, len(batch_rows))
                columns.append(call_state.run(batch_rows))
        return [tuple(column[k] for column in columns)
                for k in range(len(vectors))]

    def close(self) -> None:
        for call_state in self.calls:
            call_state.close()


# ---------------------------------------------------------------------------
# Strategy: "machine" — compiled transition rules over the working set
# ---------------------------------------------------------------------------


def compile_machine(machine, planner) -> "MachineCallPlan":
    """Compile a :class:`~repro.compiler.template.BatchedMachine`'s ASTs
    into closures.  The base rule sees one batch-input row ``(params...)``;
    each transition rule sees one state row ``(fn, vars...)`` — with the
    columns that belong to *other* rules masked, so a rule's let-bound
    locals can never capture them (the machine mirror of
    :func:`repro.compiler.template._dispatch_body`'s per-function binding).
    ``MachineLet`` bindings extend the row at run time, exactly like the
    template's LATERAL chain extends the iter row.

    Node closures return the *next* machine row: ``(label, vars...)`` for a
    tail call, ``(None, value)`` for a finished activation — ``fn`` labels
    are 1-based, so ``None`` in slot 0 is unambiguous.
    """
    base_subplans: list = []
    base = _compile_node(
        machine.base, planner,
        [Relation("b", machine.param_columns), Relation("_lets", [])],
        base_subplans)
    trans_subplans: list = []
    transitions = {}
    for label, node in machine.transitions.items():
        own = machine.own_params[label]
        columns = [c if c == "fn" or c in own else "\x00" + c
                   for c in machine.state_columns]
        transitions[label] = _compile_node(
            node, planner,
            [Relation("s", columns), Relation("_lets", [])],
            trans_subplans)
    return MachineCallPlan(base, base_subplans, transitions, trans_subplans)


def _compile_node(node, planner, rels: list, subplans: list):
    from ...compiler.template import (MachineCall, MachineIf, MachineLet,
                                      MachineResult)

    def compile_expr(ast):
        # Fresh compiler per expression (the visible columns grow through
        # let bindings) sharing one subplan slot list per rule set.
        compiler = ExprCompiler(Scope(rels), planner)
        compiler.subplans = subplans
        compiler.slot_count = len(subplans)
        return compiler.compile(ast)

    if isinstance(node, MachineLet):
        # Let values land in the second relation's mutable row (appended in
        # path order; only one branch runs per row, so indices line up).
        # Whole chains fuse into one closure — a let costs one expression
        # evaluation plus a list append, nothing more.
        values = []
        pushed = 0
        while isinstance(node, MachineLet):
            values.append(compile_expr(node.value))
            rels[1].columns.append(node.var.lower())
            pushed += 1
            node = node.body
        body_fn = _compile_node(node, planner, rels, subplans)
        del rels[1].columns[-pushed:]
        if len(values) == 1:
            value0, = values

            def run_let(ctx):
                ctx.rows[1].append(value0(ctx))
                return body_fn(ctx)

            return run_let

        def run_lets(ctx):
            lets = ctx.rows[1]
            for value in values:
                lets.append(value(ctx))
            return body_fn(ctx)

        return run_lets
    if isinstance(node, MachineIf):
        cond = compile_expr(node.condition)
        then_fn = _compile_node(node.then_node, planner, rels, subplans)
        else_fn = _compile_node(node.else_node, planner, rels, subplans)

        def run_if(ctx):
            return then_fn(ctx) if cond(ctx) is True else else_fn(ctx)

        return run_if
    if isinstance(node, MachineCall):
        arg_fns = [compile_expr(a) for a in node.args]
        label = node.label
        if len(arg_fns) == 1:
            a0, = arg_fns
            return lambda ctx: (label, a0(ctx))
        if len(arg_fns) == 2:
            a0, a1 = arg_fns
            return lambda ctx: (label, a0(ctx), a1(ctx))
        if len(arg_fns) == 3:
            a0, a1, a2 = arg_fns
            return lambda ctx: (label, a0(ctx), a1(ctx), a2(ctx))
        if len(arg_fns) == 4:
            a0, a1, a2, a3 = arg_fns
            return lambda ctx: (label, a0(ctx), a1(ctx), a2(ctx), a3(ctx))

        def run_call(ctx):
            return (label,) + tuple(fn(ctx) for fn in arg_fns)

        return run_call
    assert isinstance(node, MachineResult)
    value = compile_expr(node.value)

    def run_result(ctx):
        return (None, value(ctx))

    return run_result


class MachineCallPlan:
    """One batched call site evaluated via compiled transition rules."""

    strategy = "machine"

    __slots__ = ("name", "arg_display", "args", "volatility", "base",
                 "base_subplans", "transitions", "trans_subplans")

    def __init__(self, base, base_subplans, transitions, trans_subplans):
        self.name = ""
        self.arg_display = ""
        self.args: list = []
        self.volatility = ""
        self.base = base
        self.base_subplans = base_subplans
        self.transitions = transitions
        self.trans_subplans = trans_subplans

    def at_call_site(self, name: str, arg_display: str,
                     args: list) -> "MachineCallPlan":
        """A shallow per-call-site copy (the compiled rules are shared)."""
        site = MachineCallPlan(self.base, self.base_subplans,
                               self.transitions, self.trans_subplans)
        site.name = name
        site.arg_display = arg_display
        site.args = args
        site.volatility = self.volatility
        return site

    def explain_children(self, indent: int) -> list[str]:
        return ["  " * indent
                + f"-> Trampoline machine ({len(self.transitions)} "
                + ("transition rule)" if len(self.transitions) == 1
                   else "transition rules)")]

    def instantiate(self, rt, ictx) -> "MachineCallState":
        return MachineCallState(rt, self, ictx)


class MachineCallState:
    __slots__ = ("rt", "plan", "base_slots", "trans_slots")

    def __init__(self, rt, plan: MachineCallPlan, ictx):
        self.rt = rt
        self.plan = plan
        self.base_slots = make_slots(rt, ictx, plan.base_subplans)
        self.trans_slots = make_slots(rt, ictx, plan.trans_subplans)

    def run(self, batch_rows: list[tuple]) -> list:
        """Advance every pending call in lock-step; results aligned by k."""
        rt = self.rt
        plan = self.plan
        profiler = rt.db.profiler
        results: list = [None] * len(batch_rows)
        base = plan.base
        # One context per rule set, rebound per row through a shared vector
        # (slot 0: the machine row, slot 1: this row's let bindings).
        lets: list = []
        vector: list = [None, lets]
        base_ctx = EvalContext(rt, vector, slots=self.base_slots)
        working: list = []  # (k, state) pairs, state = (label, vars...)
        for row in batch_rows:
            vector[0] = row[1:]
            del lets[:]
            out = base(base_ctx)
            if out[0] is None:
                results[row[0]] = out[1]
            else:
                working.append((row[0], out))
        transitions = plan.transitions
        single = (next(iter(transitions.values()))
                  if len(transitions) == 1 else None)
        ctx = EvalContext(rt, vector, slots=self.trans_slots)
        limit = rt.db.max_recursion_iterations
        cancel = rt.cancel
        iterations = 0
        while working:
            cancel.check()
            iterations += 1
            if iterations > limit:
                raise ExecutionError(
                    f"batched evaluation of {plan.name}() exceeded {limit} "
                    "iterations (possible infinite recursion)")
            profiler.bump(TRAMPOLINE_ITERATIONS)
            profiler.bump(TRAMPOLINE_WORKING_ROWS, len(working))
            next_working = []
            append = next_working.append
            if single is not None:
                for k, state in working:
                    vector[0] = state
                    del lets[:]
                    out = single(ctx)
                    if out[0] is None:
                        results[k] = out[1]
                    else:
                        append((k, out))
            else:
                for k, state in working:
                    vector[0] = state
                    del lets[:]
                    out = transitions[state[0]](ctx)
                    if out[0] is None:
                        results[k] = out[1]
                    else:
                        append((k, out))
            working = next_working
        return results

    def close(self) -> None:
        pass


# ---------------------------------------------------------------------------
# Strategy: "sql" — the batched Qf through the generic executor
# ---------------------------------------------------------------------------


class SqlCallPlan:
    """One batched call site evaluated by planning the batched Qf and
    injecting the batch input as a pre-materialized CTE."""

    strategy = "sql"

    __slots__ = ("name", "arg_display", "args", "volatility",
                 "inner_plan", "batch_def")

    def __init__(self, inner_plan: Plan, batch_def: CteDef):
        self.name = ""
        self.arg_display = ""
        self.args: list = []
        self.volatility = ""
        self.inner_plan = inner_plan
        self.batch_def = batch_def

    def at_call_site(self, name: str, arg_display: str,
                     args: list) -> "SqlCallPlan":
        site = SqlCallPlan(self.inner_plan, self.batch_def)
        site.name = name
        site.arg_display = arg_display
        site.args = args
        site.volatility = self.volatility
        return site

    def explain_children(self, indent: int) -> list[str]:
        return [self.inner_plan.explain(indent)]

    def instantiate(self, rt, ictx) -> "SqlCallState":
        return SqlCallState(rt, self)


class SqlCallState:
    __slots__ = ("rt", "plan", "runtime", "state")

    def __init__(self, rt, plan: SqlCallPlan):
        self.rt = rt
        self.plan = plan
        # Bind the batch-input CteDef to a runtime whose rows this state
        # injects directly (there is no defining plan to materialize).
        ictx = InstantiationContext()
        self.runtime = CteRuntime(plan.batch_def, rt)
        ictx.bindings[plan.batch_def] = self.runtime
        self.state = plan.inner_plan.instantiate(rt, ictx)

    def run(self, batch_rows: list[tuple]) -> list:
        """One trampoline over *batch_rows*; results aligned with k."""
        self.runtime.rows = batch_rows
        self.state.open(None)
        results: list = [_MISSING] * len(batch_rows)
        for row in self.state.fetch_all():
            k = row[0]
            if results[k] is not _MISSING:
                raise ExecutionError(
                    f"batched evaluation of {self.plan.name}() produced "
                    "more than one result row for a single call")
            results[k] = row[1]
        if any(value is _MISSING for value in results):
            raise ExecutionError(
                f"batched evaluation of {self.plan.name}() lost a call "
                "(no result row for its key)")
        return results

    def close(self) -> None:
        self.state.close()
