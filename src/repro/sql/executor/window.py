"""Window-function evaluation over materialized input rows.

The paper's compiled ``walk()`` relies on Q2's window aggregates::

    COALESCE(SUM(a.prob) OVER lt, 0.0) AS lo,
    SUM(a.prob) OVER leq            AS hi
    WINDOW leq AS (ORDER BY a.there),
           lt  AS (leq ROWS UNBOUNDED PRECEDING EXCLUDE CURRENT ROW)

so this module implements ORDER BY windows with peer groups, ROWS and RANGE
frames, frame exclusion (``EXCLUDE CURRENT ROW / TIES / GROUP``), the rank
family, lag/lead, first/last/nth_value, and aggregates over frames.

Input rows arrive as full scope vectors (one tuple per FROM relation) so the
window expressions see exactly what WHERE saw.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from .. import ast as A
from ..errors import ExecutionError, PlanError
from ..expr import EvalContext
from ..functions import make_aggregate
from ..values import row_sort_key, sort_key


class WindowCallPlan:
    """One windowed function call, fully compiled."""

    __slots__ = ("func_name", "args", "star", "partition_by", "order_by",
                 "order_desc", "frame", "separator")

    def __init__(self, func_name: str, args: Sequence[Callable], star: bool,
                 partition_by: Sequence[Callable], order_by: Sequence[Callable],
                 order_desc: Sequence[bool], frame: Optional[A.FrameSpec],
                 separator: str = ""):
        self.func_name = func_name.lower()
        self.args = list(args)
        self.star = star
        self.partition_by = list(partition_by)
        self.order_by = list(order_by)
        self.order_desc = list(order_desc)
        self.frame = frame
        self.separator = separator


def compute_window_columns(rt, input_rows: list[tuple], calls: list[WindowCallPlan],
                           outer, slots: list) -> list[tuple]:
    """Return one tuple of window values per input row (input order kept)."""
    columns = [_compute_one_call(rt, input_rows, call, outer, slots)
               for call in calls]
    return [tuple(col[i] for col in columns) for i in range(len(input_rows))]


def _compute_one_call(rt, input_rows, call: WindowCallPlan, outer, slots):
    n = len(input_rows)
    results: list = [None] * n
    contexts = [EvalContext(rt, rows, parent=outer, slots=slots)
                for rows in input_rows]
    part_keys = [tuple(sort_key(e(ctx)) for e in call.partition_by)
                 for ctx in contexts]
    order_keys = [row_sort_key([e(ctx) for e in call.order_by], call.order_desc)
                  for ctx in contexts]
    arg_rows = [[a(ctx) for a in call.args] for ctx in contexts]

    partitions: dict[tuple, list[int]] = {}
    for i in range(n):
        partitions.setdefault(part_keys[i], []).append(i)

    for indices in partitions.values():
        ordered = sorted(indices, key=lambda i: order_keys[i])
        _eval_partition(call, ordered, order_keys, arg_rows, contexts, results)
    return results


def _peer_groups(ordered: list[int], order_keys) -> list[int]:
    """For each position, the index of the first row of its peer group."""
    starts = [0] * len(ordered)
    for p in range(1, len(ordered)):
        if order_keys[ordered[p]] == order_keys[ordered[p - 1]]:
            starts[p] = starts[p - 1]
        else:
            starts[p] = p
    return starts


def _peer_group_ends(starts: list[int]) -> list[int]:
    n = len(starts)
    ends = [0] * n
    p = n - 1
    while p >= 0:
        start = starts[p]
        for q in range(start, p + 1):
            ends[q] = p
        p = start - 1
    return ends


def _eval_partition(call: WindowCallPlan, ordered, order_keys, arg_rows,
                    contexts, results) -> None:
    name = call.func_name
    size = len(ordered)
    starts = _peer_groups(ordered, order_keys)
    if name == "row_number":
        for p, i in enumerate(ordered):
            results[i] = p + 1
        return
    if name == "rank":
        for p, i in enumerate(ordered):
            results[i] = starts[p] + 1
        return
    if name == "dense_rank":
        dense = 0
        for p, i in enumerate(ordered):
            if starts[p] == p:
                dense += 1
            results[i] = dense
        return
    if name == "ntile":
        for p, i in enumerate(ordered):
            buckets = arg_rows[i][0]
            if buckets is None or buckets <= 0:
                raise ExecutionError("ntile argument must be positive")
            results[i] = p * buckets // size + 1
        return
    if name in ("lag", "lead"):
        sign = -1 if name == "lag" else 1
        for p, i in enumerate(ordered):
            args = arg_rows[i]
            offset = args[1] if len(args) > 1 else 1
            default = args[2] if len(args) > 2 else None
            target = p + sign * (offset if offset is not None else 1)
            if 0 <= target < size:
                results[i] = arg_rows[ordered[target]][0]
            else:
                results[i] = default
        return
    # Frame-based functions: first/last/nth_value and aggregates.
    ends = _peer_group_ends(starts)
    for p, i in enumerate(ordered):
        frame = _frame_indices(call, p, size, starts, ends, ordered,
                               order_keys, contexts)
        if name == "first_value":
            results[i] = arg_rows[ordered[frame[0]]][0] if frame else None
        elif name == "last_value":
            results[i] = arg_rows[ordered[frame[-1]]][0] if frame else None
        elif name == "nth_value":
            nth = arg_rows[i][1]
            if frame and nth is not None and 1 <= nth <= len(frame):
                results[i] = arg_rows[ordered[frame[nth - 1]]][0]
            else:
                results[i] = None
        else:
            agg = make_aggregate(name, star=call.star, separator=call.separator)
            state = agg.create()
            for q in frame:
                value = True if call.star else arg_rows[ordered[q]][0]
                state = agg.step(state, value)
            results[i] = agg.final(state)


def _frame_indices(call: WindowCallPlan, p: int, size: int, starts, ends,
                   ordered, order_keys, contexts) -> list[int]:
    """Positions (within the ordered partition) of row *p*'s frame."""
    frame = call.frame
    if frame is None:
        if call.order_by:
            lo, hi = 0, ends[p]  # RANGE UNBOUNDED PRECEDING .. CURRENT ROW
        else:
            lo, hi = 0, size - 1
    elif frame.mode == "rows":
        lo = _rows_bound(frame.start, p, size, contexts, ordered, is_start=True)
        hi = _rows_bound(frame.end, p, size, contexts, ordered, is_start=False)
    elif frame.mode == "range":
        lo, hi = _range_bounds(frame, p, size, starts, ends, ordered,
                               order_keys, call, contexts)
    elif frame.mode == "groups":
        lo, hi = _groups_bounds(frame, p, size, starts, ends, contexts, ordered)
    else:
        raise PlanError(f"unsupported frame mode {frame.mode!r}")
    lo = max(lo, 0)
    hi = min(hi, size - 1)
    if lo > hi:
        return []
    indices = list(range(lo, hi + 1))
    if frame is not None and frame.exclusion:
        if frame.exclusion == "current row":
            indices = [q for q in indices if q != p]
        elif frame.exclusion == "group":
            indices = [q for q in indices if not starts[p] <= q <= ends[p]]
        elif frame.exclusion == "ties":
            indices = [q for q in indices
                       if q == p or not starts[p] <= q <= ends[p]]
    return indices


def _bound_offset(bound: A.FrameBound, contexts, ordered, p) -> int:
    assert bound.offset is not None
    value = bound.offset(contexts[ordered[p]])  # type: ignore[operator]
    if value is None or (isinstance(value, bool)) or not isinstance(value, int):
        raise ExecutionError("frame offset must be a non-null integer")
    if value < 0:
        raise ExecutionError("frame offset must not be negative")
    return value


def _rows_bound(bound: A.FrameBound, p: int, size: int, contexts, ordered,
                is_start: bool) -> int:
    kind = bound.kind
    if kind == "unbounded_preceding":
        return 0
    if kind == "unbounded_following":
        return size - 1
    if kind == "current":
        return p
    offset = _bound_offset(bound, contexts, ordered, p)
    return p - offset if kind == "preceding" else p + offset


def _range_bounds(frame, p, size, starts, ends, ordered, order_keys, call,
                  contexts):
    def simple(kind: str, is_start: bool) -> Optional[int]:
        if kind == "unbounded_preceding":
            return 0
        if kind == "unbounded_following":
            return size - 1
        if kind == "current":
            return starts[p] if is_start else ends[p]
        return None

    lo = simple(frame.start.kind, True)
    hi = simple(frame.end.kind, False)
    if lo is not None and hi is not None:
        return lo, hi
    # Offset RANGE frames need a single numeric ORDER BY key.
    if len(call.order_by) != 1:
        raise PlanError("RANGE with offset requires exactly one ORDER BY key")
    descending = call.order_desc[0]
    values = [call.order_by[0](contexts[i]) for i in ordered]
    current = values[p]
    if current is None:
        # NULL ordering group: frame is the peer group.
        return starts[p], ends[p]

    def in_bound(value, bound: A.FrameBound, is_start: bool) -> bool:
        if value is None:
            return False
        offset = _bound_offset(bound, contexts, ordered, p)
        delta = -offset if bound.kind == "preceding" else offset
        if descending:
            delta = -delta
        limit = current + delta
        return value >= limit if is_start else value <= limit

    if lo is None:
        lo = next((q for q in range(size)
                   if in_bound(values[q], frame.start, True)), size)
    if hi is None:
        hi = next((q for q in range(size - 1, -1, -1)
                   if in_bound(values[q], frame.end, False)), -1)
    return lo, hi


def _groups_bounds(frame, p, size, starts, ends, contexts, ordered):
    def resolve(bound: A.FrameBound, is_start: bool) -> int:
        kind = bound.kind
        if kind == "unbounded_preceding":
            return 0
        if kind == "unbounded_following":
            return size - 1
        if kind == "current":
            return starts[p] if is_start else ends[p]
        offset = _bound_offset(bound, contexts, ordered, p)
        position = starts[p] if is_start else ends[p]
        step = -1 if kind == "preceding" else 1
        for _ in range(offset):
            if kind == "preceding":
                position = starts[position] - 1 if is_start else position
                position = position if is_start else starts[ends[p]] - 1
            # GROUPS offsets are rarely used; walk group by group.
        # Fallback simple implementation: walk groups.
        position = starts[p] if is_start else ends[p]
        remaining = offset
        while remaining > 0:
            if step < 0:
                nxt = starts[position] - 1
                if nxt < 0:
                    return 0 if is_start else -1
                position = starts[nxt] if is_start else nxt
            else:
                nxt = ends[position] + 1
                if nxt >= size:
                    return size if is_start else size - 1
                position = nxt if is_start else ends[nxt]
            remaining -= 1
        return position

    return resolve(frame.start, True), resolve(frame.end, False)
