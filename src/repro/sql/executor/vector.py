"""Vectorized batch-at-a-time execution of the scan→filter→project→aggregate
pipeline.

The paper's thesis is that set-oriented execution beats row-at-a-time
dispatch; PR 2 proved it for compiled UDFs.  This module applies the same
idea to plain SELECT blocks over a single base table: instead of pulling
one dict-row at a time through the Volcano ``next()`` chain (one
``EvalContext`` allocation and a closure-tree walk per row), the engine
pulls **column batches** of ~:data:`BATCH_SIZE` rows straight from
``HeapTable.visible_rows`` and evaluates batch-compiled expressions in
tight loops over the columns.

Pipeline stages (one instance per execution, composed by
:class:`BatchAdapterState`):

* :class:`VectorScan` — slices the table's visible-row snapshot into
  :class:`Batch` objects.  The snapshot is (re)read at *open* time, never
  at plan or instantiation time, so same-transaction DML is always seen
  (the stale-batch read-your-own-writes bug class).  Cancellation is
  polled once per batch.
* :class:`VectorFilter` — evaluates the batch-compiled WHERE predicate
  over the whole batch and attaches a *selection vector* (row indices
  where it is TRUE) instead of copying the columns.
* :class:`VectorProject` — either a C-speed ``itemgetter`` row projection
  (when every select item is a bare column) or per-item batch evaluators.
* :class:`VectorAggregate` — grouped/ungrouped aggregation whose
  accumulators fold each column **in the exact order SeqScan delivers**
  with the scalar aggregates' own step semantics (see
  :func:`_accumulate`), so row and batch engines are numerically
  identical — including the order-dependent ``avg()`` over
  ``{7, -2^63, 2^63}`` bigints that PR 5's fuzzer pinned.

:class:`BatchAdapterState` is the boundary operator: it extends
:class:`~.select_core.SelectCoreState`, drains the batch pipeline and
emits ordinary row tuples, so parents (Sort, Limit, joins, set ops,
recursion) keep consuming rows unchanged.

**Row fallback.**  The batch compiler only supports pure expressions
(no subqueries, UDF calls, or volatile builtins), so batch evaluation has
no observable side effects.  That makes a very simple error story sound:
if *any* engine error is raised while evaluating a batch, the adapter
poisons itself and transparently re-runs the statement through the
inherited row-at-a-time machinery, skipping the rows it already emitted
(earlier batches were fully evaluated, and pure expressions over the same
MVCC snapshot reproduce them exactly).  The row engine then reproduces the
error — or the absence of one — with exact row-at-a-time ordering and
laziness, e.g. an error in row 50 under ``LIMIT 3`` is never raised.
Cancellation (:class:`~repro.sql.errors.QueryCanceledError`) always
propagates and never triggers the fallback.

Thread-safety: all state here is per-execution; statements are serialized
by ``Database._exec_lock``, and the only module-level value,
:data:`BATCH_SIZE`, is read-only at run time (tests monkeypatch it to
sweep batch-boundary edge cases).
"""

from __future__ import annotations

from operator import itemgetter
from typing import Callable, Optional, Sequence

from .. import ast as A
from ..errors import QueryCanceledError, SqlError, TypeError_
from ..expr import (EvalContext, Scope, _ARITH_FNS, _INT_FAST_FNS, _as_bool,
                    _concat, _like_to_regex)
from ..functions import (SCALAR_BUILTINS, VOLATILE_FUNCTIONS, AvgAgg,
                         CountAgg, SumAgg, is_aggregate_name, make_aggregate)
from ..profiler import VECTOR_BATCHES, VECTOR_ROWS
from ..types import cast_value
from ..values import (Row, sql_and, sql_eq, sql_ge, sql_gt, sql_le, sql_lt,
                      sql_ne, sql_not, sql_or)
from ..values import hashable_row as _hashable_row
from ..values import hashable_value as _hashable_value
from .select_core import AggStagePlan, SelectCorePlan, SelectCoreState

#: Rows per column batch.  Module-level (not a GUC) so tests can sweep it —
#: the differential suite runs batch sizes 1 and rows±1 to flush
#: off-by-one drain bugs that would hide at the default size.
BATCH_SIZE = 1024

import re


class Batch:
    """A batch of rows with lazily transposed parallel column vectors.

    ``rows`` is a slice of the table's visible-row snapshot (tuples).
    ``cols`` transposes on first touch — projections that only need
    ``itemgetter`` row access never pay for it.  ``sel`` is the selection
    vector the filter stage attaches: ``None`` means "all rows", otherwise
    a list of row indices that survived the predicate.
    """

    __slots__ = ("rows", "n", "rt", "sel", "_cols")

    def __init__(self, rows: Sequence[tuple], rt):
        self.rows = rows
        self.n = len(rows)
        self.rt = rt
        self.sel: Optional[list[int]] = None
        self._cols: Optional[list[tuple]] = None

    @property
    def cols(self) -> list[tuple]:
        cols = self._cols
        if cols is None:
            cols = self._cols = list(zip(*self.rows))
        return cols

    def selected(self) -> int:
        return self.n if self.sel is None else len(self.sel)

    def selected_rows(self) -> Sequence[tuple]:
        if self.sel is None:
            return self.rows
        rows = self.rows
        return [rows[i] for i in self.sel]


#: A batch-compiled expression: ``fn(batch, sel) -> column`` where *sel* is
#: a selection vector (None = the whole batch) and the result column has
#: one element per selected row.
VectorFn = Callable[[Batch, Optional[list[int]]], list]


def _out_n(batch: Batch, sel: Optional[list[int]]) -> int:
    return batch.n if sel is None else len(sel)


class VectorExprCompiler:
    """Compiles a *supported subset* of the expression AST into batch
    evaluators mirroring :class:`~repro.sql.expr.ExprCompiler` node for
    node (same helpers — ``sql_*``, ``_ARITH_FNS``, ``cast_value`` — same
    three-valued logic, same per-element short-circuit via selection
    vectors).  ``compile`` returns ``None`` for anything unsupported
    (subqueries, UDF calls, volatile builtins, correlated or composite
    column references, window/aggregate calls); the planner then keeps the
    row path, which is trivially parity-safe.
    """

    def __init__(self, scope: Scope):
        self.scope = scope

    def compile(self, expr: A.Expr) -> Optional[VectorFn]:
        method = getattr(self, "_compile_" + type(expr).__name__, None)
        if method is None:
            return None
        return method(expr)

    def compile_many(self, exprs: Sequence[A.Expr]) -> Optional[list[VectorFn]]:
        out = []
        for expr in exprs:
            fn = self.compile(expr)
            if fn is None:
                return None
            out.append(fn)
        return out

    # -- leaves ---------------------------------------------------------

    def _compile_Literal(self, expr: A.Literal) -> VectorFn:
        value = expr.value
        return lambda batch, sel: [value] * _out_n(batch, sel)

    def _compile_Param(self, expr: A.Param) -> Optional[VectorFn]:
        index = expr.index - 1
        if index < 0:
            return None

        def run(batch: Batch, sel):
            params = batch.rt.params
            if index >= len(params):
                # Same error as the scalar compiler; surfacing it here
                # triggers the row fallback, which re-raises it.
                from ..errors import ExecutionError
                raise ExecutionError(
                    f"no value supplied for parameter ${index + 1}")
            return [params[index]] * _out_n(batch, sel)

        return run

    def _compile_ColumnRef(self, expr: A.ColumnRef) -> Optional[VectorFn]:
        try:
            level, rel_index, col_index, fields = self.scope.resolve(expr.parts)
        except SqlError:
            return None
        if level != 0 or rel_index != 0 or fields:
            return None

        def run(batch: Batch, sel):
            col = batch.cols[col_index]
            if sel is None:
                return col
            return [col[i] for i in sel]

        run.col_index = col_index  # marks a bare column (fast projection)
        return run

    # -- operators ------------------------------------------------------

    _COMPARE_FNS = {"=": sql_eq, "<>": sql_ne, "<": sql_lt, "<=": sql_le,
                    ">": sql_gt, ">=": sql_ge}

    def _compile_BinaryOp(self, expr: A.BinaryOp) -> Optional[VectorFn]:
        op = expr.op
        left = self.compile(expr.left)
        if left is None:
            return None
        right = self.compile(expr.right)
        if right is None:
            return None
        if op == "and":
            def run_and(batch: Batch, sel):
                lcol = left(batch, sel)
                base = sel if sel is not None else range(batch.n)
                # Per-element short circuit: rows whose lhs is already
                # False never evaluate the rhs (matches run_and's
                # ``if lhs is False: return False``).
                sub = [i for i, v in zip(base, lcol) if v is not False]
                if len(sub) == len(lcol):
                    rcol = right(batch, sel)
                    return [sql_and(_as_bool(a), _as_bool(b))
                            for a, b in zip(lcol, rcol)]
                rit = iter(right(batch, sub))
                out = []
                for v in lcol:
                    b = _as_bool(v)
                    out.append(False if b is False
                               else sql_and(b, _as_bool(next(rit))))
                return out

            return run_and
        if op == "or":
            def run_or(batch: Batch, sel):
                lcol = left(batch, sel)
                base = sel if sel is not None else range(batch.n)
                sub = [i for i, v in zip(base, lcol) if v is not True]
                if len(sub) == len(lcol):
                    rcol = right(batch, sel)
                    return [sql_or(_as_bool(a), _as_bool(b))
                            for a, b in zip(lcol, rcol)]
                rit = iter(right(batch, sub))
                out = []
                for v in lcol:
                    b = _as_bool(v)
                    out.append(True if b is True
                               else sql_or(b, _as_bool(next(rit))))
                return out

            return run_or
        if op in self._COMPARE_FNS:
            cmp_fn = self._COMPARE_FNS[op]
            # Constant-int specialization: ``col <op> 42`` inlines the
            # native comparison for exact-int elements (identical to
            # compare()'s ``type() is int`` fast path — bools and mixed
            # types take cmp_fn, preserving error/NULL/NaN semantics) and
            # skips materializing + zipping the constant column.
            if isinstance(expr.right, A.Literal) \
                    and type(expr.right.value) is int:
                c = expr.right.value
                if op == "=":
                    return lambda batch, sel: [
                        (a == c) if type(a) is int else cmp_fn(a, c)
                        for a in left(batch, sel)]
                if op == "<>":
                    return lambda batch, sel: [
                        (a != c) if type(a) is int else cmp_fn(a, c)
                        for a in left(batch, sel)]
                if op == "<":
                    return lambda batch, sel: [
                        (a < c) if type(a) is int else cmp_fn(a, c)
                        for a in left(batch, sel)]
                if op == "<=":
                    return lambda batch, sel: [
                        (a <= c) if type(a) is int else cmp_fn(a, c)
                        for a in left(batch, sel)]
                if op == ">":
                    return lambda batch, sel: [
                        (a > c) if type(a) is int else cmp_fn(a, c)
                        for a in left(batch, sel)]
                return lambda batch, sel: [
                    (a >= c) if type(a) is int else cmp_fn(a, c)
                    for a in left(batch, sel)]

            def run_cmp(batch: Batch, sel):
                return [cmp_fn(a, b)
                        for a, b in zip(left(batch, sel), right(batch, sel))]

            return run_cmp
        if op == "||":
            def run_concat(batch: Batch, sel):
                return [_concat(a, b)
                        for a, b in zip(left(batch, sel), right(batch, sel))]

            return run_concat
        arith = _ARITH_FNS.get(op)
        if arith is None:
            return None
        fast = _INT_FAST_FNS.get(op)
        # Constant-int specialization, same shape as the comparisons: the
        # exact-int fast path inlines to native syntax, NULLs stay NULL,
        # everything else (floats, type errors) routes through the generic
        # helper exactly as run_arith would.
        if fast is not None and isinstance(expr.right, A.Literal) \
                and type(expr.right.value) is int and expr.right.value != 0:
            c = expr.right.value
            if op == "+":
                return lambda batch, sel: [
                    (a + c) if type(a) is int else
                    (None if a is None else arith(a, c))
                    for a in left(batch, sel)]
            if op == "-":
                return lambda batch, sel: [
                    (a - c) if type(a) is int else
                    (None if a is None else arith(a, c))
                    for a in left(batch, sel)]
            if op == "*":
                return lambda batch, sel: [
                    (a * c) if type(a) is int else
                    (None if a is None else arith(a, c))
                    for a in left(batch, sel)]
            if op == "%" and c > 0:
                # _int_mod with a positive constant divisor: remainder
                # keeps the dividend's sign (PostgreSQL), inlined.
                return lambda batch, sel: [
                    ((a % c) if a >= 0 else -((-a) % c))
                    if type(a) is int else
                    (None if a is None else arith(a, c))
                    for a in left(batch, sel)]
            if op == "/" and c > 0:
                # _int_div truncates toward zero, inlined for positive
                # constant divisors.
                return lambda batch, sel: [
                    ((a // c) if a >= 0 else -((-a) // c))
                    if type(a) is int else
                    (None if a is None else arith(a, c))
                    for a in left(batch, sel)]
            ifast = fast

            def run_arith_const(batch: Batch, sel):
                return [ifast(a, c) if type(a) is int else
                        (None if a is None else arith(a, c))
                        for a in left(batch, sel)]

            return run_arith_const

        def run_arith(batch: Batch, sel):
            out = []
            for a, b in zip(left(batch, sel), right(batch, sel)):
                if a is None or b is None:
                    out.append(None)
                elif fast is not None and type(a) is int and type(b) is int:
                    out.append(fast(a, b))
                else:
                    out.append(arith(a, b))
            return out

        return run_arith

    def _compile_UnaryOp(self, expr: A.UnaryOp) -> Optional[VectorFn]:
        operand = self.compile(expr.operand)
        if operand is None:
            return None
        if expr.op == "not":
            return lambda batch, sel: [sql_not(_as_bool(v))
                                       for v in operand(batch, sel)]
        if expr.op == "-":
            def run_neg(batch: Batch, sel):
                out = []
                for v in operand(batch, sel):
                    if v is None:
                        out.append(None)
                    elif isinstance(v, bool) or not isinstance(v, (int, float)):
                        raise TypeError_("unary minus expects a number")
                    else:
                        out.append(-v)
                return out

            return run_neg
        if expr.op == "+":
            return operand
        return None

    def _compile_IsNull(self, expr: A.IsNull) -> Optional[VectorFn]:
        operand = self.compile(expr.operand)
        if operand is None:
            return None
        if expr.negated:
            return lambda batch, sel: [v is not None
                                       for v in operand(batch, sel)]
        return lambda batch, sel: [v is None for v in operand(batch, sel)]

    def _compile_IsBool(self, expr: A.IsBool) -> Optional[VectorFn]:
        operand = self.compile(expr.operand)
        if operand is None:
            return None
        wanted = expr.value
        negated = expr.negated

        def run(batch: Batch, sel):
            out = []
            for v in operand(batch, sel):
                result = _as_bool(v) is wanted
                out.append((not result) if negated else result)
            return out

        return run

    def _compile_Between(self, expr: A.Between) -> Optional[VectorFn]:
        operand = self.compile(expr.operand)
        low = self.compile(expr.low)
        high = self.compile(expr.high)
        if operand is None or low is None or high is None:
            return None
        negated = expr.negated

        def run(batch: Batch, sel):
            out = []
            for v, lo, hi in zip(operand(batch, sel), low(batch, sel),
                                 high(batch, sel)):
                result = sql_and(sql_ge(v, lo), sql_le(v, hi))
                out.append(sql_not(result) if negated else result)
            return out

        return run

    def _compile_InList(self, expr: A.InList) -> Optional[VectorFn]:
        operand = self.compile(expr.operand)
        if operand is None:
            return None
        item_fns = self.compile_many(expr.items)
        if item_fns is None:
            return None
        negated = expr.negated

        def run(batch: Batch, sel):
            opcol = operand(batch, sel)
            n = len(opcol)
            out: list = [False] * n
            # Items are evaluated lazily per remaining row, exactly like
            # the scalar loop that breaks at the first TRUE equality.
            pend_pos = list(range(n))
            pend_glob = (list(sel) if sel is not None else list(range(batch.n)))
            for item_fn in item_fns:
                if not pend_pos:
                    break
                icol = item_fn(batch, pend_glob)
                next_pos: list[int] = []
                next_glob: list[int] = []
                for p, g, iv in zip(pend_pos, pend_glob, icol):
                    part = sql_eq(opcol[p], iv)
                    if part is True:
                        out[p] = True
                    else:
                        if part is None:
                            out[p] = None
                        next_pos.append(p)
                        next_glob.append(g)
                pend_pos, pend_glob = next_pos, next_glob
            if negated:
                return [sql_not(v) for v in out]
            return out

        return run

    def _compile_Like(self, expr: A.Like) -> Optional[VectorFn]:
        operand = self.compile(expr.operand)
        pattern = self.compile(expr.pattern)
        if operand is None or pattern is None:
            return None
        negated = expr.negated
        flags = re.IGNORECASE if expr.case_insensitive else 0
        cache: dict[str, re.Pattern] = {}

        def run(batch: Batch, sel):
            out = []
            for value, pat in zip(operand(batch, sel), pattern(batch, sel)):
                if value is None or pat is None:
                    out.append(None)
                    continue
                regex = cache.get(pat)
                if regex is None:
                    regex = re.compile(_like_to_regex(pat), flags)
                    if len(cache) < 64:
                        cache[pat] = regex
                result = regex.fullmatch(value) is not None
                out.append((not result) if negated else result)
            return out

        return run

    def _compile_CaseExpr(self, expr: A.CaseExpr) -> Optional[VectorFn]:
        whens = []
        for cond, result in expr.whens:
            cond_fn = self.compile(cond)
            result_fn = self.compile(result)
            if cond_fn is None or result_fn is None:
                return None
            whens.append((cond_fn, result_fn))
        else_fn = None
        if expr.else_result is not None:
            else_fn = self.compile(expr.else_result)
            if else_fn is None:
                return None
        operand_fn = None
        if expr.operand is not None:
            operand_fn = self.compile(expr.operand)
            if operand_fn is None:
                return None

        def run(batch: Batch, sel):
            n = _out_n(batch, sel)
            out: list = [None] * n
            pend_pos = list(range(n))
            pend_glob = (list(sel) if sel is not None else list(range(batch.n)))
            opvals = operand_fn(batch, sel) if operand_fn is not None else None
            # WHEN arms evaluate only over still-undecided rows (the
            # scalar CASE's per-row first-match laziness).
            for cond_fn, result_fn in whens:
                if not pend_pos:
                    break
                ccol = cond_fn(batch, pend_glob)
                hit_pos: list[int] = []
                hit_glob: list[int] = []
                rest_pos: list[int] = []
                rest_glob: list[int] = []
                for p, g, cv in zip(pend_pos, pend_glob, ccol):
                    if opvals is None:
                        hit = _as_bool(cv) is True
                    else:
                        hit = sql_eq(opvals[p], cv) is True
                    if hit:
                        hit_pos.append(p)
                        hit_glob.append(g)
                    else:
                        rest_pos.append(p)
                        rest_glob.append(g)
                if hit_pos:
                    for p, rv in zip(hit_pos, result_fn(batch, hit_glob)):
                        out[p] = rv
                pend_pos, pend_glob = rest_pos, rest_glob
            if else_fn is not None and pend_pos:
                for p, ev in zip(pend_pos, else_fn(batch, pend_glob)):
                    out[p] = ev
            return out

        return run

    def _compile_Cast(self, expr: A.Cast) -> Optional[VectorFn]:
        operand = self.compile(expr.operand)
        if operand is None:
            return None
        type_name = expr.type_name

        def run(batch: Batch, sel):
            composite = batch.rt.catalog.get_type(type_name)
            return [cast_value(v, type_name, composite)
                    for v in operand(batch, sel)]

        return run

    def _compile_RowExpr(self, expr: A.RowExpr) -> Optional[VectorFn]:
        if not expr.items:
            return None
        item_fns = self.compile_many(expr.items)
        if item_fns is None:
            return None
        type_name = expr.type_name

        def run(batch: Batch, sel):
            cols = [fn(batch, sel) for fn in item_fns]
            composite = (batch.rt.catalog.get_type(type_name)
                         if type_name is not None else None)
            out = []
            for values in zip(*cols):
                values = list(values)
                if composite is not None:
                    out.append(composite.make_row(values))
                else:
                    out.append(Row(values, type_name=type_name))
            return out

        return run

    def _compile_ArrayExpr(self, expr: A.ArrayExpr) -> Optional[VectorFn]:
        item_fns = self.compile_many(expr.items)
        if item_fns is None:
            return None
        if not item_fns:
            return lambda batch, sel: [[] for _ in range(_out_n(batch, sel))]

        def run(batch: Batch, sel):
            cols = [fn(batch, sel) for fn in item_fns]
            return [list(values) for values in zip(*cols)]

        return run

    def _compile_ArrayIndex(self, expr: A.ArrayIndex) -> Optional[VectorFn]:
        operand = self.compile(expr.operand)
        index = self.compile(expr.index)
        if operand is None or index is None:
            return None

        def run(batch: Batch, sel):
            out = []
            for arr, i in zip(operand(batch, sel), index(batch, sel)):
                if arr is None or i is None:
                    out.append(None)
                    continue
                if not isinstance(arr, list):
                    raise TypeError_("cannot subscript a non-array value")
                if not isinstance(i, int) or isinstance(i, bool):
                    raise TypeError_("array subscript must be an integer")
                out.append(arr[i - 1] if 1 <= i <= len(arr) else None)
            return out

        return run

    def _compile_FieldAccess(self, expr: A.FieldAccess) -> Optional[VectorFn]:
        operand = self.compile(expr.operand)
        if operand is None:
            return None
        name = expr.fieldname

        def run(batch: Batch, sel):
            out = []
            for value in operand(batch, sel):
                if value is None:
                    out.append(None)
                    continue
                if not isinstance(value, Row):
                    raise TypeError_(f"cannot access field {name!r} of "
                                     f"{type(value).__name__}")
                out.append(value.field(name))
            return out

        return run

    # -- function calls -------------------------------------------------

    def _compile_FuncCall(self, expr: A.FuncCall) -> Optional[VectorFn]:
        name = expr.name.lower()
        if expr.window is not None or is_aggregate_name(name):
            return None
        if name == "coalesce":
            item_fns = self.compile_many(expr.args)
            if item_fns is None:
                return None

            def run_coalesce(batch: Batch, sel):
                n = _out_n(batch, sel)
                out: list = [None] * n
                pend_pos = list(range(n))
                pend_glob = (list(sel) if sel is not None
                             else list(range(batch.n)))
                for fn in item_fns:
                    if not pend_pos:
                        break
                    col = fn(batch, pend_glob)
                    next_pos: list[int] = []
                    next_glob: list[int] = []
                    for p, g, v in zip(pend_pos, pend_glob, col):
                        if v is not None:
                            out[p] = v
                        else:
                            next_pos.append(p)
                            next_glob.append(g)
                    pend_pos, pend_glob = next_pos, next_glob
                return out

            return run_coalesce
        builtin = SCALAR_BUILTINS.get(name)
        if builtin is None or name in VOLATILE_FUNCTIONS:
            # UDFs / compiled functions / volatile builtins keep the row
            # path: the fallback contract requires side-effect-free batch
            # evaluation.
            return None
        arg_fns = self.compile_many(expr.args)
        if arg_fns is None:
            return None

        def run(batch: Batch, sel):
            rt = batch.rt
            if not arg_fns:
                return [builtin(rt) for _ in range(_out_n(batch, sel))]
            cols = [fn(batch, sel) for fn in arg_fns]
            return [builtin(rt, *vals) for vals in zip(*cols)]

        return run


# ---------------------------------------------------------------------------
# Pipeline stages
# ---------------------------------------------------------------------------


class VectorScan:
    """Slices a table's visible-row snapshot into batches.

    The snapshot is read at :meth:`open` — the same late binding as
    ``SeqScanState.open`` — so a rescan after same-transaction DML sees
    the new row list, and a batch can never outlive the ``visible_rows``
    cache entry it was built from.  Cancellation is polled once per batch
    (the batch bounds the reaction latency); the profiler counts batches
    and the rows they carried.
    """

    __slots__ = ("rt", "table", "rows", "pos", "size")

    def __init__(self, rt, table):
        self.rt = rt
        self.table = table
        self.rows: Sequence[tuple] = ()
        self.pos = 0
        self.size = BATCH_SIZE

    def open(self) -> None:
        self.rows = self.table.rows
        self.pos = 0
        self.size = max(1, BATCH_SIZE)

    def next_batch(self) -> Optional[Batch]:
        pos = self.pos
        rows = self.rows
        if pos >= len(rows):
            return None
        self.rt.cancel.check()
        chunk = rows[pos:pos + self.size]
        self.pos = pos + len(chunk)
        profiler = self.rt.db.profiler
        profiler.bump(VECTOR_BATCHES)
        profiler.bump(VECTOR_ROWS, len(chunk))
        return Batch(chunk, self.rt)


class VectorFilter:
    """Attaches a selection vector for the batch-compiled WHERE predicate."""

    __slots__ = ("fn",)

    def __init__(self, fn: VectorFn):
        self.fn = fn

    def apply(self, batch: Batch) -> Batch:
        pred = self.fn(batch, None)
        sel = [i for i, v in enumerate(pred) if v is True]
        batch.sel = None if len(sel) == batch.n else sel
        return batch


class VectorProject:
    """Projects a filtered batch into output row tuples.

    When every select item is a bare column reference the projection is a
    single C-speed ``itemgetter`` map over the surviving row tuples (the
    batch is never transposed); otherwise each item's batch evaluator
    produces an output column and the columns are zipped back into rows.
    """

    __slots__ = ("fns", "fast")

    def __init__(self, fns: list[VectorFn]):
        self.fns = fns
        indices = [getattr(fn, "col_index", None) for fn in fns]
        self.fast = None
        if all(i is not None for i in indices):
            if len(indices) == 1:
                getter = itemgetter(indices[0])
                self.fast = lambda rows: [(v,) for v in map(getter, rows)]
            else:
                getter = itemgetter(*indices)
                self.fast = lambda rows: list(map(getter, rows))

    def rows(self, batch: Batch) -> list[tuple]:
        if self.fast is not None:
            return self.fast(batch.selected_rows())
        cols = [fn(batch, batch.sel) for fn in self.fns]
        return list(zip(*cols))


def _accumulate(agg, state, col):
    """Fold *col* into *state* in column order.

    ``sum``/``avg``/``count`` get inlined loops that are statement-for-
    statement the scalar ``step`` bodies (same None skip, same bool/type
    rejection, same exact-bigint accumulation seeded by ``AvgAgg.create``'s
    ``(0, 0)`` — the PR 5 order-dependent-avg fix); every other aggregate
    calls the scalar ``step`` itself.  Either way values are accumulated
    in the order SeqScan delivers them, so row and batch engines agree
    bit for bit.
    """
    if type(agg) is SumAgg:
        for v in col:
            if v is None:
                continue
            if isinstance(v, bool) or not isinstance(v, (int, float)):
                raise TypeError_("sum expects numbers")
            state = v if state is None else state + v
        return state
    if type(agg) is AvgAgg:
        count, total = state
        for v in col:
            if v is None:
                continue
            if isinstance(v, bool) or not isinstance(v, (int, float)):
                raise TypeError_("avg expects numbers")
            count += 1
            total = total + v
        return (count, total)
    if type(agg) is CountAgg and not agg.star:
        for v in col:
            if v is not None:
                state += 1
        return state
    step = agg.step
    for v in col:
        state = step(state, v)
    return state


class VectorAggregate:
    """Grouped/ungrouped aggregation over batches.

    Reuses the scalar aggregate state machines (``make_aggregate``) for
    creation and finalization; accumulation goes through
    :func:`_accumulate`.  The ungrouped case folds whole argument columns
    per aggregate; the grouped case walks the batch row-major (exactly the
    scalar loop, minus the per-row ``EvalContext`` and closure dispatch).
    """

    __slots__ = ("stage", "key_fns", "arg_fns", "aggs", "groups",
                 "group_values", "distinct_seen", "states", "dsets")

    def __init__(self, stage: AggStagePlan, key_fns: list[VectorFn],
                 arg_fns: list[Optional[VectorFn]]):
        self.stage = stage
        self.key_fns = key_fns
        self.arg_fns = arg_fns
        self.aggs = [make_aggregate(c.name, c.star, c.separator)
                     for c in stage.agg_calls]
        self.groups: dict[tuple, list] = {}
        self.group_values: dict[tuple, tuple] = {}
        self.distinct_seen: dict[tuple, list[set]] = {}
        # Ungrouped fast path: one state vector, per-call distinct sets.
        self.states = ([agg.create() for agg in self.aggs]
                       if not stage.group_keys else None)
        self.dsets = [set() if c.distinct and not c.star else None
                      for c in stage.agg_calls]

    def add_batch(self, batch: Batch) -> None:
        stage = self.stage
        calls = stage.agg_calls
        sel = batch.sel
        m = batch.selected()
        if m == 0:
            return
        if self.states is not None:
            for index, (call, agg) in enumerate(zip(calls, self.aggs)):
                if call.star:
                    # count(*): CountAgg's ``state + 1`` per row, m times.
                    self.states[index] += m
                    continue
                col = self.arg_fns[index](batch, sel)
                dset = self.dsets[index]
                if dset is None:
                    self.states[index] = _accumulate(agg, self.states[index],
                                                     col)
                    continue
                state = self.states[index]
                step = agg.step
                for v in col:
                    marker = _hashable_value(v)
                    if marker in dset:
                        continue
                    dset.add(marker)
                    state = step(state, v)
                self.states[index] = state
            return
        key_cols = [fn(batch, sel) for fn in self.key_fns]
        arg_cols = [None if call.star else fn(batch, sel)
                    for call, fn in zip(calls, self.arg_fns)]
        # Bucket the batch's rows by group key (dict order = first
        # occurrence in scan order, exactly the row engine's group order),
        # then fold each bucket's argument values column-at-a-time.  Each
        # group's values arrive in scan order relative to that group, so
        # per-group aggregate states match the row engine's interleaved
        # per-row stepping bit for bit.
        buckets: dict = {}
        key_tuples: dict = {}
        if len(key_cols) == 1:
            kc = key_cols[0]
            for r in range(m):
                v = kc[r]
                key = _hashable_value(v)
                rows = buckets.get(key)
                if rows is None:
                    buckets[key] = [r]
                    key_tuples[key] = (v,)
                else:
                    rows.append(r)
        else:
            for r in range(m):
                key_values = tuple(col[r] for col in key_cols)
                key = _hashable_row(key_values)
                rows = buckets.get(key)
                if rows is None:
                    buckets[key] = [r]
                    key_tuples[key] = key_values
                else:
                    rows.append(r)
        groups = self.groups
        for key, rows in buckets.items():
            states = groups.get(key)
            if states is None:
                states = groups[key] = [agg.create() for agg in self.aggs]
                self.group_values[key] = key_tuples[key]
                self.distinct_seen[key] = [set() for _ in self.aggs]
            dsets = self.distinct_seen[key]
            for index, (call, agg) in enumerate(zip(calls, self.aggs)):
                if call.star:
                    if type(agg) is CountAgg:
                        states[index] += len(rows)
                    else:
                        step = agg.step
                        state = states[index]
                        for _ in rows:
                            state = step(state, True)
                        states[index] = state
                    continue
                col = arg_cols[index]
                if call.distinct:
                    seen = dsets[index]
                    step = agg.step
                    state = states[index]
                    for r in rows:
                        value = col[r]
                        marker = _hashable_value(value)
                        if marker in seen:
                            continue
                        seen.add(marker)
                        state = step(state, value)
                    states[index] = state
                else:
                    states[index] = _accumulate(agg, states[index],
                                                [col[r] for r in rows])

    def finish(self) -> tuple[dict, dict]:
        """The (groups, group_values) maps, with the ungrouped fold folded
        in — including the empty-input "one row of empty finals" case."""
        if self.states is not None:
            self.groups[()] = self.states
            self.group_values[()] = ()
        return self.groups, self.group_values


# ---------------------------------------------------------------------------
# Plan-time qualification
# ---------------------------------------------------------------------------


class VectorSpec:
    """Batch-compiled artifacts of one vectorizable SELECT core."""

    __slots__ = ("table_name", "where_fn", "project", "key_fns", "arg_fns")

    def __init__(self, table_name: str, where_fn: Optional[VectorFn],
                 project: Optional[VectorProject],
                 key_fns: Optional[list[VectorFn]],
                 arg_fns: Optional[list[Optional[VectorFn]]]):
        self.table_name = table_name
        self.where_fn = where_fn
        self.project = project
        self.key_fns = key_fns
        self.arg_fns = arg_fns


def vectorize_core(base: SelectCorePlan, core: A.SelectCore,
                   item_exprs: Sequence[A.Expr], scope: Scope,
                   table_name: str) -> Optional["VectorizedCorePlan"]:
    """Batch-compile *base* (already fully planned for the row engine) into
    a :class:`VectorizedCorePlan`, or return ``None`` when any needed
    expression is outside the supported subset.

    The caller (the planner) has already established the structural
    preconditions: single non-lateral base-table FROM still on a SeqScan,
    no ORDER BY, no window/batched-UDF stage.  What remains is expression
    support: the WHERE clause, and either every select item (streaming) or
    every group key and aggregate argument (aggregation — HAVING and the
    post-aggregation projections run row-wise over the few group rows, so
    they stay on the scalar closures and need no batch support).
    """
    compiler = VectorExprCompiler(scope)
    where_fn = None
    if core.where is not None:
        where_fn = compiler.compile(core.where)
        if where_fn is None:
            return None
    project = None
    key_fns: Optional[list[VectorFn]] = None
    arg_fns: Optional[list[Optional[VectorFn]]] = None
    if base.agg_stage is not None:
        key_fns = compiler.compile_many(core.group_by)
        if key_fns is None:
            return None
        arg_fns = []
        for call in base.agg_stage.agg_calls:
            if call.star:
                arg_fns.append(None)
                continue
            if call.arg_ast is None:
                return None
            fn = compiler.compile(call.arg_ast)
            if fn is None:
                return None
            arg_fns.append(fn)
    else:
        project_fns = compiler.compile_many(item_exprs)
        if project_fns is None:
            return None
        project = VectorProject(project_fns)
    spec = VectorSpec(table_name, where_fn, project, key_fns, arg_fns)
    return VectorizedCorePlan(base, spec)


# ---------------------------------------------------------------------------
# The boundary operator
# ---------------------------------------------------------------------------


class VectorizedCorePlan(SelectCorePlan):
    """A SELECT core that executes batch-at-a-time.

    Subclasses :class:`SelectCorePlan` and keeps every row-engine field
    intact, so the inherited machinery *is* the fallback plan: the state
    can switch to row-at-a-time execution mid-statement without replanning
    (see :class:`BatchAdapterState`).
    """

    __slots__ = ("vspec",)

    def __init__(self, base: SelectCorePlan, vspec: VectorSpec):
        super().__init__(
            output_columns=base.output_columns,
            n_relations=base.n_relations,
            from_plan=base.from_plan,
            where=base.where,
            where_subplans=base.where_subplans,
            agg_stage=base.agg_stage,
            window_stage=base.window_stage,
            project_exprs=base.project_exprs,
            project_subplans=base.project_subplans,
            distinct=base.distinct,
            batch_stage=base.batch_stage,
        )
        self.vspec = vspec

    def label(self) -> str:
        return "Vectorized" + super().label()

    def explain(self, indent: int = 0) -> str:
        spec = self.vspec
        lines = ["  " * indent + "-> " + self.label()
                 + f"  [{', '.join(self.output_columns)}]"]
        depth = indent + 1
        if self.agg_stage is not None:
            stage = self.agg_stage
            lines.append("  " * depth + "-> VectorAggregate "
                         f"({len(stage.group_keys)} keys, "
                         f"{len(stage.agg_calls)} calls)")
            depth += 1
        elif spec.project is not None:
            kind = "columns" if spec.project.fast is not None else "exprs"
            lines.append("  " * depth + f"-> VectorProject ({kind})")
            depth += 1
        if spec.where_fn is not None:
            lines.append("  " * depth + "-> VectorFilter")
            depth += 1
        lines.append("  " * depth
                     + f"-> VectorScan on {spec.table_name} "
                       f"(batch={BATCH_SIZE})")
        return "\n".join(lines)

    def instantiate(self, rt, ictx=None) -> "BatchAdapterState":
        return BatchAdapterState(rt, self, ictx)


class BatchAdapterState(SelectCoreState):
    """Boundary operator: drains the batch pipeline, emits row tuples.

    Extends :class:`SelectCoreState`, so DISTINCT, HAVING, the
    post-aggregation projections and the materialized-output protocol are
    the inherited row-engine code paths — only the hot FROM→WHERE→
    project/aggregate loop is replaced by batches.  On any engine error
    during batch evaluation the state *poisons* itself and re-executes
    through the inherited row path (see the module docstring for why that
    is observably identical).
    """

    __slots__ = ("_ictx", "_scan", "_filter", "_use_vector", "_poisoned",
                 "_vbuf", "_vbuf_pos", "_emitted")

    def __init__(self, rt, plan: VectorizedCorePlan, ictx):
        super().__init__(rt, plan, ictx)
        self._ictx = ictx
        table = rt.catalog.tables.get(plan.vspec.table_name)
        if table is None:
            from ..errors import NameResolutionError
            raise NameResolutionError(
                f"unknown table {plan.vspec.table_name!r}")
        self._scan = VectorScan(rt, table)
        self._filter = (VectorFilter(plan.vspec.where_fn)
                        if plan.vspec.where_fn is not None else None)
        self._use_vector = True
        self._poisoned = False
        self._vbuf: list[tuple] = []
        self._vbuf_pos = 0
        self._emitted = 0

    # ------------------------------------------------------------------

    def open(self, outer) -> None:
        if not self._poisoned:
            self._use_vector = True
            self._vbuf = []
            self._vbuf_pos = 0
            self._emitted = 0
            try:
                self._scan.open()
                super().open(outer)  # aggregation runs vectorized in here
                return
            except QueryCanceledError:
                raise
            except SqlError:
                self._poisoned = True
        self._use_vector = False
        super().open(outer)

    def next(self) -> Optional[tuple]:
        if not self._use_vector or self.materialized is not None:
            return super().next()
        try:
            row = self._next_vector()
        except QueryCanceledError:
            raise
        except SqlError:
            return self._fall_back()
        if row is not None:
            self._emitted += 1
        return row

    # ------------------------------------------------------------------

    def _next_vector(self) -> Optional[tuple]:
        project = self.plan.vspec.project
        # The scan drains a finite row snapshot and polls the cancel token
        # once per batch.
        while True:  # lint: bounded
            buf = self._vbuf
            if self._vbuf_pos < len(buf):
                row = buf[self._vbuf_pos]
                self._vbuf_pos += 1
                if self.seen is None or self._distinct_ok(row):
                    return row
                continue
            batch = self._scan.next_batch()
            if batch is None:
                return None
            if self._filter is not None:
                batch = self._filter.apply(batch)
                if batch.sel is not None and not batch.sel:
                    continue
            self._vbuf = project.rows(batch)
            self._vbuf_pos = 0

    def _fall_back(self) -> Optional[tuple]:
        """Re-execute through the inherited row engine, skipping the rows
        already emitted (pure expressions over the same snapshot reproduce
        them exactly)."""
        self._poisoned = True
        self._use_vector = False
        emitted = self._emitted
        super().open(self.outer)
        for _ in range(emitted):
            if super().next() is None:
                break
        return super().next()

    # ------------------------------------------------------------------

    def _run_aggregation(self, stage: AggStagePlan) -> list[tuple]:
        if not self._use_vector:
            return super()._run_aggregation(stage)
        spec = self.plan.vspec
        vagg = VectorAggregate(stage, spec.key_fns, spec.arg_fns)
        scan = self._scan
        # The scan drains a finite row snapshot and polls the cancel token
        # once per batch.
        while True:  # lint: bounded
            batch = scan.next_batch()
            if batch is None:
                break
            if self._filter is not None:
                batch = self._filter.apply(batch)
            vagg.add_batch(batch)
        groups, group_values = vagg.finish()
        # Finalization + HAVING: the inherited row-engine tail, verbatim.
        out: list[tuple] = []
        for key, states in groups.items():
            finals = tuple(agg.final(state)
                           for agg, state in zip(vagg.aggs, states))
            row = group_values[key] + finals
            vec = (row,)
            if stage.having is not None:
                ctx = EvalContext(self.rt, vec, parent=self.outer,
                                  slots=self.having_slots)
                if stage.having(ctx) is not True:
                    continue
            out.append(vec)
        return out
