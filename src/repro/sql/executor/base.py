"""Execution-state protocol shared by all plan operators.

The engine deliberately mirrors PostgreSQL's executor life cycle because the
paper's cost analysis hangs off it:

* ``Plan.instantiate(rt)`` — build the operator *state* tree
  (**ExecutorStart**: per-execution memory, expression slots, child states),
* ``state.open(outer)`` / ``state.next()`` — pull tuples (**ExecutorRun**),
* ``state.close()`` — release state (**ExecutorEnd**).

Correlated subplans are re-*opened* (rescan), not re-instantiated, which is
why a compiled query pays instantiation once while the PL/SQL interpreter
pays it per embedded-query evaluation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from ..expr import EvalContext, RuntimeContext


class Plan:
    """Base class for immutable plan nodes.

    A plan is built once by the planner (and possibly cached by SQL text);
    ``instantiate`` builds the per-execution :class:`PlanState` tree.  The
    ``ictx`` argument is the instantiation context used to wire CTE scans to
    the runtime storage of their defining WITH clause (see
    executor/recursion.py).
    """

    __slots__ = ("output_columns",)

    def __init__(self, output_columns: list[str]):
        self.output_columns = output_columns

    @property
    def width(self) -> int:
        return len(self.output_columns)

    def instantiate(self, rt: "RuntimeContext", ictx=None) -> "PlanState":
        raise NotImplementedError

    def children(self) -> list["Plan"]:
        """Direct child plans, for EXPLAIN-style rendering."""
        return []

    def label(self) -> str:
        return type(self).__name__.replace("Plan", "")

    def explain(self, indent: int = 0) -> str:
        lines = ["  " * indent + "-> " + self.label()
                 + f"  [{', '.join(self.output_columns)}]"]
        for child in self.children():
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)


class PlanState:
    """Base class for per-execution operator state.

    The tuple protocol: after :meth:`open`, repeated :meth:`next` calls yield
    row tuples until ``None``.  :meth:`open` may be called again at any time
    (rescan), possibly with a different outer context — lateral and
    correlated subplans rely on this.
    """

    __slots__ = ("rt",)

    def __init__(self, rt: "RuntimeContext"):
        self.rt = rt

    def open(self, outer: Optional["EvalContext"]) -> None:
        raise NotImplementedError

    def next(self) -> Optional[tuple]:
        raise NotImplementedError

    def close(self) -> None:
        pass

    # -- convenience ----------------------------------------------------
    def fetch_all(self) -> list[tuple]:
        out = []
        # lint: bounded — drains a finite child stream; leaf scans poll
        while True:
            row = self.next()
            if row is None:
                return out
            out.append(row)


class ExecContext:
    """Deprecated alias kept for symmetry with the design doc; the runtime
    context actually lives in :class:`repro.sql.expr.RuntimeContext`."""
