"""The SELECT-core operator: FROM → WHERE → [GROUP/HAVING] → [WINDOW] →项目.

One :class:`SelectCorePlan` evaluates a single SELECT block.  The streaming
path (no aggregation, no window functions) pipelines tuples; grouping and
windowing materialize, as they must.

The shared row-vector protocol (see executor/fromtree.py) keeps scope
alignment simple: every expression compiled for this block sees
``ctx.rows == vector`` and ``ctx.parent == outer``, matching the plan-time
scope chain exactly.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional, Sequence

from ..errors import ExecutionError
from ..expr import EvalContext
from ..functions import make_aggregate
from ..profiler import TOPN_INPUT_ROWS, TOPN_SCANS
from ..values import hashable_row as _hashable_row
from ..values import hashable_value as _hashable_value
from .base import Plan, PlanState
from .batched_udf import BatchedUdfStagePlan, BatchedUdfStageState
from .fromtree import FromNodePlan
from .scan import make_slots
from .tuples import SortPlan, make_row_key
from .window import WindowCallPlan, compute_window_columns


class TopNPlan(Plan):
    """Bounded-heap ``ORDER BY ... LIMIT``: Sort's answer to small limits.

    Replaces a :class:`~repro.sql.executor.tuples.SortPlan` when the
    statement carries a constant LIMIT (plus optional constant OFFSET) and
    no index delivers the order: instead of materializing and sorting all
    n input rows (O(n log n) comparisons), a max-heap of the best
    ``count = limit + offset`` rows is maintained while streaming
    (O(n log count)).  Key semantics (direction, NULLS placement, stable
    ties by arrival order) are shared with Sort via
    :func:`~repro.sql.executor.tuples.make_row_key`, so the two operators
    are observably identical — differentially tested.
    """

    __slots__ = ("child", "key_start", "descending", "nulls_first", "strip",
                 "key_indices", "count")

    def __init__(self, sort: SortPlan, count: int):
        super().__init__(sort.output_columns)
        self.child = sort.child
        self.key_start = sort.key_start
        self.descending = sort.descending
        self.nulls_first = sort.nulls_first
        self.strip = sort.strip
        self.key_indices = sort.key_indices
        self.count = count

    def label(self) -> str:
        return f"TopN (n={self.count})"

    def children(self) -> list[Plan]:
        return [self.child]

    def instantiate(self, rt, ictx=None) -> "TopNState":
        return TopNState(rt, self, self.child.instantiate(rt, ictx))


class _TopItem:
    """Heap entry ordered *inversely* by (key, arrival), making ``heap[0]``
    the worst kept row; ties fall to arrival order so the survivors match
    a stable full sort cut at ``count``."""

    __slots__ = ("key", "seq", "row")

    def __init__(self, key, seq: int, row: tuple):
        self.key = key
        self.seq = seq
        self.row = row

    def __lt__(self, other: "_TopItem") -> bool:
        if self.key == other.key:
            return other.seq < self.seq
        return other.key < self.key


class TopNState(PlanState):
    __slots__ = ("plan", "child", "rows", "pos")

    def __init__(self, rt, plan: TopNPlan, child: PlanState):
        super().__init__(rt)
        self.plan = plan
        self.child = child
        self.rows: list[tuple] = []
        self.pos = 0

    def open(self, outer) -> None:
        plan = self.plan
        self.child.open(outer)
        key_fn = make_row_key(plan)
        count = plan.count
        heap: list[_TopItem] = []
        seq = 0
        # Drain the child completely, exactly as Sort would: expression
        # side effects and row counts stay identical to the sort path.
        child_next = self.child.next
        cancel = self.rt.cancel
        while True:
            cancel.check()
            row = child_next()
            if row is None:
                break
            item = _TopItem(key_fn(row), seq, row)
            seq += 1
            if len(heap) < count:
                heapq.heappush(heap, item)
            elif heap and heap[0] < item:
                # Under the inverted __lt__, heap[0] is the worst kept row
                # and "worst < item" means the new row sorts before it.
                heapq.heapreplace(heap, item)
        profiler = self.rt.db.profiler
        profiler.bump(TOPN_SCANS)
        profiler.bump(TOPN_INPUT_ROWS, seq)
        heap.sort(key=lambda item: (item.key, item.seq))
        if plan.strip and plan.key_indices is None:
            self.rows = [item.row[:plan.key_start] for item in heap]
        else:
            self.rows = [item.row for item in heap]
        self.pos = 0

    def next(self) -> Optional[tuple]:
        if self.pos >= len(self.rows):
            return None
        row = self.rows[self.pos]
        self.pos += 1
        return row

    def close(self) -> None:
        self.child.close()


class AggCallPlan:
    """One aggregate call in the SELECT/HAVING of a grouped query.

    ``arg_ast`` keeps the (unrewritten) argument expression alongside the
    compiled closure so the vectorized executor can batch-compile the same
    expression; it is None for ``count(*)``.
    """

    __slots__ = ("name", "star", "arg", "distinct", "separator", "arg_ast")

    def __init__(self, name: str, star: bool, arg: Optional[Callable],
                 distinct: bool, separator: str = "", arg_ast=None):
        self.name = name.lower()
        self.star = star
        self.arg = arg
        self.distinct = distinct
        self.separator = separator
        self.arg_ast = arg_ast


class AggStagePlan:
    """Grouping stage: key expressions + aggregate calls + HAVING."""

    __slots__ = ("group_keys", "agg_calls", "having", "subplans",
                 "having_subplans", "output_width")

    def __init__(self, group_keys: Sequence[Callable], agg_calls: list[AggCallPlan],
                 having: Optional[Callable], subplans, having_subplans):
        self.group_keys = list(group_keys)
        self.agg_calls = agg_calls
        self.having = having
        self.subplans = subplans            # for key and agg-arg expressions
        self.having_subplans = having_subplans
        self.output_width = len(self.group_keys) + len(agg_calls)


class WindowStagePlan:
    __slots__ = ("calls", "subplans")

    def __init__(self, calls: list[WindowCallPlan], subplans):
        self.calls = calls
        self.subplans = subplans


class SelectCorePlan(Plan):
    __slots__ = ("n_relations", "from_plan", "where", "where_subplans",
                 "agg_stage", "window_stage", "batch_stage", "project_exprs",
                 "project_subplans", "distinct")

    def __init__(self, output_columns: list[str], n_relations: int,
                 from_plan: Optional[FromNodePlan],
                 where: Optional[Callable], where_subplans,
                 agg_stage: Optional[AggStagePlan],
                 window_stage: Optional[WindowStagePlan],
                 project_exprs: Sequence[Callable], project_subplans,
                 distinct: bool,
                 batch_stage: Optional[BatchedUdfStagePlan] = None):
        super().__init__(output_columns)
        self.n_relations = n_relations
        self.from_plan = from_plan
        self.where = where
        self.where_subplans = where_subplans
        self.agg_stage = agg_stage
        self.window_stage = window_stage
        self.batch_stage = batch_stage
        self.project_exprs = list(project_exprs)
        self.project_subplans = project_subplans
        self.distinct = distinct

    def label(self) -> str:
        bits = []
        if self.agg_stage is not None:
            bits.append("Aggregate")
        if self.window_stage is not None:
            bits.append("WindowAgg")
        bits.append("Select")
        return "+".join(bits)

    def children(self) -> list[Plan]:
        out: list[Plan] = []
        if self.from_plan is not None:
            out.extend(self.from_plan.children())
        return out

    def explain(self, indent: int = 0) -> str:
        lines = ["  " * indent + "-> " + self.label()
                 + f"  [{', '.join(self.output_columns)}]"]
        if self.batch_stage is not None:
            lines.append(self.batch_stage.explain(indent + 1))
        if self.from_plan is not None:
            lines.append(self.from_plan.explain(indent + 1))
        return "\n".join(lines)

    def instantiate(self, rt, ictx=None) -> "SelectCoreState":
        return SelectCoreState(rt, self, ictx)


class SelectCoreState(PlanState):
    __slots__ = ("plan", "vector", "from_state", "where_slots", "agg_slots",
                 "having_slots", "window_slots", "batch_state",
                 "project_slots", "outer",
                 "materialized", "mat_pos", "seen", "exhausted",
                 "_where_ctx", "_project_ctx")

    def __init__(self, rt, plan: SelectCorePlan, ictx):
        super().__init__(rt)
        self.plan = plan
        self.vector: list = [None] * plan.n_relations
        self.from_state = (plan.from_plan.instantiate(rt, ictx, self.vector)
                           if plan.from_plan is not None else None)
        self.where_slots = make_slots(rt, ictx, plan.where_subplans)
        agg = plan.agg_stage
        self.agg_slots = make_slots(rt, ictx, agg.subplans) if agg else []
        self.having_slots = (make_slots(rt, ictx, agg.having_subplans)
                             if agg else [])
        win = plan.window_stage
        self.window_slots = make_slots(rt, ictx, win.subplans) if win else []
        self.batch_state = (BatchedUdfStageState(rt, plan.batch_stage, ictx)
                            if plan.batch_stage is not None else None)
        self.project_slots = make_slots(rt, ictx, plan.project_subplans)
        self.outer = None
        self.materialized: Optional[list[tuple]] = None
        self.mat_pos = 0
        self.seen: Optional[set] = None
        self.exhausted = False
        # Streaming-path contexts: the row vector is shared and mutated in
        # place, so one context per (state, outer) pair suffices — this
        # keeps the per-tuple allocation count down.
        self._where_ctx: Optional[EvalContext] = None
        self._project_ctx: Optional[EvalContext] = None

    # ------------------------------------------------------------------

    def open(self, outer) -> None:
        if outer is not self.outer or self._where_ctx is None:
            self._where_ctx = EvalContext(self.rt, self.vector, parent=outer,
                                          slots=self.where_slots)
            self._project_ctx = EvalContext(self.rt, self.vector, parent=outer,
                                            slots=self.project_slots)
        self.outer = outer
        self.mat_pos = 0
        self.materialized = None
        self.exhausted = False
        self.seen = set() if self.plan.distinct else None
        if self.from_state is not None:
            self.from_state.open(outer)
        plan = self.plan
        if plan.agg_stage is not None or plan.window_stage is not None \
                or plan.batch_stage is not None:
            self.materialized = self._evaluate_materialized()

    def next(self) -> Optional[tuple]:
        if self.materialized is not None:
            while self.mat_pos < len(self.materialized):
                row = self.materialized[self.mat_pos]
                self.mat_pos += 1
                if self._distinct_ok(row):
                    return row
            return None
        return self._next_streaming()

    def close(self) -> None:
        if self.from_state is not None:
            self.from_state.close()
        if self.batch_state is not None:
            self.batch_state.close()

    # ------------------------------------------------------------------

    def _distinct_ok(self, row: tuple) -> bool:
        if self.seen is None:
            return True
        key = _hashable_row(row)
        if key in self.seen:
            return False
        self.seen.add(key)
        return True

    def _ticks(self):
        """Yield once per surviving FROM tick (vector filled, WHERE applied)."""
        plan = self.plan
        where = plan.where
        ctx = self._where_ctx
        if self.from_state is None:
            if where is None or where(ctx) is True:
                yield ctx
            return
        from_next = self.from_state.next
        cancel = self.rt.cancel
        while from_next():
            cancel.check()
            if where is None or where(ctx) is True:
                yield ctx

    def _next_streaming(self) -> Optional[tuple]:
        plan = self.plan
        if self.exhausted:
            return None
        where = plan.where
        where_ctx = self._where_ctx
        if self.from_state is None:
            # Table-less SELECT: exactly one candidate tick.
            self.exhausted = True
            if where is not None and where(where_ctx) is not True:
                return None
            return self._project_current()
        from_next = self.from_state.next
        cancel = self.rt.cancel
        while True:
            cancel.check()
            if not from_next():
                self.exhausted = True
                return None
            if where is not None and where(where_ctx) is not True:
                continue
            row = self._project_current()
            if self.seen is None or self._distinct_ok(row):
                return row

    def _project_current(self) -> tuple:
        ctx = self._project_ctx
        return tuple(e(ctx) for e in self.plan.project_exprs)

    def _project(self, rows_vector) -> tuple:
        ctx = EvalContext(self.rt, rows_vector, parent=self.outer,
                          slots=self.project_slots)
        return tuple(e(ctx) for e in self.plan.project_exprs)

    # ------------------------------------------------------------------

    def _evaluate_materialized(self) -> list[tuple]:
        plan = self.plan
        if plan.agg_stage is not None:
            vectors = self._run_aggregation(plan.agg_stage)
        else:
            vectors = [tuple(self.vector) for _ctx in self._ticks()]
        if plan.window_stage is not None:
            win_cols = compute_window_columns(
                self.rt, vectors, plan.window_stage.calls, self.outer,
                self.window_slots)
            vectors = [vec + (win,) for vec, win in zip(vectors, win_cols)]
        if plan.batch_stage is not None:
            # Set-oriented compiled-UDF calls: one trampoline per call site
            # over all surviving rows, results exposed as __batch columns.
            batch_rows = self.batch_state.attach(vectors, self.outer)
            vectors = [vec + (row,)
                       for vec, row in zip(vectors, batch_rows)]
        return [self._project(vec) for vec in vectors]

    def _run_aggregation(self, stage: AggStagePlan) -> list[tuple]:
        groups: dict[tuple, list] = {}
        group_values: dict[tuple, tuple] = {}
        distinct_seen: dict[tuple, list[set]] = {}
        aggs = [make_aggregate(c.name, c.star, c.separator)
                for c in stage.agg_calls]
        for _tick in self._ticks():
            ctx = EvalContext(self.rt, self.vector, parent=self.outer,
                              slots=self.agg_slots)
            key_values = tuple(k(ctx) for k in stage.group_keys)
            key = _hashable_row(key_values)
            if key not in groups:
                groups[key] = [agg.create() for agg in aggs]
                group_values[key] = key_values
                distinct_seen[key] = [set() for _ in aggs]
            states = groups[key]
            for index, (call, agg) in enumerate(zip(stage.agg_calls, aggs)):
                if call.star:
                    value: object = True
                else:
                    value = call.arg(ctx)  # type: ignore[misc]
                if call.distinct and not call.star:
                    marker = _hashable_value(value)
                    if marker in distinct_seen[key][index]:
                        continue
                    distinct_seen[key][index].add(marker)
                states[index] = agg.step(states[index], value)
        if not groups and not stage.group_keys:
            # Aggregate over an empty input: one row of "empty" finals.
            groups[()] = [agg.create() for agg in aggs]
            group_values[()] = ()
        out: list[tuple] = []
        for key, states in groups.items():
            finals = tuple(agg.final(state) for agg, state in zip(aggs, states))
            row = group_values[key] + finals
            vec = (row,)
            if stage.having is not None:
                ctx = EvalContext(self.rt, vec, parent=self.outer,
                                  slots=self.having_slots)
                if stage.having(ctx) is not True:
                    continue
            out.append(vec)
        return out


