"""Leaf tuple sources: sequential scans, VALUES, one-row, row expansion."""

from __future__ import annotations

from typing import Optional

from ..errors import ExecutionError, NameResolutionError
from ..values import Row
from .base import Plan, PlanState


class SeqScanPlan(Plan):
    """Full scan of a base table.  The table is looked up at instantiation
    (late binding, like PostgreSQL's relation open in ExecutorStart)."""

    __slots__ = ("table_name",)

    def __init__(self, table_name: str, output_columns: list[str]):
        super().__init__(output_columns)
        self.table_name = table_name

    def label(self) -> str:
        return f"SeqScan on {self.table_name}"

    def instantiate(self, rt, ictx=None) -> "SeqScanState":
        return SeqScanState(rt, self)


class SeqScanState(PlanState):
    __slots__ = ("table", "rows", "pos")

    def __init__(self, rt, plan: SeqScanPlan):
        super().__init__(rt)
        self.table = rt.catalog.tables.get(plan.table_name)
        if self.table is None:
            raise NameResolutionError(f"unknown table {plan.table_name!r}")
        self.rows = self.table.rows
        self.pos = 0

    def open(self, outer) -> None:
        # Re-read the row list: DML may have replaced it since instantiation.
        self.rows = self.table.rows
        self.pos = 0

    def next(self) -> Optional[tuple]:
        if self.pos >= len(self.rows):
            return None
        row = self.rows[self.pos]
        self.pos += 1
        return row


_NO_ROWS: list = []


class IndexScanPlan(Plan):
    """Equality lookup via a hash index (planner-chosen for correlated
    ``col = expr`` predicates on base tables — PostgreSQL would use a
    B-tree probe here).

    ``key_columns`` are column positions; ``key_exprs`` are compiled
    expressions guaranteed (by the planner's probe) not to reference the
    scanned relation itself.  They are evaluated once per (re)open against
    the outer context, so correlated lookups re-probe per outer row.
    """

    __slots__ = ("table_name", "key_columns", "key_exprs", "subplans")

    def __init__(self, table_name: str, output_columns: list[str],
                 key_columns: list[int], key_exprs, subplans):
        super().__init__(output_columns)
        self.table_name = table_name
        self.key_columns = tuple(key_columns)
        self.key_exprs = key_exprs
        self.subplans = subplans

    def label(self) -> str:
        keys = ", ".join(self.output_columns[c] for c in self.key_columns)
        return f"IndexScan on {self.table_name} ({keys})"

    def instantiate(self, rt, ictx=None) -> "IndexScanState":
        return IndexScanState(rt, self, ictx)


class IndexScanState(PlanState):
    __slots__ = ("plan", "table", "slots", "rows", "pos", "_ctx", "_ctx_outer")

    def __init__(self, rt, plan: IndexScanPlan, ictx):
        super().__init__(rt)
        self.plan = plan
        self.table = rt.catalog.tables.get(plan.table_name)
        if self.table is None:
            raise NameResolutionError(f"unknown table {plan.table_name!r}")
        self.slots = make_slots(rt, ictx, plan.subplans)
        self.rows: list = []
        self.pos = 0
        self._ctx = None
        self._ctx_outer = self  # sentinel: never a valid outer

    def open(self, outer) -> None:
        # Key expressions were compiled at the enclosing SELECT's scope
        # level; *outer* is that level's context (the FROM leaf passes its
        # shared row vector).  Mirror it, attaching our subplan slots; the
        # mirror is cached since the leaf reuses its vector context.
        if outer is not self._ctx_outer:
            from ..expr import EvalContext
            if outer is not None:
                self._ctx = EvalContext(self.rt, outer.rows,
                                        parent=outer.parent, slots=self.slots)
            else:
                self._ctx = EvalContext(self.rt, (), slots=self.slots)
            self._ctx_outer = outer
        ctx = self._ctx
        key = tuple(expr(ctx) for expr in self.plan.key_exprs)
        self.pos = 0
        if None in key:
            self.rows = _NO_ROWS  # col = NULL matches nothing
            return
        index = self.table.equality_index(self.plan.key_columns)
        self.rows = index.get(key, _NO_ROWS)

    def next(self) -> Optional[tuple]:
        if self.pos >= len(self.rows):
            return None
        row = self.rows[self.pos]
        self.pos += 1
        return row


class ValuesPlan(Plan):
    """``VALUES (...), (...)`` — each cell is a compiled expression."""

    __slots__ = ("rows", "subplans")

    def __init__(self, rows, output_columns: list[str], subplans):
        super().__init__(output_columns)
        self.rows = rows
        self.subplans = subplans

    def label(self) -> str:
        return f"Values ({len(self.rows)} rows)"

    def instantiate(self, rt, ictx=None) -> "ValuesState":
        return ValuesState(rt, self, ictx)


class ValuesState(PlanState):
    __slots__ = ("plan", "slots", "pos", "outer")

    def __init__(self, rt, plan: ValuesPlan, ictx):
        super().__init__(rt)
        self.plan = plan
        self.slots = make_slots(rt, ictx, plan.subplans)
        self.pos = 0
        self.outer = None

    def open(self, outer) -> None:
        self.pos = 0
        self.outer = outer

    def next(self) -> Optional[tuple]:
        from ..expr import EvalContext
        if self.pos >= len(self.plan.rows):
            return None
        row = self.plan.rows[self.pos]
        self.pos += 1
        ctx = EvalContext(self.rt, (), parent=self.outer, slots=self.slots)
        return tuple(cell(ctx) for cell in row)


class OneRowPlan(Plan):
    """Emits exactly one empty row — the input of a table-less SELECT."""

    def __init__(self):
        super().__init__([])

    def label(self) -> str:
        return "Result"

    def instantiate(self, rt, ictx=None) -> "OneRowState":
        return OneRowState(rt)


class OneRowState(PlanState):
    __slots__ = ("done",)

    def __init__(self, rt):
        super().__init__(rt)
        self.done = False

    def open(self, outer) -> None:
        self.done = False

    def next(self) -> Optional[tuple]:
        if self.done:
            return None
        self.done = True
        return ()


class RowExpandPlan(Plan):
    """Engine extension: expand a single composite column into N columns.

    The paper's CTE template wraps the adapted UDF body in
    ``LATERAL (body) AS iter("call?", args, result)`` where the body yields a
    single ROW-valued CASE.  PostgreSQL spells this with a registered
    composite type and ``(x).*``; our engine performs the expansion whenever a
    FROM subquery with a multi-column alias list produces single-column rows
    holding ROW values of the matching arity.
    """

    __slots__ = ("child",)

    def __init__(self, child: Plan, output_columns: list[str]):
        super().__init__(output_columns)
        self.child = child

    def label(self) -> str:
        return f"RowExpand ({self.width} cols)"

    def children(self) -> list[Plan]:
        return [self.child]

    def instantiate(self, rt, ictx=None) -> "RowExpandState":
        return RowExpandState(rt, self, self.child.instantiate(rt, ictx))


class RowExpandState(PlanState):
    __slots__ = ("plan", "child")

    def __init__(self, rt, plan: RowExpandPlan, child: PlanState):
        super().__init__(rt)
        self.plan = plan
        self.child = child

    def open(self, outer) -> None:
        self.child.open(outer)

    def next(self) -> Optional[tuple]:
        row = self.child.next()
        if row is None:
            return None
        if len(row) == self.plan.width:
            return row
        if len(row) == 1:
            value = row[0]
            if value is None:
                return (None,) * self.plan.width
            if isinstance(value, Row) and len(value) == self.plan.width:
                return value.values
        raise ExecutionError(
            f"cannot expand row of width {len(row)} to "
            f"{self.plan.width} columns {self.plan.output_columns}")

    def close(self) -> None:
        self.child.close()


def make_slots(rt, ictx, subplans) -> list:
    """Eagerly instantiate a node's expression subplans into its slot list.

    This is the per-execution cost the paper attributes to ExecutorStart:
    every scalar subquery / EXISTS / IN-subquery in the node's expressions
    gets a fresh state tree here, once per plan instantiation — and exactly
    once for a compiled query, no matter how many recursive steps follow.
    """
    return [plan.instantiate(rt, ictx) for plan in subplans]
