"""Leaf tuple sources: sequential scans, VALUES, one-row, row expansion."""

from __future__ import annotations

from typing import Optional

from ..errors import ExecutionError, NameResolutionError
from ..profiler import INDEX_RANGE_SCANS, SORTED_INDEX_BUILDS
from ..values import Row
from .base import Plan, PlanState


class SeqScanPlan(Plan):
    """Full scan of a base table.  The table is looked up at instantiation
    (late binding, like PostgreSQL's relation open in ExecutorStart)."""

    __slots__ = ("table_name",)

    def __init__(self, table_name: str, output_columns: list[str]):
        super().__init__(output_columns)
        self.table_name = table_name

    def label(self) -> str:
        return f"SeqScan on {self.table_name}"

    def instantiate(self, rt, ictx=None) -> "SeqScanState":
        return SeqScanState(rt, self)


class SeqScanState(PlanState):
    __slots__ = ("table", "rows", "pos")

    def __init__(self, rt, plan: SeqScanPlan):
        super().__init__(rt)
        self.table = rt.catalog.tables.get(plan.table_name)
        if self.table is None:
            raise NameResolutionError(f"unknown table {plan.table_name!r}")
        self.rows = self.table.rows
        self.pos = 0

    def open(self, outer) -> None:
        # Re-read the row list: DML may have replaced it since instantiation.
        self.rows = self.table.rows
        self.pos = 0

    def next(self) -> Optional[tuple]:
        pos = self.pos
        if pos >= len(self.rows):
            return None
        if not pos & 4095:
            # Amortized cancellation poll: this is the hottest per-row
            # loop in the engine, so the token is only consulted every
            # 4096 rows (a runaway cross join still reacts in well under
            # a millisecond of scan work).
            self.rt.cancel.check()
        row = self.rows[pos]
        self.pos = pos + 1
        return row


_NO_ROWS: list = []


def mirror_outer_context(state, outer):
    """The cached eval context an index-scan state probes its key/bound
    expressions in.

    Those expressions were compiled at the enclosing SELECT's scope level;
    *outer* is that level's context (the FROM leaf passes its shared row
    vector).  Mirror it, attaching the state's subplan slots; the mirror
    is cached on the state since the leaf reuses its vector context.
    Shared by IndexScanState and IndexRangeScanState, which must stay
    rebind-for-rebind identical (fromtree.py dispatches on both by name).
    """
    if outer is state._ctx_outer:
        return state._ctx
    from ..expr import EvalContext
    if outer is not None:
        state._ctx = EvalContext(state.rt, outer.rows, parent=outer.parent,
                                 slots=state.slots)
    else:
        state._ctx = EvalContext(state.rt, (), slots=state.slots)
    state._ctx_outer = outer
    return state._ctx


class IndexScanPlan(Plan):
    """Equality lookup via a hash index (planner-chosen for correlated
    ``col = expr`` predicates on base tables — PostgreSQL would use a
    B-tree probe here).

    ``key_columns`` are column positions; ``key_exprs`` are compiled
    expressions guaranteed (by the planner's probe) not to reference the
    scanned relation itself.  They are evaluated once per (re)open against
    the outer context, so correlated lookups re-probe per outer row.
    """

    __slots__ = ("table_name", "key_columns", "key_exprs", "subplans")

    def __init__(self, table_name: str, output_columns: list[str],
                 key_columns: list[int], key_exprs, subplans):
        super().__init__(output_columns)
        self.table_name = table_name
        self.key_columns = tuple(key_columns)
        self.key_exprs = key_exprs
        self.subplans = subplans

    def label(self) -> str:
        keys = ", ".join(self.output_columns[c] for c in self.key_columns)
        return f"IndexScan on {self.table_name} ({keys})"

    def instantiate(self, rt, ictx=None) -> "IndexScanState":
        return IndexScanState(rt, self, ictx)


class IndexScanState(PlanState):
    __slots__ = ("plan", "table", "slots", "rows", "pos", "_ctx", "_ctx_outer")

    def __init__(self, rt, plan: IndexScanPlan, ictx):
        super().__init__(rt)
        self.plan = plan
        self.table = rt.catalog.tables.get(plan.table_name)
        if self.table is None:
            raise NameResolutionError(f"unknown table {plan.table_name!r}")
        self.slots = make_slots(rt, ictx, plan.subplans)
        self.rows: list = []
        self.pos = 0
        self._ctx = None
        self._ctx_outer = self  # sentinel: never a valid outer

    def open(self, outer) -> None:
        ctx = mirror_outer_context(self, outer)
        key = tuple(expr(ctx) for expr in self.plan.key_exprs)
        self.pos = 0
        if None in key:
            self.rows = _NO_ROWS  # col = NULL matches nothing
            return
        index = self.table.equality_index(self.plan.key_columns)
        versions = index.get(key, _NO_ROWS)
        if not versions:
            self.rows = _NO_ROWS
            return
        # The index stores row *versions*; keep the ones this statement's
        # snapshot may see.
        snapshot = self.table.current_snapshot()
        if self.table.all_visible(snapshot):
            self.rows = [version.data for version in versions]
        else:
            self.rows = [version.data for version in versions
                         if snapshot.visible(version)]

    def next(self) -> Optional[tuple]:
        if self.pos >= len(self.rows):
            return None
        row = self.rows[self.pos]
        self.pos += 1
        return row


class IndexRangeScanPlan(Plan):
    """Ordered access via a :class:`~repro.sql.storage.SortedIndex`.

    One operator, three planner-chosen roles:

    * **range scan** — ``lower`` / ``upper`` are ``(compiled expr,
      inclusive, display)`` bounds on a single ascending key column,
      evaluated per (re)open against the outer context (correlated range
      probes re-bisect per outer row: O(log n + k) instead of the O(n)
      SeqScan + filter),
    * **ordered delivery** — no bounds: the whole index in key order
      (NULLS LAST ascending / NULLS FIRST descending, matching the sort
      operator's defaults), letting the planner skip the sort,
    * **merge-join input** — ordered delivery feeding
      :class:`~repro.sql.executor.mergejoin.MergeJoinPlan`.

    ``reverse`` flips the iteration direction (DESC ordering from an ASC
    index and vice versa).  The index is fetched from the table at open —
    created lazily like ``equality_index`` and maintained incrementally by
    DML, so repeated probes never pay a rebuild.
    """

    __slots__ = ("table_name", "key_columns", "key_desc", "lower", "upper",
                 "reverse", "subplans")

    def __init__(self, table_name: str, output_columns: list[str],
                 key_columns, key_desc, lower, upper,
                 reverse: bool = False, subplans=()):
        super().__init__(output_columns)
        self.table_name = table_name
        self.key_columns = tuple(key_columns)
        self.key_desc = tuple(key_desc)
        self.lower = lower
        self.upper = upper
        self.reverse = reverse
        self.subplans = list(subplans)

    def label(self) -> str:
        column = self.output_columns[self.key_columns[0]]
        bits = []
        if self.lower is not None:
            bits.append(f"{column} {'>=' if self.lower[1] else '>'} "
                        f"{self.lower[2]}")
        if self.upper is not None:
            bits.append(f"{column} {'<=' if self.upper[1] else '<'} "
                        f"{self.upper[2]}")
        if not bits:
            keys = ", ".join(
                self.output_columns[c] + (" DESC" if d != self.reverse else "")
                for c, d in zip(self.key_columns, self.key_desc))
            bits.append(f"order by {keys}")
        elif self.reverse:
            bits.append("DESC")
        return f"IndexRangeScan on {self.table_name} ({', '.join(bits)})"

    def instantiate(self, rt, ictx=None) -> "IndexRangeScanState":
        return IndexRangeScanState(rt, self, ictx)


class IndexRangeScanState(PlanState):
    __slots__ = ("plan", "table", "slots", "rows", "pos", "stop", "step",
                 "snapshot", "check", "_ctx", "_ctx_outer")

    def __init__(self, rt, plan: IndexRangeScanPlan, ictx):
        super().__init__(rt)
        self.plan = plan
        self.table = rt.catalog.tables.get(plan.table_name)
        if self.table is None:
            raise NameResolutionError(f"unknown table {plan.table_name!r}")
        self.slots = make_slots(rt, ictx, plan.subplans)
        self.rows: list = _NO_ROWS
        self.pos = 0
        self.stop = 0
        self.step = 1
        self.snapshot = None
        self.check = False
        self._ctx = None
        self._ctx_outer = self  # sentinel: never a valid outer

    def open(self, outer) -> None:
        plan = self.plan
        ctx = mirror_outer_context(self, outer)
        profiler = self.rt.db.profiler
        index = self.table.sorted_index_if_exists(plan.key_columns,
                                                  plan.key_desc)
        if index is None:
            profiler.bump(SORTED_INDEX_BUILDS)
            index = self.table.sorted_index(plan.key_columns, plan.key_desc)
        profiler.bump(INDEX_RANGE_SCANS)
        lower = upper = None
        empty = False
        if plan.lower is not None:
            value = plan.lower[0](ctx)
            if value is None:
                empty = True  # col > NULL is never TRUE
            else:
                index.check_probe(0, value)
                lower = (value, plan.lower[1])
        if plan.upper is not None and not empty:
            value = plan.upper[0](ctx)
            if value is None:
                empty = True
            else:
                index.check_probe(0, value)
                upper = (value, plan.upper[1])
        self.rows = index.rows
        # Index entries are row versions: when anything in the table may
        # be invisible to this statement's snapshot, next() filters.
        self.snapshot = self.table.current_snapshot()
        self.check = not self.table.all_visible(self.snapshot)
        if empty:
            start = stop = 0
        elif lower is None and upper is None:
            start, stop = 0, len(self.rows)
        else:
            start, stop = index.range_positions(lower, upper)
        if plan.reverse:
            self.pos, self.stop, self.step = stop - 1, start - 1, -1
        else:
            self.pos, self.stop, self.step = start, stop, 1

    def next(self) -> Optional[tuple]:
        while self.pos != self.stop:
            if not self.pos & 4095:
                self.rt.cancel.check()  # amortized, as in SeqScan
            version = self.rows[self.pos]
            self.pos += self.step
            if self.check and not self.snapshot.visible(version):
                continue
            return version.data
        return None


class ValuesPlan(Plan):
    """``VALUES (...), (...)`` — each cell is a compiled expression."""

    __slots__ = ("rows", "subplans")

    def __init__(self, rows, output_columns: list[str], subplans):
        super().__init__(output_columns)
        self.rows = rows
        self.subplans = subplans

    def label(self) -> str:
        return f"Values ({len(self.rows)} rows)"

    def instantiate(self, rt, ictx=None) -> "ValuesState":
        return ValuesState(rt, self, ictx)


class ValuesState(PlanState):
    __slots__ = ("plan", "slots", "pos", "outer")

    def __init__(self, rt, plan: ValuesPlan, ictx):
        super().__init__(rt)
        self.plan = plan
        self.slots = make_slots(rt, ictx, plan.subplans)
        self.pos = 0
        self.outer = None

    def open(self, outer) -> None:
        self.pos = 0
        self.outer = outer

    def next(self) -> Optional[tuple]:
        from ..expr import EvalContext
        if self.pos >= len(self.plan.rows):
            return None
        row = self.plan.rows[self.pos]
        self.pos += 1
        ctx = EvalContext(self.rt, (), parent=self.outer, slots=self.slots)
        return tuple(cell(ctx) for cell in row)


class OneRowPlan(Plan):
    """Emits exactly one empty row — the input of a table-less SELECT."""

    def __init__(self):
        super().__init__([])

    def label(self) -> str:
        return "Result"

    def instantiate(self, rt, ictx=None) -> "OneRowState":
        return OneRowState(rt)


class OneRowState(PlanState):
    __slots__ = ("done",)

    def __init__(self, rt):
        super().__init__(rt)
        self.done = False

    def open(self, outer) -> None:
        self.done = False

    def next(self) -> Optional[tuple]:
        if self.done:
            return None
        self.done = True
        return ()


class RowExpandPlan(Plan):
    """Engine extension: expand a single composite column into N columns.

    The paper's CTE template wraps the adapted UDF body in
    ``LATERAL (body) AS iter("call?", args, result)`` where the body yields a
    single ROW-valued CASE.  PostgreSQL spells this with a registered
    composite type and ``(x).*``; our engine performs the expansion whenever a
    FROM subquery with a multi-column alias list produces single-column rows
    holding ROW values of the matching arity.
    """

    __slots__ = ("child",)

    def __init__(self, child: Plan, output_columns: list[str]):
        super().__init__(output_columns)
        self.child = child

    def label(self) -> str:
        return f"RowExpand ({self.width} cols)"

    def children(self) -> list[Plan]:
        return [self.child]

    def instantiate(self, rt, ictx=None) -> "RowExpandState":
        return RowExpandState(rt, self, self.child.instantiate(rt, ictx))


class RowExpandState(PlanState):
    __slots__ = ("plan", "child")

    def __init__(self, rt, plan: RowExpandPlan, child: PlanState):
        super().__init__(rt)
        self.plan = plan
        self.child = child

    def open(self, outer) -> None:
        self.child.open(outer)

    def next(self) -> Optional[tuple]:
        row = self.child.next()
        if row is None:
            return None
        if len(row) == self.plan.width:
            return row
        if len(row) == 1:
            value = row[0]
            if value is None:
                return (None,) * self.plan.width
            if isinstance(value, Row) and len(value) == self.plan.width:
                return value.values
        raise ExecutionError(
            f"cannot expand row of width {len(row)} to "
            f"{self.plan.width} columns {self.plan.output_columns}")

    def close(self) -> None:
        self.child.close()


def make_slots(rt, ictx, subplans) -> list:
    """Eagerly instantiate a node's expression subplans into its slot list.

    This is the per-execution cost the paper attributes to ExecutorStart:
    every scalar subquery / EXISTS / IN-subquery in the node's expressions
    gets a fresh state tree here, once per plan instantiation — and exactly
    once for a compiled query, no matter how many recursive steps follow.
    """
    return [plan.instantiate(rt, ictx) for plan in subplans]
